// Closed and maximal itemset mining — the condensed-representation
// problem family of the original LCM ("Linear time Closed itemset
// Miner"). Mines a clustered Quest database, reduces the full frequent
// listing to its closed and maximal subsets, and shows the compression
// each representation buys.
//
//   ./closed_itemsets [min_support]

#include <cstdio>
#include <cstdlib>

#include "fpm/algo/lcm/closed_miner.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/algo/postprocess.h"
#include "fpm/common/timer.h"
#include "fpm/dataset/quest_gen.h"

int main(int argc, char** argv) {
  using namespace fpm;
  const Support min_support =
      argc > 1 ? static_cast<Support>(std::atoi(argv[1])) : 80;

  QuestParams params;
  params.num_transactions = 20000;
  params.avg_transaction_len = 14;
  params.avg_pattern_len = 5;
  params.num_items = 600;
  params.num_patterns = 150;
  params.seed = 11;
  auto dbr = GenerateQuest(params);
  if (!dbr.ok()) {
    std::fprintf(stderr, "%s\n", dbr.status().ToString().c_str());
    return 1;
  }
  const Database& db = dbr.value();

  // Count the full frequent listing for comparison (cheap sink)...
  LcmMiner all_miner(LcmOptions::All());
  CountingSink all_sink;
  WallTimer all_timer;
  Status status = all_miner.Mine(db, min_support, &all_sink).status();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const double all_seconds = all_timer.ElapsedSeconds();

  // ...then mine the closed sets natively (no full materialization) and
  // reduce them to the maximal sets.
  LcmClosedMiner closed_miner;
  CollectingSink closed_sink;
  WallTimer closed_timer;
  status = closed_miner.Mine(db, min_support, &closed_sink).status();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const double closed_seconds = closed_timer.ElapsedSeconds();
  closed_sink.Canonicalize();
  const auto& closed = closed_sink.results();
  const auto maximal = FilterMaximalFromClosed(closed);

  std::printf("mined %zu transactions at support %u\n",
              db.num_transactions(), min_support);
  std::printf("  frequent itemsets: %llu  (%.3fs, lcm all-frequent)\n",
              static_cast<unsigned long long>(all_sink.count()),
              all_seconds);
  std::printf("  closed itemsets:   %zu  (%.1f%% of frequent; %.3fs, "
              "lcm-closed)\n",
              closed.size(), 100.0 * closed.size() / all_sink.count(),
              closed_seconds);
  std::printf("  maximal itemsets:  %zu  (%.1f%% of frequent)\n",
              maximal.size(), 100.0 * maximal.size() / all_sink.count());

  // The largest maximal itemsets are the database's strongest patterns.
  std::printf("\nlargest maximal itemsets:\n");
  size_t shown = 0;
  for (size_t i = maximal.size(); i-- > 0 && shown < 8;) {
    const auto& [set, support] = maximal[i];
    if (set.size() < 3) continue;
    std::printf("  {");
    for (size_t j = 0; j < set.size(); ++j) {
      std::printf(j ? ",%u" : "%u", set[j]);
    }
    std::printf("} support %u\n", support);
    ++shown;
  }
  return 0;
}
