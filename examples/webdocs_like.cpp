// Text-corpus mining — the paper's large-real-dataset scenario (DS3/DS4).
// Generates a web-document-like corpus, mines frequently co-occurring
// term sets with all three kernels (baseline and fully tuned), and shows
// that the best algorithm is input dependent — the paper's "no single
// best algorithm" observation — while tuned variants always match the
// baseline output.
//
//   ./webdocs_like [num_docs] [support]

#include <cstdio>
#include <cstdlib>

#include "fpm/core/mine.h"
#include "fpm/dataset/standin_gen.h"
#include "fpm/dataset/stats.h"
#include "fpm/perf/harness.h"
#include "fpm/perf/report.h"

int main(int argc, char** argv) {
  using namespace fpm;
  const uint32_t num_docs =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 20000;
  const Support support =
      argc > 2 ? static_cast<Support>(std::atoi(argv[2])) : num_docs / 10;

  WebDocsLikeParams params;
  params.num_transactions = num_docs;
  params.vocabulary = 8000;
  params.avg_length = 60;
  auto dbr = GenerateWebDocsLike(params);
  if (!dbr.ok()) {
    std::fprintf(stderr, "%s\n", dbr.status().ToString().c_str());
    return 1;
  }
  const Database& db = dbr.value();
  std::printf("== Corpus ==\n%s\n", ComputeStats(db).ToString().c_str());
  std::printf("Mining term sets appearing in >= %u documents.\n\n", support);

  ReportTable table({"Algorithm", "Patterns", "Time", "#frequent sets",
                     "peak structure"});
  uint64_t reference_checksum = 0;
  for (Algorithm algo :
       {Algorithm::kLcm, Algorithm::kEclat, Algorithm::kFpGrowth}) {
    for (const PatternSet& patterns :
         {PatternSet::None(), PatternSet::ApplicableTo(algo)}) {
      auto miner = CreateMiner(algo, patterns);
      if (!miner.ok()) {
        std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
        return 1;
      }
      const Measurement m = MeasureMiner(**miner, db, support, 1);
      if (reference_checksum == 0) reference_checksum = m.checksum;
      if (m.checksum != reference_checksum) {
        std::fprintf(stderr, "output mismatch from %s!\n", m.name.c_str());
        return 1;
      }
      table.AddRow({m.name, patterns.ToString(), FormatSeconds(m.seconds),
                    FormatCount(m.num_frequent),
                    FormatCount(m.stats.peak_structure_bytes) + " B"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("All six runs produced identical term sets (checksum "
              "verified).\n");
  return 0;
}
