// fpm_client — command-line client for fpmd (examples/fpmd.cpp).
//
//   ./fpm_client --socket=/tmp/fpmd.sock ping
//   ./fpm_client --socket=/tmp/fpmd.sock metrics
//   ./fpm_client --socket=/tmp/fpmd.sock stats
//       live service state: registry datasets, cache, scheduler queue
//       and in-flight jobs, rolling latency windows, watchdog counters.
//   ./fpm_client --socket=/tmp/fpmd.sock metrics-text
//       prints the metrics snapshot in Prometheus text exposition
//       format (the decoded "text" field; --json keeps the raw JSON
//       envelope). Pipe to a node_exporter textfile collector.
//   ./fpm_client --socket=/tmp/fpmd.sock shutdown
//   ./fpm_client --socket=/tmp/fpmd.sock mine <dataset> <min_support>
//       [--algorithm=NAME] [--patterns=all|none] [--priority=N]
//       [--timeout=SEC] [--count-only] [--repeat=N]
//   ./fpm_client --socket=/tmp/fpmd.sock query <dataset> <min_support>
//       [--task=frequent|closed|maximal|top_k|rules] [--top-k=N]
//       [--min-confidence=X] [--min-lift=X] [--max-consequent=N]
//       [plus every mine option]
//   ./fpm_client --socket=/tmp/fpmd.sock batch <file>
//       <file> holds one JSON query object per line (the "query" op's
//       fields); they are sent as one {"op":"batch"} request and the
//       tagged response lines print in the daemon's completion order.
//   ./fpm_client --socket=/tmp/fpmd.sock open <dataset>
//       loads (or hits) the dataset and prints its handle: the "ds-N"
//       id that addresses it in the streaming ops below.
//   ./fpm_client --socket=/tmp/fpmd.sock append <ds-id> <fimi-file>
//       appends the file's transactions (FIMI: space-separated items,
//       one transaction per line) as a new dataset version.
//   ./fpm_client --socket=/tmp/fpmd.sock expire <ds-id> <count>
//       expires the count oldest live transactions as a new version.
//   ./fpm_client --socket=/tmp/fpmd.sock window <ds-id>
//       [--last-n=N] [--last-seconds=X]
//       installs a sliding-window policy (overflow expires immediately).
//   ./fpm_client --socket=/tmp/fpmd.sock dataset-info <ds-id>
//       prints the id, window policy and full version chain.
//   ./fpm_client --endpoint=HOST:PORT cluster-info [dataset]
//       prints the daemon's cluster view: peers, health, ping
//       latencies, coordinator counters; with a dataset argument, also
//       the dataset's placement (digest + replica owners).
//
// --endpoint=SPEC addresses the daemon by TCP host:port or by Unix
// socket path (anything containing '/'); it shares the dialer with the
// cluster PeerClient, so the address grammar and error messages are
// identical to the --cluster flag's. --socket=PATH remains as the
// Unix-only spelling.
//
// "query" accepts --scatter: ask a cluster node to fan the query out
// across all owner replicas (SON partition math) instead of forwarding
// it whole. Results come back in canonical order.
//
// "query" also accepts a "ds-N" handle id in place of the dataset path
// (add --version=N to pin an older version; default is latest).
//
// "query" accepts --trace-id=STR, an opaque tag echoed in the response
// and the daemon's query log — thread your own request id through.
//
// "mine" speaks protocol v1 (frozen); everything else speaks v2.
// Prints one response line per request to stdout (raw protocol JSON —
// pipe through jq for pretty output). --repeat issues the same request
// N times on one connection, which is how the CI smoke test drives the
// daemon's result cache. Exit code: 0 when every response has
// "ok":true, 1 otherwise.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fpm/cluster/endpoint.h"
#include "fpm/service/json.h"

namespace {

using fpm::JsonValue;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --endpoint=HOST:PORT|PATH "
               "ping|metrics|stats|metrics-text|shutdown [--json]\n"
               "       %s --endpoint=SPEC mine DATASET MIN_SUPPORT "
               "[--algorithm=NAME] [--patterns=all|none] [--priority=N] "
               "[--timeout=SEC] [--count-only] [--repeat=N]\n"
               "       %s --endpoint=SPEC query DATASET|DS-ID MIN_SUPPORT "
               "[--task=NAME] [--top-k=N] [--min-confidence=X] "
               "[--min-lift=X] [--max-consequent=N] [--version=N] "
               "[--trace-id=STR] [--scatter] [mine options]\n"
               "       %s --endpoint=SPEC batch FILE\n"
               "       %s --endpoint=SPEC open DATASET\n"
               "       %s --endpoint=SPEC append DS-ID FIMI_FILE\n"
               "       %s --endpoint=SPEC expire DS-ID COUNT\n"
               "       %s --endpoint=SPEC window DS-ID [--last-n=N] "
               "[--last-seconds=X]\n"
               "       %s --endpoint=SPEC dataset-info DS-ID\n"
               "       %s --endpoint=SPEC cluster-info [DATASET]\n"
               "--socket=PATH is an alias for --endpoint with a Unix "
               "socket path.\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0);
  return 2;
}

/// True for a registry handle id ("ds-" + digits) — how "query" decides
/// between path and id addressing.
bool IsHandleRef(const std::string& s) {
  if (s.rfind("ds-", 0) != 0 || s.size() == 3) return false;
  for (size_t i = 3; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

/// Parses a FIMI transaction file into a JSON array of item arrays.
/// Returns false (with a message on stderr) on unreadable file, a
/// non-numeric token, or zero transactions.
bool ReadFimiTransactions(const std::string& path, JsonValue* out) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  *out = JsonValue::Array();
  std::string line;
  size_t count = 0;
  while (std::getline(file, line)) {
    JsonValue txn = JsonValue::Array();
    const char* p = line.c_str();
    while (*p != '\0') {
      while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
      if (*p == '\0') break;
      char* end = nullptr;
      const long item = std::strtol(p, &end, 10);
      if (end == p || item < 0) {
        std::fprintf(stderr, "%s: bad item token in '%s'\n", path.c_str(),
                     line.c_str());
        return false;
      }
      txn.Append(JsonValue::Int(item));
      p = end;
    }
    if (txn.array_items().empty()) continue;
    out->Append(std::move(txn));
    ++count;
  }
  if (count == 0) {
    std::fprintf(stderr, "%s: no transactions\n", path.c_str());
    return false;
  }
  return true;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one newline-terminated response into `line` (newline stripped).
bool RecvLine(int fd, std::string* buffer, std::string* line) {
  while (true) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// Prints a response line; returns its "ok" verdict (metrics snapshots
/// have no envelope — any parseable object counts).
bool PrintAndCheck(const std::string& response) {
  std::printf("%s\n", response.c_str());
  auto parsed = fpm::ParseJson(response);
  return parsed.ok() && parsed->is_object() &&
         (parsed.value()["ok"].is_null() ||
          parsed.value()["ok"].bool_value());
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint_spec;
  std::string op;
  std::string dataset;  // batch: query file; append/expire/...: ds id
  std::string arg2;     // third positional, interpreted per op
  long min_support = 0;
  std::string task;
  long top_k = 0;
  double min_confidence = -1.0;
  double min_lift = -1.0;
  long max_consequent = 0;
  std::string algorithm;
  std::string patterns;
  long priority = 0;
  double timeout_seconds = 0.0;
  bool count_only = false;
  long repeat = 1;
  long version = 0;
  long last_n = -1;
  double last_seconds = -1.0;
  std::string trace_id;
  bool json_output = false;
  bool scatter = false;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      endpoint_spec = arg.substr(9);
    } else if (arg.rfind("--endpoint=", 0) == 0) {
      endpoint_spec = arg.substr(11);
    } else if (arg.rfind("--task=", 0) == 0) {
      task = arg.substr(7);
    } else if (arg.rfind("--top-k=", 0) == 0) {
      top_k = std::atol(arg.c_str() + 8);
    } else if (arg.rfind("--min-confidence=", 0) == 0) {
      min_confidence = std::atof(arg.c_str() + 17);
    } else if (arg.rfind("--min-lift=", 0) == 0) {
      min_lift = std::atof(arg.c_str() + 11);
    } else if (arg.rfind("--max-consequent=", 0) == 0) {
      max_consequent = std::atol(arg.c_str() + 17);
    } else if (arg.rfind("--algorithm=", 0) == 0) {
      algorithm = arg.substr(12);
    } else if (arg.rfind("--patterns=", 0) == 0) {
      patterns = arg.substr(11);
    } else if (arg.rfind("--priority=", 0) == 0) {
      priority = std::atol(arg.c_str() + 11);
    } else if (arg.rfind("--timeout=", 0) == 0) {
      timeout_seconds = std::atof(arg.c_str() + 10);
    } else if (arg == "--count-only") {
      count_only = true;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atol(arg.c_str() + 9);
    } else if (arg.rfind("--version=", 0) == 0) {
      version = std::atol(arg.c_str() + 10);
    } else if (arg.rfind("--last-n=", 0) == 0) {
      last_n = std::atol(arg.c_str() + 9);
    } else if (arg.rfind("--last-seconds=", 0) == 0) {
      last_seconds = std::atof(arg.c_str() + 15);
    } else if (arg.rfind("--trace-id=", 0) == 0) {
      trace_id = arg.substr(11);
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--scatter") {
      scatter = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else if (positional == 0) {
      op = arg;
      ++positional;
    } else if (positional == 1) {
      dataset = arg;
      ++positional;
    } else if (positional == 2) {
      arg2 = arg;
      min_support = std::atol(arg.c_str());
      ++positional;
    } else {
      return Usage(argv[0]);
    }
  }
  if (endpoint_spec.empty() || op.empty() || repeat < 1) {
    return Usage(argv[0]);
  }
  const bool is_mine = op == "mine" || op == "query";
  if (is_mine && (dataset.empty() || min_support < 1)) {
    return Usage(argv[0]);
  }
  if (op == "batch" && dataset.empty()) return Usage(argv[0]);
  const bool is_dataset_op = op == "open" || op == "append" ||
                             op == "expire" || op == "window" ||
                             op == "dataset-info";
  if (is_dataset_op && dataset.empty()) return Usage(argv[0]);
  if ((op == "append" || op == "expire") && arg2.empty()) {
    return Usage(argv[0]);
  }
  if (!is_mine && !is_dataset_op && op != "batch" && op != "ping" &&
      op != "metrics" && op != "stats" && op != "metrics-text" &&
      op != "shutdown" && op != "cluster-info") {
    return Usage(argv[0]);
  }

  size_t expected_responses = 1;
  JsonValue request = JsonValue::Object();
  // The wire op names: "dataset-info" -> "dataset_info",
  // "metrics-text" -> "metrics_text" (CLI spelling uses dashes).
  std::string wire_op = op;
  if (op == "dataset-info") wire_op = "dataset_info";
  if (op == "metrics-text") wire_op = "metrics_text";
  if (op == "cluster-info") wire_op = "cluster_info";
  request.Set("op", JsonValue::Str(wire_op));
  if (is_mine) {
    if (op == "query" && IsHandleRef(dataset)) {
      request.Set("id", JsonValue::Str(dataset));
      if (version > 0) request.Set("version", JsonValue::Int(version));
    } else {
      request.Set("dataset", JsonValue::Str(dataset));
    }
    request.Set("min_support", JsonValue::Int(min_support));
    if (op == "query") {
      if (!task.empty()) request.Set("task", JsonValue::Str(task));
      if (top_k > 0) request.Set("k", JsonValue::Int(top_k));
      if (min_confidence >= 0.0) {
        request.Set("min_confidence", JsonValue::Number(min_confidence));
      }
      if (min_lift >= 0.0) {
        request.Set("min_lift", JsonValue::Number(min_lift));
      }
      if (max_consequent > 0) {
        request.Set("max_consequent", JsonValue::Int(max_consequent));
      }
    }
    if (!algorithm.empty()) {
      request.Set("algorithm", JsonValue::Str(algorithm));
    }
    if (!patterns.empty()) request.Set("patterns", JsonValue::Str(patterns));
    if (priority != 0) request.Set("priority", JsonValue::Int(priority));
    if (timeout_seconds > 0.0) {
      request.Set("timeout_s", JsonValue::Number(timeout_seconds));
    }
    if (count_only) request.Set("count_only", JsonValue::Bool(true));
    if (op == "query" && !trace_id.empty()) {
      request.Set("trace_id", JsonValue::Str(trace_id));
    }
    if (op == "query" && scatter) {
      request.Set("scatter", JsonValue::Bool(true));
    }
  } else if (op == "cluster-info") {
    if (!dataset.empty()) request.Set("dataset", JsonValue::Str(dataset));
    repeat = 1;
  } else if (op == "batch") {
    // One JSON query object per file line; the daemon answers with
    // exactly one tagged line per entry.
    std::ifstream file(dataset);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", dataset.c_str());
      return 1;
    }
    JsonValue queries = JsonValue::Array();
    std::string file_line;
    size_t count = 0;
    while (std::getline(file, file_line)) {
      if (file_line.empty()) continue;
      auto parsed = fpm::ParseJson(file_line);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: bad query line: %s\n", dataset.c_str(),
                     parsed.status().message().c_str());
        return 1;
      }
      queries.Append(std::move(parsed.value()));
      ++count;
    }
    if (count == 0) {
      std::fprintf(stderr, "%s: no queries\n", dataset.c_str());
      return 1;
    }
    request.Set("queries", std::move(queries));
    expected_responses = count;
    repeat = 1;
  } else if (is_dataset_op) {
    if (op == "open") {
      request.Set("dataset", JsonValue::Str(dataset));
    } else {
      request.Set("id", JsonValue::Str(dataset));
    }
    if (op == "append") {
      JsonValue transactions;
      if (!ReadFimiTransactions(arg2, &transactions)) return 1;
      request.Set("transactions", std::move(transactions));
    } else if (op == "expire") {
      const long count = std::atol(arg2.c_str());
      if (count < 1) {
        std::fprintf(stderr, "expire: COUNT must be >= 1\n");
        return Usage(argv[0]);
      }
      request.Set("count", JsonValue::Int(count));
    } else if (op == "window") {
      if (last_n < 0 && last_seconds < 0.0) {
        std::fprintf(stderr,
                     "window: need --last-n=N and/or --last-seconds=X\n");
        return Usage(argv[0]);
      }
      if (last_n >= 0) request.Set("last_n", JsonValue::Int(last_n));
      if (last_seconds >= 0.0) {
        request.Set("last_seconds", JsonValue::Number(last_seconds));
      }
    }
    repeat = 1;
  } else {
    repeat = 1;
  }

  // One dialer for Unix paths and TCP host:port — the same helper the
  // cluster's PeerClient uses, so error messages match the daemon's.
  auto endpoint = fpm::ParseEndpoint(endpoint_spec);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "%s\n", endpoint.status().message().c_str());
    return 1;
  }
  auto dialed = fpm::DialEndpoint(endpoint.value(), /*timeout_seconds=*/5.0);
  if (!dialed.ok()) {
    std::fprintf(stderr, "%s\n", dialed.status().message().c_str());
    return 1;
  }
  const int fd = dialed.value();

  const std::string line = request.Dump() + "\n";
  std::string buffer;
  bool all_ok = true;
  for (long i = 0; i < repeat; ++i) {
    if (!SendAll(fd, line)) {
      std::fprintf(stderr, "send failed\n");
      ::close(fd);
      return 1;
    }
    for (size_t r = 0; r < expected_responses; ++r) {
      std::string response;
      if (!RecvLine(fd, &buffer, &response)) {
        std::fprintf(stderr, "connection closed before response\n");
        ::close(fd);
        return 1;
      }
      if (op == "metrics-text" && !json_output) {
        // Unwrap the exposition text so the output pipes straight into
        // a Prometheus textfile collector.
        auto parsed = fpm::ParseJson(response);
        if (parsed.ok() && parsed->is_object() &&
            parsed.value()["ok"].bool_value() &&
            parsed.value()["text"].is_string()) {
          std::fputs(parsed.value()["text"].string_value().c_str(), stdout);
        } else {
          if (!PrintAndCheck(response)) all_ok = false;
        }
      } else if (!PrintAndCheck(response)) {
        all_ok = false;
      }
    }
  }
  ::close(fd);
  return all_ok ? 0 : 1;
}
