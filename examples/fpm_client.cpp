// fpm_client — command-line client for fpmd (examples/fpmd.cpp).
//
//   ./fpm_client --socket=/tmp/fpmd.sock ping
//   ./fpm_client --socket=/tmp/fpmd.sock metrics
//   ./fpm_client --socket=/tmp/fpmd.sock shutdown
//   ./fpm_client --socket=/tmp/fpmd.sock mine <dataset> <min_support>
//       [--algorithm=NAME] [--patterns=all|none] [--priority=N]
//       [--timeout=SEC] [--count-only] [--repeat=N]
//
// Prints one response line per request to stdout (raw protocol JSON —
// pipe through jq for pretty output). --repeat issues the same mine
// request N times on one connection, which is how the CI smoke test
// drives the daemon's result cache. Exit code: 0 when every response
// has "ok":true, 1 otherwise.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fpm/service/json.h"

namespace {

using fpm::JsonValue;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH ping|metrics|shutdown\n"
               "       %s --socket=PATH mine DATASET MIN_SUPPORT "
               "[--algorithm=NAME] [--patterns=all|none] [--priority=N] "
               "[--timeout=SEC] [--count-only] [--repeat=N]\n",
               argv0, argv0);
  return 2;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one newline-terminated response into `line` (newline stripped).
bool RecvLine(int fd, std::string* buffer, std::string* line) {
  while (true) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string op;
  std::string dataset;
  long min_support = 0;
  std::string algorithm;
  std::string patterns;
  long priority = 0;
  double timeout_seconds = 0.0;
  bool count_only = false;
  long repeat = 1;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--algorithm=", 0) == 0) {
      algorithm = arg.substr(12);
    } else if (arg.rfind("--patterns=", 0) == 0) {
      patterns = arg.substr(11);
    } else if (arg.rfind("--priority=", 0) == 0) {
      priority = std::atol(arg.c_str() + 11);
    } else if (arg.rfind("--timeout=", 0) == 0) {
      timeout_seconds = std::atof(arg.c_str() + 10);
    } else if (arg == "--count-only") {
      count_only = true;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atol(arg.c_str() + 9);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else if (positional == 0) {
      op = arg;
      ++positional;
    } else if (positional == 1) {
      dataset = arg;
      ++positional;
    } else if (positional == 2) {
      min_support = std::atol(arg.c_str());
      ++positional;
    } else {
      return Usage(argv[0]);
    }
  }
  if (socket_path.empty() || op.empty() || repeat < 1) return Usage(argv[0]);
  if (op == "mine" && (dataset.empty() || min_support < 1)) {
    return Usage(argv[0]);
  }
  if (op != "mine" && op != "ping" && op != "metrics" && op != "shutdown") {
    return Usage(argv[0]);
  }

  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::Str(op));
  if (op == "mine") {
    request.Set("dataset", JsonValue::Str(dataset));
    request.Set("min_support", JsonValue::Int(min_support));
    if (!algorithm.empty()) {
      request.Set("algorithm", JsonValue::Str(algorithm));
    }
    if (!patterns.empty()) request.Set("patterns", JsonValue::Str(patterns));
    if (priority != 0) request.Set("priority", JsonValue::Int(priority));
    if (timeout_seconds > 0.0) {
      request.Set("timeout_s", JsonValue::Number(timeout_seconds));
    }
    if (count_only) request.Set("count_only", JsonValue::Bool(true));
  } else {
    repeat = 1;
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("connect");
    return 1;
  }

  const std::string line = request.Dump() + "\n";
  std::string buffer;
  bool all_ok = true;
  for (long i = 0; i < repeat; ++i) {
    if (!SendAll(fd, line)) {
      std::fprintf(stderr, "send failed\n");
      ::close(fd);
      return 1;
    }
    std::string response;
    if (!RecvLine(fd, &buffer, &response)) {
      std::fprintf(stderr, "connection closed before response\n");
      ::close(fd);
      return 1;
    }
    std::printf("%s\n", response.c_str());
    auto parsed = fpm::ParseJson(response);
    // Control responses carry "ok"; the metrics snapshot is a raw
    // counters object with no envelope — any parseable object counts.
    if (!parsed.ok() || !parsed->is_object() ||
        (!parsed.value()["ok"].is_null() &&
         !parsed.value()["ok"].bool_value())) {
      all_ok = false;
    }
  }
  ::close(fd);
  return all_ok ? 0 : 1;
}
