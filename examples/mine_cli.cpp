// Command-line frequent itemset miner over FIMI-format files — the
// interface the FIMI workshop implementations the paper studies expose.
//
//   ./mine_cli <input.dat> <min_support> [options]
//     --algorithm=lcm|eclat|fpgrowth|apriori|auto   (default lcm)
//     --patterns=<list>|all|none|auto          (default auto: the advisor)
//     --task=frequent|closed|maximal|top_k|rules    (default frequent)
//     --top-k=N                                (top_k: how many itemsets)
//     --min-confidence=X                       (rules; default 0.5)
//     --min-lift=X                             (rules; default 0)
//     --output=<file>                          (default: count only)
//     --threads=N                              (default 1: sequential;
//                                               0: all hardware threads)
//     --timeout=SEC                            (cancel mining after SEC
//                                               seconds; reports patterns
//                                               found so far, exits 3)
//     --flat                                   (top-level task parallelism
//                                               only; default is nested
//                                               fork-join)
//     --nondeterministic                       (allow any emission order)
//     --stats                                  (print timing breakdown)
//     --perf                                   (per-phase CPI/MPKI table)
//     --trace-out=FILE                         (chrome://tracing span JSON)
//     --metrics-out=FILE                       (metrics snapshot JSON)
//     --query-log=FILE                         (append one JSON line for
//                                               this run, same schema as
//                                               fpmd's --query-log)
//     --append=FILE                            (repeatable: append FILE's
//                                               transactions as a new
//                                               dataset version before
//                                               mining; mines the latest)
//     --window=N                               (sliding window: keep only
//                                               the last N transactions,
//                                               older ones expire)
//     --packed                                 (input is a packed database
//                                               from fpm_pack: mmap it
//                                               instead of parsing FIMI;
//                                               packed files are also
//                                               auto-detected by magic)
//
// Example:
//   ./mine_cli retail.dat 100 --algorithm=eclat --patterns=P1,P8
//              --output=itemsets.txt

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fpm/common/cancel.h"
#include "fpm/common/timer.h"
#include "fpm/core/mine.h"
#include "fpm/core/pattern_advisor.h"
#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/packed.h"
#include "fpm/dataset/stats.h"
#include "fpm/dataset/versioned.h"
#include "fpm/obs/metrics.h"
#include "fpm/obs/query_log.h"
#include "fpm/obs/trace.h"
#include "fpm/parallel/thread_pool.h"
#include "fpm/perf/harness.h"
#include "fpm/perf/perf_sampler.h"

namespace {

using namespace fpm;

// Streams "item item ... (support)" lines to a file, FIMI output style.
class FileSink : public ItemsetSink {
 public:
  explicit FileSink(std::ofstream out) : out_(std::move(out)) {}

  void Emit(std::span<const Item> itemset, Support support) override {
    for (size_t i = 0; i < itemset.size(); ++i) {
      if (i > 0) out_ << ' ';
      out_ << itemset[i];
    }
    out_ << " (" << support << ")\n";
    ++count_;
  }

  uint64_t count() const { return count_; }

 private:
  std::ofstream out_;
  uint64_t count_ = 0;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.dat> <min_support> [--algorithm=NAME] "
               "[--patterns=LIST|all|none|auto] "
               "[--task=frequent|closed|maximal|top_k|rules] [--top-k=N] "
               "[--min-confidence=X] [--min-lift=X] [--output=FILE] "
               "[--threads=N (0 = all hardware threads)] [--timeout=SEC] "
               "[--flat] [--nondeterministic] [--stats] [--perf] "
               "[--trace-out=FILE] [--metrics-out=FILE] [--query-log=FILE] "
               "[--append=FILE ...] [--window=N] [--packed]\n",
               argv0);
  return 2;
}

// Truncate-opens `path`, reporting a clear error on failure. All output
// files are opened before mining so a bad path fails in milliseconds,
// not after a long run.
bool OpenOutput(const std::string& path, std::ofstream* out) {
  out->open(path, std::ios::trunc);
  if (!*out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string input = argv[1];
  const long support_arg = std::atol(argv[2]);
  if (support_arg < 1) {
    std::fprintf(stderr, "min_support must be >= 1\n");
    return 2;
  }

  std::string algorithm_name = "lcm";
  std::string pattern_spec = "auto";
  std::string task_name = "frequent";
  long top_k = 0;
  double min_confidence = -1.0;
  double min_lift = -1.0;
  std::string output_path;
  std::string trace_path;
  std::string metrics_path;
  std::string query_log_path;
  bool show_stats = false;
  bool show_perf = false;
  long threads = 1;
  double timeout_seconds = 0.0;
  bool deterministic = true;
  bool nested = true;
  std::vector<std::string> append_paths;
  long window_n = 0;
  bool packed = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algorithm=", 0) == 0) {
      algorithm_name = arg.substr(12);
    } else if (arg.rfind("--patterns=", 0) == 0) {
      pattern_spec = arg.substr(11);
    } else if (arg.rfind("--task=", 0) == 0) {
      task_name = arg.substr(7);
    } else if (arg.rfind("--top-k=", 0) == 0) {
      top_k = std::atol(arg.c_str() + 8);
      if (top_k < 1) {
        std::fprintf(stderr, "--top-k must be >= 1\n");
        return 2;
      }
    } else if (arg.rfind("--min-confidence=", 0) == 0) {
      min_confidence = std::atof(arg.c_str() + 17);
    } else if (arg.rfind("--min-lift=", 0) == 0) {
      min_lift = std::atof(arg.c_str() + 11);
    } else if (arg.rfind("--output=", 0) == 0) {
      output_path = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(10);
      char* end = nullptr;
      threads = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || threads < 0) {
        std::fprintf(stderr,
                     "--threads must be >= 0 (0 = all hardware threads)\n");
        return 2;
      }
      if (threads == 0) {
        threads = static_cast<long>(ThreadPool::HardwareThreads());
        std::fprintf(stderr, "--threads=0: using %ld hardware threads\n",
                     threads);
      }
    } else if (arg.rfind("--timeout=", 0) == 0) {
      const std::string value = arg.substr(10);
      char* end = nullptr;
      timeout_seconds = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || timeout_seconds <= 0.0) {
        std::fprintf(stderr, "--timeout must be a positive number\n");
        return 2;
      }
    } else if (arg == "--flat") {
      nested = false;
    } else if (arg == "--nondeterministic") {
      deterministic = false;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--perf") {
      show_perf = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_path = arg.substr(14);
    } else if (arg.rfind("--query-log=", 0) == 0) {
      query_log_path = arg.substr(12);
    } else if (arg.rfind("--append=", 0) == 0) {
      append_paths.push_back(arg.substr(9));
    } else if (arg.rfind("--window=", 0) == 0) {
      window_n = std::atol(arg.c_str() + 9);
      if (window_n < 1) {
        std::fprintf(stderr, "--window must be >= 1\n");
        return 2;
      }
    } else if (arg == "--packed") {
      packed = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  // Every output file is opened before mining: a typo'd path should
  // fail now, not after minutes of work.
  std::ofstream output_file;
  std::ofstream trace_file;
  std::ofstream metrics_file;
  if (!output_path.empty() && !OpenOutput(output_path, &output_file)) return 1;
  if (!trace_path.empty() && !OpenOutput(trace_path, &trace_file)) return 1;
  if (!metrics_path.empty() && !OpenOutput(metrics_path, &metrics_file)) {
    return 1;
  }
  QueryLog query_log;
  if (!query_log_path.empty()) {
    if (const Status opened = query_log.OpenFile(query_log_path);
        !opened.ok()) {
      std::fprintf(stderr, "error: --query-log: %s\n",
                   opened.message().c_str());
      return 1;
    }
  }

  // Observability is enabled before the load so the fimi/read span and
  // parse counters land in the outputs too.
  if (!trace_path.empty()) Tracer::Default().set_enabled(true);
  if (!metrics_path.empty()) MetricsRegistry::Default().set_enabled(true);

  // --perf installs a hardware-counter sampler on the default tracer;
  // phase spans then latch CPI / MPKI deltas into MineStats (and, when
  // --metrics-out is on, into fpm.phase.* metrics). Degrades gracefully:
  // on refusing kernels (perf_event_paranoid) the run proceeds unsampled
  // and the reason is printed once.
  std::unique_ptr<PerfSampler> perf_sampler;
  if (show_perf) {
    auto sampler = PerfSampler::Create();
    if (sampler.ok()) {
      perf_sampler = std::move(sampler).value();
      Tracer::Default().set_phase_sampler(perf_sampler.get());
      for (const auto& [event, reason] : perf_sampler->dropped()) {
        std::fprintf(stderr, "perf: dropped %s (%s)\n",
                     std::string(PerfEventName(event)).c_str(),
                     reason.c_str());
      }
    } else {
      std::fprintf(stderr,
                   "perf: hardware counters unavailable, continuing "
                   "without --perf data (%s)\n",
                   sampler.status().message().c_str());
    }
  }

  // --packed (or a sniffed FPMPACK1 magic) maps the file read-only
  // instead of parsing it: the CSR arrays are mined straight off the
  // page cache, so load time is O(header) and the heap stays small.
  WallTimer load_timer;
  if (!packed && IsPackedFile(input)) packed = true;
  auto dbr = packed ? OpenMapped(input) : ReadFimiFile(input);
  if (!dbr.ok()) {
    std::fprintf(stderr, "%s\n", dbr.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu transactions, %zu items in %.3fs (%s)\n",
               dbr.value().num_transactions(), dbr.value().num_items(),
               load_timer.ElapsedSeconds(),
               StorageKindName(dbr.value().storage_kind()));

  // --append/--window route the load through a VersionedDataset: each
  // append file becomes one immutable version, the window policy
  // expires overflow, and mining runs on the latest version's database.
  std::unique_ptr<VersionedDataset> versioned;
  if (!append_paths.empty() || window_n > 0) {
    versioned = std::make_unique<VersionedDataset>(std::move(dbr).value(),
                                                   /*digest=*/"cli-base");
    if (window_n > 0) {
      WindowPolicy policy;
      policy.last_n = static_cast<uint64_t>(window_n);
      versioned->SetPolicy(policy);
    }
    for (const std::string& path : append_paths) {
      auto appended = ReadFimiFile(path);
      if (!appended.ok()) {
        std::fprintf(stderr, "%s\n", appended.status().ToString().c_str());
        return 1;
      }
      std::vector<Itemset> txns;
      txns.reserve(appended.value().num_transactions());
      for (Tid t = 0; t < appended.value().num_transactions(); ++t) {
        const auto span = appended.value().transaction(t);
        txns.emplace_back(span.begin(), span.end());
      }
      auto result = versioned->Append(txns);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const DatasetVersion& v = *result.value();
      std::fprintf(stderr,
                   "appended %zu transactions from %s -> version %llu "
                   "(digest %s, %llu live)\n",
                   txns.size(), path.c_str(),
                   static_cast<unsigned long long>(v.number),
                   v.digest.c_str(),
                   static_cast<unsigned long long>(
                       versioned->live_transactions()));
    }
  }
  const Database& db =
      versioned ? *versioned->latest().database : dbr.value();

  MineOptions options;
  options.min_support = static_cast<Support>(support_arg);
  if (algorithm_name == "auto") {
    const MiningAdvice advice = AdviseMining(ComputeStats(db));
    options.algorithm = advice.algorithm;
    std::fprintf(stderr, "advisor selected algorithm: %s\n",
                 AlgorithmName(options.algorithm));
  } else {
    auto algorithm = ParseAlgorithm(algorithm_name);
    if (!algorithm.ok()) {
      std::fprintf(stderr, "%s\n", algorithm.status().ToString().c_str());
      return 2;
    }
    options.algorithm = algorithm.value();
  }
  if (pattern_spec == "auto") {
    const PatternAdvice advice =
        AdvisePatterns(options.algorithm, ComputeStats(db));
    options.patterns = advice.patterns;
    std::fprintf(stderr, "advisor selected patterns: %s\n",
                 options.patterns.ToString().c_str());
  } else {
    auto parsed = PatternSet::Parse(pattern_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    options.patterns = parsed.value();
  }
  options.execution.num_threads = static_cast<uint32_t>(threads);
  options.execution.deterministic = deterministic;
  options.execution.nested = nested;

  // The task family (closed/maximal/top-k/rules) rides the same miner
  // through the MiningQuery dispatch; "frequent" keeps the classic
  // FIMI-style path below.
  MiningQuery query = MiningQuery::Frequent(options.min_support);
  {
    auto task = ParseTask(task_name);
    if (!task.ok()) {
      std::fprintf(stderr, "%s\n", task.status().ToString().c_str());
      return 2;
    }
    query.task = task.value();
  }
  if (top_k > 0) query.k = static_cast<uint64_t>(top_k);
  if (min_confidence >= 0.0) query.min_confidence = min_confidence;
  if (min_lift >= 0.0) query.min_lift = min_lift;
  if (Status valid = query.Validate(); !valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }

  // --timeout arms a deadline the kernels poll at frame boundaries; an
  // expired run stops within one frame and Mine() reports
  // DEADLINE_EXCEEDED with the partial count still in the sink.
  CancelToken cancel;
  if (timeout_seconds > 0.0) {
    cancel.SetTimeout(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(timeout_seconds)));
    options.cancel = &cancel;
  }

  MineStats stats;
  WallTimer mine_timer;
  Result<MineStats> run = Status::Internal("not run");
  uint64_t count = 0;
  if (query.task == MiningTask::kFrequent) {
    if (output_path.empty()) {
      CountingSink sink;
      run = Mine(db, options, &sink);
      count = sink.count();
    } else {
      FileSink sink(std::move(output_file));
      run = Mine(db, options, &sink);
      count = sink.count();
    }
  } else {
    auto miner = CreateMiner(options);
    if (!miner.ok()) {
      std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
      return 2;
    }
    if (query.task == MiningTask::kRules) {
      std::vector<AssociationRule> rules;
      run = miner.value()->MineRules(db, query, &rules);
      count = rules.size();
      if (run.ok() && !output_path.empty()) {
        for (const AssociationRule& r : rules) {
          for (size_t i = 0; i < r.antecedent.size(); ++i) {
            if (i > 0) output_file << ' ';
            output_file << r.antecedent[i];
          }
          output_file << " =>";
          for (Item it : r.consequent) output_file << ' ' << it;
          char metrics_buf[64];
          std::snprintf(metrics_buf, sizeof(metrics_buf),
                        " (support=%llu conf=%.4f lift=%.4f)\n",
                        static_cast<unsigned long long>(r.itemset_support),
                        r.confidence, r.lift);
          output_file << metrics_buf;
        }
      }
    } else if (output_path.empty()) {
      CountingSink sink;
      run = miner.value()->Mine(db, query, &sink);
      count = sink.count();
    } else {
      FileSink sink(std::move(output_file));
      run = miner.value()->Mine(db, query, &sink);
      count = sink.count();
    }
  }
  // One query-log line per run, same schema as the daemon's, so offline
  // and service runs share one analysis pipeline.
  if (query_log.enabled()) {
    QueryLogEntry entry;
    entry.query_id = 1;
    entry.op = "cli";
    entry.task = TaskName(query.task);
    entry.dataset = input;
    entry.algorithm = AlgorithmName(options.algorithm);
    entry.min_support = static_cast<uint64_t>(support_arg);
    if (query.task == MiningTask::kTopK) entry.k = query.k;
    entry.mine_ms = mine_timer.ElapsedSeconds() * 1000.0;
    entry.cache = "miss";
    entry.num_results = count;
    if (run.ok()) {
      entry.peak_bytes = run->peak_structure_bytes;
      entry.status = "ok";
    } else {
      const StatusCode code = run.status().code();
      entry.status = code == StatusCode::kDeadlineExceeded ? "deadline"
                     : code == StatusCode::kCancelled      ? "cancelled"
                                                           : "error";
      entry.reason = run.status().message();
    }
    query_log.Write(entry);
  }

  if (!run.ok()) {
    const StatusCode code = run.status().code();
    if (code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled) {
      std::fprintf(stderr,
                   "cancelled after %llu patterns (%.3fs elapsed, "
                   "--timeout=%g)\n",
                   static_cast<unsigned long long>(count),
                   mine_timer.ElapsedSeconds(), timeout_seconds);
      return 3;
    }
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  stats = *run;

  switch (query.task) {
    case MiningTask::kTopK:
      std::printf("%llu of top-%llu itemsets by support (floor >= %ld) "
                  "in %.3fs\n",
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(query.k), support_arg,
                  mine_timer.ElapsedSeconds());
      break;
    case MiningTask::kRules:
      std::printf("%llu association rules (support >= %ld, "
                  "confidence >= %g, lift >= %g) in %.3fs\n",
                  static_cast<unsigned long long>(count), support_arg,
                  query.min_confidence, query.min_lift,
                  mine_timer.ElapsedSeconds());
      break;
    default:
      std::printf("%llu %s itemsets (support >= %ld) in %.3fs\n",
                  static_cast<unsigned long long>(count),
                  TaskName(query.task), support_arg,
                  mine_timer.ElapsedSeconds());
      break;
  }
  if (show_stats) {
    std::printf("  prepare: %.3fs  build: %.3fs  mine: %.3fs\n",
                stats.phase_seconds(PhaseId::kPrepare),
                stats.phase_seconds(PhaseId::kBuild),
                stats.phase_seconds(PhaseId::kMine));
    std::printf("  peak main structure: %zu bytes\n",
                stats.peak_structure_bytes);
  }
  if (show_perf) {
    if (stats.has_phase_counters()) {
      std::printf("%s", FormatPhaseCounterTable(stats).c_str());
    } else {
      std::printf("  (no hardware counter data for this run)\n");
    }
  }

  if (!trace_path.empty()) {
    const std::vector<TraceSpan> spans = Tracer::Default().CollectSpans();
    WriteChromeTracing(spans, trace_file);
    std::fprintf(stderr,
                 "wrote %zu spans to %s (open in chrome://tracing)\n",
                 spans.size(), trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    MetricsRegistry::Default()
        .Snapshot(/*per_thread=*/true)
        .WriteJson(metrics_file);
    metrics_file << '\n';
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_path.c_str());
  }
  if (perf_sampler) Tracer::Default().set_phase_sampler(nullptr);
  return 0;
}
