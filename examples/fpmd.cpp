// fpmd — the mining query daemon: a MiningService behind a Unix-domain
// stream socket speaking newline-delimited JSON (fpm/service/protocol.h).
//
//   ./fpmd --socket=/tmp/fpmd.sock [options]
//     --threads=N            pool workers (default: all hardware threads)
//     --data-budget-mb=N     dataset registry LRU budget (default 1024)
//     --cache-budget-mb=N    result cache LRU budget (default 256)
//     --queue-depth=N        backpressure bound (default 64)
//     --max-itemsets=N       admission bound (default 0: off)
//     --query-log=FILE       append one JSON line per query (see
//                            fpm/obs/query_log.h for the schema)
//     --slow-query-ms=N      also mirror queries slower than N ms to
//                            stderr (requires --query-log)
//     --once                 exit after the first connection closes
//                            (smoke tests)
//
// One thread per connection; requests on a connection are answered in
// order. A client that disconnects mid-query cancels its in-flight job:
// the connection thread polls the socket while waiting and calls
// MineJob::Cancel() when the peer goes away, so an abandoned expensive
// query stops burning pool workers within one kernel frame.
//
// Talk to it with examples/fpm_client.cpp, or by hand:
//   printf '{"op":"ping"}\n' | nc -U /tmp/fpmd.sock

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fpm/obs/metrics.h"
#include "fpm/obs/prometheus.h"
#include "fpm/obs/query_log.h"
#include "fpm/service/protocol.h"
#include "fpm/service/service.h"

namespace {

using namespace fpm;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--threads=N] [--data-budget-mb=N] "
               "[--cache-budget-mb=N] [--queue-depth=N] [--max-itemsets=N] "
               "[--query-log=FILE] [--slow-query-ms=N] [--once]\n",
               argv0);
  return 2;
}

bool SendLine(int fd, std::string line) {
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// True when the peer has closed: a zero-byte read on a nonblocking
/// peek. Pending request bytes (pipelined queries) read as n > 0 and
/// keep the connection alive.
bool PeerClosed(int fd) {
  char byte;
  const ssize_t n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  return n == 0;
}

std::string MetricsJson() {
  std::ostringstream out;
  MetricsRegistry::Default().Snapshot().WriteJson(out);
  return out.str();
}

std::string MetricsText() {
  std::ostringstream out;
  WritePrometheusText(MetricsRegistry::Default().Snapshot(), out);
  return out.str();
}

/// Runs one mine/query request, cancelling the job if the client
/// disconnects while it is queued or mining. `version` selects the
/// response encoding (1 = the frozen v1 "mine" shape, 2 = "query").
std::string HandleMine(MiningService& service, const MineRequest& request,
                       int fd, int version) {
  Result<std::shared_ptr<MineJob>> submitted = service.Submit(request);
  if (!submitted.ok()) return EncodeError(submitted.status());
  const std::shared_ptr<MineJob>& job = submitted.value();
  while (!job->WaitFor(std::chrono::milliseconds(50))) {
    if (PeerClosed(fd)) {
      job->Cancel();
      job->Wait();
      break;
    }
  }
  Result<MineResponse> response = job->Take();
  if (!response.ok()) return EncodeError(response.status());
  return version == 1 ? EncodeMineResponse(response.value())
                      : EncodeQueryResponse(response.value());
}

/// Runs a dataset op (open/append/expire/window/dataset_info) against
/// the service's registry. These are fast registry mutations, not
/// scheduler jobs — they run inline on the connection thread.
std::string HandleDatasetOp(MiningService& service,
                            const ServiceRequest& request) {
  DatasetRegistry& registry = service.registry();
  const DatasetOpRequest& op = request.dataset_op;
  switch (request.op) {
    case ServiceRequest::Op::kOpen: {
      Result<DatasetHandle> handle = registry.Open(op.path);
      if (!handle.ok()) return EncodeError(handle.status());
      return EncodeHandleResponse(handle.value());
    }
    case ServiceRequest::Op::kAppend: {
      Result<DatasetHandle> handle =
          registry.Append(op.id, op.transactions, op.timestamps);
      if (!handle.ok()) return EncodeError(handle.status());
      return EncodeHandleResponse(handle.value());
    }
    case ServiceRequest::Op::kExpire: {
      Result<DatasetHandle> handle = registry.Expire(op.id, op.count);
      if (!handle.ok()) return EncodeError(handle.status());
      return EncodeHandleResponse(handle.value());
    }
    case ServiceRequest::Op::kWindow: {
      Result<DatasetHandle> handle = registry.SetWindow(op.id, op.window);
      if (!handle.ok()) return EncodeError(handle.status());
      return EncodeHandleResponse(handle.value());
    }
    case ServiceRequest::Op::kDatasetInfo: {
      Result<DatasetInfo> info = registry.Info(op.id);
      if (!info.ok()) return EncodeError(info.status());
      return EncodeDatasetInfoResponse(info.value());
    }
    default:
      return EncodeError(Status::Internal("not a dataset op"));
  }
}

/// Runs a batch: every decodable entry becomes its own scheduler job,
/// and each response line streams back as soon as its job completes —
/// a slow query never blocks the others (no head-of-line blocking).
/// Lines carry "id" = the entry's index; malformed or rejected entries
/// get an immediate error line for their id only. Returns false when
/// the peer went away (connection is done).
bool HandleBatch(MiningService& service,
                 const std::vector<ServiceRequest::BatchEntry>& batch,
                 int fd) {
  struct Pending {
    uint64_t id;
    std::shared_ptr<MineJob> job;
  };
  std::vector<Pending> pending;
  const auto cancel_all = [&pending] {
    for (Pending& p : pending) p.job->Cancel();
    for (Pending& p : pending) p.job->Wait();
  };
  for (uint64_t i = 0; i < batch.size(); ++i) {
    const ServiceRequest::BatchEntry& entry = batch[i];
    if (!entry.status.ok()) {
      if (!SendLine(fd, EncodeErrorWithId(i, entry.status))) {
        cancel_all();
        return false;
      }
      continue;
    }
    Result<std::shared_ptr<MineJob>> submitted =
        service.Submit(entry.request);
    if (!submitted.ok()) {
      if (!SendLine(fd, EncodeErrorWithId(i, submitted.status()))) {
        cancel_all();
        return false;
      }
      continue;
    }
    pending.push_back(Pending{i, submitted.value()});
  }
  while (!pending.empty()) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->job->WaitFor(std::chrono::milliseconds(5))) {
        Result<MineResponse> response = it->job->Take();
        std::string line =
            response.ok()
                ? EncodeQueryResponseWithId(it->id, response.value())
                : EncodeErrorWithId(it->id, response.status());
        if (!SendLine(fd, std::move(line))) {
          it = pending.erase(it);
          cancel_all();
          return false;
        }
        it = pending.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    if (!progressed && PeerClosed(fd)) {
      cancel_all();
      return false;
    }
  }
  return true;
}

struct ServerState {
  std::unique_ptr<MiningService> service;
  std::atomic<bool> shutdown{false};
  int listen_fd = -1;
};

void ServeConnection(ServerState* state, int fd) {
  std::string buffer;
  char chunk[4096];
  while (!state->shutdown.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;

      Result<ServiceRequest> request = DecodeRequest(line);
      std::string reply;
      bool shutdown_after = false;
      if (!request.ok()) {
        reply = EncodeError(request.status());
      } else {
        switch (request.value().op) {
          case ServiceRequest::Op::kPing:
            reply = EncodeOk();
            break;
          case ServiceRequest::Op::kMetrics:
            reply = MetricsJson();
            break;
          case ServiceRequest::Op::kMetricsText:
            reply = EncodeMetricsTextResponse(MetricsText());
            break;
          case ServiceRequest::Op::kStats:
            reply = EncodeStatsResponse(state->service->Stats());
            break;
          case ServiceRequest::Op::kShutdown:
            reply = EncodeOk();
            shutdown_after = true;
            break;
          case ServiceRequest::Op::kMine:
          case ServiceRequest::Op::kQuery:
            reply = HandleMine(*state->service, request.value().mine, fd,
                               request.value().version);
            break;
          case ServiceRequest::Op::kOpen:
          case ServiceRequest::Op::kAppend:
          case ServiceRequest::Op::kExpire:
          case ServiceRequest::Op::kWindow:
          case ServiceRequest::Op::kDatasetInfo:
            reply = HandleDatasetOp(*state->service, request.value());
            break;
          case ServiceRequest::Op::kBatch:
            // Batch replies stream from inside the handler, one tagged
            // line per query in completion order.
            if (!HandleBatch(*state->service, request.value().batch, fd)) {
              ::close(fd);
              return;
            }
            continue;
        }
      }
      if (!SendLine(fd, std::move(reply))) {
        ::close(fd);
        return;
      }
      if (shutdown_after) {
        state->shutdown.store(true, std::memory_order_relaxed);
        // Unblock the accept loop so the process can exit.
        ::shutdown(state->listen_fd, SHUT_RDWR);
        ::close(fd);
        return;
      }
    }
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  long threads = 0;
  long data_budget_mb = 1024;
  long cache_budget_mb = 256;
  long queue_depth = 64;
  double max_itemsets = 0.0;
  std::string query_log_path;
  double slow_query_ms = 0.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atol(arg.c_str() + 10);
    } else if (arg.rfind("--data-budget-mb=", 0) == 0) {
      data_budget_mb = std::atol(arg.c_str() + 17);
    } else if (arg.rfind("--cache-budget-mb=", 0) == 0) {
      cache_budget_mb = std::atol(arg.c_str() + 18);
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      queue_depth = std::atol(arg.c_str() + 14);
    } else if (arg.rfind("--max-itemsets=", 0) == 0) {
      max_itemsets = std::atof(arg.c_str() + 15);
    } else if (arg.rfind("--query-log=", 0) == 0) {
      query_log_path = arg.substr(12);
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      slow_query_ms = std::atof(arg.c_str() + 16);
    } else if (arg == "--once") {
      once = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (socket_path.empty() || threads < 0 || queue_depth < 1) {
    return Usage(argv[0]);
  }
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "socket path too long\n");
    return 2;
  }

  // The daemon always records its own metrics — the "metrics" op is the
  // service's dashboard.
  MetricsRegistry::Default().set_enabled(true);

  // The query log must outlive the service: in-flight jobs write their
  // completion lines from pool threads during service teardown.
  QueryLog query_log;
  if (!query_log_path.empty()) {
    const Status opened = query_log.OpenFile(query_log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "fpmd: --query-log: %s\n",
                   opened.message().c_str());
      return 1;
    }
    query_log.set_slow_threshold_ms(slow_query_ms);
  }

  ServerState state;
  MiningService::Options options;
  options.num_threads = static_cast<uint32_t>(threads);
  options.dataset_budget_bytes =
      static_cast<size_t>(data_budget_mb) * 1024 * 1024;
  options.cache_budget_bytes =
      static_cast<size_t>(cache_budget_mb) * 1024 * 1024;
  options.max_queue_depth = static_cast<size_t>(queue_depth);
  options.max_estimated_itemsets = max_itemsets;
  if (query_log.enabled()) options.query_log = &query_log;
  state.service = std::make_unique<MiningService>(options);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  state.listen_fd = listen_fd;
  ::unlink(socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("bind");
    return 1;
  }
  if (::listen(listen_fd, 16) != 0) {
    std::perror("listen");
    return 1;
  }
  std::fprintf(stderr, "fpmd: listening on %s\n", socket_path.c_str());

  std::vector<std::thread> connections;
  while (!state.shutdown.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener shut down
    if (once) {
      ServeConnection(&state, fd);
      break;
    }
    connections.emplace_back(ServeConnection, &state, fd);
  }
  for (std::thread& t : connections) t.join();
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  std::fprintf(stderr, "fpmd: exiting\n");
  return 0;
}
