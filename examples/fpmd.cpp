// fpmd — the mining query daemon: a MiningService behind a Unix-domain
// stream socket speaking newline-delimited JSON (fpm/service/protocol.h).
//
//   ./fpmd --socket=/tmp/fpmd.sock [options]
//     --threads=N            pool workers (default: all hardware threads)
//     --data-budget-mb=N     dataset registry LRU budget (default 1024)
//     --cache-budget-mb=N    result cache LRU budget (default 256)
//     --queue-depth=N        backpressure bound (default 64)
//     --max-itemsets=N       admission bound (default 0: off)
//     --query-log=FILE       append one JSON line per query (see
//                            fpm/obs/query_log.h for the schema)
//     --slow-query-ms=N      also mirror queries slower than N ms to
//                            stderr (requires --query-log)
//     --once                 exit after the first connection closes
//                            (smoke tests)
//
// Cluster mode (DESIGN.md §19) — all three flags together:
//     --cluster=H1:P1,H2:P2,...  the full static peer list (identical
//                            on every node; it builds the hash ring)
//     --self=H:P             this node's entry in that list; also the
//                            TCP listen address (served alongside the
//                            Unix socket)
//     --replicas=N           replica owners per dataset (default 2)
//     --ping-interval-s=X    peer health ping period (default 2)
//     --peer-deadline-s=X    forwarded-query deadline (default 30)
//     --probe-deadline-s=X   cache_probe deadline (default 1)
//
// One thread per connection; requests on a connection are answered in
// order. A client that disconnects mid-query cancels its in-flight job:
// the connection thread polls the socket while waiting and calls
// MineJob::Cancel() when the peer goes away, so an abandoned expensive
// query stops burning pool workers within one kernel frame.
//
// Talk to it with examples/fpm_client.cpp, or by hand:
//   printf '{"op":"ping"}\n' | nc -U /tmp/fpmd.sock

#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fpm/cluster/coordinator.h"
#include "fpm/cluster/endpoint.h"
#include "fpm/cluster/shard_exec.h"
#include "fpm/core/mine.h"
#include "fpm/obs/metrics.h"
#include "fpm/obs/prometheus.h"
#include "fpm/obs/query_log.h"
#include "fpm/service/protocol.h"
#include "fpm/service/result_cache.h"
#include "fpm/service/service.h"

namespace {

using namespace fpm;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--threads=N] [--data-budget-mb=N] "
               "[--cache-budget-mb=N] [--queue-depth=N] [--max-itemsets=N] "
               "[--query-log=FILE] [--slow-query-ms=N] [--once] "
               "[--cluster=H:P,... --self=H:P [--replicas=N] "
               "[--ping-interval-s=X] [--peer-deadline-s=X] "
               "[--probe-deadline-s=X]]\n",
               argv0);
  return 2;
}

bool SendLine(int fd, std::string line) {
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// True when the peer has closed: a zero-byte read on a nonblocking
/// peek. Pending request bytes (pipelined queries) read as n > 0 and
/// keep the connection alive.
bool PeerClosed(int fd) {
  char byte;
  const ssize_t n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  return n == 0;
}

std::string MetricsJson() {
  std::ostringstream out;
  MetricsRegistry::Default().Snapshot().WriteJson(out);
  return out.str();
}

std::string MetricsText() {
  std::ostringstream out;
  WritePrometheusText(MetricsRegistry::Default().Snapshot(), out);
  return out.str();
}

/// Runs one mine/query request, cancelling the job if the client
/// disconnects while it is queued or mining. `version` selects the
/// response encoding (1 = the frozen v1 "mine" shape, 2 = "query").
std::string HandleMine(MiningService& service, const MineRequest& request,
                       int fd, int version) {
  Result<std::shared_ptr<MineJob>> submitted = service.Submit(request);
  if (!submitted.ok()) return EncodeError(submitted.status());
  const std::shared_ptr<MineJob>& job = submitted.value();
  while (!job->WaitFor(std::chrono::milliseconds(50))) {
    if (PeerClosed(fd)) {
      job->Cancel();
      job->Wait();
      break;
    }
  }
  Result<MineResponse> response = job->Take();
  if (!response.ok()) return EncodeError(response.status());
  return version == 1 ? EncodeMineResponse(response.value())
                      : EncodeQueryResponse(response.value());
}

/// Runs a dataset op (open/append/expire/window/dataset_info) against
/// the service's registry. These are fast registry mutations, not
/// scheduler jobs — they run inline on the connection thread.
std::string HandleDatasetOp(MiningService& service,
                            const ServiceRequest& request) {
  DatasetRegistry& registry = service.registry();
  const DatasetOpRequest& op = request.dataset_op;
  switch (request.op) {
    case ServiceRequest::Op::kOpen: {
      Result<DatasetHandle> handle = registry.Open(op.path);
      if (!handle.ok()) return EncodeError(handle.status());
      return EncodeHandleResponse(handle.value());
    }
    case ServiceRequest::Op::kAppend: {
      Result<DatasetHandle> handle =
          registry.Append(op.id, op.transactions, op.timestamps);
      if (!handle.ok()) return EncodeError(handle.status());
      return EncodeHandleResponse(handle.value());
    }
    case ServiceRequest::Op::kExpire: {
      Result<DatasetHandle> handle = registry.Expire(op.id, op.count);
      if (!handle.ok()) return EncodeError(handle.status());
      return EncodeHandleResponse(handle.value());
    }
    case ServiceRequest::Op::kWindow: {
      Result<DatasetHandle> handle = registry.SetWindow(op.id, op.window);
      if (!handle.ok()) return EncodeError(handle.status());
      return EncodeHandleResponse(handle.value());
    }
    case ServiceRequest::Op::kDatasetInfo: {
      Result<DatasetInfo> info = registry.Info(op.id);
      if (!info.ok()) return EncodeError(info.status());
      return EncodeDatasetInfoResponse(info.value());
    }
    default:
      return EncodeError(Status::Internal("not a dataset op"));
  }
}

/// Runs a batch: every decodable entry becomes its own scheduler job,
/// and each response line streams back as soon as its job completes —
/// a slow query never blocks the others (no head-of-line blocking).
/// Lines carry "id" = the entry's index; malformed or rejected entries
/// get an immediate error line for their id only. Returns false when
/// the peer went away (connection is done).
bool HandleBatch(MiningService& service,
                 const std::vector<ServiceRequest::BatchEntry>& batch,
                 int fd) {
  struct Pending {
    uint64_t id;
    std::shared_ptr<MineJob> job;
  };
  std::vector<Pending> pending;
  const auto cancel_all = [&pending] {
    for (Pending& p : pending) p.job->Cancel();
    for (Pending& p : pending) p.job->Wait();
  };
  for (uint64_t i = 0; i < batch.size(); ++i) {
    const ServiceRequest::BatchEntry& entry = batch[i];
    if (!entry.status.ok()) {
      if (!SendLine(fd, EncodeErrorWithId(i, entry.status))) {
        cancel_all();
        return false;
      }
      continue;
    }
    Result<std::shared_ptr<MineJob>> submitted =
        service.Submit(entry.request);
    if (!submitted.ok()) {
      if (!SendLine(fd, EncodeErrorWithId(i, submitted.status()))) {
        cancel_all();
        return false;
      }
      continue;
    }
    pending.push_back(Pending{i, submitted.value()});
  }
  while (!pending.empty()) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->job->WaitFor(std::chrono::milliseconds(5))) {
        Result<MineResponse> response = it->job->Take();
        std::string line =
            response.ok()
                ? EncodeQueryResponseWithId(it->id, response.value())
                : EncodeErrorWithId(it->id, response.status());
        if (!SendLine(fd, std::move(line))) {
          it = pending.erase(it);
          cancel_all();
          return false;
        }
        it = pending.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    if (!progressed && PeerClosed(fd)) {
      cancel_all();
      return false;
    }
  }
  return true;
}

struct ServerState {
  std::unique_ptr<MiningService> service;
  std::unique_ptr<Coordinator> coordinator;  ///< null when not clustered
  std::atomic<bool> shutdown{false};
  int listen_fd = -1;      ///< Unix socket listener
  int tcp_listen_fd = -1;  ///< cluster TCP listener (-1 when not clustered)
};

/// Answers a peer's cache_probe: one ResultCache lookup keyed by the
/// probe's content digest — the full dominance/cross-task derivation
/// matrix a local query would walk, but no dataset load and no
/// scheduler job. query_id stays 0: probes are not scheduled queries.
std::string HandleCacheProbe(ServerState* state,
                             const ServiceRequest& request) {
  const MineRequest& mine = request.mine;
  const ResultCacheKey key = ResultCacheKey::ForQuery(
      request.cluster.digest, mine.algorithm,
      EffectivePatterns(mine.algorithm, mine.patterns).bits(), mine.query);
  ResultCacheLookup lookup = state->service->cache().Lookup(key);
  if (state->coordinator) {
    state->coordinator->NoteProbeServed(lookup.result != nullptr);
  }
  if (!lookup.result) {
    return EncodeCacheProbeResponse(false, MineResponse{});
  }
  MineResponse response;
  response.task = mine.query.task;
  response.num_frequent = lookup.result->num_results;
  if (!mine.count_only) {
    response.itemsets = lookup.result->itemsets;
    response.rules = lookup.result->rules;
  }
  response.cache = lookup.exact ? CacheOutcome::kExact
                   : lookup.dominated ? CacheOutcome::kDominated
                                      : CacheOutcome::kCrossTask;
  response.dataset_digest = request.cluster.digest;
  response.trace_id = mine.trace_id;
  return EncodeCacheProbeResponse(true, response);
}

/// Runs a peer's shard_query. Mode "execute" is a whole-query forward:
/// it becomes a normal scheduler job at boosted priority (the
/// coordinator on the other side already paid a hop and a wait). Modes
/// "mine"/"count" are the SON phases over one partition — registry
/// lookup plus the pure shard_exec functions, inline on the connection
/// thread like dataset ops.
std::string HandleShardQuery(ServerState* state,
                             const ServiceRequest& request, int fd) {
  const ClusterOpRequest& cluster = request.cluster;
  if (cluster.shard_mode == ClusterOpRequest::ShardMode::kExecute) {
    MineRequest boosted = request.mine;
    boosted.priority += state->coordinator
                            ? state->coordinator->options().shard_priority_boost
                            : 10;
    boosted.op = "shard_query";
    return HandleMine(*state->service, boosted, fd, 2);
  }

  DatasetRegistry& registry = state->service->registry();
  Result<DatasetHandle> handle =
      request.mine.dataset_id.empty()
          ? registry.Open(request.mine.dataset_path)
          : registry.Resolve(request.mine.dataset_id,
                             request.mine.dataset_version);
  if (!handle.ok()) return EncodeError(handle.status());
  const Database& db = *handle.value().database;
  const ShardSlice slice{cluster.partition_index, cluster.partition_count};

  if (cluster.shard_mode == ClusterOpRequest::ShardMode::kMine) {
    Result<std::vector<CollectingSink::Entry>> local = MineShardPartition(
        db, slice, request.mine.query.min_support, request.mine.algorithm,
        request.mine.patterns);
    if (!local.ok()) return EncodeError(local.status());
    return EncodeShardMineResponse(local.value());
  }
  Result<std::vector<Support>> counts =
      CountShardPartition(db, slice, cluster.candidates);
  if (!counts.ok()) return EncodeError(counts.status());
  return EncodeShardCountResponse(counts.value());
}

/// Answers cluster_info: the coordinator's view (peers, health, RTTs,
/// shard counts, counters), plus the placement of a named dataset when
/// the request carries one. A non-clustered daemon reports
/// {"enabled":false} so tooling can always ask.
std::string HandleClusterInfo(ServerState* state,
                              const ServiceRequest& request) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  if (!state->coordinator) {
    JsonValue cluster = JsonValue::Object();
    cluster.Set("enabled", JsonValue::Bool(false));
    doc.Set("cluster", std::move(cluster));
    return doc.Dump();
  }
  std::string digest;
  if (!request.cluster.path.empty()) {
    Result<std::string> resolved =
        state->coordinator->DigestForPath(request.cluster.path);
    if (!resolved.ok()) return EncodeError(resolved.status());
    digest = resolved.value();
  }
  doc.Set("cluster",
          state->coordinator->InfoJson(
              state->service->Stats().registry.datasets, digest));
  return doc.Dump();
}

/// Cluster-aware execution of a v2 "query": path-addressed queries are
/// placed on the ring; if another node owns the dataset the coordinator
/// probes/forwards (or scatters), and this node mines only as the
/// last-resort fallback when every owner is down. Handle-addressed
/// queries ("id") are node-local names and never route. The response's
/// query_id/trace_id are this node's — the client talked to us.
std::string HandleQuery(ServerState* state, const MineRequest& request,
                        int fd) {
  MiningService& service = *state->service;
  Coordinator* coordinator = state->coordinator.get();
  if (coordinator == nullptr || request.dataset_path.empty()) {
    return HandleMine(service, request, fd, 2);
  }
  Result<std::string> digest =
      coordinator->DigestForPath(request.dataset_path);
  if (!digest.ok()) {
    // Unreadable here may be readable nowhere; let the local submit
    // path produce the canonical error.
    return HandleMine(service, request, fd, 2);
  }
  if (!request.scatter && coordinator->SelfOwns(digest.value())) {
    return HandleMine(service, request, fd, 2);
  }

  const uint64_t query_id = service.AllocateQueryId();
  MineRequest sub = request;
  sub.query_id = 0;  // the executing peer assigns its own
  if (sub.trace_id.empty()) {
    // Synthesize a trace id so the hop is correlatable across both
    // nodes' query logs; only client-sent trace ids are echoed back.
    sub.trace_id = "qid-" + std::to_string(query_id) + "@" +
                   coordinator->options().self;
  }
  const auto abort = [fd] { return PeerClosed(fd); };
  Result<MineResponse> result =
      request.scatter
          ? coordinator->ExecuteScatter(sub, digest.value(), abort)
          : coordinator->ExecuteRemote(sub, digest.value(), abort);
  if (result.ok()) {
    MineResponse response = std::move(result.value());
    response.query_id = query_id;
    response.trace_id = request.trace_id;
    return EncodeQueryResponse(response);
  }
  const StatusCode code = result.status().code();
  if (code == StatusCode::kUnavailable ||
      code == StatusCode::kDeadlineExceeded ||
      code == StatusCode::kFailedPrecondition) {
    // Every owner down (or scatter inapplicable): availability degrades
    // to single-node behavior, never to an error a single-node daemon
    // would not give.
    if (code != StatusCode::kFailedPrecondition) {
      coordinator->NoteLocalFallback();
    }
    MineRequest local = request;
    local.query_id = query_id;
    return HandleMine(service, local, fd, 2);
  }
  return EncodeError(result.status());
}

void ServeConnection(ServerState* state, int fd) {
  std::string buffer;
  char chunk[4096];
  while (!state->shutdown.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;

      Result<ServiceRequest> request = DecodeRequest(line);
      std::string reply;
      bool shutdown_after = false;
      if (!request.ok()) {
        reply = EncodeError(request.status());
      } else {
        switch (request.value().op) {
          case ServiceRequest::Op::kPing:
            reply = EncodeOk();
            break;
          case ServiceRequest::Op::kMetrics:
            reply = MetricsJson();
            break;
          case ServiceRequest::Op::kMetricsText:
            reply = EncodeMetricsTextResponse(MetricsText());
            break;
          case ServiceRequest::Op::kStats:
            if (state->coordinator) {
              const ServiceStats stats = state->service->Stats();
              const JsonValue cluster =
                  state->coordinator->InfoJson(stats.registry.datasets, "");
              reply = EncodeStatsResponse(stats, &cluster);
            } else {
              reply = EncodeStatsResponse(state->service->Stats());
            }
            break;
          case ServiceRequest::Op::kShutdown:
            reply = EncodeOk();
            shutdown_after = true;
            break;
          case ServiceRequest::Op::kMine:
            // v1 compat runs locally always — its byte-frozen response
            // has no cluster fields.
            reply = HandleMine(*state->service, request.value().mine, fd,
                               request.value().version);
            break;
          case ServiceRequest::Op::kQuery:
            reply = HandleQuery(state, request.value().mine, fd);
            break;
          case ServiceRequest::Op::kClusterInfo:
            reply = HandleClusterInfo(state, request.value());
            break;
          case ServiceRequest::Op::kCacheProbe:
            reply = HandleCacheProbe(state, request.value());
            break;
          case ServiceRequest::Op::kShardQuery:
            reply = HandleShardQuery(state, request.value(), fd);
            break;
          case ServiceRequest::Op::kOpen:
          case ServiceRequest::Op::kAppend:
          case ServiceRequest::Op::kExpire:
          case ServiceRequest::Op::kWindow:
          case ServiceRequest::Op::kDatasetInfo:
            reply = HandleDatasetOp(*state->service, request.value());
            break;
          case ServiceRequest::Op::kBatch:
            // Batch replies stream from inside the handler, one tagged
            // line per query in completion order.
            if (!HandleBatch(*state->service, request.value().batch, fd)) {
              ::close(fd);
              return;
            }
            continue;
        }
      }
      if (!SendLine(fd, std::move(reply))) {
        ::close(fd);
        return;
      }
      if (shutdown_after) {
        state->shutdown.store(true, std::memory_order_relaxed);
        // Unblock the accept loop so the process can exit.
        ::shutdown(state->listen_fd, SHUT_RDWR);
        if (state->tcp_listen_fd >= 0) {
          ::shutdown(state->tcp_listen_fd, SHUT_RDWR);
        }
        ::close(fd);
        return;
      }
    }
  }
  ::close(fd);
}

/// Binds + listens a TCP socket on the cluster self endpoint. -1 on
/// failure (errors go to stderr).
int ListenTcp(const Endpoint& self) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(self.host.c_str(),
                               std::to_string(self.port).c_str(), &hints,
                               &results);
  if (rc != 0) {
    std::fprintf(stderr, "fpmd: --self resolve %s: %s\n",
                 self.ToString().c_str(), ::gai_strerror(rc));
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    std::fprintf(stderr, "fpmd: cannot listen on %s: %s\n",
                 self.ToString().c_str(), std::strerror(errno));
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  long threads = 0;
  long data_budget_mb = 1024;
  long cache_budget_mb = 256;
  long queue_depth = 64;
  double max_itemsets = 0.0;
  std::string query_log_path;
  double slow_query_ms = 0.0;
  bool once = false;
  std::string cluster_list;
  std::string self_endpoint;
  long replicas = 2;
  double ping_interval_s = 2.0;
  double peer_deadline_s = 30.0;
  double probe_deadline_s = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atol(arg.c_str() + 10);
    } else if (arg.rfind("--data-budget-mb=", 0) == 0) {
      data_budget_mb = std::atol(arg.c_str() + 17);
    } else if (arg.rfind("--cache-budget-mb=", 0) == 0) {
      cache_budget_mb = std::atol(arg.c_str() + 18);
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      queue_depth = std::atol(arg.c_str() + 14);
    } else if (arg.rfind("--max-itemsets=", 0) == 0) {
      max_itemsets = std::atof(arg.c_str() + 15);
    } else if (arg.rfind("--query-log=", 0) == 0) {
      query_log_path = arg.substr(12);
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      slow_query_ms = std::atof(arg.c_str() + 16);
    } else if (arg == "--once") {
      once = true;
    } else if (arg.rfind("--cluster=", 0) == 0) {
      cluster_list = arg.substr(10);
    } else if (arg.rfind("--self=", 0) == 0) {
      self_endpoint = arg.substr(7);
    } else if (arg.rfind("--replicas=", 0) == 0) {
      replicas = std::atol(arg.c_str() + 11);
    } else if (arg.rfind("--ping-interval-s=", 0) == 0) {
      ping_interval_s = std::atof(arg.c_str() + 18);
    } else if (arg.rfind("--peer-deadline-s=", 0) == 0) {
      peer_deadline_s = std::atof(arg.c_str() + 18);
    } else if (arg.rfind("--probe-deadline-s=", 0) == 0) {
      probe_deadline_s = std::atof(arg.c_str() + 19);
    } else {
      return Usage(argv[0]);
    }
  }
  if (socket_path.empty() || threads < 0 || queue_depth < 1) {
    return Usage(argv[0]);
  }
  ClusterOptions cluster_options;
  bool clustered = false;
  if (!cluster_list.empty() || !self_endpoint.empty()) {
    if (cluster_list.empty() || self_endpoint.empty() || replicas < 1) {
      std::fprintf(stderr,
                   "fpmd: cluster mode needs --cluster, --self and "
                   "--replicas >= 1\n");
      return 2;
    }
    Result<std::vector<Endpoint>> peers = ParseEndpointList(cluster_list);
    if (!peers.ok()) {
      std::fprintf(stderr, "fpmd: --cluster: %s\n",
                   peers.status().message().c_str());
      return 2;
    }
    Result<Endpoint> self = ParseEndpoint(self_endpoint);
    if (!self.ok() || self.value().is_unix()) {
      std::fprintf(stderr, "fpmd: --self must be HOST:PORT\n");
      return 2;
    }
    bool self_listed = false;
    for (const Endpoint& peer : peers.value()) {
      cluster_options.peers.push_back(peer.ToString());
      self_listed |= peer == self.value();
    }
    if (!self_listed) {
      std::fprintf(stderr, "fpmd: --self %s is not in the --cluster list\n",
                   self.value().ToString().c_str());
      return 2;
    }
    cluster_options.self = self.value().ToString();
    cluster_options.replicas = static_cast<uint32_t>(replicas);
    cluster_options.ping_interval_seconds = ping_interval_s;
    cluster_options.peer_deadline_seconds = peer_deadline_s;
    cluster_options.probe_deadline_seconds = probe_deadline_s;
    clustered = true;
  }
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "socket path too long\n");
    return 2;
  }

  // The daemon always records its own metrics — the "metrics" op is the
  // service's dashboard.
  MetricsRegistry::Default().set_enabled(true);

  // The query log must outlive the service: in-flight jobs write their
  // completion lines from pool threads during service teardown.
  QueryLog query_log;
  if (!query_log_path.empty()) {
    const Status opened = query_log.OpenFile(query_log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "fpmd: --query-log: %s\n",
                   opened.message().c_str());
      return 1;
    }
    query_log.set_slow_threshold_ms(slow_query_ms);
  }

  ServerState state;
  MiningService::Options options;
  options.num_threads = static_cast<uint32_t>(threads);
  options.dataset_budget_bytes =
      static_cast<size_t>(data_budget_mb) * 1024 * 1024;
  options.cache_budget_bytes =
      static_cast<size_t>(cache_budget_mb) * 1024 * 1024;
  options.max_queue_depth = static_cast<size_t>(queue_depth);
  options.max_estimated_itemsets = max_itemsets;
  if (query_log.enabled()) options.query_log = &query_log;
  state.service = std::make_unique<MiningService>(options);

  if (clustered) {
    state.coordinator = std::make_unique<Coordinator>(cluster_options);
    Result<Endpoint> self = ParseEndpoint(cluster_options.self);
    state.tcp_listen_fd = ListenTcp(self.value());
    if (state.tcp_listen_fd < 0) return 1;
    state.coordinator->Start();
    std::fprintf(stderr, "fpmd: cluster node %s (%zu peers, %u replicas)\n",
                 cluster_options.self.c_str(), cluster_options.peers.size(),
                 cluster_options.replicas);
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  state.listen_fd = listen_fd;
  ::unlink(socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("bind");
    return 1;
  }
  if (::listen(listen_fd, 16) != 0) {
    std::perror("listen");
    return 1;
  }
  std::fprintf(stderr, "fpmd: listening on %s\n", socket_path.c_str());

  // Accept loop over both listeners (the TCP one exists only in cluster
  // mode). Each connection gets its own thread, so a node can serve a
  // peer's sub-query while one of its own connections waits on that
  // peer — no distributed lock-step.
  std::vector<std::thread> connections;
  bool served_once = false;
  while (!state.shutdown.load(std::memory_order_relaxed) && !served_once) {
    pollfd fds[2];
    fds[0] = pollfd{listen_fd, POLLIN, 0};
    nfds_t nfds = 1;
    if (state.tcp_listen_fd >= 0) {
      fds[1] = pollfd{state.tcp_listen_fd, POLLIN, 0};
      nfds = 2;
    }
    const int ready = ::poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if (fds[i].revents == 0) continue;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) {
        served_once = true;  // listener shut down; leave both loops
        break;
      }
      if (once) {
        ServeConnection(&state, fd);
        served_once = true;
        break;
      }
      connections.emplace_back(ServeConnection, &state, fd);
    }
  }
  for (std::thread& t : connections) t.join();
  ::close(listen_fd);
  if (state.tcp_listen_fd >= 0) ::close(state.tcp_listen_fd);
  ::unlink(socket_path.c_str());
  std::fprintf(stderr, "fpmd: exiting\n");
  return 0;
}
