// The ALSO pattern catalogue as a tool: prints the registry (Table 2),
// the per-kernel applicability matrix (Table 4), and then runs the
// pattern advisor (§6) over inputs with very different characteristics
// to show how the recommended tuning changes with the data.
//
//   ./pattern_tuning

#include <cstdio>

#include "fpm/core/pattern_advisor.h"
#include "fpm/dataset/quest_gen.h"
#include "fpm/dataset/standin_gen.h"
#include "fpm/dataset/stats.h"
#include "fpm/layout/lexicographic.h"
#include "fpm/perf/report.h"

int main() {
  using namespace fpm;

  // ---- Table 2: the pattern catalogue. -------------------------------
  {
    ReportTable table({"Id", "Pattern", "Category", "Spatial", "Temporal",
                       "Latency", "Compute"});
    for (const PatternInfo& info : AllPatterns()) {
      auto mark = [](bool b) { return b ? std::string("x") : std::string(); };
      table.AddRow({info.id, info.name, info.category,
                    mark(info.spatial_locality), mark(info.temporal_locality),
                    mark(info.memory_latency), mark(info.computation)});
    }
    std::printf("== ALSO patterns (Table 2) ==\n%s\n",
                table.ToString().c_str());
  }

  // ---- Table 4: applicability per kernel. -----------------------------
  {
    ReportTable table({"Pattern", "LCM", "Eclat", "FP-Growth"});
    for (const PatternInfo& info : AllPatterns()) {
      auto mark = [&](Algorithm a) {
        return PatternSet::ApplicableTo(a).Contains(info.pattern)
                   ? std::string("x")
                   : std::string();
      };
      table.AddRow({info.name, mark(Algorithm::kLcm),
                    mark(Algorithm::kEclat), mark(Algorithm::kFpGrowth)});
    }
    std::printf("== Applied patterns per kernel (Table 4) ==\n%s\n",
                table.ToString().c_str());
  }

  // ---- The advisor on three very different inputs. --------------------
  struct Scenario {
    const char* name;
    Database db;
  };
  QuestParams dense = QuestParams::FromName("T40I8D5K").value();
  dense.num_items = 500;
  ApLikeParams sparse;
  sparse.num_transactions = 20000;
  sparse.vocabulary = 30000;
  sparse.avg_length = 6;
  QuestParams clustered_params = QuestParams::FromName("T12I4D5K").value();
  clustered_params.num_items = 300;
  Database clustered =
      LexicographicOrder(GenerateQuest(clustered_params).value()).database;

  const Scenario scenarios[] = {
      {"dense, random order (DS1-like)", GenerateQuest(dense).value()},
      {"very sparse, short (DS4-like)", GenerateApLike(sparse).value()},
      {"already clustered (pre-sorted input)", std::move(clustered)},
  };

  for (const Scenario& scenario : scenarios) {
    const DatabaseStats stats = ComputeStats(scenario.db);
    std::printf("== Advisor: %s ==\n", scenario.name);
    std::printf(
        "   avg len %.1f, density %.5f, consecutive Jaccard %.4f\n",
        stats.avg_transaction_len, stats.density,
        stats.consecutive_jaccard);
    for (Algorithm algo :
         {Algorithm::kLcm, Algorithm::kEclat, Algorithm::kFpGrowth}) {
      const PatternAdvice advice = AdvisePatterns(algo, stats);
      std::printf("   %-9s -> %s\n", AlgorithmName(algo),
                  advice.patterns.ToString().c_str());
    }
    // Full rationale for one algorithm, to show the why.
    const PatternAdvice advice = AdvisePatterns(Algorithm::kLcm, stats);
    for (const auto& reason : advice.rationale) {
      std::printf("     - %s\n", reason.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
