// FIMI → packed database converter. Produces the mmap-ready binary
// format (see src/fpm/dataset/packed.h): the CSR arrays of the parsed
// database, lex-ordered per the paper's P1 layout, plus materialized
// frequencies and a content digest of the *source FIMI bytes* in the
// header. Because the digest matches what the daemon computes when it
// parses the FIMI file directly, query results are cached under one key
// regardless of which representation was opened.
//
//   ./fpm_pack <input.dat> <output.fpk>
//
// The converter verifies its own output by re-opening the packed file
// and comparing transaction/item counts before reporting success.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "fpm/common/timer.h"
#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/packed.h"

namespace {

using namespace fpm;

Result<std::string> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  return std::move(buffer).str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <input.dat> <output.fpk>\n", argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const std::string output = argv[2];

  WallTimer timer;
  auto bytes = ReadAllBytes(input);
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s\n", bytes.status().ToString().c_str());
    return 1;
  }
  // The digest of the raw FIMI bytes, not of the packed image: this is
  // the storage-agnostic cache key the service uses.
  const std::string digest = ContentDigest(bytes.value());
  auto db = ParseFimi(bytes.value());
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  if (const Status written = WritePacked(db.value(), output, digest);
      !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }

  // Paranoia pays off in a converter: re-open the file we just wrote.
  std::string mapped_digest;
  auto mapped = OpenMapped(output, &mapped_digest);
  if (!mapped.ok()) {
    std::fprintf(stderr, "verification failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  if (mapped->num_transactions() != db->num_transactions() ||
      mapped->num_items() != db->num_items() ||
      mapped->total_weight() != db->total_weight() ||
      mapped_digest != digest) {
    std::fprintf(stderr,
                 "verification failed: re-opened %s does not match the "
                 "parsed input\n",
                 output.c_str());
    return 1;
  }

  std::printf("packed %s -> %s in %.3fs\n", input.c_str(), output.c_str(),
              timer.ElapsedSeconds());
  std::printf(
      "  %zu transactions, %zu items, %zu fimi bytes -> %zu mapped bytes "
      "(digest %s)\n",
      mapped->num_transactions(), mapped->num_items(), bytes->size(),
      mapped->mapped_bytes(), digest.c_str());
  return 0;
}
