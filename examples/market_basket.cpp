// Market-basket analysis — the application that motivated frequent
// pattern mining (§1). Generates a retail-like transaction stream with
// the IBM Quest model, asks the pattern advisor how to tune the miner
// for this input, mines frequent itemsets, and derives association
// rules (support / confidence / lift) from them.
//
//   ./market_basket [min_support] [min_confidence]

#include <cstdio>
#include <cstdlib>

#include "fpm/algo/rules.h"
#include "fpm/common/timer.h"
#include "fpm/core/mine.h"
#include "fpm/core/pattern_advisor.h"
#include "fpm/dataset/quest_gen.h"
#include "fpm/dataset/stats.h"

using namespace fpm;

int main(int argc, char** argv) {
  const Support min_support =
      argc > 1 ? static_cast<Support>(std::atoi(argv[1])) : 150;
  const double min_confidence = argc > 2 ? std::atof(argv[2]) : 0.6;

  // A "grocery store" with 2000 products and 50K baskets built from
  // ~400 co-purchase patterns.
  QuestParams params;
  params.num_transactions = 50000;
  params.avg_transaction_len = 12;
  params.avg_pattern_len = 4;
  params.num_items = 2000;
  params.num_patterns = 400;
  params.seed = 7;
  auto dbr = GenerateQuest(params);
  if (!dbr.ok()) {
    std::fprintf(stderr, "%s\n", dbr.status().ToString().c_str());
    return 1;
  }
  const Database& db = dbr.value();
  const DatabaseStats stats = ComputeStats(db);
  std::printf("== Basket stream ==\n%s\n", stats.ToString().c_str());

  // Let the advisor pick the pattern set for this input (§6 future work).
  const PatternAdvice advice = AdvisePatterns(Algorithm::kLcm, stats);
  std::printf("== Pattern advisor (algorithm: lcm) ==\n");
  for (const auto& reason : advice.rationale) {
    std::printf("  %s\n", reason.c_str());
  }
  std::printf("  => enabling %s\n\n", advice.patterns.ToString().c_str());

  MineOptions options;
  options.algorithm = Algorithm::kLcm;
  options.min_support = min_support;
  options.patterns = advice.patterns;
  CollectingSink sink;
  WallTimer timer;
  const Result<MineStats> mine_stats = Mine(db, options, &sink);
  if (!mine_stats.ok()) {
    std::fprintf(stderr, "%s\n", mine_stats.status().ToString().c_str());
    return 1;
  }
  std::printf("== Mining ==\n");
  std::printf("  %llu frequent itemsets at support %u in %.3fs\n",
              static_cast<unsigned long long>(mine_stats->num_frequent),
              min_support, timer.ElapsedSeconds());

  sink.Canonicalize();
  RuleOptions rule_options;
  rule_options.min_confidence = min_confidence;
  auto rules = GenerateRules(sink.results(), db.total_weight(),
                             rule_options);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Top association rules (min confidence %.2f) ==\n",
              min_confidence);
  const size_t show = rules->size() < 15 ? rules->size() : 15;
  auto render = [](const Itemset& set) {
    std::string out;
    for (size_t j = 0; j < set.size(); ++j) {
      if (j > 0) out += ",";
      out += "P" + std::to_string(set[j]);
    }
    return out;
  };
  for (size_t i = 0; i < show; ++i) {
    const AssociationRule& r = (*rules)[i];
    std::printf("  {%s} => {%s}   supp %.4f  conf %.2f  lift %.1f\n",
                render(r.antecedent).c_str(), render(r.consequent).c_str(),
                r.support, r.confidence, r.lift);
  }
  std::printf("\n%zu rules total. Done.\n", rules->size());
  return 0;
}
