// Quickstart: the paper's running example end to end.
//
// Builds the five-transaction database of Table 1, shows pattern P1's
// lexicographic reordering, walks the itemset lattice of Figure 1 by
// mining with every algorithm, and checks they all agree.
//
//   ./quickstart

#include <cstdio>
#include <map>
#include <string>

#include "fpm/core/mine.h"
#include "fpm/dataset/fimi_io.h"
#include "fpm/layout/lexicographic.h"

namespace {

using namespace fpm;

// Table 1 uses items a..f; keep that naming for the printout.
char ItemName(Item i) { return static_cast<char>('a' + i); }

std::string SetToString(const Itemset& set) {
  std::string out = "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out += ",";
    out += ItemName(set[i]);
  }
  out += "}";
  return out;
}

}  // namespace

int main() {
  // The database of Table 1: {a,c,f} {b,c,f} {a,c,f} {d,e} {a,b,c,d,e,f}.
  constexpr Item a = 0, b = 1, c = 2, d = 3, e = 4, f = 5;
  DatabaseBuilder builder;
  builder.AddTransaction({a, c, f});
  builder.AddTransaction({b, c, f});
  builder.AddTransaction({a, c, f});
  builder.AddTransaction({d, e});
  builder.AddTransaction({a, b, c, d, e, f});
  Database db = builder.Build();

  std::printf("== Input database (Table 1, left) ==\n");
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    std::printf("  t%u: ", t);
    for (Item i : db.transaction(t)) std::printf("%c ", ItemName(i));
    std::printf("\n");
  }

  // Pattern P1: lexicographic ordering over the frequency-ranked
  // alphabet (Table 1, right: alphabet c,f,a,b,d,e).
  LexicographicResult lex = LexicographicOrder(db);
  std::printf("\n== After P1 lexicographic ordering (Table 1, right) ==\n");
  std::printf("  alphabet (decreasing frequency): ");
  for (Item r = 0; r < lex.item_order.size(); ++r) {
    std::printf("%c ", ItemName(lex.item_order.ItemAt(r)));
  }
  std::printf("\n");
  for (Tid t = 0; t < lex.database.num_transactions(); ++t) {
    std::printf("  t%u: ", t);
    for (Item r : lex.database.transaction(t)) {
      std::printf("%c ", ItemName(lex.item_order.ItemAt(r)));
    }
    std::printf("\n");
  }

  // Mine the frequent-itemset lattice (Figure 1's traversal space) at
  // support 2 with every algorithm; they must agree exactly.
  std::printf("\n== Frequent itemsets at support 2 (Figure 1 lattice) ==\n");
  std::map<Itemset, Support> reference;
  for (Algorithm algo : {Algorithm::kLcm, Algorithm::kEclat,
                         Algorithm::kFpGrowth, Algorithm::kApriori}) {
    MineOptions options;
    options.algorithm = algo;
    options.min_support = 2;
    options.patterns = PatternSet::ApplicableTo(algo);
    CollectingSink sink;
    const Status status = Mine(db, options, &sink).status();
    if (!status.ok()) {
      std::fprintf(stderr, "mining failed: %s\n", status.ToString().c_str());
      return 1;
    }
    sink.Canonicalize();
    if (reference.empty()) {
      for (const auto& [set, support] : sink.results()) {
        reference[set] = support;
      }
      for (const auto& [set, support] : sink.results()) {
        std::printf("  %-14s support %u\n", SetToString(set).c_str(),
                    support);
      }
    }
    // Cross-check against the first algorithm's output.
    bool same = sink.results().size() == reference.size();
    for (const auto& [set, support] : sink.results()) {
      auto it = reference.find(set);
      same = same && it != reference.end() && it->second == support;
    }
    std::printf("  [%s with patterns %s: %zu itemsets, %s]\n",
                AlgorithmName(algo), options.patterns.ToString().c_str(),
                sink.size(), same ? "matches" : "MISMATCH");
    if (!same) return 1;
  }
  std::printf("\nAll algorithms agree. Done.\n");
  return 0;
}
