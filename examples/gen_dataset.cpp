// Synthetic dataset generator CLI — reproduces the role of the IBM
// Quest generator in the paper's evaluation pipeline and adds the
// real-data stand-ins, writing FIMI-format files mine_cli can consume.
//
//   ./gen_dataset quest T60I10D300K out.dat [--items=N] [--seed=S]
//   ./gen_dataset webdocs out.dat [--docs=N] [--vocab=N] [--seed=S]
//   ./gen_dataset ap out.dat [--docs=N] [--vocab=N] [--seed=S]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fpm/common/timer.h"
#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/quest_gen.h"
#include "fpm/dataset/standin_gen.h"
#include "fpm/dataset/stats.h"

namespace {

using namespace fpm;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s quest <T..I..D..> <out.dat> [--items=N] [--patterns=N] "
      "[--seed=S]\n"
      "  %s webdocs <out.dat> [--docs=N] [--vocab=N] [--avglen=L] "
      "[--seed=S]\n"
      "  %s ap <out.dat> [--docs=N] [--vocab=N] [--avglen=L] [--seed=S]\n",
      argv0, argv0, argv0);
  return 2;
}

// Returns the numeric value of --key=value if `arg` matches, else -1.
long MatchOption(const std::string& arg, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  if (arg.rfind(prefix, 0) != 0) return -1;
  return std::atol(arg.c_str() + prefix.size());
}

int WriteAndReport(const Result<Database>& dbr, const std::string& path) {
  if (!dbr.ok()) {
    std::fprintf(stderr, "%s\n", dbr.status().ToString().c_str());
    return 1;
  }
  WallTimer timer;
  const Status status = WriteFimiFile(dbr.value(), path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s in %.3fs\n", path.c_str(), timer.ElapsedSeconds());
  std::printf("%s", ComputeStats(dbr.value()).ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string mode = argv[1];

  if (mode == "quest") {
    if (argc < 4) return Usage(argv[0]);
    auto params = QuestParams::FromName(argv[2]);
    if (!params.ok()) {
      std::fprintf(stderr, "%s\n", params.status().ToString().c_str());
      return 2;
    }
    const std::string out = argv[3];
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      long v;
      if ((v = MatchOption(arg, "items")) >= 0) {
        params->num_items = static_cast<uint32_t>(v);
      } else if ((v = MatchOption(arg, "patterns")) >= 0) {
        params->num_patterns = static_cast<uint32_t>(v);
      } else if ((v = MatchOption(arg, "seed")) >= 0) {
        params->seed = static_cast<uint64_t>(v);
      } else {
        return Usage(argv[0]);
      }
    }
    std::printf("generating %s (items=%u, patterns=%u, seed=%llu)\n",
                params->Name().c_str(), params->num_items,
                params->num_patterns,
                static_cast<unsigned long long>(params->seed));
    return WriteAndReport(GenerateQuest(params.value()), out);
  }

  if (mode == "webdocs" || mode == "ap") {
    const std::string out = argv[2];
    long docs = -1, vocab = -1, avglen = -1, seed = -1;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      long v;
      if ((v = MatchOption(arg, "docs")) >= 0) {
        docs = v;
      } else if ((v = MatchOption(arg, "vocab")) >= 0) {
        vocab = v;
      } else if ((v = MatchOption(arg, "avglen")) >= 0) {
        avglen = v;
      } else if ((v = MatchOption(arg, "seed")) >= 0) {
        seed = v;
      } else {
        return Usage(argv[0]);
      }
    }
    if (mode == "webdocs") {
      WebDocsLikeParams p;
      if (docs >= 0) p.num_transactions = static_cast<uint32_t>(docs);
      if (vocab >= 0) p.vocabulary = static_cast<uint32_t>(vocab);
      if (avglen >= 0) p.avg_length = static_cast<double>(avglen);
      if (seed >= 0) p.seed = static_cast<uint64_t>(seed);
      if (p.topic_vocabulary > p.vocabulary) {
        p.topic_vocabulary = p.vocabulary;
      }
      return WriteAndReport(GenerateWebDocsLike(p), out);
    }
    ApLikeParams p;
    if (docs >= 0) p.num_transactions = static_cast<uint32_t>(docs);
    if (vocab >= 0) p.vocabulary = static_cast<uint32_t>(vocab);
    if (avglen >= 0) p.avg_length = static_cast<double>(avglen);
    if (seed >= 0) p.seed = static_cast<uint64_t>(seed);
    return WriteAndReport(GenerateApLike(p), out);
  }
  return Usage(argv[0]);
}
