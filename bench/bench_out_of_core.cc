// Out-of-core storage: what the mmap-backed packed format buys at load
// time and what it costs (if anything) at mine time, against the same
// data parsed onto the heap. DS1 is written to disk twice — once as
// FIMI text, once through the fpm_pack converter path — and each
// representation is mined cold (fresh open per repeat, load timed) and
// warm (database held open, mine-only).
//
// Every row carries schema-v2 "storage" (memory|packed) and "stage"
// (cold|warm) plus load_ms/mine_ms/total_ms so validate_bench_json.py
// can vet the shape. The bench exits nonzero if the mapped and heap
// runs ever disagree on the mined itemsets — byte-identical output
// across storage backends is the format's correctness contract.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/algo/itemset_sink.h"
#include "fpm/core/mine.h"
#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/packed.h"

namespace {

using Clock = std::chrono::steady_clock;

double ToMs(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_out_of_core",
                     "mmap-backed packed storage vs heap parse");

  bench::BenchReport report("out_of_core",
                            "cold mmap-stream vs heap-parse mining");

  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  const bench::BenchDataset ds = bench::MakeDs1(scale);

  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string fimi_path = dir + "/bench_out_of_core.dat";
  const std::string packed_path = dir + "/bench_out_of_core.fpk";
  FPM_CHECK_OK(WriteFimiFile(ds.db, fimi_path));
  FPM_CHECK_OK(WritePacked(ds.db, packed_path));
  const uint64_t fimi_bytes = std::filesystem::file_size(fimi_path);
  const uint64_t packed_bytes = std::filesystem::file_size(packed_path);

  MineOptions options;
  options.algorithm = Algorithm::kLcm;
  options.min_support = ds.min_support;
  options.patterns = PatternSet::All();

  struct Backend {
    const char* storage;  // row tag: matches Database::storage_kind()
    const std::string& path;
    uint64_t file_bytes;
  };
  const Backend backends[] = {
      {"memory", fimi_path, fimi_bytes},
      {"packed", packed_path, packed_bytes},
  };

  // The identity contract: both backends' first cold run collects its
  // full emission stream; they must match entry for entry.
  std::vector<std::vector<CollectingSink::Entry>> collected(2);

  std::printf("%-8s %-6s  %10s %10s %10s  %s\n", "storage", "stage",
              "load ms", "mine ms", "total ms", "itemsets");

  for (size_t b = 0; b < 2; ++b) {
    const Backend& backend = backends[b];
    const bool packed = b == 1;

    // Cold: a fresh open every repeat. The file is in the page cache
    // after the first touch either way — what the cold stage isolates
    // is parse-and-copy (heap) vs map-and-validate (packed).
    double load_ms = 0.0, mine_ms = 0.0;
    uint64_t itemsets = 0;
    size_t resident = 0, mapped = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      const auto t0 = Clock::now();
      auto db = packed ? OpenMapped(backend.path)
                       : ReadFimiFile(backend.path);
      const double load = ToMs(Clock::now() - t0);
      FPM_CHECK_OK(db.status());

      CollectingSink sink;
      const auto t1 = Clock::now();
      FPM_CHECK_OK(Mine(db.value(), options, &sink).status());
      const double mine = ToMs(Clock::now() - t1);

      if (rep == 0) {
        collected[b] = sink.results();
        itemsets = sink.results().size();
        resident = db->resident_bytes();
        mapped = db->mapped_bytes();
      }
      if (rep == 0 || load < load_ms) load_ms = load;
      if (rep == 0 || mine < mine_ms) mine_ms = mine;
    }
    std::printf("%-8s %-6s  %10.3f %10.3f %10.3f  %llu\n", backend.storage,
                "cold", load_ms, mine_ms, load_ms + mine_ms,
                static_cast<unsigned long long>(itemsets));
    report.AddRow()
        .Str("dataset", ds.name)
        .Str("storage", backend.storage)
        .Str("stage", "cold")
        .Num("load_ms", load_ms)
        .Num("mine_ms", mine_ms)
        .Num("total_ms", load_ms + mine_ms)
        .Int("itemsets", itemsets)
        .Int("file_bytes", backend.file_bytes)
        .Int("resident_bytes", resident)
        .Int("mapped_bytes", mapped);

    // Warm: the database stays open; only the mine is timed. Heap and
    // mapped backends should converge here — the kernels see the same
    // CSR spans either way.
    auto db = packed ? OpenMapped(backend.path) : ReadFimiFile(backend.path);
    FPM_CHECK_OK(db.status());
    double warm_ms = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      CountingSink sink;
      const auto t0 = Clock::now();
      FPM_CHECK_OK(Mine(db.value(), options, &sink).status());
      const double mine = ToMs(Clock::now() - t0);
      if (rep == 0 || mine < warm_ms) warm_ms = mine;
    }
    std::printf("%-8s %-6s  %10s %10.3f %10.3f  %llu\n", backend.storage,
                "warm", "-", warm_ms, warm_ms,
                static_cast<unsigned long long>(itemsets));
    report.AddRow()
        .Str("dataset", ds.name)
        .Str("storage", backend.storage)
        .Str("stage", "warm")
        .Num("load_ms", 0.0)
        .Num("mine_ms", warm_ms)
        .Num("total_ms", warm_ms)
        .Int("itemsets", itemsets)
        .Int("file_bytes", backend.file_bytes)
        .Int("resident_bytes", db->resident_bytes())
        .Int("mapped_bytes", db->mapped_bytes());
  }

  report.Write();

  if (collected[0] != collected[1]) {
    std::fprintf(stderr,
                 "FAIL: mapped mining output diverged from the heap run "
                 "(%zu vs %zu itemsets)\n",
                 collected[1].size(), collected[0].size());
    return 1;
  }
  std::printf(
      "\nout-of-core contract holds: packed/mmap mining output is "
      "byte-identical to the heap parse (%zu itemsets; packed file is "
      "%.2fx the FIMI size)\n",
      collected[0].size(),
      static_cast<double>(packed_bytes) / static_cast<double>(fimi_bytes));
  return 0;
}
