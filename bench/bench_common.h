// Shared infrastructure for the figure/table reproduction benches:
// scaled construction of the paper's four datasets (Table 6) and the
// platform banner every bench prints (our stand-in for Table 5).
//
// Scaling: FPM_BENCH_SCALE (default 0.1) multiplies transaction counts
// and support thresholds together, preserving the relative support the
// paper evaluates at; vocabulary sizes of the real-data stand-ins scale
// alongside so density is preserved. Scale 1.0 reproduces the paper's
// full dataset sizes.

#ifndef FPM_BENCH_BENCH_COMMON_H_
#define FPM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "fpm/common/logging.h"
#include "fpm/dataset/database.h"
#include "fpm/dataset/quest_gen.h"
#include "fpm/dataset/standin_gen.h"
#include "fpm/perf/harness.h"
#include "fpm/perf/platform_info.h"

namespace fpm::bench {

/// One evaluation dataset with its support threshold (Table 6 row).
struct BenchDataset {
  std::string name;        ///< "DS1".."DS4"
  std::string description; ///< "T60I10D300K" / "WebDocs-like" / ...
  Database db;
  Support min_support;
};

inline uint32_t Scaled(double base, double scale, uint32_t floor_value) {
  const double v = base * scale;
  return v < floor_value ? floor_value : static_cast<uint32_t>(v);
}

/// DS1 = T60I10D300K, support 3000 (both scaled).
inline BenchDataset MakeDs1(double scale) {
  QuestParams p;
  FPM_CHECK_OK(QuestParams::FromName("T60I10D300K").status());
  p = QuestParams::FromName("T60I10D300K").value();
  p.num_transactions = Scaled(p.num_transactions, scale, 1000);
  p.seed = 20070801;
  auto db = GenerateQuest(p);
  FPM_CHECK_OK(db.status());
  return {"DS1", p.Name(), std::move(db).value(), Scaled(3000, scale, 2)};
}

/// DS2 = T70I10D300K, support 3000 (both scaled).
inline BenchDataset MakeDs2(double scale) {
  QuestParams p = QuestParams::FromName("T70I10D300K").value();
  p.num_transactions = Scaled(p.num_transactions, scale, 1000);
  p.seed = 20070802;
  auto db = GenerateQuest(p);
  FPM_CHECK_OK(db.status());
  return {"DS2", p.Name(), std::move(db).value(), Scaled(3000, scale, 2)};
}

/// DS3 = WebDocs stand-in, 500K transactions, support 50000 (scaled).
inline BenchDataset MakeDs3(double scale) {
  WebDocsLikeParams p;
  p.num_transactions = Scaled(500000, scale, 1000);
  p.vocabulary = Scaled(40000, scale, 2000);
  p.topic_vocabulary = 600;
  if (p.topic_vocabulary > p.vocabulary) p.topic_vocabulary = p.vocabulary;
  auto db = GenerateWebDocsLike(p);
  FPM_CHECK_OK(db.status());
  return {"DS3", "WebDocs-like", std::move(db).value(),
          Scaled(50000, scale, 2)};
}

/// DS4 = AP stand-in, 1.8M transactions, support 2000 (scaled).
inline BenchDataset MakeDs4(double scale) {
  ApLikeParams p;
  p.num_transactions = Scaled(1800000, scale, 1000);
  p.vocabulary = Scaled(120000, scale, 5000);
  auto db = GenerateApLike(p);
  FPM_CHECK_OK(db.status());
  return {"DS4", "AP-like", std::move(db).value(), Scaled(2000, scale, 2)};
}

/// All four, in paper order.
inline std::vector<BenchDataset> MakeAllDatasets(double scale) {
  std::vector<BenchDataset> out;
  out.push_back(MakeDs1(scale));
  out.push_back(MakeDs2(scale));
  out.push_back(MakeDs3(scale));
  out.push_back(MakeDs4(scale));
  return out;
}

/// Prints the bench banner: what is being reproduced and on what
/// platform (Table 5 stand-in).
inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Scale: %.3g (FPM_BENCH_SCALE), repeats: %d "
              "(FPM_BENCH_REPEATS)\n",
              BenchScale(), BenchRepeats());
  std::printf("----------------------------------------------------------\n");
  std::printf("%s", PlatformInfo::Detect().ToString().c_str());
  std::printf("==========================================================\n\n");
}

}  // namespace fpm::bench

#endif  // FPM_BENCH_BENCH_COMMON_H_
