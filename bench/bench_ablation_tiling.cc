// Ablation — tile size (P6.1, §4.1): "We choose the tile size to fit in
// the L1 cache." Sweeps the LCM tile size through the hierarchy (below
// L1, at L1, at L2, beyond) and reports both end-to-end mining time and
// simulated column-walk misses at each size.

#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/perf/report.h"
#include "fpm/simcache/db_trace.h"

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_ablation_tiling",
                     "ablation of §4.1 P6.1: tile size vs cache level");
  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  bench::BenchDataset ds1 = bench::MakeDs1(scale);
  bench::BenchReport report("ablation_tiling",
                            "ablation of §4.1 P6.1: tile size vs cache level");
  bench::ScopedPerfSampler perf_sampler;

  // End-to-end mining with swept tile sizes (entries of 4 bytes each).
  ReportTable table({"tile entries", "tile bytes", "mine time", "speedup",
                     "sim L2 miss (M1)", "note"});
  LcmMiner baseline;  // untiled
  const Measurement base =
      MeasureMiner(baseline, ds1.db, ds1.min_support, repeats);

  MemorySystem m1(MemorySystemConfig::PentiumD());
  const auto untiled_sim = TraceColumnWalk(ds1.db, &m1);

  table.AddRow({"untiled", "-", FormatSeconds(base.seconds), "1.00x",
                FormatCount(untiled_sim.l2.misses), ""});
  report.AddRow()
      .Str("dataset", ds1.name)
      .Str("variant", "untiled")
      .Num("speedup", 1.0)
      .Int("sim_l2_misses", untiled_sim.l2.misses)
      .Measurement(base);
  for (uint32_t entries : {512u, 2048u, 4096u, 65536u, 1u << 20}) {
    LcmOptions o;
    o.tiling = true;
    o.tile_entries = entries;
    LcmMiner miner(o);
    const Measurement m = MeasureMiner(miner, ds1.db, ds1.min_support,
                                       repeats);
    const auto rows = ComputeSpeedups(base, {m});
    const auto sim = TraceTiledColumnWalk(ds1.db, entries, &m1);
    std::string note;
    const uint32_t bytes = entries * 4;
    if (bytes == 16 * 1024) note = "<- fits M1 L1 (16KB)";
    if (bytes == 1024 * 1024 * 4) note = "<- exceeds M1 L2";
    table.AddRow({FormatCount(entries), FormatCount(bytes),
                  FormatSeconds(m.seconds), FormatSpeedup(rows[0].speedup),
                  FormatCount(sim.l2.misses), note});
    report.AddRow()
        .Str("dataset", ds1.name)
        .Str("variant", "tiled")
        .Int("tile_entries", entries)
        .Int("tile_bytes", bytes)
        .Num("speedup", rows[0].speedup)
        .Int("sim_l2_misses", sim.l2.misses)
        .Measurement(m);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Claim under test (§4.1): L1-sized tiles minimize misses; very\n"
      "small tiles add loop overhead, very large ones stop fitting and\n"
      "lose the reuse. Wall-clock effects depend on the host cache (a\n"
      "large L3 absorbs most of the simulated misses).\n");
  report.Write();
  return 0;
}
