// Reproduces Figure 8(c,d): Eclat speedups from Lex (P1, which enables
// 0-escaping) and SIMDization (P8), their combination, and the best
// subset, on DS1-DS4.

#include "fig8_runner.h"

int main() {
  using namespace fpm;
  const std::vector<bench::Fig8Config> configs = {
      {"Lex", PatternSet().With(Pattern::kLexicographicOrdering)},
      {"SIMD", PatternSet().With(Pattern::kSimdization)},
  };
  return bench::RunFig8(Algorithm::kEclat, configs,
                        "bench_fig8_eclat",
                        "Figure 8(c,d) - speedup of Eclat on DS1-DS4");
}
