#include "fig8_runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/core/mine.h"
#include "fpm/perf/report.h"

namespace fpm::bench {
namespace {

// FPM_BENCH_DATASETS limits the sweep, e.g. "DS1" or "DS1,DS4" — handy
// for spot-checking one dataset at FPM_BENCH_SCALE=1.0.
bool DatasetSelected(const std::string& name) {
  const char* env = std::getenv("FPM_BENCH_DATASETS");
  if (env == nullptr || *env == '\0') return true;
  return std::strstr(env, name.c_str()) != nullptr;
}

}  // namespace

int RunFig8(Algorithm algorithm, const std::vector<Fig8Config>& configs,
            const char* title, const char* paper_ref) {
  PrintHeader(title, paper_ref);
  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  // Report name: binary title minus the "bench_" prefix.
  std::string report_name = title;
  if (report_name.rfind("bench_", 0) == 0) report_name.erase(0, 6);
  BenchReport report(report_name, paper_ref);
  ScopedPerfSampler perf_sampler;

  ReportTable table({"Dataset", "Config", "Patterns", "Time", "Speedup",
                     "#frequent"});
  for (auto& ds : MakeAllDatasets(scale)) {
    if (!DatasetSelected(ds.name)) continue;
    // Baseline: the untuned kernel.
    auto baseline_miner = CreateMiner(algorithm, PatternSet::None());
    FPM_CHECK_OK(baseline_miner.status());
    const Measurement baseline =
        MeasureMiner(**baseline_miner, ds.db, ds.min_support, repeats);
    table.AddRow({ds.name, "base", "none", FormatSeconds(baseline.seconds),
                  "1.00x", FormatCount(baseline.num_frequent)});
    report.AddRow()
        .Str("dataset", ds.name)
        .Str("config", "base")
        .Num("speedup", 1.0)
        .Measurement(baseline);

    // Individual configurations, then all-applicable.
    std::vector<Fig8Config> run_list = configs;
    run_list.push_back({"all", PatternSet::ApplicableTo(algorithm)});

    double best_speedup = 1.0;
    std::string best_label = "base";
    for (const Fig8Config& config : run_list) {
      auto miner = CreateMiner(algorithm, config.patterns);
      FPM_CHECK_OK(miner.status());
      const Measurement m =
          MeasureMiner(**miner, ds.db, ds.min_support, repeats);
      const auto rows = ComputeSpeedups(baseline, {m});
      const double speedup = rows[0].speedup;
      table.AddRow({ds.name, config.label,
                    EffectivePatterns(algorithm, config.patterns).ToString(),
                    FormatSeconds(m.seconds), FormatSpeedup(speedup),
                    FormatCount(m.num_frequent)});
      report.AddRow()
          .Str("dataset", ds.name)
          .Str("config", config.label)
          .Str("patterns",
               EffectivePatterns(algorithm, config.patterns).ToString())
          .Num("speedup", speedup)
          .Measurement(m);
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_label = config.label;
      }
    }
    table.AddRow({ds.name, "best=" + best_label, "",
                  "", FormatSpeedup(best_speedup), ""});
    std::printf("%s: done (baseline %s, best %s at %s)\n", ds.name.c_str(),
                FormatSeconds(baseline.seconds).c_str(), best_label.c_str(),
                FormatSpeedup(best_speedup).c_str());
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf(
      "Shape check vs paper: `all` should be close to `best` in most rows;\n"
      "per-pattern gains are input dependent (§4.4). Absolute times are not\n"
      "comparable to the paper's 2006 hardware.\n");
  report.Write();
  return 0;
}

}  // namespace fpm::bench
