// Shared driver for the Figure 8 reproductions: measures a kernel's
// baseline and a list of pattern configurations on DS1–DS4, validates
// that every configuration produces identical output, and prints the
// per-dataset speedup table (the paper's bar clusters, as rows), with
// `all` and `best` columns.

#ifndef FPM_BENCH_FIG8_RUNNER_H_
#define FPM_BENCH_FIG8_RUNNER_H_

#include <string>
#include <vector>

#include "fpm/core/patterns.h"

namespace fpm::bench {

/// One bar of a Figure 8 cluster.
struct Fig8Config {
  std::string label;    ///< "Lex", "Reorg", "Pref", "Tile", "SIMD", ...
  PatternSet patterns;
};

/// Runs the whole figure for one kernel: every dataset x every config
/// (+ baseline + all-applicable), prints speedup tables, writes
/// BENCH_<title minus "bench_">.json, and returns 0 on success (for
/// main()). Hardware counters, when grantable, are sampled per phase
/// and land in each row's "phases" object.
int RunFig8(Algorithm algorithm, const std::vector<Fig8Config>& configs,
            const char* title, const char* paper_ref);

}  // namespace fpm::bench

#endif  // FPM_BENCH_FIG8_RUNNER_H_
