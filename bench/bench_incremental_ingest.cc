// Incremental ingestion: what delta maintenance buys over rebuilding
// the mining structures from scratch when a small fraction of the
// stream changes. Three append/expire workloads against the DS1
// dataset, for both delta-maintained structures:
//
//   append_stable    a burst of hot transactions (the top-ranked items)
//                    — ranking provably unchanged, so the FP-tree rides
//                    the per-path maintenance fast path
//   append_sampled   transactions resampled from the base distribution
//                    — rank drift may force a rebuild; the row records
//                    which path actually ran
//   expire           the oldest delta_frac of the window dropped
//
// Every row carries schema-v2 "delta_frac" (fraction of the base
// transaction count touched) and "rebuild" (whether the FP-tree fell
// back to a from-scratch rebuild) so validate_bench_json.py can vet the
// shape. The bench exits nonzero if the stable-burst append at
// delta_frac <= 0.05 fails to come in under 30% of the full rebuild
// cost — the headline claim of the incremental path.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/algo/fpgrowth/incremental_fptree.h"
#include "fpm/bitvec/incremental_vertical.h"
#include "fpm/bitvec/popcount.h"
#include "fpm/dataset/versioned.h"
#include "fpm/layout/item_order.h"

namespace {

using Clock = std::chrono::steady_clock;

double ToMs(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_incremental_ingest",
                     "delta-maintained FP-tree/bitvectors vs full rebuild");

  bench::BenchReport report("incremental_ingest",
                            "incremental ingestion vs full rebuild");

  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  const bench::BenchDataset ds = bench::MakeDs1(scale);
  const Support min_support = ds.min_support;

  // The versioned log re-normalizes transactions, so thread everything
  // through the same itemset representation the dataset layer uses.
  std::vector<Itemset> base_txns;
  base_txns.reserve(ds.db.num_transactions());
  for (Tid t = 0; t < ds.db.num_transactions(); ++t) {
    const auto span = ds.db.transaction(t);
    base_txns.emplace_back(span.begin(), span.end());
  }
  const size_t base_count = base_txns.size();

  const auto build_base = [&base_txns] {
    DatabaseBuilder b;
    for (const Itemset& t : base_txns) b.AddTransaction(t);
    return b.Build();
  };

  // Hot burst: copies of one transaction holding the top-ranked items.
  // Equal increments to an already-top prefix cannot reorder it, so
  // this isolates maintenance cost from rebuild heuristics.
  const Itemset hot_txn = [&] {
    const Database base = build_base();
    const ItemOrder order = ItemOrder::ByDecreasingFrequency(base);
    const auto& freq = base.item_frequencies();
    Itemset txn;
    for (uint32_t r = 0; r < order.size() && txn.size() < 48; ++r) {
      const Item item = order.ItemAt(r);
      if (freq[item] < min_support) break;
      txn.push_back(item);
    }
    FPM_CHECK(!txn.empty()) << "no frequent items at this scale";
    return txn;
  }();

  enum class OpKind { kAppendStable, kAppendSampled, kExpire };
  struct Workload {
    const char* name;
    OpKind kind;
    double delta_frac;
  };
  const Workload workloads[] = {
      {"append_stable", OpKind::kAppendStable, 0.01},
      {"append_stable", OpKind::kAppendStable, 0.05},
      {"append_sampled", OpKind::kAppendSampled, 0.01},
      {"append_sampled", OpKind::kAppendSampled, 0.05},
      {"expire", OpKind::kExpire, 0.05},
  };

  std::printf("%-15s %6s  %10s %12s %7s  %s\n", "op", "delta", "inc ms",
              "rebuild ms", "ratio", "path");
  bool stable_claim_holds = true;

  for (const Workload& w : workloads) {
    const size_t n =
        std::max<size_t>(1, static_cast<size_t>(w.delta_frac *
                                                static_cast<double>(
                                                    base_count)));
    std::vector<Itemset> delta_txns;
    if (w.kind == OpKind::kAppendStable) {
      delta_txns.assign(n, hot_txn);
    } else if (w.kind == OpKind::kAppendSampled) {
      // Stride-sample the base so the delta mirrors its distribution.
      const size_t stride = std::max<size_t>(1, base_count / n);
      for (size_t i = 0; i * stride < base_count && delta_txns.size() < n;
           ++i) {
        delta_txns.push_back(base_txns[i * stride]);
      }
    }

    double tree_inc_ms = 0.0, tree_rebuild_ms = 0.0;
    double vert_inc_ms = 0.0, vert_rebuild_ms = 0.0;
    double commit_ms = 0.0;
    bool rebuilt = false;
    for (int rep = 0; rep < repeats; ++rep) {
      VersionedDataset dataset(build_base(), "bench");
      IncrementalFpTree tree(*dataset.latest().database, min_support);
      IncrementalVertical vertical(*dataset.latest().database);

      const auto c0 = Clock::now();
      auto v = w.kind == OpKind::kExpire ? dataset.Expire(n)
                                         : dataset.Append(delta_txns);
      const double commit = ToMs(Clock::now() - c0);
      FPM_CHECK_OK(v.status());
      const Database& child = *v.value()->database;
      const VersionDelta& delta = *v.value()->delta;

      const auto t0 = Clock::now();
      tree.Advance(child, delta);
      const double t_inc = ToMs(Clock::now() - t0);

      const auto t1 = Clock::now();
      IncrementalFpTree fresh_tree(child, min_support);
      const double t_rebuild = ToMs(Clock::now() - t1);
      FPM_CHECK(tree.num_frequent() == fresh_tree.num_frequent())
          << "maintained tree diverged from a from-scratch build";

      const auto t2 = Clock::now();
      vertical.Advance(delta);
      const double v_inc = ToMs(Clock::now() - t2);

      const auto t3 = Clock::now();
      IncrementalVertical fresh_vertical(child);
      const double v_rebuild = ToMs(Clock::now() - t3);
      // Masked-prefix layout differs from a fresh build by design;
      // the per-item supports (column popcounts) must not.
      for (const Item item : hot_txn) {
        const Support maintained = static_cast<Support>(
            CountOnes(vertical.column_words(item),
                      vertical.words_per_column(), PopcountStrategy::kSwar));
        FPM_CHECK(maintained == child.item_frequencies()[item])
            << "maintained bitvector support diverged for item " << item;
      }

      rebuilt = tree.rebuilds() > 0;
      if (rep == 0 || t_inc < tree_inc_ms) tree_inc_ms = t_inc;
      if (rep == 0 || t_rebuild < tree_rebuild_ms) {
        tree_rebuild_ms = t_rebuild;
      }
      if (rep == 0 || v_inc < vert_inc_ms) vert_inc_ms = v_inc;
      if (rep == 0 || v_rebuild < vert_rebuild_ms) {
        vert_rebuild_ms = v_rebuild;
      }
      if (rep == 0 || commit < commit_ms) commit_ms = commit;
    }

    const double tree_ratio = tree_inc_ms / tree_rebuild_ms;
    const double vert_ratio = vert_inc_ms / vert_rebuild_ms;
    std::printf("%-15s %5.0f%%  %10.3f %12.3f %6.1f%%  fptree %s\n", w.name,
                w.delta_frac * 100.0, tree_inc_ms, tree_rebuild_ms,
                tree_ratio * 100.0, rebuilt ? "(rebuilt)" : "(maintained)");
    std::printf("%-15s %5.0f%%  %10.3f %12.3f %6.1f%%  vertical\n", w.name,
                w.delta_frac * 100.0, vert_inc_ms, vert_rebuild_ms,
                vert_ratio * 100.0);

    report.AddRow()
        .Str("mode", "fptree")
        .Str("op", w.name)
        .Num("delta_frac", w.delta_frac)
        .Int("delta_txns", n)
        .Bool("rebuild", rebuilt)
        .Num("commit_ms", commit_ms)
        .Num("incremental_ms", tree_inc_ms)
        .Num("rebuild_ms", tree_rebuild_ms)
        .Num("ratio", tree_ratio);
    report.AddRow()
        .Str("mode", "vertical")
        .Str("op", w.name)
        .Num("delta_frac", w.delta_frac)
        .Int("delta_txns", n)
        .Bool("rebuild", false)  // bitvector maintenance never rebuilds
        .Num("commit_ms", commit_ms)
        .Num("incremental_ms", vert_inc_ms)
        .Num("rebuild_ms", vert_rebuild_ms)
        .Num("ratio", vert_ratio);

    // The headline claim: a stable append of <= 5% of the stream must
    // cost under 30% of a full FP-tree rebuild.
    if (w.kind == OpKind::kAppendStable && w.delta_frac <= 0.05) {
      if (rebuilt || tree_ratio >= 0.30) stable_claim_holds = false;
    }
  }

  report.Write();
  if (!stable_claim_holds) {
    std::fprintf(stderr,
                 "FAIL: stable append exceeded 30%% of full rebuild cost\n");
    return 1;
  }
  std::printf("\nincremental ingest claim holds: stable appends <= 5%% of "
              "the stream cost < 30%% of a full rebuild\n");
  return 0;
}
