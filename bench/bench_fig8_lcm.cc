// Reproduces Figure 8(a,b): LCM speedups from Lex (P1), Reorg (P3+P4),
// Pref (P7.1), Tile (P6.1), their combination, and the best subset, on
// DS1-DS4.

#include "fig8_runner.h"

int main() {
  using namespace fpm;
  const std::vector<bench::Fig8Config> configs = {
      {"Lex", PatternSet().With(Pattern::kLexicographicOrdering)},
      {"Reorg", PatternSet()
                    .With(Pattern::kAggregation)
                    .With(Pattern::kCompaction)},
      {"Pref", PatternSet().With(Pattern::kSoftwarePrefetch)},
      {"Tile", PatternSet().With(Pattern::kTiling)},
      // Extra combinations searched for the `best` annotation (the paper
      // found e.g. prefetch+data-structure best on DS4).
      {"Reorg+Pref", PatternSet()
                         .With(Pattern::kAggregation)
                         .With(Pattern::kCompaction)
                         .With(Pattern::kSoftwarePrefetch)},
      {"Lex+Tile", PatternSet()
                       .With(Pattern::kLexicographicOrdering)
                       .With(Pattern::kTiling)},
  };
  return bench::RunFig8(Algorithm::kLcm, configs,
                        "bench_fig8_lcm",
                        "Figure 8(a,b) - speedup of LCM on DS1-DS4");
}
