#include "bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "fpm/obs/trace.h"
#include "fpm/perf/perf_counters.h"
#include "fpm/perf/perf_sampler.h"
#include "fpm/perf/platform_info.h"

namespace fpm::bench {
namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
      continue;
    }
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out->append(buf);
}

}  // namespace

void BenchRow::Key(std::string_view key) {
  if (!json_.empty()) json_.push_back(',');
  AppendJsonString(&json_, key);
  json_.push_back(':');
}

BenchRow& BenchRow::Str(std::string_view key, std::string_view value) {
  Key(key);
  AppendJsonString(&json_, value);
  return *this;
}

BenchRow& BenchRow::Num(std::string_view key, double value) {
  Key(key);
  AppendNumber(&json_, value);
  return *this;
}

BenchRow& BenchRow::Int(std::string_view key, uint64_t value) {
  Key(key);
  json_ += std::to_string(value);
  return *this;
}

BenchRow& BenchRow::Bool(std::string_view key, bool value) {
  Key(key);
  json_ += value ? "true" : "false";
  return *this;
}

BenchRow& BenchRow::Measurement(const fpm::Measurement& m) {
  Str("name", m.name);
  Num("seconds", m.seconds);
  Int("itemsets", m.num_frequent);
  Int("checksum", m.checksum);
  return Phases(m.stats);
}

BenchRow& BenchRow::Phases(const MineStats& stats) {
  const bool have_counters = stats.has_phase_counters();
  if (!have_counters && stats.total_seconds() == 0.0) return *this;
  Key("phases");
  json_.push_back('{');
  bool first_phase = true;
  for (int p = 0; p < kNumPhases; ++p) {
    const PhaseId phase = static_cast<PhaseId>(p);
    const PhaseCounterDeltas& counters = stats.phase_counters(phase);
    const double seconds = stats.phase_seconds(phase);
    if (counters.empty() && seconds == 0.0) continue;
    if (!first_phase) json_.push_back(',');
    first_phase = false;
    AppendJsonString(&json_, PhaseName(phase));
    json_ += ":{\"seconds\":";
    AppendNumber(&json_, seconds);
    if (!counters.empty()) {
      json_ += ",\"counters\":{";
      for (size_t i = 0; i < counters.size(); ++i) {
        if (i > 0) json_.push_back(',');
        AppendJsonString(&json_, counters[i].first);
        json_.push_back(':');
        json_ += std::to_string(counters[i].second);
      }
      json_.push_back('}');
      std::vector<std::pair<std::string, uint64_t>> gauges;
      AppendDerivedPerfGauges(counters, &gauges);
      if (!gauges.empty()) {
        json_ += ",\"derived\":{";
        for (size_t i = 0; i < gauges.size(); ++i) {
          if (i > 0) json_.push_back(',');
          AppendJsonString(&json_, gauges[i].first);
          json_.push_back(':');
          json_ += std::to_string(gauges[i].second);
        }
        json_.push_back('}');
      }
    }
    json_.push_back('}');
  }
  json_.push_back('}');
  return *this;
}

BenchReport::BenchReport(std::string_view name, std::string_view title)
    : name_(name), title_(title) {
  const Status status = PerfCountersStatus();
  perf_available_ = status.ok();
  if (!perf_available_) perf_reason_ = status.message();
}

BenchRow& BenchReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchReport::ToJson() const {
  const PlatformInfo host = PlatformInfo::Detect();
  std::string out = "{\"schema_version\":";
  out += std::to_string(kBenchSchemaVersion);
  out += ",\"bench\":";
  AppendJsonString(&out, name_);
  out += ",\"title\":";
  AppendJsonString(&out, title_);
  out += ",\"host\":{\"cpu_model\":";
  AppendJsonString(&out, host.cpu_model);
  out += ",\"logical_cpus\":" + std::to_string(host.logical_cpus);
  out += ",\"l1d_bytes\":" + std::to_string(host.l1d_bytes);
  out += ",\"l2_bytes\":" + std::to_string(host.l2_bytes);
  out += ",\"l3_bytes\":" + std::to_string(host.l3_bytes);
  out += "},\"perf_counters\":{\"available\":";
  out += perf_available_ ? "true" : "false";
  if (!perf_available_) {
    out += ",\"reason\":";
    AppendJsonString(&out, perf_reason_);
  }
  out += "},\"scale\":";
  AppendNumber(&out, BenchScale());
  out += ",\"repeats\":" + std::to_string(BenchRepeats());
  out += ",\"rows\":[";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('{');
    out += rows_[i].json_;
    out.push_back('}');
  }
  out += "]}\n";
  return out;
}

bool BenchReport::Write() const {
  std::string path;
  if (const char* dir = std::getenv("FPM_BENCH_JSON_DIR")) {
    path = std::string(dir);
    if (!path.empty() && path.back() != '/') path.push_back('/');
  }
  path += "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (out) out << ToJson();
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  // The host's parallelism is part of the result, not a footnote:
  // consumers comparing thread-scaling rows across runs need to see it
  // without opening the JSON (validate_bench_json.py warns when
  // threads > 1 rows were recorded on a 1-logical-CPU host).
  const int logical_cpus = PlatformInfo::Detect().logical_cpus;
  std::printf("wrote %zu row%s to %s (host: %d logical CPU%s)\n",
              rows_.size(), rows_.size() == 1 ? "" : "s", path.c_str(),
              logical_cpus, logical_cpus == 1 ? "" : "s");
  if (logical_cpus == 1) {
    std::printf(
        "NOTE: 1 logical CPU — any thread-scaling rows in this report "
        "measure overhead, not speedup\n");
  }
  return true;
}

ScopedPerfSampler::ScopedPerfSampler() {
  auto sampler = PerfSampler::Create();
  if (sampler.ok()) {
    sampler_ = std::move(sampler).value();
    Tracer::Default().set_phase_sampler(sampler_.get());
    std::printf("hardware counters: live (per-phase CPI/MPKI attached)\n\n");
  } else {
    std::printf("hardware counters: unavailable (%s)\n\n",
                std::string(sampler.status().message()).c_str());
  }
}

ScopedPerfSampler::~ScopedPerfSampler() {
  if (sampler_ != nullptr) Tracer::Default().set_phase_sampler(nullptr);
}

}  // namespace fpm::bench
