// Reproduces Table 6 — the evaluation datasets and supports — plus the
// input-characteristic statistics §4.4 ties pattern effectiveness to.
// DS1/DS2 are regenerated with our IBM Quest reimplementation; DS3/DS4
// are the documented stand-ins (DESIGN.md §5).

#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/dataset/stats.h"
#include "fpm/perf/report.h"

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_table6_datasets",
                     "Table 6 (data sets and support) + §4.4 input metrics");

  const double scale = BenchScale();
  bench::BenchReport report(
      "table6_datasets", "Table 6 (data sets and support) + §4.4 metrics");
  ReportTable table({"Dataset", "Name", "#transactions", "#items(used)",
                     "avg len", "density", "gini", "consec.jaccard",
                     "support used"});
  for (const auto& ds : bench::MakeAllDatasets(scale)) {
    const DatabaseStats s = ComputeStats(ds.db);
    report.AddRow()
        .Str("dataset", ds.name)
        .Str("description", ds.description)
        .Int("transactions", s.num_transactions)
        .Int("used_items", s.num_used_items)
        .Num("avg_transaction_len", s.avg_transaction_len)
        .Num("density", s.density)
        .Num("frequency_gini", s.frequency_gini)
        .Num("consecutive_jaccard", s.consecutive_jaccard)
        .Int("min_support", ds.min_support);
    char avg[32], den[32], gini[32], jac[32];
    std::snprintf(avg, sizeof(avg), "%.1f", s.avg_transaction_len);
    std::snprintf(den, sizeof(den), "%.5f", s.density);
    std::snprintf(gini, sizeof(gini), "%.3f", s.frequency_gini);
    std::snprintf(jac, sizeof(jac), "%.4f", s.consecutive_jaccard);
    table.AddRow({ds.name, ds.description, FormatCount(s.num_transactions),
                  FormatCount(s.num_used_items), avg, den, gini, jac,
                  FormatCount(ds.min_support)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper values (scale 1.0): DS1=T60I10D300K/3000, DS2=T70I10D300K/3000,\n"
      "DS3=WebDocs 500K/50000, DS4=AP 1.8M/2000. Transaction counts and\n"
      "supports above are both multiplied by the scale factor.\n");
  report.Write();
  return 0;
}
