// Unified machine-readable bench output.
//
// Every bench binary writes one schema-versioned BENCH_<name>.json next
// to its human-readable table, so the perf trajectory can be assembled
// from any run without scraping stdout. The schema (documented in
// EXPERIMENTS.md) is flat and self-describing:
//
//   {
//     "schema_version": 2,
//     "bench": "fig2_cpi",
//     "title": "Figure 2 - ...",
//     "host": { "cpu_model": "...", "logical_cpus": 4,
//               "l1d_bytes": 32768, "l2_bytes": ..., "l3_bytes": ... },
//     "perf_counters": { "available": false, "reason": "..." },
//     "scale": 0.05,
//     "repeats": 2,
//     "rows": [ { ...bench-specific columns... }, ... ]
//   }
//
// Rows carry whatever columns the bench reports (dataset, kernel,
// seconds, speedup, checksum, ...); Measurement() adds the standard
// timing/validation columns of a harness Measurement, and Phases() adds
// the per-phase {seconds, counters, derived CPI/MPKI} object when
// hardware counters were sampled.
//
// Output location: ./BENCH_<name>.json, or $FPM_BENCH_JSON_DIR/ when
// set. Writing is best-effort — an unwritable directory prints a
// warning and never fails the bench.

#ifndef FPM_BENCH_BENCH_REPORT_H_
#define FPM_BENCH_BENCH_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fpm/algo/miner.h"
#include "fpm/perf/harness.h"
#include "fpm/perf/perf_sampler.h"

namespace fpm::bench {

inline constexpr int kBenchSchemaVersion = 2;

/// One result row: an ordered set of key -> JSON-value pairs. Append
/// only; keys are not deduplicated.
class BenchRow {
 public:
  BenchRow& Str(std::string_view key, std::string_view value);
  BenchRow& Num(std::string_view key, double value);
  BenchRow& Int(std::string_view key, uint64_t value);
  BenchRow& Bool(std::string_view key, bool value);

  /// The standard columns of a harness measurement: name, seconds,
  /// itemsets, checksum — plus Phases(measurement.stats).
  BenchRow& Measurement(const fpm::Measurement& m);

  /// Adds "phases": {"prepare": {"seconds": ..., "counters": {...},
  /// "derived": {...}}, ...} — phases with neither time nor counters are
  /// omitted, as is the whole object when every phase is empty.
  BenchRow& Phases(const MineStats& stats);

 private:
  friend class BenchReport;
  void Key(std::string_view key);

  std::string json_;  // "k":v,"k":v — body of the row object
};

/// Collects rows and writes BENCH_<name>.json. Host info, scale,
/// repeats, and perf-counter availability are captured at construction.
class BenchReport {
 public:
  BenchReport(std::string_view name, std::string_view title);

  /// Appends and returns a row to fill in. The reference stays valid
  /// until the next AddRow() call writes to the vector (fill each row
  /// before adding the next).
  BenchRow& AddRow();

  /// The complete document.
  std::string ToJson() const;

  /// Writes ToJson() to $FPM_BENCH_JSON_DIR/BENCH_<name>.json (cwd when
  /// unset) and prints the path. Best-effort: failure warns on stderr
  /// and returns false, never aborts.
  bool Write() const;

 private:
  std::string name_;
  std::string title_;
  std::string perf_reason_;  // empty = counters available
  bool perf_available_ = false;
  std::vector<BenchRow> rows_;
};

/// Installs a PerfSampler on the default tracer for the enclosing scope,
/// so every Mine() call's phase spans latch hardware-counter deltas into
/// MineStats (and from there into the report's "phases" objects). Prints
/// one line saying whether counters are live or why not; on a refusing
/// kernel the object is inert and the bench runs unsampled.
class ScopedPerfSampler {
 public:
  ScopedPerfSampler();
  ~ScopedPerfSampler();

  ScopedPerfSampler(const ScopedPerfSampler&) = delete;
  ScopedPerfSampler& operator=(const ScopedPerfSampler&) = delete;

  bool active() const { return sampler_ != nullptr; }

 private:
  std::unique_ptr<PerfSampler> sampler_;
};

}  // namespace fpm::bench

#endif  // FPM_BENCH_BENCH_REPORT_H_
