// Observability overhead — verifies the fpm/obs/ instrumentation is
// effectively free when disabled (the default) and cheap when enabled.
//
// Two angles:
//   1. Micro: ns/op of the disabled fast paths (Counter::Add,
//      Histogram::Observe, ScopedSpan begin/end) — each must be a
//      relaxed load + branch, single-digit nanoseconds.
//   2. End-to-end: LCM on the DS1 workload (the bench_fig8_lcm subject)
//      with obs disabled vs fully enabled, plus a computed upper bound
//      on the disabled-path cost: instrumentation ops per Mine() call
//      (counted from one enabled run) x disabled ns/op, as a fraction
//      of the mine time. The acceptance bar is that bound < 1%.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/core/mine.h"
#include "fpm/obs/metrics.h"
#include "fpm/obs/query_log.h"
#include "fpm/obs/trace.h"
#include "fpm/perf/report.h"

namespace {

// Keeps the loop body from being optimized away.
inline void KeepAlive(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

double NsPerOp(uint64_t iters, double seconds) {
  return seconds * 1e9 / static_cast<double>(iters);
}

template <typename Fn>
double TimeLoop(uint64_t iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) fn();
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

}  // namespace

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_obs_overhead",
                     "cost of the fpm/obs/ instrumentation (disabled "
                     "and enabled)");

  bench::BenchReport report("obs_overhead",
                            "cost of the fpm/obs/ instrumentation");

  // ---- 1. Disabled fast paths. --------------------------------------
  MetricsRegistry registry(/*enabled=*/false);
  Counter* counter = registry.GetCounter("bench.counter");
  Histogram* hist = registry.GetHistogram("bench.hist", {1, 10, 100});
  Tracer tracer;  // starts disabled

  constexpr uint64_t kMicroIters = 1 << 26;
  const double add_s = TimeLoop(kMicroIters, [&] {
    counter->Increment();
    KeepAlive(counter);
  });
  const double observe_s = TimeLoop(kMicroIters, [&] {
    hist->Observe(42);
    KeepAlive(hist);
  });
  const double span_s = TimeLoop(kMicroIters / 4, [&] {
    ScopedSpan span(tracer, "bench");
    KeepAlive(&span);
  });
  // Disabled QueryLog::Write — the per-request hook on the service
  // path. The entry stays fully populated so the disabled branch is
  // measured against a realistic record, not an empty struct.
  QueryLog query_log;  // starts disabled
  QueryLogEntry entry;
  entry.query_id = 1;
  entry.op = "query";
  entry.task = "frequent";
  entry.dataset = "bench.dat";
  entry.min_support = 2;
  entry.mine_ms = 1.5;
  entry.cache = "miss";
  entry.status = "ok";
  const double log_s = TimeLoop(kMicroIters / 4, [&] {
    query_log.Write(entry);
    KeepAlive(&query_log);
  });
  const double add_ns = NsPerOp(kMicroIters, add_s);
  const double observe_ns = NsPerOp(kMicroIters, observe_s);
  const double span_ns = NsPerOp(kMicroIters / 4, span_s);
  const double log_ns = NsPerOp(kMicroIters / 4, log_s);
  std::printf("disabled fast paths (ns/op):\n");
  std::printf("  Counter::Add        %6.2f\n", add_ns);
  std::printf("  Histogram::Observe  %6.2f\n", observe_ns);
  std::printf("  ScopedSpan          %6.2f\n", span_ns);
  std::printf("  QueryLog::Write     %6.2f\n\n", log_ns);

  // Enabled write path, for contrast (still lock-free).
  registry.set_enabled(true);
  const double hot_add_s = TimeLoop(kMicroIters, [&] {
    counter->Increment();
    KeepAlive(counter);
  });
  std::printf("enabled Counter::Add  %6.2f ns/op\n\n",
              NsPerOp(kMicroIters, hot_add_s));

  // ---- 2. End-to-end on the bench_fig8_lcm subject. -----------------
  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  const bench::BenchDataset ds = bench::MakeDs1(scale);
  MineOptions options;
  options.algorithm = Algorithm::kLcm;
  options.min_support = ds.min_support;
  auto miner = CreateMiner(options);
  FPM_CHECK_OK(miner.status());

  MetricsRegistry::Default().set_enabled(false);
  Tracer::Default().set_enabled(false);
  const Measurement off =
      MeasureMiner(**miner, ds.db, ds.min_support, repeats);

  MetricsRegistry::Default().set_enabled(true);
  Tracer::Default().set_enabled(true);
  Tracer::Default().Clear();
  const Measurement on =
      MeasureMiner(**miner, ds.db, ds.min_support, repeats);

  // Instrumentation ops of one enabled Mine() call: recorded spans
  // (begin + end), histogram observations, and counter Add calls (from
  // the snapshot delta of the best run). Counters bumped once per call
  // with a batched Add(n) — fpm.mine.itemsets — count as one op, not n.
  uint64_t ops = 2 * (Tracer::Default().CollectSpans().size() / (repeats + 1));
  for (const CounterSample& c : on.metrics.counters) {
    ops += c.name == "fpm.mine.itemsets" ? on.metrics.counter("fpm.mine.calls")
                                         : c.value;
  }
  for (const HistogramSample& h : on.metrics.histograms) ops += h.count();
  MetricsRegistry::Default().set_enabled(false);
  Tracer::Default().set_enabled(false);
  Tracer::Default().Clear();

  const double worst_ns =
      add_ns > observe_ns ? (add_ns > span_ns ? add_ns : span_ns)
                          : (observe_ns > span_ns ? observe_ns : span_ns);
  const double bound = static_cast<double>(ops) * worst_ns * 1e-9;
  const double bound_pct = 100.0 * bound / off.seconds;
  const double delta_pct = 100.0 * (on.seconds - off.seconds) / off.seconds;

  std::printf("end-to-end, lcm on %s (%s), support %u:\n", ds.name.c_str(),
              ds.description.c_str(), ds.min_support);
  std::printf("  obs disabled  %s\n", FormatSeconds(off.seconds).c_str());
  std::printf("  obs enabled   %s  (%+.2f%%)\n",
              FormatSeconds(on.seconds).c_str(), delta_pct);
  std::printf("  instrumentation ops per Mine(): %llu\n",
              static_cast<unsigned long long>(ops));
  std::printf("  disabled-path cost bound: %.4f%% of mine time  [%s]\n",
              bound_pct, bound_pct < 1.0 ? "PASS < 1%" : "FAIL >= 1%");

  report.AddRow()
      .Str("section", "micro_disabled_ns_per_op")
      .Num("counter_add", add_ns)
      .Num("histogram_observe", observe_ns)
      .Num("scoped_span", span_ns)
      .Num("query_log_write", log_ns);
  report.AddRow()
      .Str("section", "end_to_end")
      .Str("dataset", ds.name)
      .Num("seconds_disabled", off.seconds)
      .Num("seconds_enabled", on.seconds)
      .Num("enabled_delta_pct", delta_pct)
      .Int("instrumentation_ops", ops)
      .Num("disabled_bound_pct", bound_pct)
      .Bool("pass", bound_pct < 1.0);
  report.Write();
  return bound_pct < 1.0 ? 0 : 1;
}
