// Ablation — supernode capacity (P3, §3.3): "Making each supernode the
// size of a cache line seems to be optimal." Sweeps the aggregated
// list's payload capacity through sub-line, line-sized and multi-line
// supernodes and reports traversal throughput plus simulated misses.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/common/arena.h"
#include "fpm/common/rng.h"
#include "fpm/common/timer.h"
#include "fpm/mem/aggregation.h"
#include "fpm/perf/report.h"
#include "fpm/simcache/memory_system.h"

namespace {

using namespace fpm;

volatile uint64_t g_sink;

// Traversal seconds for one capacity, best of `repeats`.
double MeasureTraversal(uint32_t capacity, size_t elements, int repeats) {
  Arena arena;
  AggregatedList<uint32_t> list(&arena, capacity);
  Rng rng(7);
  for (size_t i = 0; i < elements; ++i) {
    list.PushBack(static_cast<uint32_t>(rng.NextU64()));
  }
  double best = 1e30;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    uint64_t sum = 0;
    list.ForEach([&](uint32_t v) { sum += v; });
    g_sink = sum;
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Simulated traversal misses on M1 for one capacity. Models each
// supernode as one contiguous block: header + capacity payloads.
MemorySystemStats SimulateTraversal(uint32_t capacity, size_t elements) {
  MemorySystem mem(MemorySystemConfig::PentiumD());
  // Supernodes allocated back to back, as the arena does.
  const uint64_t header = 16;
  const uint64_t node_bytes = header + capacity * 4ull;
  const uint64_t nodes = (elements + capacity - 1) / capacity;
  // Scatter supernodes (the lists in RmDupTrans interleave allocations
  // from many buckets): node i lives at a pseudo-random block.
  Rng rng(8);
  std::vector<uint64_t> base(nodes);
  for (auto& b : base) b = rng.NextBounded(1u << 30) & ~63ull;
  for (uint64_t n = 0; n < nodes; ++n) {
    mem.Touch(base[n], node_bytes);
  }
  return mem.stats();
}

}  // namespace

int main() {
  bench::PrintHeader("bench_ablation_supernode",
                     "ablation of §3.3 P3: supernode size vs cache line");
  constexpr size_t kElements = 1 << 22;  // 16 MiB of payload
  const int repeats = BenchRepeats();
  bench::BenchReport report("ablation_supernode",
                            "ablation of §3.3 P3: supernode size");

  const uint32_t line_capacity =
      AggregatedList<uint32_t>::CacheLineCapacity();
  ReportTable table({"capacity", "supernode bytes", "traverse time",
                     "ns/elem", "sim L1 miss/elem", "note"});
  for (uint32_t capacity : {1u, 2u, 4u, 6u, line_capacity, 24u, 62u, 126u}) {
    const double seconds = MeasureTraversal(capacity, kElements, repeats);
    const auto sim = SimulateTraversal(capacity, kElements);
    char nspe[32], miss[32];
    std::snprintf(nspe, sizeof(nspe), "%.3f",
                  seconds * 1e9 / static_cast<double>(kElements));
    std::snprintf(miss, sizeof(miss), "%.4f",
                  static_cast<double>(sim.l1.misses) / kElements);
    const uint64_t bytes = 16 + capacity * 4ull;
    table.AddRow({std::to_string(capacity), std::to_string(bytes),
                  FormatSeconds(seconds), nspe, miss,
                  capacity == line_capacity ? "<- one cache line" : ""});
    report.AddRow()
        .Int("capacity", capacity)
        .Int("supernode_bytes", bytes)
        .Num("seconds", seconds)
        .Num("ns_per_element",
             seconds * 1e9 / static_cast<double>(kElements))
        .Num("sim_l1_miss_per_element",
             static_cast<double>(sim.l1.misses) / kElements)
        .Bool("cache_line_sized", capacity == line_capacity);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Claim under test (§3.3): cache-line-sized supernodes are near\n"
      "optimal — larger supernodes buy little, smaller ones chase more\n"
      "pointers per element.\n");
  report.Write();
  return 0;
}
