// Parallel scaling — first-item equivalence-class task parallelism
// (fpm/parallel/) over the sequential kernels. Mines the two Quest
// datasets (DS1, DS2) with Eclat, LCM and FP-Growth at 1/2/4/8 threads
// and reports speedup over the plain sequential kernel. Deterministic
// merging is on, so every row reproduces the sequential checksum.
//
// Speedup is bounded by the host's core count: on a single-core
// machine every thread count measures ~1.0x (plus task overhead).

#include <cstdio>

#include "bench_common.h"
#include "fpm/core/mine.h"
#include "fpm/parallel/thread_pool.h"
#include "fpm/perf/report.h"

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_parallel_scaling",
                     "task-parallel scaling of the sequential kernels");
  std::printf("hardware threads: %u\n\n", ThreadPool::HardwareThreads());

  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  std::vector<bench::BenchDataset> datasets;
  datasets.push_back(bench::MakeDs1(scale));
  datasets.push_back(bench::MakeDs2(scale));

  for (const bench::BenchDataset& ds : datasets) {
    std::printf("== %s (%s), support %u ==\n", ds.name.c_str(),
                ds.description.c_str(), ds.min_support);
    ReportTable table(
        {"kernel", "threads", "mine time", "speedup", "itemsets"});
    for (Algorithm algorithm :
         {Algorithm::kEclat, Algorithm::kLcm, Algorithm::kFpGrowth}) {
      MineOptions options;
      options.algorithm = algorithm;
      options.min_support = ds.min_support;

      // Sequential baseline: the kernel itself, no parallel driver.
      auto baseline = CreateMiner(options);
      FPM_CHECK_OK(baseline.status());
      const Measurement base =
          MeasureMiner(**baseline, ds.db, ds.min_support, repeats);
      table.AddRow({AlgorithmName(algorithm), "1 (seq)",
                    FormatSeconds(base.seconds), "1.00x",
                    FormatCount(base.num_frequent)});

      for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        options.execution.num_threads = threads;
        auto miner = CreateMiner(options);
        FPM_CHECK_OK(miner.status());
        const Measurement m =
            MeasureMiner(**miner, ds.db, ds.min_support, repeats);
        // ComputeSpeedups also cross-checks the checksum against the
        // sequential baseline — an exactness gate, not just a timer.
        const auto rows = ComputeSpeedups(base, {m});
        table.AddRow({AlgorithmName(algorithm), std::to_string(threads),
                      FormatSeconds(m.seconds),
                      FormatSpeedup(rows[0].speedup),
                      FormatCount(m.num_frequent)});
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "Reading the table: \"1 (seq)\" is the unwrapped kernel; the\n"
      "threads=1 row isolates the decomposition overhead (projection +\n"
      "per-class kernel restarts); higher rows add real concurrency.\n"
      "Expect >1.5x at 4 threads on a 4-core host for DS1/DS2-sized\n"
      "inputs; single-core hosts show ~1x across the board.\n");
  return 0;
}
