// Parallel scaling — first-item equivalence-class task parallelism
// (fpm/parallel/) over the sequential kernels. Mines the two Quest
// datasets (DS1, DS2) with Eclat, LCM and FP-Growth at 1/2/4/8 threads
// through BOTH drivers — "flat" (one task per equivalence class) and
// "nested" (fork-join: classes re-offer large subtrees to the pool) —
// and reports speedup over the plain sequential kernel. Deterministic
// merging is on, so every row reproduces the sequential checksum.
//
// Besides the table, the bench writes every row to
// BENCH_parallel_scaling.json via the shared BenchReport writer
// (directory overridable with FPM_BENCH_JSON_DIR). The metrics registry
// is enabled while measuring, so each parallel row carries the thread
// pool's submit/steal/idle-wait deltas of its best run — steals > 0 is
// the signature of real work redistribution. Nested rows additionally
// carry the fpm.task.* telemetry: subtree spawn/cutoff counts and the
// per-worker load-balance gauges (max and mean busy seconds across
// workers, and their ratio). A nested row whose imbalance is lower than
// the flat row at the same thread count is the fork-join driver earning
// its keep: skewed classes were split instead of serializing the tail.
//
// Speedup is bounded by the host's core count: on a single-core
// machine every thread count measures ~1.0x (plus task overhead).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/core/mine.h"
#include "fpm/obs/metrics.h"
#include "fpm/parallel/thread_pool.h"
#include "fpm/perf/report.h"

namespace {

// "1.73x" from the fpm.task.imbalance_milli gauge, "-" when the row
// recorded no task telemetry (flat driver or no measured work).
std::string FormatImbalance(uint64_t imbalance_milli) {
  if (imbalance_milli == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx",
                static_cast<double>(imbalance_milli) / 1000.0);
  return buf;
}

}  // namespace

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_parallel_scaling",
                     "task-parallel scaling of the sequential kernels");
  std::printf("hardware threads: %u\n\n", ThreadPool::HardwareThreads());

  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  std::vector<bench::BenchDataset> datasets;
  datasets.push_back(bench::MakeDs1(scale));
  datasets.push_back(bench::MakeDs2(scale));

  bench::BenchReport report("parallel_scaling",
                            "task-parallel scaling of the sequential kernels");
  bench::ScopedPerfSampler perf_sampler;

  // Attach pool counter deltas to every Measurement (harness.cc snapshots
  // the default registry around each repeat when it is enabled).
  MetricsRegistry::Default().set_enabled(true);

  for (const bench::BenchDataset& ds : datasets) {
    std::printf("== %s (%s), support %u ==\n", ds.name.c_str(),
                ds.description.c_str(), ds.min_support);
    ReportTable table({"kernel", "driver", "threads", "mine time", "speedup",
                       "steals", "spawns", "imbalance", "itemsets"});
    for (Algorithm algorithm :
         {Algorithm::kEclat, Algorithm::kLcm, Algorithm::kFpGrowth}) {
      MineOptions options;
      options.algorithm = algorithm;
      options.min_support = ds.min_support;

      // Sequential baseline: the kernel itself, no parallel driver.
      auto baseline = CreateMiner(options);
      FPM_CHECK_OK(baseline.status());
      const Measurement base =
          MeasureMiner(**baseline, ds.db, ds.min_support, repeats);
      table.AddRow({AlgorithmName(algorithm), "seq", "1",
                    FormatSeconds(base.seconds), "1.00x", "-", "-", "-",
                    FormatCount(base.num_frequent)});
      // threads = 0 marks the unwrapped sequential baseline.
      report.AddRow()
          .Str("dataset", ds.name)
          .Str("kernel", AlgorithmName(algorithm))
          .Str("driver", "seq")
          .Int("threads", 0)
          .Num("speedup", 1.0)
          .Measurement(base);

      for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        options.execution.num_threads = threads;
        for (const bool nested : {false, true}) {
          options.execution.nested = nested;
          const char* driver = nested ? "nested" : "flat";
          // The task gauges persist in the registry between runs; reset
          // so a flat row cannot inherit the previous nested row's
          // load-balance values through the snapshot.
          MetricsRegistry::Default().Reset();
          auto miner = CreateMiner(options);
          FPM_CHECK_OK(miner.status());
          const Measurement m =
              MeasureMiner(**miner, ds.db, ds.min_support, repeats);
          // ComputeSpeedups also cross-checks the checksum against the
          // sequential baseline — an exactness gate, not just a timer.
          const auto rows = ComputeSpeedups(base, {m});
          const uint64_t steals = m.metrics.counter("fpm.pool.steals");
          const uint64_t spawns = m.metrics.counter("fpm.task.spawns");
          const uint64_t imbalance_milli =
              m.metrics.gauge("fpm.task.imbalance_milli");
          table.AddRow({AlgorithmName(algorithm), driver,
                        std::to_string(threads), FormatSeconds(m.seconds),
                        FormatSpeedup(rows[0].speedup), FormatCount(steals),
                        nested ? FormatCount(spawns) : "-",
                        FormatImbalance(imbalance_milli),
                        FormatCount(m.num_frequent)});
          bench::BenchRow& row = report.AddRow()
              .Str("dataset", ds.name)
              .Str("kernel", AlgorithmName(algorithm))
              .Str("driver", driver)
              .Int("threads", threads)
              .Num("speedup", rows[0].speedup)
              .Int("pool_submits", m.metrics.counter("fpm.pool.submits"))
              .Int("pool_steals", steals)
              .Int("pool_idle_waits", m.metrics.counter("fpm.pool.idle_waits"));
          if (nested) {
            // Load balance of the best run: busiest and mean per-worker
            // task seconds, and their ratio (1.0 = perfectly even).
            const double busy_max =
                static_cast<double>(m.metrics.gauge("fpm.task.busy_max_micros")) /
                1e6;
            const double busy_mean =
                static_cast<double>(
                    m.metrics.gauge("fpm.task.busy_mean_micros")) /
                1e6;
            row.Int("task_spawns", spawns)
                .Int("task_cutoffs", m.metrics.counter("fpm.task.cutoffs"))
                .Num("task_busy_max_seconds", busy_max)
                .Num("task_busy_mean_seconds", busy_mean)
                .Num("task_imbalance",
                     static_cast<double>(imbalance_milli) / 1000.0);
          }
          row.Measurement(m);
        }
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "Reading the table: \"seq\" is the unwrapped kernel; the threads=1\n"
      "rows isolate the decomposition overhead (projection + per-class\n"
      "kernel restarts); higher rows add real concurrency. \"flat\" stops\n"
      "at one task per equivalence class, so one huge class serializes\n"
      "the tail; \"nested\" re-offers large subtrees to the pool, which\n"
      "shows up as spawns > 0 and a lower imbalance (max/mean per-worker\n"
      "busy time). Expect >1.5x at 4 threads on a 4-core host for\n"
      "DS1/DS2-sized inputs; single-core hosts show ~1x across the\n"
      "board.\n\n");

  report.Write();
  return 0;
}
