// Parallel scaling — first-item equivalence-class task parallelism
// (fpm/parallel/) over the sequential kernels. Mines the two Quest
// datasets (DS1, DS2) with Eclat, LCM and FP-Growth at 1/2/4/8 threads
// and reports speedup over the plain sequential kernel. Deterministic
// merging is on, so every row reproduces the sequential checksum.
//
// Besides the table, the bench writes every row to
// BENCH_parallel_scaling.json via the shared BenchReport writer
// (directory overridable with FPM_BENCH_JSON_DIR). The metrics registry
// is enabled while measuring, so each parallel row carries the thread
// pool's submit/steal/idle-wait deltas of its best run — steals > 0 is
// the signature of real work redistribution.
//
// Speedup is bounded by the host's core count: on a single-core
// machine every thread count measures ~1.0x (plus task overhead).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/core/mine.h"
#include "fpm/obs/metrics.h"
#include "fpm/parallel/thread_pool.h"
#include "fpm/perf/report.h"

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_parallel_scaling",
                     "task-parallel scaling of the sequential kernels");
  std::printf("hardware threads: %u\n\n", ThreadPool::HardwareThreads());

  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  std::vector<bench::BenchDataset> datasets;
  datasets.push_back(bench::MakeDs1(scale));
  datasets.push_back(bench::MakeDs2(scale));

  bench::BenchReport report("parallel_scaling",
                            "task-parallel scaling of the sequential kernels");
  bench::ScopedPerfSampler perf_sampler;

  // Attach pool counter deltas to every Measurement (harness.cc snapshots
  // the default registry around each repeat when it is enabled).
  MetricsRegistry::Default().set_enabled(true);

  for (const bench::BenchDataset& ds : datasets) {
    std::printf("== %s (%s), support %u ==\n", ds.name.c_str(),
                ds.description.c_str(), ds.min_support);
    ReportTable table(
        {"kernel", "threads", "mine time", "speedup", "steals", "itemsets"});
    for (Algorithm algorithm :
         {Algorithm::kEclat, Algorithm::kLcm, Algorithm::kFpGrowth}) {
      MineOptions options;
      options.algorithm = algorithm;
      options.min_support = ds.min_support;

      // Sequential baseline: the kernel itself, no parallel driver.
      auto baseline = CreateMiner(options);
      FPM_CHECK_OK(baseline.status());
      const Measurement base =
          MeasureMiner(**baseline, ds.db, ds.min_support, repeats);
      table.AddRow({AlgorithmName(algorithm), "1 (seq)",
                    FormatSeconds(base.seconds), "1.00x", "-",
                    FormatCount(base.num_frequent)});
      // threads = 0 marks the unwrapped sequential baseline.
      report.AddRow()
          .Str("dataset", ds.name)
          .Str("kernel", AlgorithmName(algorithm))
          .Int("threads", 0)
          .Num("speedup", 1.0)
          .Measurement(base);

      for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        options.execution.num_threads = threads;
        auto miner = CreateMiner(options);
        FPM_CHECK_OK(miner.status());
        const Measurement m =
            MeasureMiner(**miner, ds.db, ds.min_support, repeats);
        // ComputeSpeedups also cross-checks the checksum against the
        // sequential baseline — an exactness gate, not just a timer.
        const auto rows = ComputeSpeedups(base, {m});
        const uint64_t steals = m.metrics.counter("fpm.pool.steals");
        table.AddRow({AlgorithmName(algorithm), std::to_string(threads),
                      FormatSeconds(m.seconds),
                      FormatSpeedup(rows[0].speedup),
                      FormatCount(steals),
                      FormatCount(m.num_frequent)});
        report.AddRow()
            .Str("dataset", ds.name)
            .Str("kernel", AlgorithmName(algorithm))
            .Int("threads", threads)
            .Num("speedup", rows[0].speedup)
            .Int("pool_submits", m.metrics.counter("fpm.pool.submits"))
            .Int("pool_steals", steals)
            .Int("pool_idle_waits", m.metrics.counter("fpm.pool.idle_waits"))
            .Measurement(m);
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "Reading the table: \"1 (seq)\" is the unwrapped kernel; the\n"
      "threads=1 row isolates the decomposition overhead (projection +\n"
      "per-class kernel restarts); higher rows add real concurrency.\n"
      "Expect >1.5x at 4 threads on a 4-core host for DS1/DS2-sized\n"
      "inputs; single-core hosts show ~1x across the board.\n\n");

  report.Write();
  return 0;
}
