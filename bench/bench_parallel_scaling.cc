// Parallel scaling — first-item equivalence-class task parallelism
// (fpm/parallel/) over the sequential kernels. Mines the two Quest
// datasets (DS1, DS2) with Eclat, LCM and FP-Growth at 1/2/4/8 threads
// and reports speedup over the plain sequential kernel. Deterministic
// merging is on, so every row reproduces the sequential checksum.
//
// Besides the table, the bench writes every row to BENCH_parallel.json
// (machine-readable; override the path with FPM_BENCH_JSON). The
// metrics registry is enabled while measuring, so each parallel row
// carries the thread pool's submit/steal/idle-wait deltas of its best
// run — steals > 0 is the signature of real work redistribution.
//
// Speedup is bounded by the host's core count: on a single-core
// machine every thread count measures ~1.0x (plus task overhead).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fpm/core/mine.h"
#include "fpm/obs/metrics.h"
#include "fpm/parallel/thread_pool.h"
#include "fpm/perf/report.h"

namespace {

struct JsonRow {
  std::string dataset;
  std::string kernel;
  uint32_t threads = 0;  // 0 = unwrapped sequential baseline
  double seconds = 0.0;
  double speedup = 1.0;
  uint64_t itemsets = 0;
  uint64_t pool_submits = 0;
  uint64_t pool_steals = 0;
  uint64_t pool_idle_waits = 0;
};

void WriteJson(const std::vector<JsonRow>& rows, const std::string& path,
               double scale, int repeats) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\"bench\":\"parallel_scaling\",\"hardware_threads\":"
      << fpm::ThreadPool::HardwareThreads() << ",\"scale\":" << scale
      << ",\"repeats\":" << repeats << ",\"results\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    if (i > 0) out << ',';
    out << "{\"dataset\":\"" << r.dataset << "\",\"kernel\":\"" << r.kernel
        << "\",\"threads\":" << r.threads << ",\"seconds\":" << r.seconds
        << ",\"speedup\":" << r.speedup << ",\"itemsets\":" << r.itemsets
        << ",\"pool_submits\":" << r.pool_submits
        << ",\"pool_steals\":" << r.pool_steals
        << ",\"pool_idle_waits\":" << r.pool_idle_waits << '}';
  }
  out << "]}\n";
  std::printf("wrote %zu rows to %s\n", rows.size(), path.c_str());
}

}  // namespace

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_parallel_scaling",
                     "task-parallel scaling of the sequential kernels");
  std::printf("hardware threads: %u\n\n", ThreadPool::HardwareThreads());

  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  std::vector<bench::BenchDataset> datasets;
  datasets.push_back(bench::MakeDs1(scale));
  datasets.push_back(bench::MakeDs2(scale));

  // Attach pool counter deltas to every Measurement (harness.cc snapshots
  // the default registry around each repeat when it is enabled).
  MetricsRegistry::Default().set_enabled(true);

  std::vector<JsonRow> json_rows;
  for (const bench::BenchDataset& ds : datasets) {
    std::printf("== %s (%s), support %u ==\n", ds.name.c_str(),
                ds.description.c_str(), ds.min_support);
    ReportTable table(
        {"kernel", "threads", "mine time", "speedup", "steals", "itemsets"});
    for (Algorithm algorithm :
         {Algorithm::kEclat, Algorithm::kLcm, Algorithm::kFpGrowth}) {
      MineOptions options;
      options.algorithm = algorithm;
      options.min_support = ds.min_support;

      // Sequential baseline: the kernel itself, no parallel driver.
      auto baseline = CreateMiner(options);
      FPM_CHECK_OK(baseline.status());
      const Measurement base =
          MeasureMiner(**baseline, ds.db, ds.min_support, repeats);
      table.AddRow({AlgorithmName(algorithm), "1 (seq)",
                    FormatSeconds(base.seconds), "1.00x", "-",
                    FormatCount(base.num_frequent)});
      json_rows.push_back({ds.name, AlgorithmName(algorithm), 0, base.seconds,
                           1.0, base.num_frequent, 0, 0, 0});

      for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        options.execution.num_threads = threads;
        auto miner = CreateMiner(options);
        FPM_CHECK_OK(miner.status());
        const Measurement m =
            MeasureMiner(**miner, ds.db, ds.min_support, repeats);
        // ComputeSpeedups also cross-checks the checksum against the
        // sequential baseline — an exactness gate, not just a timer.
        const auto rows = ComputeSpeedups(base, {m});
        const uint64_t steals = m.metrics.counter("fpm.pool.steals");
        table.AddRow({AlgorithmName(algorithm), std::to_string(threads),
                      FormatSeconds(m.seconds),
                      FormatSpeedup(rows[0].speedup),
                      FormatCount(steals),
                      FormatCount(m.num_frequent)});
        json_rows.push_back({ds.name, AlgorithmName(algorithm), threads,
                             m.seconds, rows[0].speedup, m.num_frequent,
                             m.metrics.counter("fpm.pool.submits"), steals,
                             m.metrics.counter("fpm.pool.idle_waits")});
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "Reading the table: \"1 (seq)\" is the unwrapped kernel; the\n"
      "threads=1 row isolates the decomposition overhead (projection +\n"
      "per-class kernel restarts); higher rows add real concurrency.\n"
      "Expect >1.5x at 4 threads on a 4-core host for DS1/DS2-sized\n"
      "inputs; single-core hosts show ~1x across the board.\n\n");

  const char* json_path = std::getenv("FPM_BENCH_JSON");
  WriteJson(json_rows, json_path != nullptr ? json_path
                                            : "BENCH_parallel.json",
            scale, repeats);
  return 0;
}
