// Locality-mechanism reproduction on simulated hardware.
//
// The paper attributes P1/P6's wall-clock gains to reduced cache and TLB
// misses, measured with PMCs on M1 (Pentium D) and M2 (Athlon 64 X2).
// Hosts with huge last-level caches absorb these effects, so this bench
// replays the miners' access patterns on simulated M1/M2 hierarchies
// (DESIGN.md §5, substitution 3) and reports:
//
//   1. P1: per-item column-walk misses on the original vs
//      lexicographically ordered database, on both machine models —
//      also exposing the platform dependence of Figure 8(a) vs 8(b).
//   2. P6.1: untiled vs tiled column walk.
//   3. P2/P3: pointer-chasing a tree in insertion-order 40-byte nodes
//      vs DFS-relaid compact 13-byte nodes (the "Reorg" mechanism).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/common/rng.h"
#include "fpm/dataset/stats.h"
#include "fpm/layout/lexicographic.h"
#include "fpm/perf/report.h"
#include "fpm/simcache/db_trace.h"

namespace {

using namespace fpm;

std::string Pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", 100 * x);
  return buf;
}

std::string Ratio(double a, double b) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", b == 0 ? 0.0 : a / b);
  return buf;
}

// Tree-walk trace: `walks` upward walks of average `depth` nodes over a
// node pool laid out either randomly (insertion order of a shuffled
// corpus) or path-contiguously (DFS re-layout). Node size models the
// two stores: 40B pointer nodes vs 13B diff-encoded SoA rows.
MemorySystemStats TraceTreeWalk(MemorySystem* mem, uint64_t num_nodes,
                                uint32_t node_bytes, uint64_t walks,
                                uint32_t depth, bool path_contiguous) {
  mem->Reset();
  Rng rng(99);
  for (uint64_t w = 0; w < walks; ++w) {
    if (path_contiguous) {
      // Ancestors of a DFS-relaid path sit at decreasing nearby indices.
      uint64_t node = rng.NextBounded(num_nodes);
      for (uint32_t d = 0; d < depth && node > 0; ++d) {
        mem->Touch(node * node_bytes, node_bytes);
        node -= 1 + rng.NextBounded(3);  // parents a few slots back
        if (node > num_nodes) break;
      }
    } else {
      // Insertion-order layout: each parent lives anywhere in the pool.
      for (uint32_t d = 0; d < depth; ++d) {
        const uint64_t node = rng.NextBounded(num_nodes);
        mem->Touch(node * node_bytes, node_bytes);
      }
    }
  }
  return mem->stats();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "bench_simcache_locality",
      "locality mechanism of P1/P2/P3/P6 on simulated M1/M2 (Table 5)");
  const double scale = BenchScale();
  bench::BenchReport report(
      "simcache_locality",
      "locality mechanism of P1/P2/P3/P6 on simulated M1/M2");

  const std::vector<MemorySystemConfig> machines = {
      MemorySystemConfig::PentiumD(), MemorySystemConfig::Athlon64X2()};

  // One report row per (section, machine, variant) simulation result.
  const auto add_sim_row = [&report](const char* section,
                                     const std::string& machine,
                                     const std::string& dataset,
                                     const std::string& variant,
                                     const MemorySystemStats& s,
                                     double cycles_vs_base) {
    report.AddRow()
        .Str("section", section)
        .Str("machine", machine)
        .Str("dataset", dataset)
        .Str("variant", variant)
        .Num("l1_miss_rate", s.l1.miss_rate())
        .Num("l2_miss_rate", s.l2.miss_rate())
        .Num("tlb_miss_rate", s.tlb.miss_rate())
        .Num("est_cycles_vs_base", cycles_vs_base);
  };

  // ---------------- P1: lexicographic ordering. ----------------------
  {
    ReportTable table({"Machine", "Dataset", "Layout", "L1 miss", "L2 miss",
                       "TLB miss", "est. cycles vs base"});
    for (auto& ds : {bench::MakeDs1(scale), bench::MakeDs4(scale)}) {
      LexicographicResult lex = LexicographicOrder(ds.db);
      for (const auto& mc : machines) {
        MemorySystem mem(mc);
        const auto base = TraceColumnWalk(ds.db, &mem);
        const auto tuned = TraceColumnWalk(lex.database, &mem);
        table.AddRow({mc.name, ds.name, "original", Pct(base.l1.miss_rate()),
                      Pct(base.l2.miss_rate()), Pct(base.tlb.miss_rate()),
                      "1.00x"});
        table.AddRow({mc.name, ds.name, "lex (P1)",
                      Pct(tuned.l1.miss_rate()), Pct(tuned.l2.miss_rate()),
                      Pct(tuned.tlb.miss_rate()),
                      Ratio(base.EstimatedCycles(),
                            tuned.EstimatedCycles()) });
        add_sim_row("p1_lex", mc.name, ds.name, "original", base, 1.0);
        add_sim_row("p1_lex", mc.name, ds.name, "lex", tuned,
                    tuned.EstimatedCycles() == 0.0
                        ? 0.0
                        : base.EstimatedCycles() / tuned.EstimatedCycles());
      }
    }
    std::printf("P1 lexicographic ordering - column-walk misses\n%s\n",
                table.ToString().c_str());
  }

  // ---------------- P6.1: sparse tiling. ------------------------------
  {
    ReportTable table({"Machine", "Dataset", "Walk", "L1 miss", "L2 miss",
                       "est. cycles vs untiled"});
    for (auto& ds : {bench::MakeDs1(scale), bench::MakeDs4(scale)}) {
      for (const auto& mc : machines) {
        MemorySystem mem(mc);
        const auto base = TraceColumnWalk(ds.db, &mem);
        // Tile sized to the machine's L1, as §4.1 prescribes.
        const uint32_t tile_entries =
            static_cast<uint32_t>(mc.l1.size_bytes / sizeof(Item) / 2);
        const auto tiled = TraceTiledColumnWalk(ds.db, tile_entries, &mem);
        table.AddRow({mc.name, ds.name, "untiled", Pct(base.l1.miss_rate()),
                      Pct(base.l2.miss_rate()), "1.00x"});
        table.AddRow({mc.name, ds.name, "tiled (P6.1)",
                      Pct(tiled.l1.miss_rate()), Pct(tiled.l2.miss_rate()),
                      Ratio(base.EstimatedCycles(),
                            tiled.EstimatedCycles())});
        add_sim_row("p6_tiling", mc.name, ds.name, "untiled", base, 1.0);
        add_sim_row("p6_tiling", mc.name, ds.name, "tiled", tiled,
                    tiled.EstimatedCycles() == 0.0
                        ? 0.0
                        : base.EstimatedCycles() / tiled.EstimatedCycles());
      }
    }
    std::printf("P6.1 tiling - column-walk misses (tile = L1/2)\n%s\n",
                table.ToString().c_str());
    std::printf(
        "The simulator isolates the *reuse* side of tiling: misses drop\n"
        "whenever a tile is revisited by many items. The paper's §4.4\n"
        "caveat — that on the very sparse DS4 the added loop nesting can\n"
        "cancel the gain — is a compute overhead, visible in the\n"
        "wall-clock numbers of bench_fig8_lcm, not in miss counts.\n\n");
  }

  // ---------------- P2+P3: compact nodes + DFS re-layout. -------------
  {
    ReportTable table({"Machine", "Tree layout", "L1 miss", "L2 miss",
                       "est. cycles vs baseline"});
    const uint64_t nodes = static_cast<uint64_t>(2000000 * scale) + 10000;
    const uint64_t walks = nodes / 4;
    for (const auto& mc : machines) {
      MemorySystem mem(mc);
      const auto base =
          TraceTreeWalk(&mem, nodes, 40, walks, 12, /*contiguous=*/false);
      const auto compact =
          TraceTreeWalk(&mem, nodes, 13, walks, 12, /*contiguous=*/false);
      const auto relaid =
          TraceTreeWalk(&mem, nodes, 13, walks, 12, /*contiguous=*/true);
      table.AddRow({mc.name, "40B ptr nodes, insertion order",
                    Pct(base.l1.miss_rate()), Pct(base.l2.miss_rate()),
                    "1.00x"});
      table.AddRow({mc.name, "13B compact nodes (P2)",
                    Pct(compact.l1.miss_rate()), Pct(compact.l2.miss_rate()),
                    Ratio(base.EstimatedCycles(),
                          compact.EstimatedCycles())});
      table.AddRow({mc.name, "13B compact + DFS re-layout (P2+P3)",
                    Pct(relaid.l1.miss_rate()), Pct(relaid.l2.miss_rate()),
                    Ratio(base.EstimatedCycles(),
                          relaid.EstimatedCycles())});
      add_sim_row("p2_p3_tree", mc.name, "-", "40B_insertion_order", base,
                  1.0);
      add_sim_row("p2_p3_tree", mc.name, "-", "13B_compact", compact,
                  compact.EstimatedCycles() == 0.0
                      ? 0.0
                      : base.EstimatedCycles() / compact.EstimatedCycles());
      add_sim_row("p2_p3_tree", mc.name, "-", "13B_compact_dfs", relaid,
                  relaid.EstimatedCycles() == 0.0
                      ? 0.0
                      : base.EstimatedCycles() / relaid.EstimatedCycles());
    }
    std::printf("P2+P3 FP-tree node layout - upward-walk misses\n%s\n",
                table.ToString().c_str());
  }
  report.Write();
  return 0;
}
