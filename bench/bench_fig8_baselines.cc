// Reproduces the baseline-comparison aspect of Figure 8: "The baseline
// running times are listed in Figure 8... there is no single best
// algorithm. For the baselines, the Eclat algorithm performs the best
// on DS3, while for other data sets, LCM is the fastest algorithm. The
// FP-Growth also has a competitive performance."
//
// Runs every kernel (baseline and fully tuned) on every dataset and
// marks the per-dataset winner.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/core/mine.h"
#include "fpm/perf/report.h"

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_fig8_baselines",
                     "Figure 8 - baseline times / no single best algorithm");
  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  bench::BenchReport report(
      "fig8_baselines",
      "Figure 8 - baseline times / no single best algorithm");
  bench::ScopedPerfSampler perf_sampler;

  ReportTable table({"Dataset", "Winner(base)", "Winner(tuned)", "lcm",
                     "eclat", "fpgrowth", "hmine", "lcm(all)", "eclat(all)",
                     "fpgrowth(all)"});
  const Algorithm kernels[] = {Algorithm::kLcm, Algorithm::kEclat,
                               Algorithm::kFpGrowth, Algorithm::kHMine};
  for (auto& ds : bench::MakeAllDatasets(scale)) {
    std::vector<std::string> cells(10);
    cells[0] = ds.name;
    double best_base = 1e30, best_tuned = 1e30;
    for (int tuned = 0; tuned < 2; ++tuned) {
      // H-mine has no applicable patterns (Table 4); skip its tuned run.
      const int num_kernels = tuned ? 3 : 4;
      for (int k = 0; k < num_kernels; ++k) {
        auto miner = CreateMiner(
            kernels[k], tuned ? PatternSet::ApplicableTo(kernels[k])
                              : PatternSet::None());
        FPM_CHECK_OK(miner.status());
        const Measurement m =
            MeasureMiner(**miner, ds.db, ds.min_support, repeats);
        cells[3 + tuned * 4 + k] = FormatSeconds(m.seconds);
        report.AddRow()
            .Str("dataset", ds.name)
            .Str("kernel", AlgorithmName(kernels[k]))
            .Bool("tuned", tuned == 1)
            .Measurement(m);
        if (tuned == 0 && m.seconds < best_base) {
          best_base = m.seconds;
          cells[1] = AlgorithmName(kernels[k]);
        }
        if (tuned == 1 && m.seconds < best_tuned) {
          best_tuned = m.seconds;
          cells[2] = AlgorithmName(kernels[k]);
        }
      }
    }
    table.AddRow(cells);
    std::printf("%s: done (best base %s, best tuned %s)\n", ds.name.c_str(),
                cells[1].c_str(), cells[2].c_str());
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf(
      "Paper's shape: no kernel wins everywhere — Eclat takes the dense\n"
      "DS3, LCM the others, FP-Growth stays competitive.\n");
  report.Write();
  return 0;
}
