// Service-layer throughput: what the result cache buys a long-lived
// mining service. Four measurements against one in-process
// MiningService on the DS1 workload:
//
//   cold        the first query — pays the full mine
//   warm        repeated identical queries — exact cache hits
//   dominated   ascending-threshold queries — dominance-filtered hits
//   mixed       closed/maximal/top-k/rules queries derived cross-task
//               from the cached frequent run, then re-asked warm
//   concurrent  C client threads hammering the warm path — QPS and
//               tail latency under contention
//
// Each row of BENCH_service_throughput.json carries clients, qps,
// p50_ms and p99_ms (the service-row shape validate_bench_json.py
// enforces) plus a "task" tag (schema v2 mixed-task rows), and the
// cache-outcome counts that prove which path the section actually
// exercised. The bench exits nonzero if the cache failed to serve the
// warm, dominated or mixed sections — a throughput number that
// silently re-mined would be meaningless.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/dataset/fimi_io.h"
#include "fpm/service/service.h"

namespace {

using Clock = std::chrono::steady_clock;

double ToMs(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

struct LatencyStats {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Percentiles over the individual latencies, QPS over the wall time.
LatencyStats Summarize(std::vector<double> latencies_ms, double wall_s) {
  LatencyStats out;
  if (latencies_ms.empty()) return out;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const size_t n = latencies_ms.size();
  out.p50_ms = latencies_ms[n / 2];
  out.p99_ms = latencies_ms[std::min(n - 1, (n * 99) / 100)];
  out.qps = static_cast<double>(n) / wall_s;
  return out;
}

}  // namespace

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_service_throughput",
                     "mining service cold vs warm QPS and tail latency");

  bench::BenchReport report("service_throughput",
                            "mining service cold vs warm throughput");

  const double scale = BenchScale();
  const bench::BenchDataset ds = bench::MakeDs1(scale);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fpm_bench_service.dat")
          .string();
  FPM_CHECK_OK(WriteFimiFile(ds.db, path));

  MiningService service(MiningService::Options{});
  MineRequest request;
  request.dataset_path = path;
  request.algorithm = Algorithm::kLcm;
  request.patterns = PatternSet::All();
  request.query = MiningQuery::Frequent(ds.min_support);
  request.count_only = true;  // measure the service, not result copying

  // ---- cold: the one query that actually mines. ----------------------
  const auto cold_start = Clock::now();
  auto cold = service.Execute(request);
  const double cold_ms = ToMs(Clock::now() - cold_start);
  FPM_CHECK_OK(cold.status());
  std::printf("cold   1 client   %8.2f ms   (%llu itemsets, cache %s)\n",
              cold_ms, static_cast<unsigned long long>(cold->num_frequent),
              CacheOutcomeName(cold->cache));
  report.AddRow()
      .Str("mode", "cold")
      .Str("task", "frequent")
      .Int("clients", 1)
      .Int("requests", 1)
      .Num("qps", 1000.0 / cold_ms)
      .Num("p50_ms", cold_ms)
      .Num("p99_ms", cold_ms)
      .Int("num_frequent", cold->num_frequent);

  // ---- warm: identical queries served from the exact-hit path. -------
  constexpr int kWarmRequests = 400;
  {
    std::vector<double> latencies;
    latencies.reserve(kWarmRequests);
    const auto start = Clock::now();
    for (int i = 0; i < kWarmRequests; ++i) {
      const auto t0 = Clock::now();
      auto r = service.Execute(request);
      latencies.push_back(ToMs(Clock::now() - t0));
      FPM_CHECK_OK(r.status());
      FPM_CHECK(r->cache == CacheOutcome::kExact) << "warm query missed";
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    const LatencyStats s = Summarize(std::move(latencies), wall_s);
    std::printf("warm   1 client   %8.0f qps   p50 %.3f ms   p99 %.3f ms\n",
                s.qps, s.p50_ms, s.p99_ms);
    report.AddRow()
        .Str("mode", "warm")
        .Str("task", "frequent")
        .Int("clients", 1)
        .Int("requests", kWarmRequests)
        .Num("qps", s.qps)
        .Num("p50_ms", s.p50_ms)
        .Num("p99_ms", s.p99_ms)
        .Num("speedup_vs_cold", cold_ms / (s.p50_ms > 0.0 ? s.p50_ms : 1e-6));
  }

  // ---- dominated: each threshold asked once, filtered not mined. -----
  constexpr int kDominatedRequests = 24;
  {
    std::vector<double> latencies;
    const auto start = Clock::now();
    for (int i = 1; i <= kDominatedRequests; ++i) {
      MineRequest higher = request;
      higher.query.min_support = ds.min_support + static_cast<Support>(i);
      const auto t0 = Clock::now();
      auto r = service.Execute(higher);
      latencies.push_back(ToMs(Clock::now() - t0));
      FPM_CHECK_OK(r.status());
      FPM_CHECK(r->cache == CacheOutcome::kDominated)
          << "dominated query was not answered by dominance";
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    const LatencyStats s = Summarize(std::move(latencies), wall_s);
    std::printf("domin  1 client   %8.0f qps   p50 %.3f ms   p99 %.3f ms\n",
                s.qps, s.p50_ms, s.p99_ms);
    report.AddRow()
        .Str("mode", "dominated")
        .Str("task", "frequent")
        .Int("clients", 1)
        .Int("requests", kDominatedRequests)
        .Num("qps", s.qps)
        .Num("p50_ms", s.p50_ms)
        .Num("p99_ms", s.p99_ms);
  }

  // ---- mixed tasks: the task family answered from the same cache. ----
  // Each task's first ask derives cross-task from the cached frequent
  // run (closed/maximal/top-k filter it; rules ride the memoized closed
  // listing); re-asks are exact hits on the memoized derivation.
  constexpr int kMixedWarmRequests = 50;
  {
    // The task queries ask at a higher threshold than the cached
    // frequent run: dominance still applies (cached support floor is
    // lower), and the derivation filters the big listing down before
    // the closure/rule post-passes, keeping derive_ms about the filter
    // rather than about post-processing a few hundred thousand entries.
    const Support mixed_support = ds.min_support * 4;
    const MiningQuery mixed_queries[] = {
        MiningQuery::Closed(mixed_support),
        MiningQuery::Maximal(mixed_support),
        MiningQuery::TopK(/*k=*/50, /*floor=*/mixed_support),
        MiningQuery::Rules(mixed_support, /*confidence=*/0.25),
    };
    for (const MiningQuery& query : mixed_queries) {
      MineRequest mixed = request;
      mixed.query = query;
      const auto d0 = Clock::now();
      auto derived = service.Execute(mixed);
      const double derive_ms = ToMs(Clock::now() - d0);
      FPM_CHECK_OK(derived.status());
      FPM_CHECK(derived->cache == CacheOutcome::kCrossTask)
          << TaskName(query.task) << " was not derived from the cache";

      std::vector<double> latencies;
      latencies.reserve(kMixedWarmRequests);
      const auto start = Clock::now();
      for (int i = 0; i < kMixedWarmRequests; ++i) {
        const auto t0 = Clock::now();
        auto r = service.Execute(mixed);
        latencies.push_back(ToMs(Clock::now() - t0));
        FPM_CHECK_OK(r.status());
        FPM_CHECK(r->cache == CacheOutcome::kExact)
            << TaskName(query.task) << " warm re-ask missed";
      }
      const double wall_s =
          std::chrono::duration<double>(Clock::now() - start).count();
      const LatencyStats s = Summarize(std::move(latencies), wall_s);
      std::printf(
          "mixed  %-8s  %8.0f qps   p50 %.3f ms   p99 %.3f ms   "
          "(derive %.3f ms, %llu results)\n",
          TaskName(query.task), s.qps, s.p50_ms, s.p99_ms, derive_ms,
          static_cast<unsigned long long>(derived->num_frequent));
      report.AddRow()
          .Str("mode", "mixed")
          .Str("task", TaskName(query.task))
          .Int("clients", 1)
          .Int("requests", kMixedWarmRequests)
          .Num("qps", s.qps)
          .Num("p50_ms", s.p50_ms)
          .Num("p99_ms", s.p99_ms)
          .Num("derive_ms", derive_ms)
          .Int("num_results", derived->num_frequent);
    }
  }

  // ---- concurrent: C blocking clients on the warm path. --------------
  const unsigned hw = std::thread::hardware_concurrency();
  const int clients = static_cast<int>(std::min(8u, hw != 0 ? hw : 4u));
  constexpr int kPerClient = 100;
  {
    std::vector<std::vector<double>> per_client(
        static_cast<size_t>(clients));
    const auto start = Clock::now();
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          auto& latencies = per_client[static_cast<size_t>(c)];
          latencies.reserve(kPerClient);
          for (int i = 0; i < kPerClient; ++i) {
            const auto t0 = Clock::now();
            auto r = service.Execute(request);
            latencies.push_back(ToMs(Clock::now() - t0));
            FPM_CHECK_OK(r.status());
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    std::vector<double> pooled;
    for (auto& v : per_client) {
      pooled.insert(pooled.end(), v.begin(), v.end());
    }
    const LatencyStats s = Summarize(std::move(pooled), wall_s);
    std::printf("warm  %2d clients  %8.0f qps   p50 %.3f ms   p99 %.3f ms\n",
                clients, s.qps, s.p50_ms, s.p99_ms);
    report.AddRow()
        .Str("mode", "warm_concurrent")
        .Str("task", "frequent")
        .Int("clients", static_cast<uint64_t>(clients))
        .Int("requests", static_cast<uint64_t>(clients) * kPerClient)
        .Num("qps", s.qps)
        .Num("p50_ms", s.p50_ms)
        .Num("p99_ms", s.p99_ms);
  }

  const ResultCacheStats cache = service.cache().stats();
  std::printf(
      "\ncache: %llu exact hits, %llu dominated, %llu cross-task, "
      "%llu misses\n",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.dominated_hits),
      static_cast<unsigned long long>(cache.cross_task_hits),
      static_cast<unsigned long long>(cache.misses));
  report.AddRow()
      .Str("mode", "cache_totals")
      .Int("cache_hits", cache.hits)
      .Int("cache_dominated_hits", cache.dominated_hits)
      .Int("cache_cross_task_hits", cache.cross_task_hits)
      .Int("cache_misses", cache.misses);
  report.Write();
  std::filesystem::remove(path);

  // The whole point was to measure the cached paths.
  const bool served_from_cache =
      cache.hits > 0 && cache.dominated_hits > 0 &&
      cache.cross_task_hits == 4 && cache.misses == 1;
  if (!served_from_cache) {
    std::fprintf(stderr, "FAIL: cache did not serve the measured load\n");
    return 1;
  }
  return 0;
}
