// Microbenchmarks of the individual pattern building blocks
// (google-benchmark): popcount strategies (P8 and its LUT baseline),
// 0-escaped intersection (§4.2), aggregated vs pointer-chased lists
// (P3), wave-front prefetching (P7.1), jump-pointer chasing (P5), and
// AoS-vs-compacted counters (P4).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "fpm/bitvec/intersect.h"
#include "fpm/bitvec/popcount.h"
#include "fpm/bitvec/tidlist.h"
#include "fpm/common/arena.h"
#include "fpm/common/rng.h"
#include "fpm/mem/aggregation.h"
#include "fpm/mem/compaction.h"
#include "fpm/mem/prefetch_pointers.h"
#include "fpm/mem/wavefront.h"

namespace {

using namespace fpm;

// ------------------------- P8: popcount strategies -------------------

void BM_CountOnes(benchmark::State& state) {
  const auto strategy = static_cast<PopcountStrategy>(state.range(0));
  const size_t words = static_cast<size_t>(state.range(1));
  if (!PopcountStrategyAvailable(strategy)) {
    state.SkipWithError("strategy unavailable");
    return;
  }
  Rng rng(1);
  std::vector<uint64_t> data(words);
  for (auto& w : data) w = rng.NextU64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountOnes(data.data(), words, strategy));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * words *
                          8);
  state.SetLabel(PopcountStrategyName(strategy));
}
BENCHMARK(BM_CountOnes)
    ->ArgsProduct({{static_cast<int>(PopcountStrategy::kLut16),
                    static_cast<int>(PopcountStrategy::kSwar),
                    static_cast<int>(PopcountStrategy::kHardware),
                    static_cast<int>(PopcountStrategy::kAvx2)},
                   {512, 16384}});

void BM_AndCount(benchmark::State& state) {
  const auto strategy = static_cast<PopcountStrategy>(state.range(0));
  const size_t words = static_cast<size_t>(state.range(1));
  if (!PopcountStrategyAvailable(strategy)) {
    state.SkipWithError("strategy unavailable");
    return;
  }
  Rng rng(2);
  std::vector<uint64_t> a(words), b(words), out(words);
  for (auto& w : a) w = rng.NextU64();
  for (auto& w : b) w = rng.NextU64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AndCount(a.data(), b.data(), out.data(), words, strategy));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * words *
                          16);
  state.SetLabel(PopcountStrategyName(strategy));
}
BENCHMARK(BM_AndCount)
    ->ArgsProduct({{static_cast<int>(PopcountStrategy::kLut16),
                    static_cast<int>(PopcountStrategy::kSwar),
                    static_cast<int>(PopcountStrategy::kHardware),
                    static_cast<int>(PopcountStrategy::kAvx2)},
                   {512, 16384}});

// ------------------------- 0-escaping (P1-enabled) --------------------

// Vectors whose 1s occupy only `range_pct`% of the words: 0-escaping
// should cut work proportionally.
void BM_ZeroEscapedIntersect(benchmark::State& state) {
  const bool escape = state.range(0) != 0;
  const uint32_t range_pct = static_cast<uint32_t>(state.range(1));
  constexpr size_t kWords = 8192;
  BitVector a(kWords * 64), b(kWords * 64), out(kWords * 64);
  Rng rng(3);
  const size_t ones_words = kWords * range_pct / 100;
  const size_t start = (kWords - ones_words) / 2;
  for (size_t i = 0; i < ones_words * 16; ++i) {
    const size_t bit = (start * 64) + rng.NextBounded(ones_words * 64);
    a.Set(bit);
    b.Set((start * 64) + rng.NextBounded(ones_words * 64));
    (void)bit;
  }
  const WordRange ra = escape ? a.ComputeOneRange() : a.FullRange();
  const WordRange rb = escape ? b.ComputeOneRange() : b.FullRange();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AndCount(a, ra, b, rb, &out, PopcountStrategy::kHardware));
  }
  state.SetLabel((escape ? "escaped" : "full") + std::string("/range=") +
                 std::to_string(range_pct) + "%");
}
BENCHMARK(BM_ZeroEscapedIntersect)
    ->ArgsProduct({{0, 1}, {5, 25, 100}});

// --------------------- P2: sparse representations --------------------

// Bit-vector AND vs tid-list merge at varying density: the crossover
// that drives EclatRepresentation::kAuto.
void BM_VerticalIntersect(benchmark::State& state) {
  const bool use_tidlist = state.range(0) != 0;
  const uint32_t per_mille = static_cast<uint32_t>(state.range(1));
  constexpr uint32_t kRows = 1 << 20;
  Rng rng(9);
  std::vector<Tid> list_a, list_b;
  BitVector vec_a(kRows), vec_b(kRows);
  for (Tid t = 0; t < kRows; ++t) {
    if (rng.NextBounded(1000) < per_mille) {
      list_a.push_back(t);
      vec_a.Set(t);
    }
    if (rng.NextBounded(1000) < per_mille) {
      list_b.push_back(t);
      vec_b.Set(t);
    }
  }
  const std::vector<Support> weights(kRows, 1);
  if (use_tidlist) {
    std::vector<Tid> out(std::min(list_a.size(), list_b.size()) + 1);
    for (auto _ : state) {
      Support support = 0;
      benchmark::DoNotOptimize(IntersectTidLists(
          list_a, list_b, weights.data(), out.data(), &support));
      benchmark::DoNotOptimize(support);
    }
  } else {
    std::vector<uint64_t> out(vec_a.num_words());
    for (auto _ : state) {
      benchmark::DoNotOptimize(AndCount(vec_a.words(), vec_b.words(),
                                        out.data(), vec_a.num_words(),
                                        PopcountStrategy::kAuto));
    }
  }
  state.SetLabel((use_tidlist ? "tidlist" : "bitvector+simd") +
                 std::string("/fill=") + std::to_string(per_mille) +
                 "/1000");
}
BENCHMARK(BM_VerticalIntersect)
    ->ArgsProduct({{0, 1}, {2, 30, 300}});

// ------------------------- P3: aggregation ---------------------------

constexpr size_t kListElements = 1 << 20;

void BM_LinkedListTraversal(benchmark::State& state) {
  Arena arena;
  LinkedList<uint64_t> list(&arena);
  for (size_t i = 0; i < kListElements; ++i) list.PushBack(i);
  for (auto _ : state) {
    uint64_t sum = 0;
    list.ForEach([&](uint64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kListElements);
}
BENCHMARK(BM_LinkedListTraversal);

void BM_AggregatedListTraversal(benchmark::State& state) {
  const uint32_t capacity = static_cast<uint32_t>(state.range(0));
  Arena arena;
  AggregatedList<uint64_t> list(&arena, capacity);
  for (size_t i = 0; i < kListElements; ++i) list.PushBack(i);
  for (auto _ : state) {
    uint64_t sum = 0;
    list.ForEach([&](uint64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kListElements);
}
BENCHMARK(BM_AggregatedListTraversal)->Arg(2)->Arg(6)->Arg(14)->Arg(62);

// ------------------------- P7.1: wave-front prefetch ------------------

struct ChainNode {
  ChainNode* next;
  uint64_t payload[7];  // 64-byte node
};

// Array of many short lists scattered through a large pool.
struct ShortListFixture {
  std::vector<ChainNode> pool;
  std::vector<ChainNode*> heads;

  explicit ShortListFixture(size_t num_lists, size_t list_len) {
    pool.resize(num_lists * list_len);
    heads.resize(num_lists);
    // Scatter: permute node indices so successive nodes are far apart.
    std::vector<size_t> perm(pool.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    Rng rng(4);
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
    }
    size_t cursor = 0;
    for (size_t l = 0; l < num_lists; ++l) {
      ChainNode* prev = nullptr;
      for (size_t j = 0; j < list_len; ++j) {
        ChainNode* node = &pool[perm[cursor++]];
        node->next = nullptr;
        node->payload[0] = l * list_len + j;
        if (prev == nullptr) {
          heads[l] = node;
        } else {
          prev->next = node;
        }
        prev = node;
      }
    }
  }
};

void BM_ShortListsPlain(benchmark::State& state) {
  ShortListFixture fixture(1 << 16, 4);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (ChainNode* head : fixture.heads) {
      for (ChainNode* n = head; n != nullptr; n = n->next) {
        sum += n->payload[0];
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          fixture.pool.size());
}
BENCHMARK(BM_ShortListsPlain);

void BM_ShortListsWaveFront(benchmark::State& state) {
  ShortListFixture fixture(1 << 16, 4);
  WaveFrontOptions options;
  options.depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    uint64_t sum = 0;
    WaveFrontTraverse<ChainNode>(
        fixture.heads, [](ChainNode* n) { return n->next; },
        [&](size_t, ChainNode* n) { sum += n->payload[0]; }, options);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          fixture.pool.size());
}
BENCHMARK(BM_ShortListsWaveFront)->Arg(2)->Arg(4)->Arg(8);

// ------------------------- P5: jump pointers -------------------------

void BM_ChainWalk(benchmark::State& state) {
  const bool jump_prefetch = state.range(0) != 0;
  // One long chain scattered through memory (node-link list analogue).
  constexpr uint32_t kNodes = 1 << 20;
  std::vector<uint32_t> next(kNodes);
  std::vector<uint64_t> value(kNodes);
  std::vector<uint32_t> order(kNodes);
  for (uint32_t i = 0; i < kNodes; ++i) order[i] = i;
  Rng rng(5);
  for (uint32_t i = kNodes; i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  for (uint32_t i = 0; i + 1 < kNodes; ++i) next[order[i]] = order[i + 1];
  next[order[kNodes - 1]] = kInvalidIndex;
  for (uint32_t i = 0; i < kNodes; ++i) value[i] = i;
  const std::vector<uint32_t> heads = {order[0]};
  const std::vector<uint32_t> jump = BuildJumpPointers(heads, next, 8);

  for (auto _ : state) {
    uint64_t sum = 0;
    for (uint32_t n = order[0]; n != kInvalidIndex; n = next[n]) {
      if (jump_prefetch && jump[n] != kInvalidIndex) {
        Prefetch(&value[jump[n]]);
        Prefetch(&next[jump[n]]);
      }
      sum += value[n];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kNodes);
  state.SetLabel(jump_prefetch ? "jump-prefetch(P5)" : "plain");
}
BENCHMARK(BM_ChainWalk)->Arg(0)->Arg(1);

// ------------------------- P4: counter compaction --------------------

// The LCM counting loop against AoS column headers (counter embedded in
// a 32-byte struct) vs a compacted contiguous counter array.
struct AosHeader {
  uint32_t count;
  uint32_t pad[7];
};

void BM_CountersAos(benchmark::State& state) {
  constexpr uint32_t kItems = 1 << 16;
  constexpr size_t kTouches = 1 << 22;
  std::vector<AosHeader> headers(kItems);
  std::vector<uint32_t> stream(kTouches);
  Rng rng(6);
  for (auto& s : stream) {
    s = static_cast<uint32_t>(rng.NextBounded(kItems));
  }
  for (auto _ : state) {
    for (uint32_t idx : stream) headers[idx].count += 1;
    benchmark::DoNotOptimize(headers.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kTouches);
}
BENCHMARK(BM_CountersAos);

void BM_CountersCompacted(benchmark::State& state) {
  constexpr uint32_t kItems = 1 << 16;
  constexpr size_t kTouches = 1 << 22;
  CounterTable counters(kItems);
  std::vector<uint32_t> stream(kTouches);
  Rng rng(6);
  for (auto& s : stream) {
    s = static_cast<uint32_t>(rng.NextBounded(kItems));
  }
  for (auto _ : state) {
    for (uint32_t idx : stream) counters.Add(idx, 1);
    benchmark::DoNotOptimize(counters.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kTouches);
}
BENCHMARK(BM_CountersCompacted);

}  // namespace

BENCHMARK_MAIN();
