// Reproduces Figure 2 — CPI of the most time-consuming functions of the
// three kernels (LCM CalcFreq/RmDupTrans, Eclat intersection+counting,
// FP-Growth insert/traverse).
//
// When the kernel exposes hardware counters (perf_event_open), each hot
// function runs under a cycles+instructions group and its CPI is
// reported, exactly like the paper's PMC measurements. Many VMs and
// containers expose no PMU; the bench then degrades to wall-time
// throughput plus *simulated* L1/L2 miss rates on the paper's M1 cache
// geometry — which still reproduces Figure 2's message: LCM and
// FP-Growth traversals are memory bound, Eclat is computation bound.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/algo/fpgrowth/fptree.h"
#include "fpm/bitvec/popcount.h"
#include "fpm/bitvec/vertical.h"
#include "fpm/common/arena.h"
#include "fpm/common/rng.h"
#include "fpm/common/timer.h"
#include "fpm/layout/item_order.h"
#include "fpm/mem/aggregation.h"
#include "fpm/perf/perf_counters.h"
#include "fpm/perf/report.h"
#include "fpm/simcache/db_trace.h"

namespace {

using namespace fpm;

// One hot-function kernel: `run` does the work and returns the number of
// elements processed; `trace` replays its access pattern on a simulated
// hierarchy (for the no-PMU fallback).
struct HotFunction {
  std::string kernel;
  std::string function;
  std::function<uint64_t()> run;
  std::function<MemorySystemStats(MemorySystem*)> trace;
};

// Prevents dead-code elimination of kernel results.
volatile uint64_t g_sink;

// Synthetic pointer-chase trace: `accesses` touches of `object_bytes`
// objects at pseudo-random offsets inside a `region_bytes` region —
// the access pattern of hash-bucket probing and tree-node chasing,
// which the next-line prefetcher cannot help.
MemorySystemStats TraceRandomChase(MemorySystem* mem, uint64_t region_bytes,
                                   uint64_t accesses, uint32_t object_bytes) {
  mem->Reset();
  const uint64_t slots = region_bytes / object_bytes;
  uint64_t state = 12345;
  for (uint64_t i = 0; i < accesses; ++i) {
    const uint64_t slot = SplitMix64(&state) % slots;
    mem->Touch(slot * object_bytes, object_bytes);
  }
  return mem->stats();
}

// Simulated average stall cycles per access under the M1 hierarchy:
// the no-PMU stand-in for CPI (high stalls <=> high CPI).
double StallCyclesPerAccess(const MemorySystemStats& s) {
  if (s.l1.accesses == 0) return 0.0;
  return (14.0 * static_cast<double>(s.l2.accesses) +
          240.0 * static_cast<double>(s.l2.misses)) /
         static_cast<double>(s.l1.accesses);
}

}  // namespace

int main() {
  bench::PrintHeader("bench_fig2_cpi",
                     "Figure 2 - CPI of the most time consuming functions");
  const double scale = BenchScale();
  bench::BenchDataset ds1 = bench::MakeDs1(scale);

  // Shared preprocessed inputs.
  ItemOrder order = ItemOrder::ByDecreasingFrequency(ds1.db);
  Database ranked = RemapItems(ds1.db, order);
  const auto& freq = ranked.item_frequencies();
  size_t num_frequent = 0;
  while (num_frequent < freq.size() && freq[num_frequent] >= ds1.min_support) {
    ++num_frequent;
  }
  VerticalDatabase vdb = VerticalDatabase::FromDatabase(ranked, num_frequent);

  std::vector<HotFunction> functions;

  // --- LCM CalcFreq: occurrence-walk frequency counting. ---------------
  // Per-item column walk over the horizontal database, bumping one
  // counter per incidence (the paper's 54% function).
  functions.push_back(HotFunction{
      "LCM", "CalcFreq (occurrence counting)",
      [&]() -> uint64_t {
        // occ lists: item -> tids.
        std::vector<std::vector<Tid>> occ(ranked.num_items());
        for (Tid t = 0; t < ranked.num_transactions(); ++t) {
          for (Item i : ranked.transaction(t)) occ[i].push_back(t);
        }
        std::vector<uint32_t> counters(ranked.num_items(), 0);
        uint64_t touched = 0;
        for (Item i = 0; i < ranked.num_items(); ++i) {
          for (Tid t : occ[i]) {
            for (Item j : ranked.transaction(t)) {
              ++counters[j];
              ++touched;
            }
          }
        }
        g_sink = counters[0];
        return touched;
      },
      [&](MemorySystem* mem) { return TraceColumnWalk(ranked, mem); }});

  // --- LCM RmDupTrans: bucket-hash duplicate merging. -------------------
  functions.push_back(HotFunction{
      "LCM", "RmDupTrans (duplicate merging)",
      [&]() -> uint64_t {
        Arena arena;
        size_t nbuckets = 16;
        while (nbuckets < ranked.num_transactions()) nbuckets <<= 1;
        std::vector<LinkedList<uint32_t>> buckets(
            nbuckets, LinkedList<uint32_t>(&arena));
        uint64_t probes = 0;
        for (Tid t = 0; t < ranked.num_transactions(); ++t) {
          const auto tx = ranked.transaction(t);
          uint64_t h = 1469598103934665603ull;
          for (Item i : tx) {
            h ^= i;
            h *= 1099511628211ull;
          }
          LinkedList<uint32_t>& chain = buckets[h & (nbuckets - 1)];
          chain.ForEach([&](uint32_t) { ++probes; });
          chain.PushBack(t);
        }
        g_sink = probes;
        return ranked.num_transactions() + probes;
      },
      [&](MemorySystem* mem) {
        // Bucket heads + arena nodes probed in hash order: random
        // touches over a region sized like the bucket table.
        uint64_t nbuckets = 16;
        while (nbuckets < ranked.num_transactions()) nbuckets <<= 1;
        return TraceRandomChase(mem, nbuckets * 16,
                                ranked.num_transactions() * 2, 16);
      }});

  // --- Eclat: vector AND + frequency counting (98% of runtime). --------
  functions.push_back(HotFunction{
      "Eclat", "intersect+count (bit vectors)",
      [&]() -> uint64_t {
        const size_t words = vdb.words_per_column();
        std::vector<uint64_t> out(words);
        uint64_t total = 0;
        uint64_t ops = 0;
        const size_t n = vdb.num_items();
        for (size_t a = 0; a + 1 < n && ops < 400; a += 7) {
          for (size_t b = a + 1; b < n && ops < 400; b += 13) {
            total += AndCount(vdb.column(a).words(), vdb.column(b).words(),
                              out.data(), words, PopcountStrategy::kLut16);
            ++ops;
          }
        }
        g_sink = total;
        return ops * words;
      },
      [&](MemorySystem* mem) {
        // Streaming over long contiguous vectors: the compute-bound
        // pattern.
        mem->Reset();
        const size_t words = vdb.words_per_column();
        const size_t n = vdb.num_items() < 32 ? vdb.num_items() : 32;
        for (size_t a = 0; a < n; ++a) {
          mem->TouchRange(vdb.column(a).words(), words);
        }
        return mem->stats();
      }});

  // --- FP-Growth: tree insertion and node-link traversal. --------------
  FpTreeConfig tree_config;
  PointerFpTree tree(static_cast<uint32_t>(num_frequent), tree_config);
  functions.push_back(HotFunction{
      "FP-Growth", "insert (tree construction)",
      [&]() -> uint64_t {
        std::vector<Item> filtered;
        uint64_t inserted = 0;
        for (Tid t = 0; t < ranked.num_transactions(); ++t) {
          filtered.clear();
          for (Item i : ranked.transaction(t)) {
            if (i >= num_frequent) break;
            filtered.push_back(i);
          }
          if (!filtered.empty()) {
            tree.AddPath(filtered, ranked.weight(t));
            inserted += filtered.size();
          }
        }
        tree.Finalize();
        g_sink = tree.num_nodes();
        return inserted;
      },
      [&](MemorySystem* mem) {
        // Node chasing over the tree's arena footprint (40-byte nodes,
        // one chase per inserted item).
        const uint64_t region =
            std::max<uint64_t>(tree.num_nodes() * 40, 1 << 16);
        return TraceRandomChase(mem, region, ranked.num_entries(), 40);
      }});

  functions.push_back(HotFunction{
      "FP-Growth", "traverse (node links + paths)",
      [&]() -> uint64_t {
        uint64_t visited = 0;
        for (Item i : tree.items()) {
          tree.ForEachPath(i, [&](std::span<const Item> base, Support) {
            visited += base.size() + 1;
          });
        }
        g_sink = visited;
        return visited;
      },
      [&](MemorySystem* mem) {
        const uint64_t region =
            std::max<uint64_t>(tree.num_nodes() * 40, 1 << 16);
        return TraceRandomChase(mem, region, ranked.num_entries(), 40);
      }});

  // --- Measure. ----------------------------------------------------------
  bench::BenchReport report(
      "fig2_cpi", "Figure 2 - CPI of the most time consuming functions");
  const Status pmu_status = PerfCountersStatus();
  const bool have_pmu = pmu_status.ok();
  if (have_pmu) {
    std::printf("Hardware counters: available (reporting true CPI)\n\n");
  } else {
    std::printf(
        "Hardware counters: unavailable (%s); reporting wall-time "
        "throughput + simulated M1 miss rates — see DESIGN.md "
        "substitution 4\n\n",
        std::string(pmu_status.message()).c_str());
  }

  ReportTable table({"Kernel", "Hot function", "Time", "ns/elem",
                     have_pmu ? "CPI" : "sim stalls/access",
                     have_pmu ? "instructions" : "sim L1 miss%", "verdict"});
  for (HotFunction& fn : functions) {
    double seconds = 0;
    uint64_t elements = 0;
    double cpi = 0;
    uint64_t instructions = 0;
    if (have_pmu) {
      constexpr PerfEventId kCpiPair[] = {PerfEventId::kCycles,
                                          PerfEventId::kInstructions};
      auto group = PerfCounterGroup::Create(kCpiPair);
      FPM_CHECK_OK(group.status());
      FPM_CHECK_OK(group->Start());
      WallTimer timer;
      elements = fn.run();
      seconds = timer.ElapsedSeconds();
      FPM_CHECK_OK(group->Stop());
      auto reading = group->Read();
      FPM_CHECK_OK(reading.status());
      const PerfEventReading* cyc = reading->Find(PerfEventId::kCycles);
      const PerfEventReading* ins = reading->Find(PerfEventId::kInstructions);
      instructions = ins != nullptr ? ins->value : 0;
      cpi = (cyc != nullptr && instructions > 0)
                ? static_cast<double>(cyc->value) /
                      static_cast<double>(instructions)
                : 0.0;
    } else {
      WallTimer timer;
      elements = fn.run();
      seconds = timer.ElapsedSeconds();
    }

    char nspe[32], c1[32], c2[32];
    std::snprintf(nspe, sizeof(nspe), "%.2f",
                  elements == 0 ? 0.0 : seconds * 1e9 / elements);
    std::string verdict;
    bench::BenchRow& row = report.AddRow();
    row.Str("kernel", fn.kernel)
        .Str("function", fn.function)
        .Num("seconds", seconds)
        .Int("elements", elements)
        .Bool("hardware_counters", have_pmu);
    if (have_pmu) {
      std::snprintf(c1, sizeof(c1), "%.2f", cpi);
      std::snprintf(c2, sizeof(c2), "%llu",
                    static_cast<unsigned long long>(instructions));
      verdict = cpi > 1.0 ? "memory bound" : "computation bound";
      row.Num("cpi", cpi).Int("instructions", instructions);
    } else {
      MemorySystem mem(MemorySystemConfig::PentiumD());
      const auto stats = fn.trace(&mem);
      const double stalls = StallCyclesPerAccess(stats);
      std::snprintf(c1, sizeof(c1), "%.1f", stalls);
      std::snprintf(c2, sizeof(c2), "%.1f%%", stats.l1.miss_rate() * 100);
      verdict = stalls > 2.0 ? "memory bound" : "computation bound";
      row.Num("sim_stalls_per_access", stalls)
          .Num("sim_l1_miss_rate", stats.l1.miss_rate());
    }
    row.Str("verdict", verdict);
    table.AddRow({fn.kernel, fn.function, FormatSeconds(seconds), nspe, c1,
                  c2, verdict});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper's Figure 2 message: LCM and FP-Growth hot functions run at\n"
      "high CPI (memory bound); Eclat's intersection kernel runs at low\n"
      "CPI (computation bound). The verdict column must match.\n");
  report.Write();
  return 0;
}
