// Cluster fan-out — the SON two-phase scatter path (DESIGN.md §19)
// measured in-process, without sockets: the exact MineShardPartition /
// CountShardPartition / Merge* functions every owner and coordinator
// runs for shard_query, over fan-out widths 1/2/4/8. Width 1 is the
// degenerate single-owner case (phase 1 IS the direct mine, phase 2
// recounts it), so the wider rows read as "what the network buys
// before paying for the network".
//
// Every row is validated against a direct sequential mine of the same
// dataset: the merged itemset/support multiset must be exactly equal
// (the SON completeness + exact-recount guarantee). The bench aborts
// on any mismatch — it is an exactness gate as much as a timer.
//
// Rows land in BENCH_cluster_fanout.json (schema in EXPERIMENTS.md):
//   shards       fan-out width k
//   phase1_ms    sum of per-shard local mines at the scaled threshold
//   count_ms     sum of per-shard exact candidate recounts
//   total_ms     phase1 + merge + count + filter, end to end
//   candidates   merged candidate-set size after phase 1
//   num_results  globally frequent itemsets after the filter
//
// The per-shard times are summed, not maxed: this is the single-node
// CPU cost of the distributed plan. A real cluster divides phase1/count
// by the healthy-owner count and adds two network round trips.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "fpm/cluster/shard_exec.h"
#include "fpm/core/patterns.h"
#include "fpm/perf/report.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace fpm;
  bench::PrintHeader("bench_cluster_fanout",
                     "SON scatter fan-out (DESIGN.md §19) vs direct mine");

  const double scale = BenchScale();
  const int repeats = BenchRepeats();
  std::vector<bench::BenchDataset> datasets;
  datasets.push_back(bench::MakeDs1(scale));
  datasets.push_back(bench::MakeDs2(scale));

  bench::BenchReport report("cluster_fanout",
                            "SON scatter fan-out vs direct mine");

  for (const bench::BenchDataset& ds : datasets) {
    // Twice the Table-6 threshold: SON's phase-1 false-positive growth
    // is superlinear in the result count, so the paper support drowns
    // the fan-out signal in candidate explosion at small scales. The
    // relative comparison across widths is what this bench measures.
    const Support support = ds.min_support * 2;
    std::printf("== %s (%s), support %u, LCM ==\n", ds.name.c_str(),
                ds.description.c_str(), support);

    // The exactness reference: one full-database "shard".
    auto direct = MineShardPartition(ds.db, ShardSlice{0, 1}, support,
                                     Algorithm::kLcm, PatternSet::None());
    FPM_CHECK_OK(direct.status());
    std::vector<CollectingSink::Entry> want = direct.value();
    std::sort(want.begin(), want.end());

    ReportTable table({"shards", "phase1", "count", "total", "candidates",
                       "results"});
    for (uint32_t shards : {1u, 2u, 4u, 8u}) {
      double best_phase1 = 0.0, best_count = 0.0, best_total = 0.0;
      size_t candidates_size = 0, num_results = 0;
      for (int rep = 0; rep < repeats; ++rep) {
        const Clock::time_point t0 = Clock::now();
        std::vector<std::vector<CollectingSink::Entry>> locals;
        for (uint32_t p = 0; p < shards; ++p) {
          auto local =
              MineShardPartition(ds.db, ShardSlice{p, shards}, support,
                                 Algorithm::kLcm, PatternSet::None());
          FPM_CHECK_OK(local.status());
          locals.push_back(std::move(local).value());
        }
        const double phase1_ms = MsSince(t0);

        const std::vector<Itemset> candidates =
            MergeShardCandidates(std::move(locals));

        const Clock::time_point t1 = Clock::now();
        std::vector<std::vector<Support>> per_shard;
        for (uint32_t p = 0; p < shards; ++p) {
          auto counts = CountShardPartition(ds.db, ShardSlice{p, shards},
                                            candidates);
          FPM_CHECK_OK(counts.status());
          per_shard.push_back(std::move(counts).value());
        }
        const double count_ms = MsSince(t1);

        std::vector<CollectingSink::Entry> merged =
            MergeShardCounts(candidates, per_shard, support);
        const double total_ms = MsSince(t0);

        std::sort(merged.begin(), merged.end());
        FPM_CHECK(merged == want)
            << "shard merge diverged from the direct mine at k=" << shards;

        if (rep == 0 || total_ms < best_total) {
          best_phase1 = phase1_ms;
          best_count = count_ms;
          best_total = total_ms;
        }
        candidates_size = candidates.size();
        num_results = merged.size();
      }
      char phase1_buf[32], count_buf[32], total_buf[32];
      std::snprintf(phase1_buf, sizeof(phase1_buf), "%.1f ms", best_phase1);
      std::snprintf(count_buf, sizeof(count_buf), "%.1f ms", best_count);
      std::snprintf(total_buf, sizeof(total_buf), "%.1f ms", best_total);
      table.AddRow({std::to_string(shards), phase1_buf, count_buf, total_buf,
                    FormatCount(candidates_size), FormatCount(num_results)});
      report.AddRow()
          .Str("dataset", ds.name)
          .Str("kernel", "lcm")
          .Int("shards", shards)
          .Num("phase1_ms", best_phase1)
          .Num("count_ms", best_count)
          .Num("total_ms", best_total)
          .Int("candidates", candidates_size)
          .Int("num_results", num_results);
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "Reading the table: every row reproduced the direct mine exactly\n"
      "(the bench aborts otherwise). \"candidates\" grows with the shard\n"
      "count because narrower partitions admit locally-frequent noise —\n"
      "that growth is the SON false-positive cost phase 2 pays to\n"
      "recount. Times are summed single-node CPU; a k-owner cluster\n"
      "divides phase1/count by its healthy-owner count.\n\n");

  report.Write();
  return 0;
}
