// Reproduces Figure 8(e,f): FP-Growth speedups from Lex (P1), Reorg
// (P2 compact nodes + P3/P4 DFS re-layout), Pref (P5 jump pointers + P7
// software prefetch), their combination, and the best subset, on
// DS1-DS4.

#include "fig8_runner.h"

int main() {
  using namespace fpm;
  const std::vector<bench::Fig8Config> configs = {
      {"Lex", PatternSet().With(Pattern::kLexicographicOrdering)},
      {"Reorg", PatternSet()
                    .With(Pattern::kDataStructureAdaptation)
                    .With(Pattern::kAggregation)
                    .With(Pattern::kCompaction)},
      {"Pref", PatternSet()
                   .With(Pattern::kPrefetchPointers)
                   .With(Pattern::kSoftwarePrefetch)},
      {"Reorg+Pref", PatternSet()
                         .With(Pattern::kDataStructureAdaptation)
                         .With(Pattern::kAggregation)
                         .With(Pattern::kCompaction)
                         .With(Pattern::kPrefetchPointers)
                         .With(Pattern::kSoftwarePrefetch)},
  };
  return bench::RunFig8(Algorithm::kFpGrowth, configs,
                        "bench_fig8_fpgrowth",
                        "Figure 8(e,f) - speedup of FP-Growth on DS1-DS4");
}
