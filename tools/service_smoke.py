#!/usr/bin/env python3
"""End-to-end smoke test of the fpmd daemon and its result cache.

Usage: service_smoke.py FPMD_BINARY FPM_CLIENT_BINARY FPM_PACK_BINARY

Starts fpmd on a temp Unix socket with a tiny generated dataset, then
drives it with fpm_client the way a real deployment would:

  1. the same mine query three times  -> 1 miss + 2 exact cache hits
  2. the query at a higher threshold  -> a support-dominance hit
  3. a mixed-task batch (closed, maximal, top-k, one bad dataset)
     -> one tagged line per entry, the bad one ok:false, the rest
        derived cross-task from the cached frequent run
  4. a rules query via the v2 "query" op
  5. "metrics"                        -> the daemon's own counters
  6. live ingestion: "open" a handle, "append" a delta, re-query by
     id                               -> the parent version's cached
        frequent run reseeds the child (cache: "reseeded"), and
        "dataset_info" shows the two-version chain
  7. out-of-core: fpm_pack converts the dataset to the mmap-backed
     packed format, the daemon opens it by magic sniff, "dataset_info"
     reports storage "packed", and the first query against it is a
     cache hit — the packed header carries the digest of the FIMI
     bytes, so both storage backends share one cache entry
  8. observability: "stats" shows an empty queue after the drain,
     "metrics-text" renders a Prometheus exposition, fpm_top.py --once
     renders a dashboard against the live daemon, and the daemon's
     --query-log file holds one schema-valid line per query with the
     query_ids the v2 responses echoed
  9. "shutdown"                       -> clean exit

and asserts, from the responses AND the daemon's metrics, that the
repeated and dominated queries were served from the cache without
re-mining (fpm.service.cache.hits / .dominated_hits nonzero, .misses
exactly 1), that every task family was exercised
(fpm.service.tasks.* >= 1), that the task queries derived from
the frequent cache (.cross_task_hits >= 1), and that the post-append
query was answered by delta recounting (.reseeds >= 1). Exits nonzero
on any failure.

Standard library only — runs on any CI python3.
"""

import json
import os
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_client(client, socket_path, *args, allow_fail=False):
    cmd = [client, f"--socket={socket_path}", *args]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=60)
    if proc.returncode != 0 and not allow_fail:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines() if line]


def main(argv):
    if len(argv) != 4:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    fpmd, client, fpm_pack = argv[1], argv[2], argv[3]

    tmp = tempfile.mkdtemp(prefix="fpm_service_smoke_")
    dataset = os.path.join(tmp, "smoke.dat")
    # Dense enough that thresholds 2 and 3 give different answers.
    with open(dataset, "w", encoding="utf-8") as f:
        for row in ["1 2 3", "1 2", "1 3", "2 3", "1 2 3 4", "2 3 4"]:
            f.write(row + "\n")
    socket_path = os.path.join(tmp, "fpmd.sock")
    query_log = os.path.join(tmp, "query.log")

    daemon = subprocess.Popen(
        [fpmd, f"--socket={socket_path}", "--threads=2",
         f"--query-log={query_log}"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        for _ in range(100):
            if os.path.exists(socket_path):
                break
            if daemon.poll() is not None:
                fail(f"fpmd exited early:\n{daemon.stderr.read()}")
            time.sleep(0.05)
        else:
            fail("fpmd never created its socket")

        ping = run_client(client, socket_path, "ping")
        if ping != [{"ok": True}]:
            fail(f"ping got {ping}")

        # 1. Repeated identical query: miss, then exact hits.
        repeated = run_client(client, socket_path, "mine", dataset, "2",
                              "--repeat=3")
        outcomes = [r.get("cache") for r in repeated]
        if outcomes != ["miss", "hit", "hit"]:
            fail(f"repeated query outcomes {outcomes}, "
                 "want ['miss', 'hit', 'hit']")
        if len({json.dumps(r.get("itemsets")) for r in repeated}) != 1:
            fail("repeated responses returned different itemsets")

        # 2. Higher threshold: answered by dominance, not re-mined.
        dominated = run_client(client, socket_path, "mine", dataset, "3")
        if dominated[0].get("cache") != "dominated":
            fail(f"higher-threshold query got cache="
                 f"{dominated[0].get('cache')}, want 'dominated'")
        if dominated[0]["num_frequent"] >= repeated[0]["num_frequent"]:
            fail("raising the threshold did not shrink the answer")

        # 3. A mixed-task batch: one tagged response line per entry,
        # errors isolated per query. The task queries ask at the same
        # threshold the frequent run already cached, so each first ask
        # is a cross-task derivation, not a re-mine.
        batch_file = os.path.join(tmp, "queries.jsonl")
        entries = [
            {"dataset": dataset, "min_support": 2, "task": "closed"},
            {"dataset": dataset, "min_support": 2, "task": "maximal"},
            {"dataset": dataset, "min_support": 2, "task": "top_k",
             "k": 3},
            {"dataset": os.path.join(tmp, "no_such.dat"),
             "min_support": 2},
        ]
        with open(batch_file, "w", encoding="utf-8") as f:
            for entry in entries:
                f.write(json.dumps(entry) + "\n")
        # The client exits nonzero because one entry fails — expected.
        batch = run_client(client, socket_path, "batch", batch_file,
                           allow_fail=True)
        if len(batch) != len(entries):
            fail(f"batch returned {len(batch)} lines, "
                 f"want {len(entries)}")
        by_id = {r.get("id"): r for r in batch}
        if sorted(by_id) != list(range(len(entries))):
            fail(f"batch ids {sorted(by_id)}, "
                 f"want {list(range(len(entries)))}")
        for i, task in [(0, "closed"), (1, "maximal"), (2, "top_k")]:
            r = by_id[i]
            if not r.get("ok") or r.get("task") != task:
                fail(f"batch entry {i} = {r}, want ok {task}")
            if r.get("cache") != "cross_task":
                fail(f"batch {task} got cache={r.get('cache')}, "
                     "want 'cross_task' (derived from the frequent run)")
        if by_id[3].get("ok") is not False or "error" not in by_id[3]:
            fail(f"bad-dataset entry = {by_id[3]}, want ok:false + error")
        if by_id[2].get("num_results") != 3:
            fail(f"top-k returned {by_id[2].get('num_results')} results, "
                 "want exactly k=3")

        # 4. Rules as a first-class verb over the v2 query op.
        rules = run_client(client, socket_path, "query", dataset, "2",
                           "--task=rules", "--min-confidence=0.5")[0]
        if not rules.get("ok") or rules.get("task") != "rules":
            fail(f"rules query = {rules}")
        if not rules.get("rules"):
            fail("rules query returned no rules")

        # 5. The daemon's own counters agree.
        metrics = run_client(client, socket_path, "metrics")[0]
        counters = metrics.get("counters", {})
        checks = {
            "fpm.service.cache.hits": lambda v: v >= 2,
            "fpm.service.cache.dominated_hits": lambda v: v >= 1,
            "fpm.service.cache.cross_task_hits": lambda v: v >= 1,
            "fpm.service.cache.misses": lambda v: v == 1,
            "fpm.service.registry.loads": lambda v: v == 1,
            "fpm.service.tasks.frequent": lambda v: v >= 1,
            "fpm.service.tasks.closed": lambda v: v >= 1,
            "fpm.service.tasks.maximal": lambda v: v >= 1,
            "fpm.service.tasks.top_k": lambda v: v >= 1,
            "fpm.service.tasks.rules": lambda v: v >= 1,
        }
        for name, ok in checks.items():
            value = counters.get(name)
            if value is None or not ok(value):
                fail(f"counter {name} = {value} fails its check "
                     f"(counters: { {k: v for k, v in counters.items() if k.startswith('fpm.service')} })")

        # 6. Live ingestion: open a handle on the already-cached
        # dataset, stream one appended transaction, and re-query the
        # new version by id at a higher threshold. The margin rule
        # holds (threshold 3 > appended weight 1, and the frequent run
        # was cached at 2 <= 3 - 1), so the service must answer by
        # recounting the parent's listing over the delta — never
        # re-mining.
        opened = run_client(client, socket_path, "open", dataset)[0]
        if not opened.get("ok") or not opened.get("id"):
            fail(f"open = {opened}")
        if opened.get("version") != 1:
            fail(f"open returned version {opened.get('version')}, want 1")
        ds_id = opened["id"]

        delta_file = os.path.join(tmp, "delta.dat")
        with open(delta_file, "w", encoding="utf-8") as f:
            f.write("1 2 3\n")
        appended = run_client(client, socket_path, "append", ds_id,
                              delta_file)[0]
        if not appended.get("ok") or appended.get("version") != 2:
            fail(f"append = {appended}")
        if appended.get("parent_digest") != opened.get("digest"):
            fail("append's parent_digest does not chain to the opened "
                 f"version: {appended}")

        reseeded = run_client(client, socket_path, "query", ds_id, "3")[0]
        if reseeded.get("cache") != "reseeded":
            fail(f"post-append query got cache={reseeded.get('cache')}, "
                 "want 'reseeded' (recounted from the parent listing)")
        if reseeded.get("digest") != appended.get("digest"):
            fail("post-append query answered for the wrong version")

        info = run_client(client, socket_path, "dataset-info", ds_id)[0]
        if info.get("live_transactions") != 7:
            fail(f"dataset_info live_transactions = "
                 f"{info.get('live_transactions')}, want 7")
        if len(info.get("versions", [])) != 2:
            fail(f"dataset_info versions = {info.get('versions')}, "
                 "want the two-version chain")

        metrics = run_client(client, socket_path, "metrics")[0]
        counters = metrics.get("counters", {})
        reseeds = counters.get("fpm.service.cache.reseeds")
        if reseeds is None or reseeds < 1:
            fail(f"counter fpm.service.cache.reseeds = {reseeds}, want >= 1")

        # 7. Out-of-core: pack the same FIMI bytes and open the result
        # through the daemon (format detected by magic sniff, no flag).
        # The converter stores the digest of the raw FIMI bytes in the
        # packed header, so the very first query against the packed
        # file is answered from the cache entry step 1 populated — the
        # storage backend is invisible to the result cache.
        packed_path = os.path.join(tmp, "smoke.fpk")
        pack = subprocess.run([fpm_pack, dataset, packed_path],
                              capture_output=True, text=True, timeout=60)
        if pack.returncode != 0:
            fail(f"fpm_pack exited {pack.returncode}:\n{pack.stderr}")
        packed_open = run_client(client, socket_path, "open",
                                 packed_path)[0]
        if not packed_open.get("ok") or not packed_open.get("id"):
            fail(f"open (packed) = {packed_open}")
        if packed_open.get("digest") != opened.get("digest"):
            fail(f"packed open digest {packed_open.get('digest')} != "
                 f"FIMI open digest {opened.get('digest')}")

        packed_info = run_client(client, socket_path, "dataset-info",
                                 packed_open["id"])[0]
        if packed_info.get("storage") != "packed":
            fail(f"dataset_info storage = {packed_info.get('storage')}, "
                 "want 'packed'")

        packed_hit = run_client(client, socket_path, "query",
                                packed_open["id"], "2")[0]
        if packed_hit.get("cache") != "hit":
            fail(f"packed-path query got cache={packed_hit.get('cache')}, "
                 "want 'hit' (shared digest with the FIMI-backed entry)")

        # 8. Observability. Every successful v2 response carried a
        # unique non-zero query_id; collect them to cross-check against
        # the query log. (Error lines carry the batch id, not a
        # query_id — the rejection still lands in the log below.)
        echoed = {}  # query_id -> cache outcome from the response
        for r in batch + [rules, reseeded, packed_hit]:
            if r.get("ok") is not True:
                continue
            qid = r.get("query_id")
            if not qid:
                fail(f"v2 response missing query_id: {r}")
            if qid in echoed:
                fail(f"duplicate query_id {qid} across responses")
            echoed[qid] = r.get("cache")

        # The queue has fully drained: stats shows nothing in flight,
        # the latency windows saw our queries, no job got stuck.
        stats = run_client(client, socket_path, "stats")[0]
        sched = stats.get("scheduler", {})
        if sched.get("queue_depth") != 0 or sched.get("running") != 0:
            fail(f"scheduler not drained: {sched}")
        if sched.get("in_flight") != []:
            fail(f"in_flight jobs after drain: {sched.get('in_flight')}")
        if sched.get("completed", 0) < 10:
            fail(f"scheduler completed = {sched.get('completed')}, "
                 "want >= 10")
        storages = {d.get("storage")
                    for d in stats.get("registry", {}).get("datasets", [])}
        if "packed" not in storages:
            fail(f"stats registry storages = {storages}, want 'packed' "
                 "among them")
        windows = {w.get("window_s") for w in stats.get("windows", [])}
        if not {1, 10, 60} <= windows:
            fail(f"stats windows = {windows}, want 1s/10s/60s")
        if max(w.get("count", 0) for w in stats.get("windows", [])) < 1:
            fail("no latency window saw any queries")
        if stats.get("watchdog", {}).get("stuck_now") != 0:
            fail(f"watchdog reports stuck jobs: {stats.get('watchdog')}")
        if not stats.get("uptime_seconds", 0) > 0:
            fail("stats reports no uptime")

        # Prometheus exposition through the same socket.
        exposition = run_client(client, socket_path, "metrics-text",
                                "--json")[0]
        text = exposition.get("text", "")
        if "# TYPE fpm_service_cache_hits counter" not in text:
            fail(f"metrics-text missing cache-hits counter:\n{text[:400]}")

        # The live dashboard renders against the running daemon.
        tools_dir = os.path.dirname(os.path.abspath(__file__))
        top = subprocess.run(
            [sys.executable, os.path.join(tools_dir, "fpm_top.py"),
             f"--socket={socket_path}", "--once"],
            capture_output=True, text=True, timeout=60)
        if top.returncode != 0 or "fpmd up" not in top.stdout:
            fail(f"fpm_top.py --once failed ({top.returncode}):\n"
                 f"{top.stdout}{top.stderr}")

        # The query log: schema-valid, one line per query (3 repeats,
        # 1 dominated, 4 batch entries, rules, reseeded, packed = 11),
        # with the echoed query_ids and cache outcomes, and real kernel
        # time on the one true miss.
        check = subprocess.run(
            [sys.executable,
             os.path.join(tools_dir, "validate_query_log.py"),
             query_log, "--min-lines=11"],
            capture_output=True, text=True, timeout=60)
        if check.returncode != 0:
            fail(f"validate_query_log.py failed:\n{check.stderr}")
        with open(query_log, "r", encoding="utf-8") as f:
            logged = [json.loads(line) for line in f if line.strip()]
        if len(logged) != 11:
            fail(f"query log holds {len(logged)} lines, want 11")
        by_qid = {e["query_id"]: e for e in logged}
        if len(by_qid) != len(logged):
            fail("query log reused a query_id")
        for qid, cache in echoed.items():
            entry = by_qid.get(qid)
            if entry is None:
                fail(f"echoed query_id {qid} never reached the log")
            if cache is not None and entry.get("cache") != cache:
                fail(f"log cache for query {qid} = {entry.get('cache')}, "
                     f"response said {cache}")
        misses = [e for e in logged if e.get("cache") == "miss"]
        if len(misses) != 1:
            fail(f"{len(misses)} miss lines in the log, want exactly 1")
        if not misses[0].get("mine_ms", 0) > 0:
            fail(f"the miss line has no kernel time: {misses[0]}")
        if len([e for e in logged if e.get("status") == "rejected"]) != 1:
            fail("the bad-dataset batch entry was not logged as rejected")

        # 9. Clean shutdown.
        run_client(client, socket_path, "shutdown")
        if daemon.wait(timeout=30) != 0:
            fail(f"fpmd exited {daemon.returncode} after shutdown")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    print("service smoke: OK (miss -> 2 hits, 1 dominated, "
          "mixed batch derived cross-task, append reseeded, "
          "packed open hit the shared cache, stats drained, "
          "query log validated, clean shutdown)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
