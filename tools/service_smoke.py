#!/usr/bin/env python3
"""End-to-end smoke test of the fpmd daemon and its result cache.

Usage: service_smoke.py FPMD_BINARY FPM_CLIENT_BINARY

Starts fpmd on a temp Unix socket with a tiny generated dataset, then
drives it with fpm_client the way a real deployment would:

  1. the same mine query three times  -> 1 miss + 2 exact cache hits
  2. the query at a higher threshold  -> a support-dominance hit
  3. "metrics"                        -> the daemon's own counters
  4. "shutdown"                       -> clean exit

and asserts, from the responses AND the daemon's metrics, that the
repeated and dominated queries were served from the cache without
re-mining: fpm.service.cache.hits and .dominated_hits must be nonzero
and .misses must be exactly 1. Exits nonzero on any failure.

Standard library only — runs on any CI python3.
"""

import json
import os
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_client(client, socket_path, *args):
    cmd = [client, f"--socket={socket_path}", *args]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines() if line]


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    fpmd, client = argv[1], argv[2]

    tmp = tempfile.mkdtemp(prefix="fpm_service_smoke_")
    dataset = os.path.join(tmp, "smoke.dat")
    # Dense enough that thresholds 2 and 3 give different answers.
    with open(dataset, "w", encoding="utf-8") as f:
        for row in ["1 2 3", "1 2", "1 3", "2 3", "1 2 3 4", "2 3 4"]:
            f.write(row + "\n")
    socket_path = os.path.join(tmp, "fpmd.sock")

    daemon = subprocess.Popen(
        [fpmd, f"--socket={socket_path}", "--threads=2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        for _ in range(100):
            if os.path.exists(socket_path):
                break
            if daemon.poll() is not None:
                fail(f"fpmd exited early:\n{daemon.stderr.read()}")
            time.sleep(0.05)
        else:
            fail("fpmd never created its socket")

        ping = run_client(client, socket_path, "ping")
        if ping != [{"ok": True}]:
            fail(f"ping got {ping}")

        # 1. Repeated identical query: miss, then exact hits.
        repeated = run_client(client, socket_path, "mine", dataset, "2",
                              "--repeat=3")
        outcomes = [r.get("cache") for r in repeated]
        if outcomes != ["miss", "hit", "hit"]:
            fail(f"repeated query outcomes {outcomes}, "
                 "want ['miss', 'hit', 'hit']")
        if len({json.dumps(r.get("itemsets")) for r in repeated}) != 1:
            fail("repeated responses returned different itemsets")

        # 2. Higher threshold: answered by dominance, not re-mined.
        dominated = run_client(client, socket_path, "mine", dataset, "3")
        if dominated[0].get("cache") != "dominated":
            fail(f"higher-threshold query got cache="
                 f"{dominated[0].get('cache')}, want 'dominated'")
        if dominated[0]["num_frequent"] >= repeated[0]["num_frequent"]:
            fail("raising the threshold did not shrink the answer")

        # 3. The daemon's own counters agree.
        metrics = run_client(client, socket_path, "metrics")[0]
        counters = metrics.get("counters", {})
        checks = {
            "fpm.service.cache.hits": lambda v: v >= 2,
            "fpm.service.cache.dominated_hits": lambda v: v >= 1,
            "fpm.service.cache.misses": lambda v: v == 1,
            "fpm.service.registry.loads": lambda v: v == 1,
        }
        for name, ok in checks.items():
            value = counters.get(name)
            if value is None or not ok(value):
                fail(f"counter {name} = {value} fails its check "
                     f"(counters: { {k: v for k, v in counters.items() if k.startswith('fpm.service')} })")

        # 4. Clean shutdown.
        run_client(client, socket_path, "shutdown")
        if daemon.wait(timeout=30) != 0:
            fail(f"fpmd exited {daemon.returncode} after shutdown")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    print("service smoke: OK (miss -> 2 hits, 1 dominated, clean shutdown)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
