#!/usr/bin/env python3
"""Live terminal dashboard for a running fpmd daemon.

Usage: fpm_top.py --endpoint=SPEC [--interval=SECONDS] [--once] [--json]

SPEC is a Unix socket path or HOST:PORT (a cluster node's TCP listener;
the same grammar fpm_client --endpoint accepts). --socket=PATH is kept
as an alias.

Speaks the daemon's newline-delimited JSON protocol directly: sends
{"op": "stats"} and {"op": "cluster_info"} every refresh and renders
the responses as a top-style dashboard — uptime, latency windows
(1s/10s/60s count/qps/p50/p99/max), scheduler queue depth and in-flight
queries with ages, cache and registry counters, per-dataset rows, the
stuck-job watchdog, and — on a cluster node — the cluster view: this
node's identity, per-peer health / RTT percentiles / owned-shard
counts, and the coordinator's routing counters (probe hits, forwards,
failovers, local fallbacks). A non-clustered daemon answers
cluster_info with enabled:false and the panel is simply omitted.

  --once      print a single snapshot and exit (CI / smoke tests)
  --json      dump the raw stats JSON instead of the dashboard
  --interval  refresh period in seconds (default 1.0)

Standard library only — runs on any CI python3.
"""

import argparse
import json
import socket
import sys
import time


def connect(endpoint, timeout):
    """Dials a Unix socket path or a HOST:PORT TCP endpoint."""
    if "/" in endpoint or ":" not in endpoint:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(endpoint)
        return sock
    host, port = endpoint.rsplit(":", 1)
    return socket.create_connection((host, int(port)), timeout=timeout)


def fetch(endpoint, op, timeout=10.0):
    """One request/response round-trip; returns the decoded object."""
    with connect(endpoint, timeout) as sock:
        sock.sendall(json.dumps({"op": op}).encode() + b"\n")
        buffer = b""
        while b"\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            buffer += chunk
    response = json.loads(buffer.split(b"\n", 1)[0])
    if not response.get("ok"):
        raise ValueError(f"{op} request failed: {response}")
    return response


def format_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GiB"


def render_cluster(cluster):
    """The cluster panel: identity, per-peer health, routing counters."""
    lines = []
    lines.append(f"cluster: self={cluster.get('self', '?')} "
                 f"replicas={cluster.get('replicas', 0)} "
                 f"vnodes={cluster.get('virtual_nodes', 0)}")
    peers = cluster.get("peers", [])
    if peers:
        lines.append("  peer                 health  fail  pings"
                     "   p50ms   p99ms  owned")
        for p in peers:
            marker = "*" if p.get("self") else " "
            health = "up" if p.get("healthy") else "DOWN"
            lines.append(
                f" {marker}{p.get('endpoint', '?'):<20} {health:>6} "
                f"{p.get('failures', 0):>5} {p.get('pings', 0):>6} "
                f"{p.get('rtt_p50_ms', 0.0):>7.2f} "
                f"{p.get('rtt_p99_ms', 0.0):>7.2f} "
                f"{p.get('datasets_owned', 0):>6}")
    c = cluster.get("counters", {})
    lines.append(f"  routing: remote={c.get('remote_queries', 0)} "
                 f"probe_hits={c.get('probe_hits', 0)} "
                 f"probe_misses={c.get('probe_misses', 0)} "
                 f"forwards={c.get('forwards', 0)} "
                 f"failovers={c.get('failovers', 0)} "
                 f"fallbacks={c.get('local_fallbacks', 0)} "
                 f"scatter={c.get('scatter_queries', 0)}")
    lines.append(f"  serving: probe_hits={c.get('probe_hits_served', 0)} "
                 f"probe_misses={c.get('probe_misses_served', 0)}")
    return lines


def render(stats, cluster=None):
    """Returns the dashboard for one stats snapshot as a string."""
    lines = []
    uptime = stats.get("uptime_seconds", 0.0)
    watchdog = stats.get("watchdog", {})
    stuck = watchdog.get("stuck_now", 0)
    health = f"STUCK:{stuck}" if stuck else "healthy"
    lines.append(f"fpmd up {uptime:8.1f}s   [{health}]   "
                 f"watchdog sweeps={watchdog.get('sweeps', 0)} "
                 f"flagged={watchdog.get('flagged', 0)}")
    lines.append("")

    lines.append("  window   count      qps     p50ms     p99ms     maxms")
    for w in stats.get("windows", []):
        lines.append(f"  {w.get('window_s', 0):>5}s {w.get('count', 0):>7} "
                     f"{w.get('qps', 0.0):>8.1f} {w.get('p50_ms', 0.0):>9.2f} "
                     f"{w.get('p99_ms', 0.0):>9.2f} {w.get('max_ms', 0.0):>9.2f}")
    lines.append("")

    sched = stats.get("scheduler", {})
    lines.append(f"scheduler: queue={sched.get('queue_depth', 0)} "
                 f"running={sched.get('running', 0)} "
                 f"submitted={sched.get('submitted', 0)} "
                 f"completed={sched.get('completed', 0)} "
                 f"rejected={sched.get('rejected', 0)}")
    in_flight = sched.get("in_flight", [])
    for job in sorted(in_flight, key=lambda j: -j.get("age_seconds", 0.0)):
        lines.append(f"  in-flight query_id={job.get('query_id')} "
                     f"age={job.get('age_seconds', 0.0):.3f}s")
    lines.append("")

    cache = stats.get("cache", {})
    asked = (cache.get("hits", 0) + cache.get("dominated_hits", 0) +
             cache.get("cross_task_hits", 0) + cache.get("misses", 0))
    ratio = 100.0 * (asked - cache.get("misses", 0)) / asked if asked else 0.0
    lines.append(f"cache: {ratio:.0f}% served "
                 f"(hits={cache.get('hits', 0)} "
                 f"dominated={cache.get('dominated_hits', 0)} "
                 f"cross_task={cache.get('cross_task_hits', 0)} "
                 f"misses={cache.get('misses', 0)})  "
                 f"{cache.get('resident_entries', 0)} entries / "
                 f"{format_bytes(cache.get('resident_bytes', 0))}")

    registry = stats.get("registry", {})
    lines.append(f"registry: loads={registry.get('loads', 0)} "
                 f"hits={registry.get('hits', 0)} "
                 f"appends={registry.get('appends', 0)} "
                 f"evictions={registry.get('evictions', 0)}  "
                 f"{format_bytes(registry.get('resident_bytes', 0))} resident")
    datasets = registry.get("datasets", [])
    if datasets:
        lines.append("  id        versions     txns      bytes  path")
        for d in datasets:
            lines.append(f"  {d.get('id', '?'):<12} {d.get('versions', 0):>4} "
                         f"{d.get('live_transactions', 0):>8} "
                         f"{format_bytes(d.get('bytes', 0)):>10}  "
                         f"{d.get('path', '')}")
    if cluster and cluster.get("enabled"):
        lines.append("")
        lines.extend(render_cluster(cluster))
    return "\n".join(lines)


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="fpm_top.py")
    parser.add_argument("--endpoint",
                        help="fpmd Unix socket path or cluster HOST:PORT")
    parser.add_argument("--socket", dest="endpoint",
                        help="alias for --endpoint")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit")
    parser.add_argument("--json", action="store_true",
                        help="dump raw stats JSON instead of the dashboard")
    args = parser.parse_args(argv[1:])
    if not args.endpoint:
        parser.error("--endpoint (or --socket) is required")

    try:
        while True:
            stats = fetch(args.endpoint, "stats")
            cluster = fetch(args.endpoint, "cluster_info").get("cluster")
            if args.json:
                print(json.dumps(stats, sort_keys=True))
            elif args.once:
                print(render(stats, cluster))
            else:
                # Clear screen + home, like top(1).
                sys.stdout.write("\x1b[2J\x1b[H" + render(stats, cluster)
                                 + "\n")
                sys.stdout.flush()
            if args.once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"fpm_top: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
