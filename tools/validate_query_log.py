#!/usr/bin/env python3
"""Schema validator for fpm query logs (JSON lines).

Usage: validate_query_log.py LOG_FILE [--min-lines=N]

Checks every line of a query log written by QueryLog (fpmd
--query-log=FILE or mine_cli --query-log=FILE):

  * each line parses as one flat JSON object, no blank lines
  * required keys: event, ts_ms, query_id, status
  * event is "query" or "watchdog_stuck"; status is one of
    ok/error/cancelled/deadline/rejected/stuck
  * every present key is known and carries the right JSON type
    (timings are non-negative numbers, counters non-negative ints,
    the rest strings)
  * cache, when present, is a known outcome

(ts_ms ordering is NOT checked: entries stamp the clock before the
append lock, so concurrent queries may land a few ms out of order.)

Exits nonzero with a line-numbered message on the first violation.
--min-lines=N additionally fails if fewer than N lines were seen
(guards against a silently empty log in CI).

Standard library only — runs on any CI python3.
"""

import json
import sys

EVENTS = {"query", "watchdog_stuck"}
STATUSES = {"ok", "error", "cancelled", "deadline", "rejected", "stuck"}
CACHE_OUTCOMES = {"miss", "hit", "dominated", "cross_task", "reseeded"}

# key -> validator; mirrors QueryLogEntry (src/fpm/obs/query_log.h).
def non_negative_int(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def non_negative_number(v):
    return (isinstance(v, (int, float)) and not isinstance(v, bool)
            and v >= 0)


SCHEMA = {
    "event": lambda v: v in EVENTS,
    "ts_ms": lambda v: non_negative_int(v) and v > 0,
    "query_id": non_negative_int,
    "trace_id": lambda v: isinstance(v, str) and v,
    "op": lambda v: isinstance(v, str) and v,
    "task": lambda v: isinstance(v, str) and v,
    "dataset": lambda v: isinstance(v, str) and v,
    "dataset_id": lambda v: isinstance(v, str) and v,
    "version": lambda v: non_negative_int(v) and v > 0,
    "digest": lambda v: isinstance(v, str) and v,
    "algorithm": lambda v: isinstance(v, str) and v,
    "min_support": lambda v: non_negative_int(v) and v > 0,
    "k": lambda v: non_negative_int(v) and v > 0,
    "queue_ms": non_negative_number,
    "mine_ms": non_negative_number,
    "derive_ms": non_negative_number,
    "cache": lambda v: v in CACHE_OUTCOMES,
    "num_results": non_negative_int,
    "peak_bytes": non_negative_int,
    "status": lambda v: v in STATUSES,
    "reason": lambda v: isinstance(v, str) and v,
}
REQUIRED = ("event", "ts_ms", "query_id", "status")


def validate_line(number, line):
    """Returns an error message for one log line, empty if valid."""
    try:
        entry = json.loads(line)
    except json.JSONDecodeError as error:
        return f"line {number}: not JSON ({error})"
    if not isinstance(entry, dict):
        return f"line {number}: not a JSON object"
    for key in REQUIRED:
        if key not in entry:
            return f"line {number}: missing required key '{key}'"
    for key, value in entry.items():
        check = SCHEMA.get(key)
        if check is None:
            return f"line {number}: unknown key '{key}'"
        if not check(value):
            return f"line {number}: bad value for '{key}': {value!r}"
    if entry["event"] == "watchdog_stuck" and entry["status"] != "stuck":
        return (f"line {number}: watchdog_stuck entry has "
                f"status '{entry['status']}', want 'stuck'")
    return ""


def main(argv):
    path = None
    min_lines = 0
    for arg in argv[1:]:
        if arg.startswith("--min-lines="):
            min_lines = int(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        elif path is None:
            path = arg
        else:
            print("too many arguments", file=sys.stderr)
            return 2
    if path is None:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    seen = 0
    with open(path, "r", encoding="utf-8") as f:
        for number, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line:
                print(f"FAIL: line {number}: blank line", file=sys.stderr)
                return 1
            error = validate_line(number, line)
            if error:
                print(f"FAIL: {error}", file=sys.stderr)
                return 1
            seen += 1

    if seen < min_lines:
        print(f"FAIL: {seen} lines in {path}, want >= {min_lines}",
              file=sys.stderr)
        return 1
    print(f"query log OK: {seen} valid lines in {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
