#!/usr/bin/env python3
"""Validate BENCH_<name>.json files against the bench report schema.

Usage: validate_bench_json.py FILE [FILE...]

Checks the schema documented in EXPERIMENTS.md ("Machine-readable
output"): required top-level keys and types, schema_version == 2, the
host block, the perf_counters availability block (a reason is required
exactly when counters are unavailable), and the shape of every row's
optional "phases" object, and — new in v2 — that every row tagged
"driver": "nested" carries the task load-balance fields (spawn/cutoff
counts and max/mean per-worker busy seconds). Service-throughput rows
(any row carrying "qps", as written by bench_service_throughput) must
also carry clients, p50_ms and p99_ms, with qps > 0, clients >= 1 and
p99_ms >= p50_ms. Rows tagged with "task" (the mixed-task service
sections) must name one of the five mining tasks. Incremental-ingest
rows (any row carrying "delta_frac", as written by
bench_incremental_ingest) must carry a boolean "rebuild" flag plus
incremental_ms/rebuild_ms/ratio, with delta_frac in (0, 1].
Out-of-core rows (any row carrying "storage", as written by
bench_out_of_core) must tag storage as packed|memory and stage as
cold|warm, with non-negative load_ms/mine_ms/total_ms. Cluster
fan-out rows (any row carrying "shards", as written by
bench_cluster_fanout) must carry the two SON phase timings plus the
candidate and result counts, with shards >= 1. Exits nonzero with one
line per problem.

Thread-scaling rows (any row carrying "threads" > 1) measured on a
host whose recorded host.logical_cpus is 1 cannot show real
concurrency; the validator prints a WARNING for them (the file still
validates — the schema is intact, the numbers are just ~1x by
construction).

Standard library only — runs on any CI python3.
"""

import json
import sys

SCHEMA_VERSION = 2

TOP_KEYS = {
    "schema_version": int,
    "bench": str,
    "title": str,
    "host": dict,
    "perf_counters": dict,
    "scale": (int, float),
    "repeats": int,
    "rows": list,
}

HOST_KEYS = {
    "cpu_model": str,
    "logical_cpus": int,
    "l1d_bytes": int,
    "l2_bytes": int,
    "l3_bytes": int,
}

# Load-balance fields every "driver": "nested" row must carry (v2).
NESTED_ROW_KEYS = (
    "task_spawns",
    "task_cutoffs",
    "task_busy_max_seconds",
    "task_busy_mean_seconds",
    "task_imbalance",
)

# Latency fields every service-throughput row (tagged by "qps") must
# carry alongside it.
SERVICE_ROW_KEYS = ("clients", "p50_ms", "p99_ms")

# Timing fields every incremental-ingest row (tagged by "delta_frac")
# must carry alongside it.
INGEST_ROW_KEYS = ("incremental_ms", "rebuild_ms", "ratio")

# Timing fields every out-of-core row (tagged by "storage") must carry.
OUT_OF_CORE_ROW_KEYS = ("load_ms", "mine_ms", "total_ms")

# Fields every cluster fan-out row (tagged by "shards") must carry:
# the SON phase timings and the candidate/result counts.
CLUSTER_ROW_KEYS = ("phase1_ms", "count_ms", "total_ms", "candidates",
                    "num_results")

# Legal values of the out-of-core row tags.
STORAGE_KINDS = ("packed", "memory")
STORAGE_STAGES = ("cold", "warm")

# Legal values of a row's "task" tag (the MiningQuery task family).
MINING_TASKS = ("frequent", "closed", "maximal", "top_k", "rules")


def check_service_row(row, i, err):
    """A row with "qps" is a service-throughput measurement: it needs
    the client count and latency percentiles, and they must be
    internally consistent."""
    ok = True
    for key in SERVICE_ROW_KEYS:
        v = row.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            err(f"rows[{i}] has 'qps' but '{key}' missing or not a number")
            ok = False
    qps = row["qps"]
    if not isinstance(qps, (int, float)) or isinstance(qps, bool):
        err(f"rows[{i}] 'qps' is not a number")
        return
    if qps <= 0:
        err(f"rows[{i}] qps {qps} <= 0")
    if not ok:
        return
    if row["clients"] < 1:
        err(f"rows[{i}] clients {row['clients']} < 1")
    if row["p99_ms"] < row["p50_ms"]:
        err(f"rows[{i}] p99_ms {row['p99_ms']} < p50_ms {row['p50_ms']}")


def check_ingest_row(row, i, err):
    """A row with "delta_frac" is an incremental-ingest measurement: it
    needs the rebuild flag and both timings, and the fraction must be a
    real fraction of the stream."""
    frac = row["delta_frac"]
    if not isinstance(frac, (int, float)) or isinstance(frac, bool):
        err(f"rows[{i}] 'delta_frac' is not a number")
    elif not 0 < frac <= 1:
        err(f"rows[{i}] delta_frac {frac} not in (0, 1]")
    if not isinstance(row.get("rebuild"), bool):
        err(f"rows[{i}] has 'delta_frac' but 'rebuild' missing or "
            "not a bool")
    for key in INGEST_ROW_KEYS:
        v = row.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            err(f"rows[{i}] has 'delta_frac' but '{key}' missing or "
                "not a number")
        elif v < 0:
            err(f"rows[{i}] {key} {v} < 0")


def check_out_of_core_row(row, i, err):
    """A row with "storage" is an out-of-core measurement: the backend
    and stage tags must be legal and the timing columns present."""
    if row["storage"] not in STORAGE_KINDS:
        err(f"rows[{i}] 'storage' {row['storage']!r} not one of "
            f"{'|'.join(STORAGE_KINDS)}")
    if row.get("stage") not in STORAGE_STAGES:
        err(f"rows[{i}] has 'storage' but 'stage' not one of "
            f"{'|'.join(STORAGE_STAGES)}")
    for key in OUT_OF_CORE_ROW_KEYS:
        v = row.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            err(f"rows[{i}] has 'storage' but '{key}' missing or "
                "not a number")
        elif v < 0:
            err(f"rows[{i}] {key} {v} < 0")


def check_cluster_row(row, i, err):
    """A row with "shards" is a cluster fan-out measurement: both SON
    phase timings and the candidate/result counts must be present, and
    phase 1 cannot yield fewer candidates than survive the filter."""
    shards = row["shards"]
    if not isinstance(shards, int) or isinstance(shards, bool):
        err(f"rows[{i}] 'shards' is not an integer")
    elif shards < 1:
        err(f"rows[{i}] shards {shards} < 1")
    ok = True
    for key in CLUSTER_ROW_KEYS:
        v = row.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            err(f"rows[{i}] has 'shards' but '{key}' missing or "
                "not a number")
            ok = False
        elif v < 0:
            err(f"rows[{i}] {key} {v} < 0")
    if ok and row["num_results"] > row["candidates"]:
        err(f"rows[{i}] num_results {row['num_results']} > candidates "
            f"{row['candidates']} (the SON filter cannot add itemsets)")


def check(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]

    for key, want in TOP_KEYS.items():
        if key not in doc:
            err(f"missing top-level key '{key}'")
        elif not isinstance(doc[key], want) or isinstance(doc[key], bool):
            err(f"'{key}' has type {type(doc[key]).__name__}")
    if errors:
        return errors

    if doc["schema_version"] != SCHEMA_VERSION:
        err(f"schema_version {doc['schema_version']} != {SCHEMA_VERSION}")
    if not doc["bench"]:
        err("'bench' is empty")
    if doc["repeats"] < 1:
        err(f"repeats {doc['repeats']} < 1")
    if doc["scale"] <= 0:
        err(f"scale {doc['scale']} <= 0")

    for key, want in HOST_KEYS.items():
        if key not in doc["host"]:
            err(f"host missing '{key}'")
        elif not isinstance(doc["host"][key], want):
            err(f"host '{key}' has type {type(doc['host'][key]).__name__}")

    pc = doc["perf_counters"]
    if not isinstance(pc.get("available"), bool):
        err("perf_counters.available missing or not a bool")
    elif not pc["available"] and not isinstance(pc.get("reason"), str):
        err("perf_counters unavailable but no 'reason' string")

    # Thread-scaling rows on a 1-logical-CPU host: schema-valid, but
    # every speedup is ~1x by construction (the caveat EXPERIMENTS.md
    # attaches to BENCH_parallel_scaling). Warn, don't fail.
    logical_cpus = doc["host"].get("logical_cpus")
    if logical_cpus == 1:
        scaling = sum(1 for row in doc["rows"]
                      if isinstance(row, dict)
                      and isinstance(row.get("threads"), int)
                      and row["threads"] > 1)
        if scaling:
            print(f"{path}: WARNING: {scaling} thread-scaling row(s) "
                  "(threads > 1) recorded on a host with 1 logical CPU — "
                  "speedups are ~1x by construction, not evidence of "
                  "scaling", file=sys.stderr)

    if not doc["rows"]:
        err("'rows' is empty")
    for i, row in enumerate(doc["rows"]):
        if not isinstance(row, dict):
            err(f"rows[{i}] is not an object")
            continue
        if "qps" in row:
            check_service_row(row, i, err)
        if "delta_frac" in row:
            check_ingest_row(row, i, err)
        if "storage" in row:
            check_out_of_core_row(row, i, err)
        if "shards" in row:
            check_cluster_row(row, i, err)
        if "task" in row and row["task"] not in MINING_TASKS:
            err(f"rows[{i}] 'task' {row['task']!r} not one of "
                f"{'|'.join(MINING_TASKS)}")
        if row.get("driver") == "nested":
            for key in NESTED_ROW_KEYS:
                v = row.get(key)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    err(f"rows[{i}] driver=nested but '{key}' missing "
                        "or not a number")
            busy_max = row.get("task_busy_max_seconds", 0)
            busy_mean = row.get("task_busy_mean_seconds", 0)
            if (isinstance(busy_max, (int, float))
                    and isinstance(busy_mean, (int, float))
                    and busy_max < busy_mean):
                err(f"rows[{i}] task_busy_max_seconds {busy_max} < "
                    f"task_busy_mean_seconds {busy_mean}")
        phases = row.get("phases")
        if phases is None:
            continue
        if not isinstance(phases, dict):
            err(f"rows[{i}].phases is not an object")
            continue
        for phase, data in phases.items():
            where = f"rows[{i}].phases['{phase}']"
            if not isinstance(data, dict):
                err(f"{where} is not an object")
                continue
            if not isinstance(data.get("seconds"), (int, float)):
                err(f"{where}.seconds missing or not a number")
            for table in ("counters", "derived"):
                values = data.get(table, {})
                if not isinstance(values, dict):
                    err(f"{where}.{table} is not an object")
                    continue
                for name, v in values.items():
                    if not isinstance(v, int) or isinstance(v, bool):
                        err(f"{where}.{table}['{name}'] is not an integer")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        errors = check(path)
        if errors:
            failures += 1
            for e in errors:
                print(e, file=sys.stderr)
        else:
            with open(path, encoding="utf-8") as f:
                n = len(json.load(f)["rows"])
            print(f"{path}: OK ({n} rows)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
