#!/usr/bin/env python3
"""End-to-end smoke test of fpmd cluster mode (DESIGN.md §19).

Usage: cluster_smoke.py FPMD_BINARY FPM_CLIENT_BINARY

Starts a 3-node cluster on loopback TCP (plus a plain single-node
reference daemon) over one shared dataset, then proves the routing
contract from the outside:

  1. every node answers ping on its Unix socket AND its cluster TCP
     listener (fpm_client --endpoint HOST:PORT — the shared dialer)
  2. cluster-info places the dataset on exactly --replicas=2 owners,
     identically from every node (placement is a pure function of the
     digest + peer list)
  3. a query sent to the NON-owner is forwarded: the answer is
     byte-identical (itemsets, supports, emission order) to the
     single-node reference, and carries peer=<the serving owner>
  4. the same query again is served by a remote cache probe: the
     response says cache=hit, the non-owner's probe_hits counter rises,
     some owner's probe_hits_served rises, and the owners mined exactly
     once between them (sum of fpm.service.cache.misses == 1; the
     non-owner mined nothing)
  5. --scatter fans the query across both owners (SON two-phase) and
     the merged result is set-equal to the reference, in canonical
     order, with shards=2
  6. fpm_top.py renders the cluster panel against a live node over TCP
  7. SIGKILL the primary owner: the next query (fresh threshold, so no
     cache anywhere) still answers correctly via the surviving
     replica, the non-owner's failovers counter is >= 1, and
     cluster-info now reports the killed peer unhealthy; dialing the
     dead node's TCP port fails with the shared dialer's "dial ..."
     error
  8. clean shutdown of the survivors

Health pings are configured slow (60 s) on purpose: the smoke proves
failure discovery through real traffic (probe/forward failures mark
the peer unhealthy and fail over within one query), not through the
background pinger the unit tests cover.

Standard library only — runs on any CI python3.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def run_client(client, endpoint, *args, allow_fail=False):
    cmd = [client, f"--endpoint={endpoint}", *args]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if proc.returncode != 0 and not allow_fail:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    if allow_fail:
        return proc
    return [json.loads(line) for line in proc.stdout.splitlines() if line]


def mined_fields(response):
    """The parts of a query response that must not depend on which node
    answered: the task, the count, and the itemset listing in emission
    order."""
    return json.dumps({"task": response.get("task"),
                       "num_frequent": response.get("num_frequent"),
                       "itemsets": response.get("itemsets")})


def itemset_set(response):
    return {(tuple(e["items"]), e["support"])
            for e in response.get("itemsets", [])}


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    fpmd, client = argv[1], argv[2]

    tmp = tempfile.mkdtemp(prefix="fpm_cluster_smoke_")
    dataset = os.path.join(tmp, "cluster.dat")
    with open(dataset, "w", encoding="utf-8") as f:
        for row in ["1 2 3", "1 2", "1 3", "2 3", "1 2 3 4", "2 3 4"]:
            f.write(row + "\n")

    ports = [free_port() for _ in range(3)]
    peers = [f"127.0.0.1:{p}" for p in ports]
    cluster_arg = ",".join(peers)
    sockets = [os.path.join(tmp, f"n{i}.sock") for i in range(3)]
    ref_socket = os.path.join(tmp, "ref.sock")

    daemons = []
    try:
        for i in range(3):
            daemons.append(subprocess.Popen(
                [fpmd, f"--socket={sockets[i]}", "--threads=2",
                 f"--cluster={cluster_arg}", f"--self={peers[i]}",
                 "--replicas=2", "--ping-interval-s=60"],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True))
        reference = subprocess.Popen(
            [fpmd, f"--socket={ref_socket}", "--threads=2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        daemons.append(reference)

        for path, daemon in zip(sockets + [ref_socket], daemons):
            for _ in range(200):
                if os.path.exists(path):
                    break
                if daemon.poll() is not None:
                    fail(f"fpmd exited early:\n{daemon.stderr.read()}")
                time.sleep(0.05)
            else:
                fail(f"fpmd never created {path}")

        # 1. Liveness on both listeners; --endpoint takes either form.
        for i in range(3):
            for endpoint in (sockets[i], peers[i]):
                if run_client(client, endpoint, "ping") != [{"ok": True}]:
                    fail(f"ping via {endpoint} failed")

        # 2. Identical placement from every node.
        placements = []
        for i in range(3):
            info = run_client(client, sockets[i], "cluster-info",
                              dataset)[0]["cluster"]
            if not info.get("enabled"):
                fail(f"node {i} reports cluster disabled")
            if len(info.get("peers", [])) != 3:
                fail(f"node {i} sees {len(info.get('peers', []))} peers")
            placements.append(info["placement"])
        if len({json.dumps(p, sort_keys=True) for p in placements}) != 1:
            fail(f"nodes disagree on placement: {placements}")
        owners = placements[0]["owners"]
        if len(owners) != 2 or not set(owners) <= set(peers):
            fail(f"placement owners = {owners}, want 2 of {peers}")
        non_owner = next(i for i in range(3) if peers[i] not in owners)
        by_peer = {peers[i]: i for i in range(3)}
        print(f"placement: digest {placements[0]['digest']} -> {owners}, "
              f"non-owner {peers[non_owner]}")

        # 3. Forwarded query == single-node reference, byte for byte.
        reference_q2 = run_client(client, ref_socket, "query", dataset,
                                  "2")[0]
        forwarded = run_client(client, sockets[non_owner], "query", dataset,
                               "2")[0]
        if forwarded.get("peer") not in owners:
            fail(f"forwarded query peer = {forwarded.get('peer')}, "
                 f"want one of {owners}")
        if forwarded.get("cache") != "miss":
            fail(f"first forwarded query cache = {forwarded.get('cache')}, "
                 "want 'miss'")
        if mined_fields(forwarded) != mined_fields(reference_q2):
            fail("forwarded result differs from the single-node reference:"
                 f"\n  cluster:   {mined_fields(forwarded)}"
                 f"\n  reference: {mined_fields(reference_q2)}")

        # 4. Repeat: answered by a remote cache probe, nobody re-mines.
        probed = run_client(client, sockets[non_owner], "query", dataset,
                            "2")[0]
        if probed.get("cache") != "hit" or probed.get("peer") not in owners:
            fail(f"repeat query = cache:{probed.get('cache')} "
                 f"peer:{probed.get('peer')}, want a remote cache hit")
        if mined_fields(probed) != mined_fields(reference_q2):
            fail("probe-served result differs from the reference")
        info = run_client(client, sockets[non_owner], "cluster-info")[0]
        counters = info["cluster"]["counters"]
        if counters.get("probe_hits", 0) < 1:
            fail(f"non-owner probe_hits = {counters.get('probe_hits')}, "
                 "want >= 1")
        served = sum(
            run_client(client, sockets[by_peer[o]],
                       "cluster-info")[0]["cluster"]["counters"]
            .get("probe_hits_served", 0) for o in owners)
        if served < 1:
            fail(f"owners' probe_hits_served sum = {served}, want >= 1")
        # "No second mine": cache probes never submit scheduler jobs,
        # a mine always does — so across both owners exactly one job
        # ran for the two queries, and the non-owner ran none (it only
        # routed). (fpm.service.cache.misses would over-count here:
        # every probe lookup that finds nothing is a counted miss.)
        owner_jobs = sum(
            run_client(client, sockets[by_peer[o]], "stats")[0]
            .get("scheduler", {}).get("completed", 0) for o in owners)
        if owner_jobs != 1:
            fail(f"owners ran {owner_jobs} mining jobs for the repeated "
                 "query, want exactly 1 (the repeat must come from the "
                 "cache)")
        non_owner_jobs = run_client(
            client, sockets[non_owner], "stats")[0].get(
            "scheduler", {}).get("completed", 0)
        if non_owner_jobs != 0:
            fail(f"non-owner ran {non_owner_jobs} mining jobs, want 0 "
                 "(it should only route)")

        # 5. Scatter: SON fan-out across both owners, set-equal result.
        scattered = run_client(client, sockets[non_owner], "query", dataset,
                               "2", "--scatter")[0]
        if scattered.get("shards") != 2:
            fail(f"scatter shards = {scattered.get('shards')}, want 2")
        if itemset_set(scattered) != itemset_set(reference_q2):
            fail("scatter result set differs from the reference")
        if scattered.get("num_frequent") != reference_q2.get("num_frequent"):
            fail("scatter num_frequent differs from the reference")

        # 6. The dashboard renders the cluster panel over TCP.
        tools_dir = os.path.dirname(os.path.abspath(__file__))
        top = subprocess.run(
            [sys.executable, os.path.join(tools_dir, "fpm_top.py"),
             f"--endpoint={peers[non_owner]}", "--once"],
            capture_output=True, text=True, timeout=60)
        if top.returncode != 0:
            fail(f"fpm_top.py --once failed ({top.returncode}):\n"
                 f"{top.stdout}{top.stderr}")
        for needle in (f"cluster: self={peers[non_owner]}", "routing:",
                       owners[0]):
            if needle not in top.stdout:
                fail(f"fpm_top output missing {needle!r}:\n{top.stdout}")

        # 7. Kill the primary owner; the replica answers, failover is
        # counted, and the corpse is marked unhealthy.
        primary = owners[0]
        survivor = owners[1]
        daemons[by_peer[primary]].send_signal(signal.SIGKILL)
        daemons[by_peer[primary]].wait(timeout=30)

        failover_q3 = run_client(client, sockets[non_owner], "query",
                                 dataset, "3")[0]
        reference_q3 = run_client(client, ref_socket, "query", dataset,
                                  "3")[0]
        if mined_fields(failover_q3) != mined_fields(reference_q3):
            fail("post-kill result differs from the single-node reference")
        if failover_q3.get("peer") != survivor:
            fail(f"post-kill query peer = {failover_q3.get('peer')}, "
                 f"want the survivor {survivor}")
        info = run_client(client, sockets[non_owner], "cluster-info")[0]
        cluster = info["cluster"]
        if cluster["counters"].get("failovers", 0) < 1:
            fail(f"failovers = {cluster['counters'].get('failovers')}, "
                 "want >= 1 after killing the primary owner")
        dead_rows = [p for p in cluster["peers"] if p["endpoint"] == primary]
        if len(dead_rows) != 1 or dead_rows[0].get("healthy"):
            fail(f"killed owner not reported unhealthy: {dead_rows}")

        # The dead node's TCP port refuses with the shared dialer's
        # error shape (the same message fpm_client unit tests pin).
        refused = run_client(client, primary, "ping", allow_fail=True)
        if refused.returncode == 0 or not refused.stderr.startswith(
                f"dial {primary}: "):
            fail(f"dial to dead node: rc={refused.returncode}, "
                 f"stderr={refused.stderr!r}, want a 'dial {primary}: ...' "
                 "error")

        # 8. Clean shutdown of the survivors.
        for i in range(3):
            if i == by_peer[primary]:
                continue
            run_client(client, sockets[i], "shutdown")
        run_client(client, ref_socket, "shutdown")
        for i, daemon in enumerate(daemons):
            if daemon.poll() is None and daemon.wait(timeout=30) != 0:
                fail(f"daemon {i} exited {daemon.returncode} after shutdown")
    finally:
        for daemon in daemons:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    print("cluster smoke: OK (3 nodes, shared placement, forwarded query "
          "byte-identical, repeat served by remote cache probe with one "
          "mine total, scatter set-equal, dashboard rendered, failover "
          "after SIGKILL answered by the replica with failovers >= 1, "
          "clean shutdown)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
