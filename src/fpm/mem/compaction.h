// Pattern P4 — compaction (§3.3): copy data scattered across memory into
// consecutive locations before a phase that accesses it repeatedly. The
// copy cost must be amortized over many subsequent accesses.
//
// The LCM case study compacts the per-item frequency counters out of the
// occurrence-array column headers (AoS) into one contiguous array (SoA);
// CounterTable below is that transformation made reusable.

#ifndef FPM_MEM_COMPACTION_H_
#define FPM_MEM_COMPACTION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace fpm {

/// Gathers scattered values into a fresh contiguous vector.
/// `pointers` may contain nulls, which are skipped.
template <typename T>
std::vector<T> CompactCopy(std::span<const T* const> pointers) {
  std::vector<T> out;
  out.reserve(pointers.size());
  for (const T* p : pointers) {
    if (p != nullptr) out.push_back(*p);
  }
  return out;
}

/// Gathers `source[index]` for each index into a contiguous vector.
template <typename T, typename Index>
std::vector<T> CompactGather(std::span<const T> source,
                             std::span<const Index> indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (Index i : indices) out.push_back(source[static_cast<size_t>(i)]);
  return out;
}

/// Contiguous counter array used by the tuned LCM: the compacted (SoA)
/// alternative to keeping one counter inside each column-header struct.
class CounterTable {
 public:
  explicit CounterTable(size_t n) : counters_(n, 0) {}

  void Add(uint32_t index, uint32_t delta) { counters_[index] += delta; }
  uint32_t Get(uint32_t index) const { return counters_[index]; }

  /// Zeroes the counters touched by `touched` only — O(|touched|), the
  /// sparse-reset idiom miners rely on between projections.
  void ResetTouched(std::span<const uint32_t> touched) {
    for (uint32_t i : touched) counters_[i] = 0;
  }

  /// Zeroes everything.
  void ResetAll() { std::fill(counters_.begin(), counters_.end(), 0); }

  size_t size() const { return counters_.size(); }
  const uint32_t* data() const { return counters_.data(); }

 private:
  std::vector<uint32_t> counters_;
};

}  // namespace fpm

#endif  // FPM_MEM_COMPACTION_H_
