// Pattern P3 — aggregation of linked structures into supernodes (§3.3).
//
// Pointer-chasing lists pay a full memory latency per node and waste
// cache-line capacity when nodes are smaller than a line. Aggregation
// packs up to K consecutive payloads into one contiguous *supernode*;
// traversal touches one line per K payloads and dereferences one pointer
// per supernode. "Making each supernode the size of a cache line seems
// to be optimal" — the ablation bench sweeps K to test that claim.
//
// Aggregation is efficient only when the structure is seldom updated
// (§3.3); AggregatedList is therefore append-only/freeze-style.

#ifndef FPM_MEM_AGGREGATION_H_
#define FPM_MEM_AGGREGATION_H_

#include <cstdint>

#include "fpm/common/arena.h"
#include "fpm/common/prefetch.h"

namespace fpm {

/// Classic pointer-chasing singly linked list on an arena — the baseline
/// P3 transforms. Kept deliberately naive: one node per allocation, next
/// pointer first so traversal is a dependent-load chain.
template <typename T>
class LinkedList {
 public:
  struct Node {
    Node* next;
    T value;
  };

  explicit LinkedList(Arena* arena) : arena_(arena) {}

  /// Appends in O(1); preserves insertion order.
  void PushBack(const T& value) {
    Node* n = static_cast<Node*>(arena_->Allocate(sizeof(Node), alignof(Node)));
    n->next = nullptr;
    n->value = value;
    if (tail_ == nullptr) {
      head_ = tail_ = n;
    } else {
      tail_->next = n;
      tail_ = n;
    }
    ++size_;
  }

  const Node* head() const { return head_; }
  size_t size() const { return size_; }
  bool empty() const { return head_ == nullptr; }

  /// Visits each element in order.
  template <typename Visit>
  void ForEach(Visit&& visit) const {
    for (const Node* n = head_; n != nullptr; n = n->next) visit(n->value);
  }

 private:
  Arena* arena_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  size_t size_ = 0;
};

/// Aggregated (supernode) singly linked list. Each supernode stores up to
/// `capacity` payloads contiguously. Append-only; `capacity` is chosen at
/// construction (default sizes the supernode to one cache line).
template <typename T>
class AggregatedList {
 public:
  struct SuperNode {
    SuperNode* next;
    uint32_t count;
    // Payloads follow the header inline (flexible-array idiom via
    // over-allocation on the arena).
    T values[1];
  };

  /// Number of payloads per supernode such that the supernode occupies
  /// approximately one cache line.
  static constexpr uint32_t CacheLineCapacity() {
    constexpr size_t header = sizeof(SuperNode) - sizeof(T);
    constexpr size_t avail =
        kCacheLineBytes > header ? kCacheLineBytes - header : sizeof(T);
    constexpr uint32_t k = static_cast<uint32_t>(avail / sizeof(T));
    return k == 0 ? 1 : k;
  }

  explicit AggregatedList(Arena* arena, uint32_t capacity = CacheLineCapacity())
      : arena_(arena), capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends in amortized O(1); preserves insertion order.
  void PushBack(const T& value) {
    if (tail_ == nullptr || tail_->count == capacity_) {
      SuperNode* n = AllocateSuperNode();
      if (tail_ == nullptr) {
        head_ = tail_ = n;
      } else {
        tail_->next = n;
        tail_ = n;
      }
    }
    tail_->values[tail_->count++] = value;
    ++size_;
  }

  const SuperNode* head() const { return head_; }
  size_t size() const { return size_; }
  bool empty() const { return head_ == nullptr; }
  uint32_t capacity() const { return capacity_; }

  /// Visits each element in order. One dependent load per supernode
  /// instead of one per element.
  template <typename Visit>
  void ForEach(Visit&& visit) const {
    for (const SuperNode* n = head_; n != nullptr; n = n->next) {
      for (uint32_t i = 0; i < n->count; ++i) visit(n->values[i]);
    }
  }

  /// Like ForEach but prefetches the successor supernode while the
  /// current one is processed (P3 + P7 composition).
  template <typename Visit>
  void ForEachPrefetched(Visit&& visit) const {
    for (const SuperNode* n = head_; n != nullptr; n = n->next) {
      Prefetch(n->next);
      for (uint32_t i = 0; i < n->count; ++i) visit(n->values[i]);
    }
  }

 private:
  SuperNode* AllocateSuperNode() {
    static_assert(std::is_trivially_destructible_v<T>);
    const size_t bytes = sizeof(SuperNode) + (capacity_ - 1) * sizeof(T);
    auto* n =
        static_cast<SuperNode*>(arena_->Allocate(bytes, alignof(SuperNode)));
    n->next = nullptr;
    n->count = 0;
    return n;
  }

  Arena* arena_;
  uint32_t capacity_;
  SuperNode* head_ = nullptr;
  SuperNode* tail_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fpm

#endif  // FPM_MEM_AGGREGATION_H_
