#include "fpm/mem/prefetch_pointers.h"

#include "fpm/common/logging.h"

namespace fpm {

std::vector<uint32_t> BuildJumpPointers(std::span<const uint32_t> heads,
                                        std::span<const uint32_t> next,
                                        uint32_t distance) {
  FPM_CHECK(distance > 0) << "jump distance must be positive";
  std::vector<uint32_t> jump(next.size(), kInvalidIndex);
  std::vector<uint32_t> window(distance);
  for (uint32_t head : heads) {
    uint32_t pos = 0;
    for (uint32_t n = head; n != kInvalidIndex; n = next[n], ++pos) {
      FPM_DCHECK(n < next.size());
      if (pos >= distance) {
        jump[window[pos % distance]] = n;
      }
      window[pos % distance] = n;
    }
  }
  return jump;
}

}  // namespace fpm
