// Pattern P7.1 — wave-front prefetching (§3.4, Figure 5).
//
// Arrays of *short* linked lists defeat classic linked-list prefetchers:
// each list ends before a prefetch pipeline can fill. The wave-front
// schedule instead prefetches across lists, as a software pipeline: a
// window of the next `depth` lists each holds a cursor; every iteration
// advances each cursor one node (dereferencing a node prefetched in the
// previous iteration) and prefetches the new node. A list that spends
// `depth` iterations in the window arrives with its first `depth` nodes
// already in cache — the diagonal wave of Figure 5.

#ifndef FPM_MEM_WAVEFRONT_H_
#define FPM_MEM_WAVEFRONT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fpm/common/prefetch.h"

namespace fpm {

/// Tuning knobs for the wave-front schedule.
struct WaveFrontOptions {
  /// Window size: how many upcoming lists carry prefetch cursors. Also
  /// bounds how many nodes of each list are prefetched ahead of its
  /// traversal. The sweep in bench_micro_patterns tunes this.
  size_t depth = 4;
};

/// Traverses lists `heads[0..n)` in order, visiting every node, while
/// running the wave-front prefetch pipeline over the next `depth` lists.
///
/// `next(node)` returns the successor or nullptr; `visit(index, node)`
/// is called for each node of each list in order.
template <typename Node, typename NextFn, typename VisitFn>
void WaveFrontTraverse(std::span<Node* const> heads, NextFn next,
                       VisitFn visit,
                       const WaveFrontOptions& options = WaveFrontOptions{}) {
  const size_t n = heads.size();
  if (n == 0) return;
  const size_t depth = options.depth == 0 ? 1 : options.depth;

  // wave[j] = prefetch cursor inside list (i + 1 + j); nullptr when that
  // list is exhausted or out of range. Each cursor's node has already
  // been prefetched.
  std::vector<Node*> wave(depth, nullptr);
  for (size_t j = 0; j < depth; ++j) {
    if (1 + j < n) {
      wave[j] = heads[1 + j];
      Prefetch(wave[j]);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    // Advance the wave: each cursor steps one node (its current node was
    // prefetched in an earlier iteration, so reading `next` is cheap)
    // and prefetches the newly exposed node.
    for (size_t j = 0; j < depth; ++j) {
      if (wave[j] != nullptr) {
        Node* successor = next(wave[j]);
        if (successor != nullptr) Prefetch(successor);
        wave[j] = successor;
      }
    }

    for (Node* node = heads[i]; node != nullptr; node = next(node)) {
      visit(i, node);
    }

    // Slide the window: list i+1's cursor leaves, list i+1+depth enters.
    for (size_t j = 0; j + 1 < depth; ++j) wave[j] = wave[j + 1];
    const size_t entrant = i + 1 + depth;
    if (entrant < n) {
      wave[depth - 1] = heads[entrant];
      Prefetch(wave[depth - 1]);
    } else {
      wave[depth - 1] = nullptr;
    }
  }
}

/// Index-based variant: chains expressed as next-index arrays (the form
/// LCM's occurrence structure uses). `~0u` terminates a chain. The node
/// payload of index k lives at `node_base + k * node_stride`.
template <typename VisitFn>
void WaveFrontTraverseIndexed(std::span<const uint32_t> heads,
                              std::span<const uint32_t> next,
                              const void* node_base, size_t node_stride,
                              VisitFn visit,
                              const WaveFrontOptions& options =
                                  WaveFrontOptions{}) {
  constexpr uint32_t kEnd = ~static_cast<uint32_t>(0);
  const size_t n = heads.size();
  if (n == 0) return;
  const size_t depth = options.depth == 0 ? 1 : options.depth;
  const char* base = static_cast<const char*>(node_base);
  auto prefetch_node = [&](uint32_t idx) {
    Prefetch(base + static_cast<size_t>(idx) * node_stride);
    Prefetch(&next[idx]);
  };

  std::vector<uint32_t> wave(depth, kEnd);
  for (size_t j = 0; j < depth; ++j) {
    if (1 + j < n && heads[1 + j] != kEnd) {
      wave[j] = heads[1 + j];
      prefetch_node(wave[j]);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < depth; ++j) {
      if (wave[j] != kEnd) {
        const uint32_t successor = next[wave[j]];
        if (successor != kEnd) prefetch_node(successor);
        wave[j] = successor;
      }
    }
    for (uint32_t idx = heads[i]; idx != kEnd; idx = next[idx]) {
      visit(i, idx);
    }
    for (size_t j = 0; j + 1 < depth; ++j) wave[j] = wave[j + 1];
    const size_t entrant = i + 1 + depth;
    wave[depth - 1] = kEnd;
    if (entrant < n && heads[entrant] != kEnd) {
      wave[depth - 1] = heads[entrant];
      prefetch_node(wave[depth - 1]);
    }
  }
}

}  // namespace fpm

#endif  // FPM_MEM_WAVEFRONT_H_
