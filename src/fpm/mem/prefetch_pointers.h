// Pattern P5 — prefetch (jump) pointers, after Roth & Sohi (ISCA'99).
//
// A preprocessing pass stores, at each node of a linked structure, a
// pointer to the node `distance` hops ahead. A traversal then prefetches
// through the jump pointer while processing the current node, overlapping
// `distance` node-latencies. Costs extra storage and preprocessing time;
// mispredicted prefetches (structure mutated after the pass) waste
// bandwidth but stay correct.

#ifndef FPM_MEM_PREFETCH_POINTERS_H_
#define FPM_MEM_PREFETCH_POINTERS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "fpm/common/prefetch.h"

namespace fpm {

/// Index-based jump-pointer table: for chains expressed as next-index
/// arrays (kInvalidIndex terminates), jump[i] = index `distance` hops
/// ahead of i, or kInvalidIndex when the chain ends earlier.
inline constexpr uint32_t kInvalidIndex = ~static_cast<uint32_t>(0);

/// Builds jump pointers for every node of every chain in O(total nodes).
/// `heads` are the chain entry points; nodes must not be shared between
/// chains (true for node-link lists in an FP-tree).
std::vector<uint32_t> BuildJumpPointers(std::span<const uint32_t> heads,
                                        std::span<const uint32_t> next,
                                        uint32_t distance);

/// Pointer-based variant for arbitrary node types. NextFn maps a node
/// pointer to its successor (or nullptr); the computed jump target is
/// stored by calling `set_jump(node, target)` (target may be nullptr for
/// the final `distance` nodes of the chain).
template <typename Node, typename NextFn, typename SetJumpFn>
void BuildJumpPointersForChain(Node* head, uint32_t distance, NextFn next,
                               SetJumpFn set_jump) {
  // Sliding window of `distance` trailing nodes.
  std::vector<Node*> window;
  window.reserve(distance);
  uint32_t pos = 0;
  for (Node* n = head; n != nullptr; n = next(n), ++pos) {
    if (window.size() < distance) {
      window.push_back(n);
    } else {
      set_jump(window[pos % distance], n);
      window[pos % distance] = n;
    }
  }
  // Remaining window entries have no node `distance` ahead.
  for (Node* n : window) set_jump(n, static_cast<Node*>(nullptr));
}

}  // namespace fpm

#endif  // FPM_MEM_PREFETCH_POINTERS_H_
