#include "fpm/dataset/versioned.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace fpm {

namespace {

// FNV-1a 64-bit, matching the registry's file-content digest so the two
// digest spaces share a format (16 lowercase hex chars).
constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t* h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void FnvMixU64(uint64_t* h, uint64_t v) { FnvMix(h, &v, sizeof(v)); }

void FnvMixTxns(uint64_t* h, const std::vector<Itemset>& txns,
                const std::vector<Support>& weights) {
  FnvMixU64(h, txns.size());
  for (size_t t = 0; t < txns.size(); ++t) {
    FnvMixU64(h, txns[t].size());
    for (Item it : txns[t]) FnvMixU64(h, static_cast<uint64_t>(it));
    FnvMixU64(h, static_cast<uint64_t>(weights[t]));
  }
}

// Normalizes a raw transaction into the AddTransaction form: duplicates
// removed, first occurrence kept, input order otherwise preserved.
Itemset NormalizeTransaction(const Itemset& raw) {
  Itemset sorted = raw;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end()) {
    return raw;
  }
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  Itemset out;
  out.reserve(sorted.size());
  std::vector<Item> remaining = sorted;
  for (Item it : raw) {
    auto pos = std::lower_bound(remaining.begin(), remaining.end(), it);
    if (pos != remaining.end() && *pos == it) {
      out.push_back(it);
      remaining.erase(pos);
    }
  }
  return out;
}

}  // namespace

std::string ChainDigest(const std::string& parent_digest,
                        const VersionDelta& delta) {
  uint64_t h = kFnvOffset;
  FnvMix(&h, parent_digest.data(), parent_digest.size());
  // Tag the two halves so (append X) and (expire X) never collide.
  FnvMix(&h, "+", 1);
  FnvMixTxns(&h, delta.appended, delta.appended_weights);
  FnvMix(&h, "-", 1);
  FnvMixTxns(&h, delta.expired, delta.expired_weights);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 "", h);
  return std::string(buf);
}

VersionedDataset::VersionedDataset(Database base, std::string digest) {
  DatasetVersion v1;
  v1.number = 1;
  v1.digest = std::move(digest);
  v1.num_transactions = base.num_transactions();
  v1.database = std::make_shared<const Database>(std::move(base));
  versions_.push_back(std::move(v1));
}

void VersionedDataset::EnsureSeeded() {
  if (seeded_) return;
  seeded_ = true;
  // Seed the log from the base so later expiry can rebuild any window.
  const Database& base = *versions_.front().database;
  log_.reserve(base.num_transactions());
  for (Tid t = 0; t < base.num_transactions(); ++t) {
    auto txn = base.transaction(t);
    LogEntry e;
    e.items.assign(txn.begin(), txn.end());
    e.weight = base.weight(t);
    log_.push_back(std::move(e));
  }
}

size_t VersionedDataset::PolicyOverflow() const {
  const size_t live = log_.size() - window_start_;
  size_t expire = 0;
  if (policy_.last_n > 0 && live > policy_.last_n) {
    expire = live - static_cast<size_t>(policy_.last_n);
  }
  if (policy_.last_seconds > 0.0) {
    const double cutoff = max_timestamp_ - policy_.last_seconds;
    size_t by_time = 0;
    while (by_time < live &&
           log_[window_start_ + by_time].timestamp < cutoff) {
      ++by_time;
    }
    expire = std::max(expire, by_time);
  }
  return expire;
}

const DatasetVersion* VersionedDataset::Commit(
    size_t new_start, std::shared_ptr<VersionDelta> delta) {
  const DatasetVersion& parent = versions_.back();
  DatabaseBuilder builder;
  if (new_start == window_start_) {
    // Append-only: bulk-copy the parent CSR, then append the delta.
    builder.AddDatabase(*parent.database);
    for (size_t t = 0; t < delta->appended.size(); ++t) {
      builder.AddTransaction(
          std::span<const Item>(delta->appended[t].data(),
                                delta->appended[t].size()),
          delta->appended_weights[t]);
    }
  } else {
    // Expiry moved the window start: rebuild from the log window. The
    // appended transactions are already in the log, so this covers both
    // halves of the delta.
    for (size_t t = new_start; t < log_.size(); ++t) {
      builder.AddTransaction(
          std::span<const Item>(log_[t].items.data(), log_[t].items.size()),
          log_[t].weight);
    }
  }
  window_start_ = new_start;

  DatasetVersion v;
  v.number = parent.number + 1;
  v.parent_digest = parent.digest;
  v.digest = ChainDigest(parent.digest, *delta);
  v.appended_weight = delta->appended_weight;
  v.expired_weight = delta->expired_weight;
  v.delta = std::move(delta);
  Database db = builder.Build();
  v.num_transactions = db.num_transactions();
  v.database = std::make_shared<const Database>(std::move(db));
  versions_.push_back(std::move(v));
  return &versions_.back();
}

const DatasetVersion* VersionedDataset::SetPolicy(const WindowPolicy& policy) {
  // An unbounded policy can never overflow; don't seed the log for it.
  if (policy.bounded()) EnsureSeeded();
  policy_ = policy;
  const size_t overflow = PolicyOverflow();
  if (overflow == 0) return &versions_.back();
  return Expire(overflow).value();
}

Result<const DatasetVersion*> VersionedDataset::Append(
    const std::vector<Itemset>& transactions,
    const std::vector<double>& timestamps) {
  if (transactions.empty()) {
    return Status::InvalidArgument("append requires at least one transaction");
  }
  EnsureSeeded();
  if (!timestamps.empty() && timestamps.size() != transactions.size()) {
    return Status::InvalidArgument(
        "timestamps must be absent or one per transaction");
  }
  for (const Itemset& t : transactions) {
    if (t.empty()) {
      return Status::InvalidArgument("appended transactions must be non-empty");
    }
  }
  auto delta = std::make_shared<VersionDelta>();
  delta->appended.reserve(transactions.size());
  for (size_t t = 0; t < transactions.size(); ++t) {
    LogEntry e;
    e.items = NormalizeTransaction(transactions[t]);
    e.weight = 1;
    e.timestamp = timestamps.empty() ? max_timestamp_ : timestamps[t];
    if (e.timestamp > max_timestamp_) max_timestamp_ = e.timestamp;
    delta->appended.push_back(e.items);
    delta->appended_weights.push_back(e.weight);
    delta->appended_weight += e.weight;
    log_.push_back(std::move(e));
  }
  size_t new_start = window_start_;
  const size_t overflow = PolicyOverflow();
  for (size_t i = 0; i < overflow; ++i) {
    const LogEntry& e = log_[window_start_ + i];
    delta->expired.push_back(e.items);
    delta->expired_weights.push_back(e.weight);
    delta->expired_weight += e.weight;
  }
  new_start += overflow;
  return Commit(new_start, std::move(delta));
}

Result<const DatasetVersion*> VersionedDataset::Expire(uint64_t count) {
  EnsureSeeded();
  const size_t live = log_.size() - window_start_;
  if (count < 1 || count > live) {
    return Status::OutOfRange("expire count must be in [1, " +
                              std::to_string(live) + "], got " +
                              std::to_string(count));
  }
  auto delta = std::make_shared<VersionDelta>();
  for (uint64_t i = 0; i < count; ++i) {
    const LogEntry& e = log_[window_start_ + i];
    delta->expired.push_back(e.items);
    delta->expired_weights.push_back(e.weight);
    delta->expired_weight += e.weight;
  }
  return Commit(window_start_ + static_cast<size_t>(count), std::move(delta));
}

size_t VersionedDataset::resident_bytes() const {
  size_t bytes = 0;
  for (const DatasetVersion& v : versions_) {
    if (v.database) bytes += v.database->resident_bytes();
  }
  for (const LogEntry& e : log_) {
    bytes += e.items.size() * sizeof(Item) + sizeof(LogEntry);
  }
  return bytes;
}

size_t VersionedDataset::mapped_bytes() const {
  size_t bytes = 0;
  for (const DatasetVersion& v : versions_) {
    if (v.database) bytes += v.database->mapped_bytes();
  }
  return bytes;
}

}  // namespace fpm
