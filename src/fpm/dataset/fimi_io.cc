#include "fpm/dataset/fimi_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"

namespace fpm {
namespace {

// The whitespace-delimited token starting at `p`, clipped for error
// messages — long garbage (a pasted binary blob) should not flood the
// diagnostic.
std::string TokenAt(const char* p, const char* end) {
  constexpr size_t kMaxShown = 32;
  const char* q = p;
  while (q < end && *q != ' ' && *q != '\t' && *q != '\r') ++q;
  const size_t len = static_cast<size_t>(q - p);
  std::string token(p, std::min(len, kMaxShown));
  if (len > kMaxShown) token += "...";
  return token;
}

// Parses one line of whitespace-separated unsigned integers into `out`.
// Returns false on malformed input; `error` then names the offending
// token so the caller's line number plus the token pin down the exact
// spot in a multi-gigabyte file.
bool ParseLine(const char* p, const char* end, std::vector<Item>* out,
               std::string* error) {
  out->clear();
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p >= end) break;
    const char* token_start = p;
    uint64_t v = 0;
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) {
      v = v * 10 + static_cast<uint64_t>(*p - '0');
      if (v > 0xffffffffULL) {
        *error = "item id overflows 32 bits in token '" +
                 TokenAt(token_start, end) + "'";
        return false;
      }
      ++p;
    }
    // A token must be all digits: nothing consumed means a non-digit
    // lead ("x1 2"), stopping early means an embedded non-digit ("1a2").
    if (p == token_start ||
        (p < end && *p != ' ' && *p != '\t' && *p != '\r')) {
      *error = "malformed token '" + TokenAt(token_start, end) +
               "' (items are unsigned integers)";
      return false;
    }
    out->push_back(static_cast<Item>(v));
  }
  return true;
}

}  // namespace

Result<Database> ParseFimi(const std::string& text) {
  ScopedSpan span("fimi/parse");
  span.AddArg("bytes", text.size());
  DatabaseBuilder builder;
  std::vector<Item> tx;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    ++line_no;
    std::string error;
    if (!ParseLine(text.data() + pos, text.data() + eol, &tx, &error)) {
      return Status::InvalidArgument("FIMI parse error at line " +
                                     std::to_string(line_no) + ": " + error);
    }
    // Skip blank lines entirely (common trailing newline case).
    if (!tx.empty()) builder.AddTransaction(tx);
    if (eol == text.size()) break;
    pos = eol + 1;
  }
  Database db = builder.Build();
  MetricsRegistry& registry = MetricsRegistry::Default();
  if (registry.enabled()) {
    static Counter* transactions =
        registry.GetCounter("fpm.fimi.transactions_parsed");
    static Counter* bytes = registry.GetCounter("fpm.fimi.bytes_parsed");
    transactions->Add(db.num_transactions());
    bytes->Add(text.size());
  }
  return db;
}

Result<Database> ReadFimiFile(const std::string& path) {
  ScopedSpan span("fimi/read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on '" + path + "'");
  return ParseFimi(buf.str());
}

std::string ToFimi(const Database& db) {
  std::string out;
  char num[16];
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    const auto tx = db.transaction(t);
    for (Support copy = 0; copy < db.weight(t); ++copy) {
      bool first = true;
      for (Item it : tx) {
        int n = std::snprintf(num, sizeof(num), first ? "%u" : " %u", it);
        out.append(num, static_cast<size_t>(n));
        first = false;
      }
      out.push_back('\n');
    }
  }
  return out;
}

Status WriteFimiFile(const Database& db, const std::string& path) {
  ScopedSpan span("fimi/write");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const std::string text = ToFimi(db);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace fpm
