// Reader/writer for the FIMI workshop dataset format: one transaction per
// line, items as whitespace-separated non-negative integers. This is the
// interchange format of the FIMI'03/'04 repositories the paper draws its
// kernels and datasets from.

#ifndef FPM_DATASET_FIMI_IO_H_
#define FPM_DATASET_FIMI_IO_H_

#include <string>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"

namespace fpm {

/// Parses a FIMI-format database from a string (tests, generators).
Result<Database> ParseFimi(const std::string& text);

/// Reads a FIMI-format database from a file.
Result<Database> ReadFimiFile(const std::string& path);

/// Serializes a database to FIMI format. Weighted (merged-duplicate)
/// transactions are expanded back to `weight` copies so the output is a
/// faithful FIMI database.
std::string ToFimi(const Database& db);

/// Writes a database to a FIMI-format file.
Status WriteFimiFile(const Database& db, const std::string& path);

}  // namespace fpm

#endif  // FPM_DATASET_FIMI_IO_H_
