// Packed on-disk database format + memory-mapped storage backend.
//
// A packed file is the CSR arrays of a Database written verbatim in
// little-endian with a fixed 80-byte header, so OpenMapped() can serve
// the arrays straight out of the page cache — the Database's spans
// point into the mapping and mining never heap-copies the data. The
// transaction order of the writer is preserved; pack after the
// lexicographic layout pass and every projection scan walks the file
// sequentially (the paper's P1 locality argument, applied to pages
// instead of cache lines).
//
// File layout (all integers little-endian; static_assert'd 8-byte
// size_t):
//
//   offset  size  field
//        0     8  magic "FPMPACK1"
//        8     4  format version (u32, currently 1)
//       12     4  endian check word (u32, 0x01020304)
//       16     8  num_transactions (u64)
//       24     8  num_items (u64)
//       32     8  num_entries (u64)
//       40     8  total_weight (u64)
//       48     4  flags (u32; bit 0 = has per-transaction weights)
//       52     4  reserved (u32, 0)
//       56    16  content digest, 16 lowercase hex chars (not NUL
//                 terminated)
//       72     8  reserved (u64, 0)
//       80     —  offsets array, (num_transactions + 1) x u64
//             —  items array, num_entries x u32
//             —  weights array, num_transactions x u32 (only when flag
//                 bit 0 is set)
//             —  frequencies array, num_items x u32
//
// The header digest is the FNV-1a digest of the dataset's *content*
// (by convention the raw FIMI bytes it was packed from), not of the
// packed file — so the DatasetRegistry and ResultCache key a dataset
// identically whether it was parsed to heap or mapped from disk.

#ifndef FPM_DATASET_PACKED_H_
#define FPM_DATASET_PACKED_H_

#include <cstdint>
#include <string>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"

namespace fpm {

/// First 8 bytes of every packed file.
inline constexpr char kPackedMagic[8] = {'F', 'P', 'M', 'P', 'A', 'C', 'K',
                                         '1'};

/// Current (and only) format version.
inline constexpr uint32_t kPackedFormatVersion = 1;

/// Value of the endian check word as written; a big-endian reader would
/// see 0x04030201 and must reject the file.
inline constexpr uint32_t kPackedEndianCheck = 0x01020304u;

/// Header size; the offsets array starts here (8-byte aligned).
inline constexpr size_t kPackedHeaderBytes = 80;

/// FNV-1a 64-bit digest of `bytes`, as 16 lowercase hex chars. This is
/// the content-addressing key of the whole system: DatasetRegistry ids,
/// version chains, and ResultCache entries all hang off it.
std::string ContentDigest(const std::string& bytes);

/// Writes `db` to `path` in packed format. `digest` is the 16-hex
/// content digest recorded in the header; pass the digest of the source
/// bytes when converting a file (fpm_pack does), or leave empty to
/// derive one from the canonical FIMI serialization of `db`.
Status WritePacked(const Database& db, const std::string& path,
                   std::string digest = "");

/// Maps `path` (mmap PROT_READ + MADV_SEQUENTIAL) and returns a
/// Database viewing the file's arrays. The mapping lives as long as any
/// copy of the returned Database. On success `*digest` (when non-null)
/// receives the header's content digest. Errors carry the path and the
/// file offset of the problem.
Result<Database> OpenMapped(const std::string& path,
                            std::string* digest = nullptr);

/// True when the file at `path` starts with the packed magic. Cheap
/// sniff (reads 8 bytes); false for unreadable or short files.
bool IsPackedFile(const std::string& path);

}  // namespace fpm

#endif  // FPM_DATASET_PACKED_H_
