// Database statistics: the input characteristics the paper's §4.4 links
// to pattern effectiveness (average transaction length → prefetch and
// aggregation; transaction clustering → tiling; input order randomness →
// lexicographic ordering), consumed by the pattern advisor.

#ifndef FPM_DATASET_STATS_H_
#define FPM_DATASET_STATS_H_

#include <cstddef>
#include <string>

#include "fpm/dataset/database.h"

namespace fpm {

/// Summary statistics of a transaction database.
struct DatabaseStats {
  size_t num_transactions = 0;
  size_t num_items = 0;        ///< item universe bound
  size_t num_used_items = 0;   ///< items with frequency > 0
  size_t num_entries = 0;      ///< total incidences
  double avg_transaction_len = 0.0;
  size_t max_transaction_len = 0;
  /// num_entries / (num_transactions * num_used_items): fill ratio of the
  /// boolean matrix of §3.3.
  double density = 0.0;
  /// Gini coefficient of the item frequency distribution in [0, 1);
  /// higher = heavier skew (more Zipf-like).
  double frequency_gini = 0.0;
  /// Mean Jaccard similarity of consecutive transactions in stored order.
  /// This is the "metric that captures the clustering of the input
  /// transactions" the paper sketches: ~0 for random order, →1 for
  /// perfectly clustered input.
  double consecutive_jaccard = 0.0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Computes all statistics in one pass (plus a sort of the frequency
/// array for the Gini coefficient).
DatabaseStats ComputeStats(const Database& db);

/// Mean Jaccard similarity of consecutive transactions only; exposed
/// separately so layout code can cheaply measure before/after pattern P1.
double ConsecutiveJaccard(const Database& db);

}  // namespace fpm

#endif  // FPM_DATASET_STATS_H_
