// Horizontal in-memory transaction database.
//
// Layout: CSR (compressed sparse row) — one flat `items` array plus an
// `offsets` array with one entry per transaction boundary. This is the
// "sparse, transaction-major" representation of the paper's §3.3
// (Feature 1 horizontal / Feature 2 sparse); it keeps each transaction's
// items in consecutive memory, the property pattern P1 builds on.

#ifndef FPM_DATASET_DATABASE_H_
#define FPM_DATASET_DATABASE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/dataset/types.h"

namespace fpm {

/// Immutable transaction database. Build with DatabaseBuilder.
class Database {
 public:
  Database() = default;

  /// Number of transactions.
  size_t num_transactions() const { return offsets_.size() - 1; }

  /// Size of the item universe: all item ids are < num_items().
  /// (Items with zero occurrences may exist below this bound.)
  size_t num_items() const { return num_items_; }

  /// Total number of (transaction, item) incidences.
  size_t num_entries() const { return items_.size(); }

  /// Items of transaction `t`, in stored order.
  std::span<const Item> transaction(Tid t) const {
    return {items_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }

  /// Multiplicity of transaction `t` (merged duplicates); 1 by default.
  Support weight(Tid t) const { return weights_.empty() ? 1 : weights_[t]; }

  /// True when duplicate transactions were merged and carry weights.
  bool has_weights() const { return !weights_.empty(); }

  /// Per-item frequency: number of transactions (weighted) containing it.
  /// Size num_items().
  const std::vector<Support>& item_frequencies() const {
    return frequencies_;
  }

  /// Sum of weights over all transactions (== num_transactions() when
  /// unweighted).
  Support total_weight() const { return total_weight_; }

  /// Direct access to the flat CSR arrays (used by the miners).
  const std::vector<Item>& items() const { return items_; }
  const std::vector<size_t>& offsets() const { return offsets_; }

  /// Average transaction length.
  double average_length() const {
    return num_transactions() == 0
               ? 0.0
               : static_cast<double>(items_.size()) / num_transactions();
  }

  /// Bytes of heap memory held by the database arrays.
  size_t memory_bytes() const {
    return items_.size() * sizeof(Item) + offsets_.size() * sizeof(size_t) +
           weights_.size() * sizeof(Support) +
           frequencies_.size() * sizeof(Support);
  }

 private:
  friend class DatabaseBuilder;

  std::vector<Item> items_;
  std::vector<size_t> offsets_{0};
  std::vector<Support> weights_;  // empty => all 1
  std::vector<Support> frequencies_;
  size_t num_items_ = 0;
  Support total_weight_ = 0;
};

/// Accumulates transactions and produces an immutable Database.
///
/// Items inside a transaction are de-duplicated; their stored order is
/// preserved as given (the layout library controls ordering).
class DatabaseBuilder {
 public:
  DatabaseBuilder() = default;

  /// Appends one transaction. Duplicate items within the transaction are
  /// removed (first occurrence wins). Empty transactions are kept: they
  /// contribute to the transaction count but to no support.
  void AddTransaction(std::span<const Item> items, Support weight = 1);

  /// Convenience overload.
  void AddTransaction(std::initializer_list<Item> items, Support weight = 1) {
    AddTransaction(std::span<const Item>(items.begin(), items.size()), weight);
  }

  /// Appends one transaction whose items the caller guarantees are
  /// already strictly increasing (sorted, duplicate-free), skipping the
  /// sort-based de-duplication of AddTransaction(). This is the hot path
  /// of parallel class projection: conditional transactions are prefixes
  /// of already rank-sorted unique transactions, so re-deriving the
  /// order per class would repeat work the layout pass did once.
  void AddSortedTransaction(std::span<const Item> items, Support weight = 1);

  /// Appends every transaction of `db`, preserving stored item order and
  /// weights, as one bulk array copy. The result is identical to calling
  /// AddTransaction() per transaction (stored transactions are already
  /// de-duplicated), which is what makes the streaming layer's
  /// append-only delta materialization byte-identical to a from-scratch
  /// rebuild while costing O(entries) instead of O(entries log len).
  void AddDatabase(const Database& db);

  /// Number of transactions added so far.
  size_t size() const { return offsets_.size() - 1; }

  /// Finalizes: computes item frequencies and moves the data out.
  /// The builder is left empty and reusable.
  Database Build();

 private:
  /// Counts the items of items_[begin..end) into frequencies_ and bumps
  /// total_weight_, so Build() never re-walks the whole database.
  void CountAppended(size_t begin, Support weight);

  std::vector<Item> items_;
  std::vector<size_t> offsets_{0};
  std::vector<Support> weights_;
  std::vector<Support> frequencies_;  // maintained incrementally
  std::vector<Item> scratch_;
  size_t max_item_bound_ = 0;
  Support total_weight_ = 0;
  bool any_weighted_ = false;
};

}  // namespace fpm

#endif  // FPM_DATASET_DATABASE_H_
