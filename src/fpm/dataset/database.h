// Horizontal transaction database as a *view* over a storage backend.
//
// Layout: CSR (compressed sparse row) — one flat `items` array plus an
// `offsets` array with one entry per transaction boundary. This is the
// "sparse, transaction-major" representation of the paper's §3.3
// (Feature 1 horizontal / Feature 2 sparse); it keeps each transaction's
// items in consecutive memory, the property pattern P1 builds on.
//
// Storage backends: a Database no longer owns heap vectors — it holds
// std::span views into a refcounted DatabaseStorage. Two backends
// exist:
//   - owned vectors (DatabaseBuilder::Build, the classic in-memory
//     path),
//   - a memory-mapped packed file (fpm/dataset/packed.h, OpenMapped),
//     whose CSR arrays live in the page cache, not on the heap.
// Every consumer — kernels, layout, bitvector construction, parallel
// drivers — reads through the span accessors, so it cannot tell the
// backends apart; the byte-identical-mining contract rests on that.
// Copying a Database copies four spans and bumps one refcount.

#ifndef FPM_DATASET_DATABASE_H_
#define FPM_DATASET_DATABASE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/dataset/types.h"

namespace fpm {

/// Where a Database's arrays live.
enum class StorageKind {
  kMemory,  ///< heap vectors owned by the storage
  kPacked,  ///< a memory-mapped packed file (fpm/dataset/packed.h)
};

/// Stable lowercase label ("memory" | "packed") for stats and logs.
const char* StorageKindName(StorageKind kind);

/// The backing store a Database views. Immutable once published;
/// shared by every Database copy and destroyed with the last one.
class DatabaseStorage {
 public:
  virtual ~DatabaseStorage() = default;

  virtual StorageKind kind() const = 0;

  /// Heap (malloc'd) bytes this storage holds resident. What registry
  /// eviction budgets account.
  virtual size_t resident_bytes() const = 0;

  /// Bytes backed by a file mapping (page cache, evictable by the OS,
  /// not malloc'd). 0 for owned-vector storage.
  virtual size_t mapped_bytes() const = 0;
};

/// Immutable transaction database. Build with DatabaseBuilder or map a
/// packed file with OpenMapped (fpm/dataset/packed.h).
class Database {
 public:
  Database() = default;

  /// Number of transactions.
  size_t num_transactions() const {
    return offsets_.size() <= 1 ? 0 : offsets_.size() - 1;
  }

  /// Size of the item universe: all item ids are < num_items().
  /// (Items with zero occurrences may exist below this bound.)
  size_t num_items() const { return num_items_; }

  /// Total number of (transaction, item) incidences.
  size_t num_entries() const { return items_.size(); }

  /// Items of transaction `t`, in stored order.
  std::span<const Item> transaction(Tid t) const {
    return {items_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }

  /// Multiplicity of transaction `t` (merged duplicates); 1 by default.
  Support weight(Tid t) const { return weights_.empty() ? 1 : weights_[t]; }

  /// True when duplicate transactions were merged and carry weights.
  bool has_weights() const { return !weights_.empty(); }

  /// Per-item frequency: number of transactions (weighted) containing
  /// it. Size num_items().
  std::span<const Support> item_frequencies() const { return frequencies_; }

  /// Sum of weights over all transactions (== num_transactions() when
  /// unweighted).
  Support total_weight() const { return total_weight_; }

  /// Direct access to the flat CSR arrays (used by the miners). Views
  /// into the storage backend — valid for the Database's lifetime.
  std::span<const Item> items() const { return items_; }
  std::span<const size_t> offsets() const { return offsets_; }

  /// Per-transaction weights; empty when unweighted (all 1).
  std::span<const Support> weights() const { return weights_; }

  /// Average transaction length.
  double average_length() const {
    return num_transactions() == 0
               ? 0.0
               : static_cast<double>(items_.size()) / num_transactions();
  }

  /// Which backend holds the arrays.
  StorageKind storage_kind() const {
    return storage_ ? storage_->kind() : StorageKind::kMemory;
  }

  /// Heap bytes held by the database arrays. For a mapped database this
  /// is ~0: the arrays live in the page cache, not on the heap. This is
  /// the number registry eviction budgets against.
  size_t resident_bytes() const {
    return storage_ ? storage_->resident_bytes() : 0;
  }

  /// File-mapping bytes viewed by this database (0 when memory-backed).
  size_t mapped_bytes() const {
    return storage_ ? storage_->mapped_bytes() : 0;
  }

  /// Total footprint: resident heap bytes plus mapped file bytes. Use
  /// resident_bytes() when budgeting heap (mapped pages are reclaimable
  /// by the OS and must not count against a malloc budget).
  size_t memory_bytes() const { return resident_bytes() + mapped_bytes(); }

  /// Assembles a database viewing `storage`. Internal factory for the
  /// storage backends (DatabaseBuilder::Build, OpenMapped); the spans
  /// must point into `storage` and satisfy the CSR invariants
  /// (offsets.front() == 0, offsets.back() == items.size(), weights
  /// empty or one per transaction, frequencies sized num_items).
  static Database FromStorage(std::shared_ptr<const DatabaseStorage> storage,
                              std::span<const Item> items,
                              std::span<const size_t> offsets,
                              std::span<const Support> weights,
                              std::span<const Support> frequencies,
                              size_t num_items, Support total_weight);

 private:
  std::span<const Item> items_;
  std::span<const size_t> offsets_;
  std::span<const Support> weights_;  // empty => all 1
  std::span<const Support> frequencies_;
  size_t num_items_ = 0;
  Support total_weight_ = 0;
  std::shared_ptr<const DatabaseStorage> storage_;
};

/// Accumulates transactions and produces an immutable Database.
///
/// Items inside a transaction are de-duplicated; their stored order is
/// preserved as given (the layout library controls ordering).
class DatabaseBuilder {
 public:
  DatabaseBuilder() = default;

  /// Appends one transaction. Duplicate items within the transaction are
  /// removed (first occurrence wins). Empty transactions are kept: they
  /// contribute to the transaction count but to no support.
  void AddTransaction(std::span<const Item> items, Support weight = 1);

  /// Convenience overload.
  void AddTransaction(std::initializer_list<Item> items, Support weight = 1) {
    AddTransaction(std::span<const Item>(items.begin(), items.size()), weight);
  }

  /// Appends one transaction whose items the caller guarantees are
  /// already strictly increasing (sorted, duplicate-free), skipping the
  /// sort-based de-duplication of AddTransaction(). This is the hot path
  /// of parallel class projection: conditional transactions are prefixes
  /// of already rank-sorted unique transactions, so re-deriving the
  /// order per class would repeat work the layout pass did once.
  void AddSortedTransaction(std::span<const Item> items, Support weight = 1);

  /// Appends every transaction of `db`, preserving stored item order and
  /// weights, as one bulk array copy. The result is identical to calling
  /// AddTransaction() per transaction (stored transactions are already
  /// de-duplicated), which is what makes the streaming layer's
  /// append-only delta materialization byte-identical to a from-scratch
  /// rebuild while costing O(entries) instead of O(entries log len).
  void AddDatabase(const Database& db);

  /// Number of transactions added so far.
  size_t size() const { return offsets_.size() - 1; }

  /// Finalizes: computes item frequencies and moves the data into an
  /// owned storage backend. The builder is left empty and reusable.
  Database Build();

 private:
  /// Counts the items of items_[begin..end) into frequencies_ and bumps
  /// total_weight_, so Build() never re-walks the whole database.
  void CountAppended(size_t begin, Support weight);

  std::vector<Item> items_;
  std::vector<size_t> offsets_{0};
  std::vector<Support> weights_;
  std::vector<Support> frequencies_;  // maintained incrementally
  std::vector<Item> scratch_;
  size_t max_item_bound_ = 0;
  Support total_weight_ = 0;
  bool any_weighted_ = false;
};

}  // namespace fpm

#endif  // FPM_DATASET_DATABASE_H_
