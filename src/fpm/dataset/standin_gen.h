// Synthetic stand-ins for the paper's real-world datasets.
//
// The paper evaluates on WebDocs (DS3, a 500K-transaction slice of a web
// document corpus) and AP (DS4, the TIPSTER/TREC Associated Press text
// collection, 1.8M transactions). Neither corpus is redistributable in
// this environment, so we generate synthetic equivalents that preserve
// the structural properties the paper's analysis relies on — see
// DESIGN.md §5 for the substitution argument:
//
//   WebDocsLike: heavy Zipf item skew, LONG transactions, topic-clustered
//   co-occurrence → dense at the evaluated support; Eclat-friendly;
//   lex-ordering gains limited because intra-transaction locality is
//   already high.
//
//   ApLike: very sparse — large vocabulary, SHORT transactions, no
//   clustering between consecutive transactions → tiling finds no reuse,
//   and lex-ordering's sort cost is large relative to mining time.

#ifndef FPM_DATASET_STANDIN_GEN_H_
#define FPM_DATASET_STANDIN_GEN_H_

#include <cstdint>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"

namespace fpm {

/// Parameters of the WebDocs-like generator (DS3 stand-in).
struct WebDocsLikeParams {
  uint32_t num_transactions = 500000;
  uint32_t vocabulary = 40000;     ///< item universe
  double avg_length = 80.0;        ///< mean document length (items)
  double zipf_exponent = 1.05;     ///< global term-popularity skew
  uint32_t num_topics = 64;        ///< topic clusters
  uint32_t topic_vocabulary = 600; ///< items "owned" by each topic
  double topic_mix = 0.6;          ///< fraction of items drawn from topic
  uint64_t seed = 20070403;

  Status Validate() const;
};

/// Parameters of the AP-like generator (DS4 stand-in).
struct ApLikeParams {
  uint32_t num_transactions = 1800000;
  uint32_t vocabulary = 120000;  ///< large news-wire vocabulary
  double avg_length = 12.0;      ///< short keyword-style transactions
  double zipf_exponent = 1.15;
  uint64_t seed = 20070404;

  Status Validate() const;
};

/// Generates the DS3 stand-in. Deterministic for fixed parameters.
Result<Database> GenerateWebDocsLike(const WebDocsLikeParams& params);

/// Generates the DS4 stand-in. Deterministic for fixed parameters.
Result<Database> GenerateApLike(const ApLikeParams& params);

}  // namespace fpm

#endif  // FPM_DATASET_STANDIN_GEN_H_
