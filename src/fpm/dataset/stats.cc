#include "fpm/dataset/stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace fpm {
namespace {

// Jaccard similarity of two item sets given as sorted vectors.
double JaccardSorted(const std::vector<Item>& a, const std::vector<Item>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double ConsecutiveJaccard(const Database& db) {
  const size_t n = db.num_transactions();
  if (n < 2) return 0.0;
  std::vector<Item> prev, cur;
  double total = 0.0;
  {
    auto t0 = db.transaction(0);
    prev.assign(t0.begin(), t0.end());
    std::sort(prev.begin(), prev.end());
  }
  for (Tid t = 1; t < n; ++t) {
    auto tx = db.transaction(t);
    cur.assign(tx.begin(), tx.end());
    std::sort(cur.begin(), cur.end());
    total += JaccardSorted(prev, cur);
    prev.swap(cur);
  }
  return total / static_cast<double>(n - 1);
}

DatabaseStats ComputeStats(const Database& db) {
  DatabaseStats s;
  s.num_transactions = db.num_transactions();
  s.num_items = db.num_items();
  s.num_entries = db.num_entries();
  s.avg_transaction_len = db.average_length();
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    s.max_transaction_len =
        std::max(s.max_transaction_len, db.transaction(t).size());
  }
  const auto& freq = db.item_frequencies();
  for (Support f : freq) {
    if (f > 0) ++s.num_used_items;
  }
  if (s.num_transactions > 0 && s.num_used_items > 0) {
    s.density = static_cast<double>(s.num_entries) /
                (static_cast<double>(s.num_transactions) *
                 static_cast<double>(s.num_used_items));
  }

  // Gini over used-item frequencies.
  std::vector<Support> used;
  used.reserve(s.num_used_items);
  for (Support f : freq) {
    if (f > 0) used.push_back(f);
  }
  if (used.size() > 1) {
    std::sort(used.begin(), used.end());
    double cum = 0.0, weighted = 0.0;
    for (size_t i = 0; i < used.size(); ++i) {
      cum += used[i];
      weighted += static_cast<double>(i + 1) * used[i];
    }
    const double n = static_cast<double>(used.size());
    s.frequency_gini = (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
  }

  s.consecutive_jaccard = ConsecutiveJaccard(db);
  return s;
}

std::string DatabaseStats::ToString() const {
  std::ostringstream os;
  os << "transactions:        " << num_transactions << "\n"
     << "item universe:       " << num_items << " (" << num_used_items
     << " used)\n"
     << "incidences:          " << num_entries << "\n"
     << "avg / max length:    " << avg_transaction_len << " / "
     << max_transaction_len << "\n"
     << "density:             " << density << "\n"
     << "frequency gini:      " << frequency_gini << "\n"
     << "consecutive jaccard: " << consecutive_jaccard << "\n";
  return os.str();
}

}  // namespace fpm
