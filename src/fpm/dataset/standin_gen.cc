#include "fpm/dataset/standin_gen.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "fpm/common/rng.h"

namespace fpm {

Status WebDocsLikeParams::Validate() const {
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be > 0");
  }
  if (vocabulary == 0) return Status::InvalidArgument("vocabulary must be > 0");
  if (avg_length <= 0) return Status::InvalidArgument("avg_length must be > 0");
  if (zipf_exponent < 0) {
    return Status::InvalidArgument("zipf_exponent must be >= 0");
  }
  if (num_topics == 0) return Status::InvalidArgument("num_topics must be > 0");
  if (topic_vocabulary == 0 || topic_vocabulary > vocabulary) {
    return Status::InvalidArgument("topic_vocabulary out of range");
  }
  if (topic_mix < 0 || topic_mix > 1) {
    return Status::InvalidArgument("topic_mix must be in [0,1]");
  }
  return Status::OK();
}

Status ApLikeParams::Validate() const {
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be > 0");
  }
  if (vocabulary == 0) return Status::InvalidArgument("vocabulary must be > 0");
  if (avg_length <= 0) return Status::InvalidArgument("avg_length must be > 0");
  if (zipf_exponent < 0) {
    return Status::InvalidArgument("zipf_exponent must be >= 0");
  }
  return Status::OK();
}

Result<Database> GenerateWebDocsLike(const WebDocsLikeParams& p) {
  FPM_RETURN_IF_ERROR(p.Validate());
  Rng rng(p.seed);
  // Global popularity ranks double as item ids: rank r -> item r, so the
  // generated ids are already roughly frequency-ordered, like the output
  // of a text tokenizer that assigns ids in corpus-frequency order.
  ZipfSampler global(p.vocabulary, p.zipf_exponent);
  // Each topic owns a random subset of mid-tail vocabulary plus its own
  // internal Zipf skew.
  ZipfSampler topical(p.topic_vocabulary, 1.0);
  std::vector<std::vector<Item>> topic_items(p.num_topics);
  for (auto& items : topic_items) {
    std::unordered_set<Item> seen;
    items.reserve(p.topic_vocabulary);
    while (items.size() < p.topic_vocabulary) {
      const Item it = static_cast<Item>(rng.NextBounded(p.vocabulary));
      if (seen.insert(it).second) items.push_back(it);
    }
  }

  DatabaseBuilder builder;
  std::vector<Item> tx;
  std::unordered_set<Item> in_tx;
  for (uint32_t t = 0; t < p.num_transactions; ++t) {
    uint32_t target = std::max<uint32_t>(1, rng.NextPoisson(p.avg_length));
    target = std::min<uint32_t>(target, p.vocabulary);
    const auto& topic =
        topic_items[static_cast<size_t>(rng.NextBounded(p.num_topics))];
    tx.clear();
    in_tx.clear();
    uint32_t attempts = 0;
    const uint32_t max_attempts = 20 * target + 100;
    while (tx.size() < target && attempts++ < max_attempts) {
      Item it;
      if (rng.NextBool(p.topic_mix)) {
        it = topic[topical.Sample(&rng)];
      } else {
        it = static_cast<Item>(global.Sample(&rng));
      }
      if (in_tx.insert(it).second) tx.push_back(it);
    }
    builder.AddTransaction(tx);
  }
  return builder.Build();
}

Result<Database> GenerateApLike(const ApLikeParams& p) {
  FPM_RETURN_IF_ERROR(p.Validate());
  Rng rng(p.seed);
  ZipfSampler global(p.vocabulary, p.zipf_exponent);
  DatabaseBuilder builder;
  std::vector<Item> tx;
  std::unordered_set<Item> in_tx;
  for (uint32_t t = 0; t < p.num_transactions; ++t) {
    uint32_t target = std::max<uint32_t>(1, rng.NextPoisson(p.avg_length));
    target = std::min<uint32_t>(target, p.vocabulary);
    tx.clear();
    in_tx.clear();
    uint32_t attempts = 0;
    const uint32_t max_attempts = 20 * target + 100;
    while (tx.size() < target && attempts++ < max_attempts) {
      const Item it = static_cast<Item>(global.Sample(&rng));
      if (in_tx.insert(it).second) tx.push_back(it);
    }
    builder.AddTransaction(tx);
  }
  return builder.Build();
}

}  // namespace fpm
