#include "fpm/dataset/quest_gen.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "fpm/common/rng.h"

namespace fpm {
namespace {

// One potentially-large itemset from the pool.
struct Pattern {
  std::vector<Item> items;
  double corruption;  // probability of dropping items when instantiated
};

// Builds the pool of potentially-large itemsets. Consecutive patterns
// share items: an exponentially-distributed fraction (mean = correlation)
// of each pattern is drawn from its predecessor.
std::vector<Pattern> BuildPatternPool(const QuestParams& p, Rng* rng) {
  std::vector<Pattern> pool;
  pool.reserve(p.num_patterns);
  std::vector<Item> prev;
  std::unordered_set<Item> chosen;
  for (uint32_t i = 0; i < p.num_patterns; ++i) {
    uint32_t len = std::max<uint32_t>(1, rng->NextPoisson(p.avg_pattern_len));
    len = std::min<uint32_t>(len, p.num_items);
    Pattern pat;
    pat.items.reserve(len);
    chosen.clear();

    // Inherit a correlated fraction from the previous pattern.
    if (!prev.empty()) {
      double frac = std::min(1.0, rng->NextExponential(p.correlation));
      auto inherit = static_cast<uint32_t>(frac * len);
      inherit = std::min<uint32_t>(inherit, static_cast<uint32_t>(prev.size()));
      // Sample `inherit` distinct items from prev.
      std::vector<Item> shuffled = prev;
      for (uint32_t k = 0; k < inherit; ++k) {
        const size_t j =
            k + static_cast<size_t>(rng->NextBounded(shuffled.size() - k));
        std::swap(shuffled[k], shuffled[j]);
        if (chosen.insert(shuffled[k]).second) pat.items.push_back(shuffled[k]);
      }
    }
    // Fill the rest with uniformly random fresh items.
    while (pat.items.size() < len) {
      const Item it = static_cast<Item>(rng->NextBounded(p.num_items));
      if (chosen.insert(it).second) pat.items.push_back(it);
    }
    pat.corruption =
        std::clamp(rng->NextNormal(p.corruption_mean, p.corruption_sd), 0.0,
                   1.0);
    prev = pat.items;
    pool.push_back(std::move(pat));
  }
  return pool;
}

}  // namespace

Result<QuestParams> QuestParams::FromName(const std::string& name) {
  QuestParams p;
  size_t i = 0;
  auto read_number = [&](double* out) -> bool {
    size_t start = i;
    while (i < name.size() &&
           (std::isdigit(static_cast<unsigned char>(name[i])) ||
            name[i] == '.')) {
      ++i;
    }
    if (i == start) return false;
    *out = std::stod(name.substr(start, i - start));
    return true;
  };

  double t = 0, iv = 0, d = 0;
  if (i >= name.size() || (name[i] != 'T' && name[i] != 't')) {
    return Status::InvalidArgument("Quest name must start with T: " + name);
  }
  ++i;
  if (!read_number(&t)) {
    return Status::InvalidArgument("missing T value in " + name);
  }
  if (i >= name.size() || (name[i] != 'I' && name[i] != 'i')) {
    return Status::InvalidArgument("expected I after T in " + name);
  }
  ++i;
  if (!read_number(&iv)) {
    return Status::InvalidArgument("missing I value in " + name);
  }
  if (i >= name.size() || (name[i] != 'D' && name[i] != 'd')) {
    return Status::InvalidArgument("expected D after I in " + name);
  }
  ++i;
  if (!read_number(&d)) {
    return Status::InvalidArgument("missing D value in " + name);
  }
  if (i < name.size()) {
    if (name[i] == 'K' || name[i] == 'k') {
      d *= 1000;
      ++i;
    } else if (name[i] == 'M' || name[i] == 'm') {
      d *= 1000000;
      ++i;
    }
  }
  if (i != name.size()) {
    return Status::InvalidArgument("trailing characters in " + name);
  }
  p.avg_transaction_len = t;
  p.avg_pattern_len = iv;
  p.num_transactions = static_cast<uint32_t>(d);
  return p;
}

std::string QuestParams::Name() const {
  auto fmt = [](double v) {
    char buf[32];
    if (v == std::floor(v)) {
      std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
      std::snprintf(buf, sizeof(buf), "%g", v);
    }
    return std::string(buf);
  };
  std::string d;
  if (num_transactions % 1000000 == 0 && num_transactions > 0) {
    d = std::to_string(num_transactions / 1000000) + "M";
  } else if (num_transactions % 1000 == 0 && num_transactions > 0) {
    d = std::to_string(num_transactions / 1000) + "K";
  } else {
    d = std::to_string(num_transactions);
  }
  return "T" + fmt(avg_transaction_len) + "I" + fmt(avg_pattern_len) + "D" + d;
}

Status QuestParams::Validate() const {
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be > 0");
  }
  if (num_items == 0) return Status::InvalidArgument("num_items must be > 0");
  if (num_patterns == 0) {
    return Status::InvalidArgument("num_patterns must be > 0");
  }
  if (avg_transaction_len <= 0) {
    return Status::InvalidArgument("avg_transaction_len must be > 0");
  }
  if (avg_pattern_len <= 0) {
    return Status::InvalidArgument("avg_pattern_len must be > 0");
  }
  if (correlation < 0 || correlation > 1) {
    return Status::InvalidArgument("correlation must be in [0,1]");
  }
  if (corruption_mean < 0 || corruption_mean > 1) {
    return Status::InvalidArgument("corruption_mean must be in [0,1]");
  }
  if (corruption_sd < 0) {
    return Status::InvalidArgument("corruption_sd must be >= 0");
  }
  return Status::OK();
}

Result<Database> GenerateQuest(const QuestParams& params) {
  FPM_RETURN_IF_ERROR(params.Validate());
  Rng rng(params.seed);
  const std::vector<Pattern> pool = BuildPatternPool(params, &rng);

  // Exponential weights, normalized by the sampler.
  std::vector<double> weights(pool.size());
  for (auto& w : weights) w = rng.NextExponential(1.0);
  WeightedSampler sampler(weights);

  DatabaseBuilder builder;
  std::vector<Item> tx;
  std::vector<Item> instance;
  std::unordered_set<Item> in_tx;
  // Oversized pattern instance carried over to the next transaction.
  std::vector<Item> carry;

  for (uint32_t t = 0; t < params.num_transactions; ++t) {
    uint32_t target =
        std::max<uint32_t>(1, rng.NextPoisson(params.avg_transaction_len));
    target = std::min<uint32_t>(target, params.num_items);
    tx.clear();
    in_tx.clear();

    auto add_items = [&](const std::vector<Item>& src) {
      for (Item it : src) {
        if (in_tx.insert(it).second) tx.push_back(it);
      }
    };
    if (!carry.empty()) {
      add_items(carry);
      carry.clear();
    }

    // Safety valve: corrupted instances may all be empty on degenerate
    // parameter settings; bound the fill attempts.
    uint32_t attempts = 0;
    const uint32_t max_attempts = 50 + 10 * target;
    while (tx.size() < target && attempts++ < max_attempts) {
      const Pattern& pat = pool[sampler.Sample(&rng)];
      // Corrupt: keep dropping random items while u < corruption level.
      instance = pat.items;
      while (!instance.empty() && rng.NextDouble() < pat.corruption) {
        const size_t j = static_cast<size_t>(rng.NextBounded(instance.size()));
        instance[j] = instance.back();
        instance.pop_back();
      }
      if (instance.empty()) continue;
      if (tx.size() + instance.size() > target && !tx.empty()) {
        // Doesn't fit: add anyway half the time, else carry it over.
        if (rng.NextBool(0.5)) {
          add_items(instance);
        } else {
          carry = instance;
          break;
        }
      } else {
        add_items(instance);
      }
    }
    if (tx.empty()) {
      // Degenerate corner (tiny universes): emit one random item so the
      // database shape stays sane.
      tx.push_back(static_cast<Item>(rng.NextBounded(params.num_items)));
    }
    builder.AddTransaction(tx);
  }
  return builder.Build();
}

}  // namespace fpm
