// Versioned dataset chain — the streaming-ingestion substrate.
//
// A VersionedDataset wraps an append-only transaction log plus a chain
// of immutable DatasetVersion snapshots. Each Append()/Expire()/window
// overflow produces exactly one new version that is delta-encoded
// against its parent: the version record carries the delta (appended
// and expired transactions), a chained content digest, and a fully
// materialized immutable Database for that version's live window.
// Readers holding an older version's database are never affected — the
// shared_ptr keeps the snapshot alive for as long as any job mines it.
//
// Materialization contract (what the byte-identity tests assert): the
// Database of every version is byte-identical — same CSR arrays, same
// weights, same frequencies — to building a fresh Database from the
// live-window transactions in log order. Append-only steps take the
// fast path (bulk-copy the parent CSR via DatabaseBuilder::AddDatabase,
// then append the delta), which is identical because stored
// transactions are already normalized; steps that expire rebuild from
// the log window.
//
// Digest chaining: version 1's digest is whatever the caller supplies
// (the registry passes the file content digest, so an unversioned
// dataset keys caches exactly as before). A child's digest is the FNV
// of its parent's digest plus a canonical serialization of the delta —
// two dataset chains with the same base and the same delta history
// share digests, and any divergence changes every digest downstream.
//
// Sliding windows: a WindowPolicy bounds the live window by count
// ("last N transactions") and/or by time ("last T seconds", against
// per-delta timestamps; "now" is the maximum timestamp ever logged, so
// expiry is deterministic and never consults a wall clock). The policy
// is applied on every Append: overflow transactions expire inside the
// same version the append creates.

#ifndef FPM_DATASET_VERSIONED_H_
#define FPM_DATASET_VERSIONED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"

namespace fpm {

/// Sliding-window retention policy; 0 disables a bound.
struct WindowPolicy {
  /// Keep at most the last N live transactions.
  uint64_t last_n = 0;
  /// Keep transactions with timestamp > max_logged_timestamp - T.
  double last_seconds = 0.0;

  bool bounded() const { return last_n > 0 || last_seconds > 0.0; }
};

/// The delta one version applies to its parent. Transactions are stored
/// normalized (within-transaction duplicates removed, first occurrence
/// wins — the DatabaseBuilder::AddTransaction normal form), so delta
/// consumers (incremental structures, cache reseeding) never re-derive
/// it. `expired` lists the expired transactions oldest-first.
struct VersionDelta {
  std::vector<Itemset> appended;
  std::vector<Support> appended_weights;
  std::vector<Itemset> expired;
  std::vector<Support> expired_weights;
  Support appended_weight = 0;  ///< sum of appended weights
  Support expired_weight = 0;   ///< sum of expired weights

  bool empty() const { return appended.empty() && expired.empty(); }
};

/// One immutable snapshot in the chain.
struct DatasetVersion {
  uint64_t number = 1;  ///< 1-based; version 1 is the loaded base
  std::string digest;
  std::string parent_digest;  ///< empty for version 1
  std::shared_ptr<const Database> database;
  /// Delta against the parent; null for version 1.
  std::shared_ptr<const VersionDelta> delta;
  uint64_t num_transactions = 0;  ///< live transactions at this version
  Support appended_weight = 0;
  Support expired_weight = 0;
};

/// Chained digest of a child version: FNV-1a over the parent digest and
/// a canonical serialization of the delta.
std::string ChainDigest(const std::string& parent_digest,
                        const VersionDelta& delta);

/// The version chain. Not thread-safe; the registry serializes
/// mutations (readers only touch immutable version records they hold).
class VersionedDataset {
 public:
  /// Wraps `base` as version 1 with the given content digest.
  VersionedDataset(Database base, std::string digest);

  const std::vector<DatasetVersion>& versions() const { return versions_; }
  const DatasetVersion& latest() const { return versions_.back(); }

  /// Version `number`, or null when out of range.
  const DatasetVersion* version(uint64_t number) const {
    return number >= 1 && number <= versions_.size()
               ? &versions_[number - 1]
               : nullptr;
  }

  const WindowPolicy& policy() const { return policy_; }

  /// Installs a window policy. When the new bound already overflows the
  /// live window, the overflow expires immediately as a new version;
  /// otherwise no version is created. Returns the latest version.
  const DatasetVersion* SetPolicy(const WindowPolicy& policy);

  /// Appends transactions (raw item lists; within-transaction
  /// duplicates are normalized away) and applies the window policy.
  /// `timestamps` is optional; absent entries inherit the maximum
  /// timestamp logged so far, so untimed appends never trigger time
  /// expiry on their own. Exactly one new version results, carrying
  /// both the appends and any window-driven expiry.
  Result<const DatasetVersion*> Append(
      const std::vector<Itemset>& transactions,
      const std::vector<double>& timestamps = {});

  /// Expires the `count` oldest live transactions (1 <= count <= live).
  Result<const DatasetVersion*> Expire(uint64_t count);

  /// Live transactions in the latest version.
  uint64_t live_transactions() const {
    return seeded_ ? static_cast<uint64_t>(log_.size() - window_start_)
                   : versions_.back().num_transactions;
  }

  /// Heap bytes of the retained version databases plus the log. For a
  /// mapped (packed) base that was never mutated this stays small — the
  /// CSR arrays live in the page cache, not here.
  size_t resident_bytes() const;

  /// File-mapping bytes viewed by the retained version databases (0 for
  /// heap-built chains).
  size_t mapped_bytes() const;

  /// Total footprint: resident + mapped.
  size_t memory_bytes() const { return resident_bytes() + mapped_bytes(); }

  /// Storage backend of the base (version 1) database.
  StorageKind storage_kind() const {
    return versions_.front().database->storage_kind();
  }

 private:
  struct LogEntry {
    Itemset items;  // normalized
    Support weight = 1;
    double timestamp = 0.0;
  };

  /// Copies the base database's transactions into the log. Deferred to
  /// the first mutation so a mapped base stays out-of-core: seeding a
  /// multi-GB packed dataset eagerly would heap-copy the whole file.
  void EnsureSeeded();

  /// Number of leading live transactions the policy expires, given the
  /// window [window_start_, log_.size()).
  size_t PolicyOverflow() const;

  /// Materializes the window [new_start, log_.size()), records the new
  /// version with `delta`, and advances window_start_.
  const DatasetVersion* Commit(size_t new_start,
                               std::shared_ptr<VersionDelta> delta);

  std::vector<LogEntry> log_;
  bool seeded_ = false;
  size_t window_start_ = 0;
  double max_timestamp_ = 0.0;
  WindowPolicy policy_;
  std::vector<DatasetVersion> versions_;
};

}  // namespace fpm

#endif  // FPM_DATASET_VERSIONED_H_
