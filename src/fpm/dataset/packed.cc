#include "fpm/dataset/packed.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "fpm/dataset/fimi_io.h"

namespace fpm {

// The format stores offsets as u64 and the arrays are written verbatim
// from host memory, so this code requires a 64-bit little-endian host
// (the only targets this repo builds for).
static_assert(sizeof(size_t) == 8, "packed format requires 64-bit size_t");
static_assert(std::endian::native == std::endian::little,
              "packed format requires a little-endian host");
static_assert(sizeof(Item) == 4 && sizeof(Support) == 4,
              "packed format stores items/supports/weights as u32");

std::string ContentDigest(const std::string& bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

namespace {

constexpr uint32_t kFlagHasWeights = 1u << 0;

// Field offsets within the header (see packed.h for the layout table).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffEndian = 12;
constexpr size_t kOffNumTransactions = 16;
constexpr size_t kOffNumItems = 24;
constexpr size_t kOffNumEntries = 32;
constexpr size_t kOffTotalWeight = 40;
constexpr size_t kOffFlags = 48;
constexpr size_t kOffDigest = 56;

Status PackedError(const std::string& path, size_t offset, std::string what) {
  return Status::IOError("packed file '" + path + "': " + std::move(what) +
                         " at offset " + std::to_string(offset));
}

template <typename T>
void PutLe(std::string& buf, size_t offset, T value) {
  std::memcpy(buf.data() + offset, &value, sizeof(T));
}

template <typename T>
T GetLe(const uint8_t* base, size_t offset) {
  T value;
  std::memcpy(&value, base + offset, sizeof(T));
  return value;
}

// Owns a read-only mmap of a packed file. The Database's spans point
// into the mapping; the last Database copy unmaps it.
class MappedStorage final : public DatabaseStorage {
 public:
  MappedStorage(void* base, size_t length) : base_(base), length_(length) {}
  MappedStorage(const MappedStorage&) = delete;
  MappedStorage& operator=(const MappedStorage&) = delete;
  ~MappedStorage() override { ::munmap(base_, length_); }

  StorageKind kind() const override { return StorageKind::kPacked; }
  size_t resident_bytes() const override { return 0; }
  size_t mapped_bytes() const override { return length_; }

  const uint8_t* data() const {
    return static_cast<const uint8_t*>(base_);
  }

 private:
  void* base_;
  size_t length_;
};

size_t PackedFileBytes(size_t num_transactions, size_t num_items,
                       size_t num_entries, bool has_weights) {
  return kPackedHeaderBytes + (num_transactions + 1) * sizeof(size_t) +
         num_entries * sizeof(Item) +
         (has_weights ? num_transactions * sizeof(Support) : 0) +
         num_items * sizeof(Support);
}

}  // namespace

Status WritePacked(const Database& db, const std::string& path,
                   std::string digest) {
  if (digest.empty()) digest = ContentDigest(ToFimi(db));
  if (digest.size() != 16) {
    return Status::InvalidArgument(
        "packed digest must be 16 hex chars, got '" + digest + "'");
  }

  std::string header(kPackedHeaderBytes, '\0');
  std::memcpy(header.data() + kOffMagic, kPackedMagic, sizeof(kPackedMagic));
  PutLe<uint32_t>(header, kOffVersion, kPackedFormatVersion);
  PutLe<uint32_t>(header, kOffEndian, kPackedEndianCheck);
  PutLe<uint64_t>(header, kOffNumTransactions, db.num_transactions());
  PutLe<uint64_t>(header, kOffNumItems, db.num_items());
  PutLe<uint64_t>(header, kOffNumEntries, db.num_entries());
  PutLe<uint64_t>(header, kOffTotalWeight, db.total_weight());
  PutLe<uint32_t>(header, kOffFlags, db.has_weights() ? kFlagHasWeights : 0);
  std::memcpy(header.data() + kOffDigest, digest.data(), 16);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot create packed file '" + path + "'");
  }
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  const auto write_span = [&out](const auto& span) {
    out.write(reinterpret_cast<const char*>(span.data()),
              static_cast<std::streamsize>(span.size_bytes()));
  };
  // An empty database still has the offsets sentinel row.
  if (db.offsets().empty()) {
    const size_t zero = 0;
    out.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  } else {
    write_span(db.offsets());
  }
  write_span(db.items());
  if (db.has_weights()) write_span(db.weights());
  write_span(db.item_frequencies());

  out.flush();
  if (!out) {
    return Status::IOError("write failed for packed file '" + path + "'");
  }
  return Status::OK();
}

Result<Database> OpenMapped(const std::string& path, std::string* digest) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open packed file '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status err = Status::IOError("cannot stat packed file '" + path +
                                       "': " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < kPackedHeaderBytes) {
    ::close(fd);
    return PackedError(path, file_bytes,
                       "truncated header (" + std::to_string(file_bytes) +
                           " of " + std::to_string(kPackedHeaderBytes) +
                           " bytes)");
  }

  void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  // The fd is no longer needed once the mapping exists.
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IOError(
        "mmap failed for packed file '" + path + "' (" +
        std::to_string(file_bytes) + " bytes): " + std::strerror(errno));
  }
  // Projection scans walk the arrays front to back; tell the kernel so
  // readahead streams pages in ahead of the miner (best-effort hint).
  ::madvise(base, file_bytes, MADV_SEQUENTIAL);
  auto storage = std::make_shared<MappedStorage>(base, file_bytes);
  const uint8_t* data = storage->data();

  if (std::memcmp(data + kOffMagic, kPackedMagic, sizeof(kPackedMagic)) != 0) {
    return PackedError(path, kOffMagic, "bad magic (not a packed database)");
  }
  const uint32_t version = GetLe<uint32_t>(data, kOffVersion);
  if (version != kPackedFormatVersion) {
    return PackedError(path, kOffVersion,
                       "unsupported format version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kPackedFormatVersion) + ")");
  }
  const uint32_t endian = GetLe<uint32_t>(data, kOffEndian);
  if (endian != kPackedEndianCheck) {
    char got[11];
    std::snprintf(got, sizeof(got), "0x%08x", endian);
    return PackedError(path, kOffEndian,
                       std::string("endian check mismatch (") + got +
                           ", written on an incompatible host?)");
  }

  const uint64_t num_transactions =
      GetLe<uint64_t>(data, kOffNumTransactions);
  const uint64_t num_items = GetLe<uint64_t>(data, kOffNumItems);
  const uint64_t num_entries = GetLe<uint64_t>(data, kOffNumEntries);
  const uint64_t total_weight = GetLe<uint64_t>(data, kOffTotalWeight);
  const uint32_t flags = GetLe<uint32_t>(data, kOffFlags);
  const bool has_weights = (flags & kFlagHasWeights) != 0;
  if (total_weight > std::numeric_limits<Support>::max()) {
    return PackedError(path, kOffTotalWeight,
                       "total weight " + std::to_string(total_weight) +
                           " overflows 32-bit support");
  }

  const size_t expected =
      PackedFileBytes(num_transactions, num_items, num_entries, has_weights);
  if (file_bytes != expected) {
    return PackedError(
        path, file_bytes < expected ? file_bytes : expected,
        "truncated or oversized body (header promises " +
            std::to_string(expected) + " bytes, file has " +
            std::to_string(file_bytes) + ")");
  }

  size_t cursor = kPackedHeaderBytes;
  const size_t offsets_at = cursor;
  const auto* offsets_ptr = reinterpret_cast<const size_t*>(data + cursor);
  cursor += (num_transactions + 1) * sizeof(size_t);
  const auto* items_ptr = reinterpret_cast<const Item*>(data + cursor);
  cursor += num_entries * sizeof(Item);
  const Support* weights_ptr = nullptr;
  if (has_weights) {
    weights_ptr = reinterpret_cast<const Support*>(data + cursor);
    cursor += num_transactions * sizeof(Support);
  }
  const auto* freq_ptr = reinterpret_cast<const Support*>(data + cursor);

  // Validate the CSR spine before anyone indexes through it: a corrupt
  // offsets array would turn transaction() into an out-of-bounds read.
  // O(num_transactions) over the (small) offsets array only.
  if (offsets_ptr[0] != 0) {
    return PackedError(path, offsets_at, "corrupt offsets array (first != 0)");
  }
  for (uint64_t t = 0; t < num_transactions; ++t) {
    if (offsets_ptr[t + 1] < offsets_ptr[t]) {
      return PackedError(path, offsets_at + (t + 1) * sizeof(size_t),
                         "corrupt offsets array (not monotone at row " +
                             std::to_string(t + 1) + ")");
    }
  }
  if (offsets_ptr[num_transactions] != num_entries) {
    return PackedError(path, offsets_at + num_transactions * sizeof(size_t),
                       "corrupt offsets array (last != num_entries)");
  }

  if (digest != nullptr) {
    digest->assign(reinterpret_cast<const char*>(data + kOffDigest), 16);
  }

  return Database::FromStorage(
      std::move(storage), {items_ptr, num_entries},
      {offsets_ptr, num_transactions + 1},
      has_weights ? std::span<const Support>{weights_ptr, num_transactions}
                  : std::span<const Support>{},
      {freq_ptr, num_items}, num_items,
      static_cast<Support>(total_weight));
}

bool IsPackedFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kPackedMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kPackedMagic, sizeof(magic)) == 0;
}

}  // namespace fpm
