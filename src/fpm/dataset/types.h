// Fundamental value types of the mining library.

#ifndef FPM_DATASET_TYPES_H_
#define FPM_DATASET_TYPES_H_

#include <cstdint>
#include <vector>

namespace fpm {

/// Item identifier. The database re-maps raw input item ids into a dense
/// range [0, num_items); the layout library additionally re-maps them into
/// frequency-descending order (pattern P1).
using Item = uint32_t;

/// Transaction identifier: index into the database.
using Tid = uint32_t;

/// Number of transactions supporting an itemset.
using Support = uint32_t;

/// A materialized itemset (sorted ascending by convention).
using Itemset = std::vector<Item>;

/// Sentinel for "no item".
inline constexpr Item kInvalidItem = ~static_cast<Item>(0);

}  // namespace fpm

#endif  // FPM_DATASET_TYPES_H_
