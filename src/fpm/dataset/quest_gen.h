// IBM Quest synthetic transaction generator.
//
// Reimplements the classic Agrawal–Srikant generator (VLDB'94 §2.4.3, the
// "IBM Quest Dataset Generator" the paper uses for DS1 = T60I10D300K and
// DS2 = T70I10D300K): a pool of |L| potentially-large itemsets with
// exponentially distributed weights, correlated contents and per-itemset
// corruption levels; transactions of Poisson length are filled from the
// weighted pool with carry-over of oversized picks.

#ifndef FPM_DATASET_QUEST_GEN_H_
#define FPM_DATASET_QUEST_GEN_H_

#include <cstdint>
#include <string>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"

namespace fpm {

/// Parameters of the Quest generator. Field names follow the paper's
/// T..I..D.. naming: T = avg transaction length, I = avg size of maximal
/// potentially-large itemsets, D = number of transactions.
struct QuestParams {
  uint32_t num_transactions = 10000;      ///< D
  double avg_transaction_len = 10.0;      ///< T
  double avg_pattern_len = 4.0;           ///< I
  uint32_t num_items = 1000;              ///< N (item universe)
  uint32_t num_patterns = 2000;           ///< |L| (pool size)
  double correlation = 0.5;               ///< fraction inherited from prev pattern
  double corruption_mean = 0.5;           ///< mean corruption level
  double corruption_sd = 0.1;             ///< stddev of corruption level
  uint64_t seed = 20070401;               ///< deterministic seed

  /// Parses names like "T60I10D300K" / "T10I4D100K" (K/M suffixes on D).
  /// Item universe and pool size keep their defaults.
  static Result<QuestParams> FromName(const std::string& name);

  /// Canonical "T..I..D.." name for these parameters.
  std::string Name() const;

  /// Validates ranges (positive sizes, correlation/corruption in [0,1]).
  Status Validate() const;
};

/// Generates a database. Deterministic for fixed parameters.
Result<Database> GenerateQuest(const QuestParams& params);

}  // namespace fpm

#endif  // FPM_DATASET_QUEST_GEN_H_
