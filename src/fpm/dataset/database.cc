#include "fpm/dataset/database.h"

#include <algorithm>
#include <utility>

#include "fpm/common/logging.h"

namespace fpm {

namespace {

// Heap-vector backend: owns the CSR arrays a DatabaseBuilder produced.
class OwnedStorage final : public DatabaseStorage {
 public:
  OwnedStorage(std::vector<Item> items, std::vector<size_t> offsets,
               std::vector<Support> weights, std::vector<Support> frequencies)
      : items_(std::move(items)),
        offsets_(std::move(offsets)),
        weights_(std::move(weights)),
        frequencies_(std::move(frequencies)) {}

  StorageKind kind() const override { return StorageKind::kMemory; }

  size_t resident_bytes() const override {
    return items_.capacity() * sizeof(Item) +
           offsets_.capacity() * sizeof(size_t) +
           weights_.capacity() * sizeof(Support) +
           frequencies_.capacity() * sizeof(Support);
  }

  size_t mapped_bytes() const override { return 0; }

  std::span<const Item> items() const { return items_; }
  std::span<const size_t> offsets() const { return offsets_; }
  std::span<const Support> weights() const { return weights_; }
  std::span<const Support> frequencies() const { return frequencies_; }

 private:
  std::vector<Item> items_;
  std::vector<size_t> offsets_;
  std::vector<Support> weights_;
  std::vector<Support> frequencies_;
};

}  // namespace

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kMemory:
      return "memory";
    case StorageKind::kPacked:
      return "packed";
  }
  return "unknown";
}

Database Database::FromStorage(std::shared_ptr<const DatabaseStorage> storage,
                               std::span<const Item> items,
                               std::span<const size_t> offsets,
                               std::span<const Support> weights,
                               std::span<const Support> frequencies,
                               size_t num_items, Support total_weight) {
  Database db;
  db.items_ = items;
  db.offsets_ = offsets;
  db.weights_ = weights;
  db.frequencies_ = frequencies;
  db.num_items_ = num_items;
  db.total_weight_ = total_weight;
  db.storage_ = std::move(storage);
  return db;
}

void DatabaseBuilder::CountAppended(size_t begin, Support weight) {
  if (frequencies_.size() < max_item_bound_) {
    frequencies_.resize(max_item_bound_, 0);
  }
  for (size_t i = begin; i < items_.size(); ++i) {
    frequencies_[items_[i]] += weight;
  }
  total_weight_ += weight;
}

void DatabaseBuilder::AddTransaction(std::span<const Item> items,
                                     Support weight) {
  // De-duplicate while preserving first-occurrence order. Transactions
  // are short relative to the item universe, so sort a scratch copy to
  // detect duplicates, then emit in input order.
  const size_t begin = items_.size();
  scratch_.assign(items.begin(), items.end());
  std::sort(scratch_.begin(), scratch_.end());
  const bool has_dup =
      std::adjacent_find(scratch_.begin(), scratch_.end()) != scratch_.end();

  if (!has_dup) {
    items_.insert(items_.end(), items.begin(), items.end());
  } else {
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    // Emit in input order, keeping only the first occurrence of each item.
    std::vector<Item> remaining = scratch_;
    for (Item it : items) {
      auto pos = std::lower_bound(remaining.begin(), remaining.end(), it);
      if (pos != remaining.end() && *pos == it) {
        items_.push_back(it);
        remaining.erase(pos);
      }
    }
  }
  for (Item it : items) {
    if (static_cast<size_t>(it) + 1 > max_item_bound_) {
      max_item_bound_ = static_cast<size_t>(it) + 1;
    }
  }
  offsets_.push_back(items_.size());
  weights_.push_back(weight);
  if (weight != 1) any_weighted_ = true;
  CountAppended(begin, weight);
}

void DatabaseBuilder::AddSortedTransaction(std::span<const Item> items,
                                           Support weight) {
  const size_t begin = items_.size();
  items_.insert(items_.end(), items.begin(), items.end());
  if (!items.empty()) {
    FPM_DCHECK(std::is_sorted(items.begin(), items.end()) &&
               std::adjacent_find(items.begin(), items.end()) == items.end())
        << "AddSortedTransaction requires strictly increasing items";
    const size_t bound = static_cast<size_t>(items.back()) + 1;
    if (bound > max_item_bound_) max_item_bound_ = bound;
  }
  offsets_.push_back(items_.size());
  weights_.push_back(weight);
  if (weight != 1) any_weighted_ = true;
  CountAppended(begin, weight);
}

void DatabaseBuilder::AddDatabase(const Database& db) {
  const std::span<const Item> src_items = db.items();
  const std::span<const size_t> src_offsets = db.offsets();
  items_.insert(items_.end(), src_items.begin(), src_items.end());
  const size_t base = offsets_.back();
  offsets_.reserve(offsets_.size() + db.num_transactions());
  for (size_t t = 1; t < src_offsets.size(); ++t) {
    offsets_.push_back(base + src_offsets[t]);
  }
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    weights_.push_back(db.weight(t));
  }
  if (db.has_weights()) any_weighted_ = true;
  if (db.num_items() > max_item_bound_) max_item_bound_ = db.num_items();
  if (frequencies_.size() < max_item_bound_) {
    frequencies_.resize(max_item_bound_, 0);
  }
  const std::span<const Support> src_freq = db.item_frequencies();
  for (size_t i = 0; i < src_freq.size(); ++i) {
    frequencies_[i] += src_freq[i];
  }
  total_weight_ += db.total_weight();
}

Database DatabaseBuilder::Build() {
  const size_t num_items = max_item_bound_;
  const Support total_weight = total_weight_;
  frequencies_.resize(max_item_bound_, 0);
  if (!any_weighted_) weights_.clear();

  auto storage = std::make_shared<OwnedStorage>(
      std::move(items_), std::move(offsets_), std::move(weights_),
      std::move(frequencies_));

  // Reset to a clean reusable state (members are moved-from).
  items_.clear();
  offsets_.assign(1, 0);
  weights_.clear();
  frequencies_.clear();
  max_item_bound_ = 0;
  total_weight_ = 0;
  any_weighted_ = false;

  const OwnedStorage& s = *storage;
  return Database::FromStorage(std::move(storage), s.items(), s.offsets(),
                               s.weights(), s.frequencies(), num_items,
                               total_weight);
}

}  // namespace fpm
