#include "fpm/dataset/database.h"

#include <algorithm>

#include "fpm/common/logging.h"

namespace fpm {

void DatabaseBuilder::CountAppended(size_t begin, Support weight) {
  if (frequencies_.size() < max_item_bound_) {
    frequencies_.resize(max_item_bound_, 0);
  }
  for (size_t i = begin; i < items_.size(); ++i) {
    frequencies_[items_[i]] += weight;
  }
  total_weight_ += weight;
}

void DatabaseBuilder::AddTransaction(std::span<const Item> items,
                                     Support weight) {
  // De-duplicate while preserving first-occurrence order. Transactions
  // are short relative to the item universe, so sort a scratch copy to
  // detect duplicates, then emit in input order.
  const size_t begin = items_.size();
  scratch_.assign(items.begin(), items.end());
  std::sort(scratch_.begin(), scratch_.end());
  const bool has_dup =
      std::adjacent_find(scratch_.begin(), scratch_.end()) != scratch_.end();

  if (!has_dup) {
    items_.insert(items_.end(), items.begin(), items.end());
  } else {
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    // Emit in input order, keeping only the first occurrence of each item.
    std::vector<Item> remaining = scratch_;
    for (Item it : items) {
      auto pos = std::lower_bound(remaining.begin(), remaining.end(), it);
      if (pos != remaining.end() && *pos == it) {
        items_.push_back(it);
        remaining.erase(pos);
      }
    }
  }
  for (Item it : items) {
    if (static_cast<size_t>(it) + 1 > max_item_bound_) {
      max_item_bound_ = static_cast<size_t>(it) + 1;
    }
  }
  offsets_.push_back(items_.size());
  weights_.push_back(weight);
  if (weight != 1) any_weighted_ = true;
  CountAppended(begin, weight);
}

void DatabaseBuilder::AddSortedTransaction(std::span<const Item> items,
                                           Support weight) {
  const size_t begin = items_.size();
  items_.insert(items_.end(), items.begin(), items.end());
  if (!items.empty()) {
    FPM_DCHECK(std::is_sorted(items.begin(), items.end()) &&
               std::adjacent_find(items.begin(), items.end()) == items.end())
        << "AddSortedTransaction requires strictly increasing items";
    const size_t bound = static_cast<size_t>(items.back()) + 1;
    if (bound > max_item_bound_) max_item_bound_ = bound;
  }
  offsets_.push_back(items_.size());
  weights_.push_back(weight);
  if (weight != 1) any_weighted_ = true;
  CountAppended(begin, weight);
}

void DatabaseBuilder::AddDatabase(const Database& db) {
  items_.insert(items_.end(), db.items_.begin(), db.items_.end());
  const size_t base = offsets_.back();
  offsets_.reserve(offsets_.size() + db.num_transactions());
  for (size_t t = 1; t < db.offsets_.size(); ++t) {
    offsets_.push_back(base + db.offsets_[t]);
  }
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    weights_.push_back(db.weight(t));
  }
  if (db.has_weights()) any_weighted_ = true;
  if (db.num_items_ > max_item_bound_) max_item_bound_ = db.num_items_;
  if (frequencies_.size() < max_item_bound_) {
    frequencies_.resize(max_item_bound_, 0);
  }
  for (size_t i = 0; i < db.frequencies_.size(); ++i) {
    frequencies_[i] += db.frequencies_[i];
  }
  total_weight_ += db.total_weight_;
}

Database DatabaseBuilder::Build() {
  Database db;
  db.items_ = std::move(items_);
  db.offsets_ = std::move(offsets_);
  db.num_items_ = max_item_bound_;
  if (any_weighted_) {
    db.weights_ = std::move(weights_);
  }
  frequencies_.resize(max_item_bound_, 0);
  db.frequencies_ = std::move(frequencies_);
  db.total_weight_ = total_weight_;

  // Reset to a clean reusable state.
  items_.clear();
  offsets_.assign(1, 0);
  weights_.clear();
  frequencies_.clear();
  max_item_bound_ = 0;
  total_weight_ = 0;
  any_weighted_ = false;
  return db;
}

}  // namespace fpm
