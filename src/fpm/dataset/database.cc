#include "fpm/dataset/database.h"

#include <algorithm>

namespace fpm {

void DatabaseBuilder::AddTransaction(std::span<const Item> items,
                                     Support weight) {
  // De-duplicate while preserving first-occurrence order. Transactions
  // are short relative to the item universe, so sort a scratch copy to
  // detect duplicates, then emit in input order.
  scratch_.assign(items.begin(), items.end());
  std::sort(scratch_.begin(), scratch_.end());
  const bool has_dup =
      std::adjacent_find(scratch_.begin(), scratch_.end()) != scratch_.end();

  if (!has_dup) {
    items_.insert(items_.end(), items.begin(), items.end());
  } else {
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    // Emit in input order, keeping only the first occurrence of each item.
    std::vector<Item> remaining = scratch_;
    for (Item it : items) {
      auto pos = std::lower_bound(remaining.begin(), remaining.end(), it);
      if (pos != remaining.end() && *pos == it) {
        items_.push_back(it);
        remaining.erase(pos);
      }
    }
  }
  for (Item it : items) {
    if (static_cast<size_t>(it) + 1 > max_item_bound_) {
      max_item_bound_ = static_cast<size_t>(it) + 1;
    }
  }
  offsets_.push_back(items_.size());
  weights_.push_back(weight);
  if (weight != 1) any_weighted_ = true;
}

Database DatabaseBuilder::Build() {
  Database db;
  db.items_ = std::move(items_);
  db.offsets_ = std::move(offsets_);
  db.num_items_ = max_item_bound_;
  if (any_weighted_) {
    db.weights_ = std::move(weights_);
  }
  db.frequencies_.assign(db.num_items_, 0);
  db.total_weight_ = 0;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    const Support w = db.weight(t);
    db.total_weight_ += w;
    for (Item it : db.transaction(t)) db.frequencies_[it] += w;
  }

  // Reset to a clean reusable state.
  items_.clear();
  offsets_.assign(1, 0);
  weights_.clear();
  max_item_bound_ = 0;
  any_weighted_ = false;
  return db;
}

}  // namespace fpm
