#include "fpm/simcache/memory_system.h"

#include "fpm/perf/platform_info.h"

namespace fpm {

MemorySystemConfig MemorySystemConfig::PentiumD() {
  MemorySystemConfig c;
  c.name = "M1-PentiumD";
  c.l1 = CacheConfig{16 * 1024, 8, 64};
  c.l2 = CacheConfig{1024 * 1024, 8, 64};
  c.tlb_entries = 64;
  return c;
}

MemorySystemConfig MemorySystemConfig::Athlon64X2() {
  MemorySystemConfig c;
  c.name = "M2-Athlon64X2";
  c.l1 = CacheConfig{64 * 1024, 2, 64};
  c.l2 = CacheConfig{512 * 1024, 16, 64};
  c.tlb_entries = 40;
  return c;
}

MemorySystemConfig MemorySystemConfig::Host() {
  const PlatformInfo info = PlatformInfo::Detect();
  MemorySystemConfig c;
  c.name = "host";
  c.l1 = CacheConfig{info.l1d_bytes != 0 ? info.l1d_bytes : 32 * 1024, 8, 64};
  c.l2 =
      CacheConfig{info.l2_bytes != 0 ? info.l2_bytes : 1024 * 1024, 8, 64};
  // Geometry sanity: if detected sizes break the power-of-two set
  // constraint, fall back to the defaults.
  if (!c.l1.Validate().ok()) c.l1 = CacheConfig{32 * 1024, 8, 64};
  if (!c.l2.Validate().ok()) c.l2 = CacheConfig{1024 * 1024, 8, 64};
  c.tlb_entries = 64;
  return c;
}

double MemorySystemStats::EstimatedCycles() const {
  const uint64_t l1_hits = l1.accesses - l1.misses;
  const uint64_t l2_hits = l2.accesses - l2.misses;
  return static_cast<double>(l1_hits) * 1.0 +
         static_cast<double>(l2_hits) * 14.0 +
         static_cast<double>(l2.misses) * 240.0 +
         static_cast<double>(tlb.misses) * 30.0;
}

MemorySystem::MemorySystem(const MemorySystemConfig& config)
    : config_(config),
      l1_(config.l1),
      l2_(config.l2),
      tlb_(config.tlb_entries, config.page_bytes) {}

void MemorySystem::Touch(uint64_t addr, size_t bytes) {
  if (bytes == 0) bytes = 1;
  const uint64_t line = config_.l1.line_bytes;
  const uint64_t first = addr / line;
  const uint64_t last = (addr + bytes - 1) / line;
  for (uint64_t l = first; l <= last; ++l) {
    const uint64_t line_addr = l * line;
    tlb_.Access(line_addr);
    if (!l1_.Access(line_addr)) {
      l2_.Access(line_addr);
    }
    if (config_.next_line_prefetch) {
      // Fill the successor line in both levels (no stats impact): a
      // stream therefore misses only on its first line, while pointer
      // chasing gains nothing (and pays slight pollution) — matching
      // real next-line prefetcher behaviour.
      l1_.Install(line_addr + line);
      l2_.Install(line_addr + line);
    }
  }
}

void MemorySystem::Reset() {
  l1_.Reset();
  l2_.Reset();
  tlb_.Reset();
}

MemorySystemStats MemorySystem::stats() const {
  MemorySystemStats s;
  s.l1 = l1_.stats();
  s.l2 = l2_.stats();
  s.tlb = tlb_.stats();
  return s;
}

}  // namespace fpm
