// L1 -> L2 (+TLB) hierarchy built from CacheModel, with presets for the
// paper's two evaluation platforms (Table 5) and the detected host.

#ifndef FPM_SIMCACHE_MEMORY_SYSTEM_H_
#define FPM_SIMCACHE_MEMORY_SYSTEM_H_

#include <string>

#include "fpm/simcache/cache_model.h"

namespace fpm {

/// Hierarchy geometry.
struct MemorySystemConfig {
  std::string name = "custom";
  CacheConfig l1;
  CacheConfig l2;
  uint32_t tlb_entries = 64;
  uint32_t page_bytes = 4096;
  /// Models the next-line hardware prefetcher both evaluation platforms
  /// had: every access fills the successor line alongside, so a
  /// sequential stream misses only on its first line while pointer
  /// chasing gains nothing (and pays slight pollution).
  bool next_line_prefetch = true;

  /// M1: Intel Pentium D 830 — 16KB 8-way L1D, 1MB 8-way L2 (Table 5).
  static MemorySystemConfig PentiumD();
  /// M2: AMD Athlon 64 X2 4200+ — 64KB 2-way L1D, 512KB 16-way L2.
  static MemorySystemConfig Athlon64X2();
  /// The detected host geometry (falls back to PentiumD-ish defaults for
  /// undetectable levels).
  static MemorySystemConfig Host();
};

/// Aggregate miss counts of one simulation.
struct MemorySystemStats {
  CacheStats l1;
  CacheStats l2;  ///< accesses == l1.misses
  CacheStats tlb;

  /// Crude cost model: cycles = hits*1 + l2hits*14 + mem*240 + tlbmiss*30.
  /// Only meaningful for *comparing* layouts, not predicting real time.
  double EstimatedCycles() const;
};

/// Simulated read-path of one hierarchy. Not thread-safe.
class MemorySystem {
 public:
  explicit MemorySystem(const MemorySystemConfig& config);

  /// Simulates a `bytes`-wide read at `addr` (touches every spanned
  /// line once).
  void Touch(uint64_t addr, size_t bytes = 1);

  /// Convenience for touching a typed object's storage.
  template <typename T>
  void TouchObject(const T* ptr) {
    Touch(reinterpret_cast<uint64_t>(ptr), sizeof(T));
  }

  /// Touches an array range [ptr, ptr+count).
  template <typename T>
  void TouchRange(const T* ptr, size_t count) {
    Touch(reinterpret_cast<uint64_t>(ptr), count * sizeof(T));
  }

  void Reset();

  MemorySystemStats stats() const;
  const MemorySystemConfig& config() const { return config_; }

 private:
  MemorySystemConfig config_;
  CacheModel l1_;
  CacheModel l2_;
  TlbModel tlb_;
};

}  // namespace fpm

#endif  // FPM_SIMCACHE_MEMORY_SYSTEM_H_
