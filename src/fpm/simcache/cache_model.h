// Set-associative cache model with true-LRU replacement.
//
// The paper validated its locality patterns with hardware cache-miss
// counters on two specific machines (Table 5). We cannot demand those
// machines, so this simulator replays the miners' access patterns
// against *configurable* cache geometries — including M1's and M2's —
// making the platform-dependence of P1/P4/P6 reproducible anywhere
// (DESIGN.md §5, substitution 3).

#ifndef FPM_SIMCACHE_CACHE_MODEL_H_
#define FPM_SIMCACHE_CACHE_MODEL_H_

#include <cstdint>
#include <vector>

#include "fpm/common/status.h"

namespace fpm {

/// Geometry of one cache level.
struct CacheConfig {
  size_t size_bytes = 32 * 1024;
  uint32_t ways = 8;
  uint32_t line_bytes = 64;

  Status Validate() const;
};

/// Hit/miss counters of one level.
struct CacheStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// One cache level. Stores tags only (no data); LRU via per-line
/// timestamps (sets are small, linear scan is fine).
class CacheModel {
 public:
  /// Dies on invalid geometry (sizes must divide into power-of-two sets).
  explicit CacheModel(const CacheConfig& config);

  /// Touches the line containing `addr`; returns true on hit.
  bool Access(uint64_t addr);

  /// Installs the line containing `addr` without counting an access or a
  /// miss — models a hardware prefetch fill.
  void Install(uint64_t addr);

  /// Invalidates everything and zeroes the statistics.
  void Reset();

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }
  uint32_t num_sets() const { return num_sets_; }

 private:
  struct Line {
    uint64_t tag = ~0ull;
    uint64_t lru = 0;
    bool valid = false;
  };

  CacheConfig config_;
  uint32_t num_sets_;
  int line_shift_;
  std::vector<Line> lines_;  // num_sets * ways, set-major
  uint64_t tick_ = 0;
  CacheStats stats_;
};

/// Fully associative TLB model (LRU), 4 KiB pages by default.
class TlbModel {
 public:
  explicit TlbModel(uint32_t entries, uint32_t page_bytes = 4096);

  bool Access(uint64_t addr);
  void Reset();

  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t page = ~0ull;
    uint64_t lru = 0;
    bool valid = false;
  };

  int page_shift_;
  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace fpm

#endif  // FPM_SIMCACHE_CACHE_MODEL_H_
