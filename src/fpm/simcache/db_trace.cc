#include "fpm/simcache/db_trace.h"

#include <vector>

namespace fpm {
namespace {

// occ[i] = transactions containing item i, ascending tid (flat CSR).
struct OccIndex {
  std::vector<uint32_t> offsets;  // num_items + 1
  std::vector<Tid> tids;
};

OccIndex BuildOcc(const Database& db) {
  OccIndex occ;
  occ.offsets.assign(db.num_items() + 1, 0);
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    for (Item it : db.transaction(t)) ++occ.offsets[it + 1];
  }
  for (size_t i = 1; i < occ.offsets.size(); ++i) {
    occ.offsets[i] += occ.offsets[i - 1];
  }
  occ.tids.resize(db.num_entries());
  std::vector<uint32_t> cursor(occ.offsets.begin(), occ.offsets.end() - 1);
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    for (Item it : db.transaction(t)) occ.tids[cursor[it]++] = t;
  }
  return occ;
}

// Simulates reading transaction t: its offset slot, then its payload.
void TouchTransaction(const Database& db, Tid t, MemorySystem* mem) {
  mem->TouchObject(&db.offsets()[t]);
  const auto tx = db.transaction(t);
  if (!tx.empty()) mem->TouchRange(tx.data(), tx.size());
}

}  // namespace

MemorySystemStats TraceColumnWalk(const Database& db, MemorySystem* mem) {
  mem->Reset();
  const OccIndex occ = BuildOcc(db);
  for (Item i = 0; i < db.num_items(); ++i) {
    for (uint32_t k = occ.offsets[i]; k < occ.offsets[i + 1]; ++k) {
      mem->TouchObject(&occ.tids[k]);
      TouchTransaction(db, occ.tids[k], mem);
    }
  }
  return mem->stats();
}

MemorySystemStats TraceTiledColumnWalk(const Database& db,
                                       uint32_t tile_entries,
                                       MemorySystem* mem) {
  mem->Reset();
  const OccIndex occ = BuildOcc(db);
  // Tile boundaries by cumulative payload size.
  std::vector<Tid> tile_ends;
  uint32_t acc = 0;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    acc += static_cast<uint32_t>(db.transaction(t).size());
    if (acc >= tile_entries) {
      tile_ends.push_back(t + 1);
      acc = 0;
    }
  }
  if (tile_ends.empty() ||
      tile_ends.back() != static_cast<Tid>(db.num_transactions())) {
    tile_ends.push_back(static_cast<Tid>(db.num_transactions()));
  }

  std::vector<uint32_t> cursor(db.num_items());
  for (Item i = 0; i < db.num_items(); ++i) cursor[i] = occ.offsets[i];
  for (Tid tile_end : tile_ends) {
    for (Item i = 0; i < db.num_items(); ++i) {
      while (cursor[i] < occ.offsets[i + 1] &&
             occ.tids[cursor[i]] < tile_end) {
        mem->TouchObject(&occ.tids[cursor[i]]);
        TouchTransaction(db, occ.tids[cursor[i]], mem);
        ++cursor[i];
      }
    }
  }
  return mem->stats();
}

MemorySystemStats TraceSequentialScan(const Database& db,
                                      MemorySystem* mem) {
  mem->Reset();
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    TouchTransaction(db, t, mem);
  }
  return mem->stats();
}

}  // namespace fpm
