#include "fpm/simcache/cache_model.h"

#include "fpm/common/bits.h"
#include "fpm/common/logging.h"

namespace fpm {

Status CacheConfig::Validate() const {
  if (line_bytes == 0 || !IsPowerOfTwo(line_bytes)) {
    return Status::InvalidArgument("line_bytes must be a power of two");
  }
  if (ways == 0) return Status::InvalidArgument("ways must be positive");
  if (size_bytes == 0 || size_bytes % (static_cast<size_t>(ways) * line_bytes) != 0) {
    return Status::InvalidArgument(
        "size_bytes must be a multiple of ways * line_bytes");
  }
  const size_t sets = size_bytes / (static_cast<size_t>(ways) * line_bytes);
  if (!IsPowerOfTwo(sets)) {
    return Status::InvalidArgument("number of sets must be a power of two");
  }
  return Status::OK();
}

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
  FPM_CHECK_OK(config.Validate());
  num_sets_ = static_cast<uint32_t>(
      config.size_bytes / (static_cast<size_t>(config.ways) * config.line_bytes));
  line_shift_ = Log2Floor64(config.line_bytes);
  lines_.assign(static_cast<size_t>(num_sets_) * config.ways, Line{});
}

bool CacheModel::Access(uint64_t addr) {
  ++stats_.accesses;
  ++tick_;
  const uint64_t line_addr = addr >> line_shift_;
  const uint32_t set = static_cast<uint32_t>(line_addr & (num_sets_ - 1));
  const uint64_t tag = line_addr >> Log2Floor64(num_sets_ == 1 ? 1 : num_sets_);
  Line* base = &lines_[static_cast<size_t>(set) * config_.ways];

  Line* victim = base;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

void CacheModel::Install(uint64_t addr) {
  ++tick_;
  const uint64_t line_addr = addr >> line_shift_;
  const uint32_t set = static_cast<uint32_t>(line_addr & (num_sets_ - 1));
  const uint64_t tag =
      line_addr >> Log2Floor64(num_sets_ == 1 ? 1 : num_sets_);
  Line* base = &lines_[static_cast<size_t>(set) * config_.ways];
  Line* victim = base;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      return;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
}

void CacheModel::Reset() {
  for (auto& line : lines_) line = Line{};
  tick_ = 0;
  stats_ = CacheStats{};
}

TlbModel::TlbModel(uint32_t entries, uint32_t page_bytes) {
  FPM_CHECK(entries > 0);
  FPM_CHECK(IsPowerOfTwo(page_bytes));
  page_shift_ = Log2Floor64(page_bytes);
  entries_.assign(entries, Entry{});
}

bool TlbModel::Access(uint64_t addr) {
  ++stats_.accesses;
  ++tick_;
  const uint64_t page = addr >> page_shift_;
  Entry* victim = &entries_[0];
  for (auto& e : entries_) {
    if (e.valid && e.page == page) {
      e.lru = tick_;
      return true;
    }
    if (!e.valid) {
      victim = &e;
    } else if (victim->valid && e.lru < victim->lru) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->page = page;
  victim->lru = tick_;
  return false;
}

void TlbModel::Reset() {
  for (auto& e : entries_) e = Entry{};
  tick_ = 0;
  stats_ = CacheStats{};
}

}  // namespace fpm
