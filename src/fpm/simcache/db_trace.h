// Replays the miners' characteristic access patterns over a real
// Database against a simulated memory hierarchy. This is how the bench
// suite demonstrates the *mechanism* behind P1/P6 (fewer simulated
// L1/L2/TLB misses), independent of host hardware.

#ifndef FPM_SIMCACHE_DB_TRACE_H_
#define FPM_SIMCACHE_DB_TRACE_H_

#include "fpm/dataset/database.h"
#include "fpm/simcache/memory_system.h"

namespace fpm {

/// The per-item column walk of LCM's occurrence traversal (§4.1): for
/// each item in frequency order, visit every transaction containing it
/// and read the transaction's payload. Resets `mem` first.
MemorySystemStats TraceColumnWalk(const Database& db, MemorySystem* mem);

/// The same walk restructured per P6.1: an outer loop over transaction
/// tiles of ~`tile_entries` items, an inner loop serving all items from
/// the resident tile. Resets `mem` first.
MemorySystemStats TraceTiledColumnWalk(const Database& db,
                                       uint32_t tile_entries,
                                       MemorySystem* mem);

/// One sequential pass over the whole database (the counting phase / the
/// best case any layout can reach). Resets `mem` first.
MemorySystemStats TraceSequentialScan(const Database& db, MemorySystem* mem);

}  // namespace fpm

#endif  // FPM_SIMCACHE_DB_TRACE_H_
