// Pattern advisor — the paper's §6 future work ("the problem of
// selecting an optimal set of transformations, given the input and
// machine parameters"), implemented as the transparent rule set §4.4's
// observations suggest:
//
//   - lexicographic ordering pays off when the input order is random
//     (low consecutive-transaction similarity) and hurts when the
//     database is so large that the sort dominates (the DS4/FP-Growth
//     case);
//   - software prefetch and aggregation want long linked structures
//     (proxy: average transaction length);
//   - tiling wants clustered transactions with reuse; on very sparse
//     data it only adds loop overhead (the DS4/LCM case);
//   - SIMDization always helps the computation-bound kernel.

#ifndef FPM_CORE_PATTERN_ADVISOR_H_
#define FPM_CORE_PATTERN_ADVISOR_H_

#include <string>
#include <vector>

#include "fpm/core/patterns.h"
#include "fpm/dataset/stats.h"

namespace fpm {

/// Tunable decision thresholds (defaults calibrated on the bench suite).
struct AdvisorConfig {
  /// P1 skipped when consecutive Jaccard is already above this (input is
  /// pre-clustered; the sort buys little).
  double lex_jaccard_ceiling = 0.15;
  /// P1 skipped for FP-Growth above this many transactions on sparse
  /// data (sort time dominates — the paper's DS4 observation).
  size_t lex_fpgrowth_tx_limit = 1000000;
  /// P6 skipped below this density (no reuse to tile for).
  double tiling_density_floor = 0.002;
  /// P3/P5/P7 skipped below this average transaction length (linked
  /// structures too short to hide latency in).
  double prefetch_min_avg_len = 6.0;

  /// AdviseMining picks Eclat when density is at least this and the
  /// used-item universe is at most eclat_max_items (bit matrix stays
  /// compact and intersections dominate).
  double eclat_density_floor = 0.03;
  size_t eclat_max_items = 4000;
};

/// A recommendation plus the reason for every inclusion/exclusion.
struct PatternAdvice {
  PatternSet patterns;
  std::vector<std::string> rationale;
};

/// Recommends a pattern subset of PatternSet::ApplicableTo(algorithm)
/// for the given input characteristics.
PatternAdvice AdvisePatterns(Algorithm algorithm, const DatabaseStats& stats,
                             const AdvisorConfig& config = AdvisorConfig());

/// A full mining recommendation: which kernel and which patterns.
struct MiningAdvice {
  Algorithm algorithm = Algorithm::kLcm;
  PatternSet patterns;
  std::vector<std::string> rationale;
};

/// Picks a kernel for the input ("no one algorithm dominates: the
/// performance of these algorithms is very dependent on input
/// characteristics", §1) and the pattern set to tune it with:
/// dense moderate-universe inputs go to Eclat (compact bit matrix,
/// SIMD-able intersections); everything else to LCM. Heuristic and
/// transparent — the rationale lists every decision.
MiningAdvice AdviseMining(const DatabaseStats& stats,
                          const AdvisorConfig& config = AdvisorConfig());

}  // namespace fpm

#endif  // FPM_CORE_PATTERN_ADVISOR_H_
