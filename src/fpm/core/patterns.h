// The ALSO tuning-pattern registry: the paper's §3 catalogue (P1..P8)
// with the benefit matrix of Table 2, the kernel characteristics of
// Table 3, and the applicability matrix of Table 4, all queryable.

#ifndef FPM_CORE_PATTERNS_H_
#define FPM_CORE_PATTERNS_H_

#include <cstdint>
#include <span>
#include <string>

#include "fpm/common/status.h"

namespace fpm {

/// The eight ALSO tuning patterns of §3.
enum class Pattern : uint8_t {
  kLexicographicOrdering = 0,    ///< P1 (§3.2)
  kDataStructureAdaptation = 1,  ///< P2 (§3.3)
  kAggregation = 2,              ///< P3 (§3.3)
  kCompaction = 3,               ///< P4 (§3.3)
  kPrefetchPointers = 4,         ///< P5 (§3.3)
  kTiling = 5,                   ///< P6 / P6.1 (§3.4)
  kSoftwarePrefetch = 6,         ///< P7 / P7.1 (§3.4)
  kSimdization = 7,              ///< P8 (§3.5)
};

inline constexpr int kNumPatterns = 8;

/// Registry entry: identity plus Table 2's benefit columns.
struct PatternInfo {
  Pattern pattern;
  const char* id;        ///< "P1".."P8"
  const char* name;      ///< "lexicographic ordering", ...
  const char* category;  ///< "database layout" / "data structures" / ...
  // Table 2 columns.
  bool spatial_locality;
  bool temporal_locality;
  bool memory_latency;
  bool computation;
};

/// All eight entries, in P1..P8 order.
std::span<const PatternInfo> AllPatterns();

/// Registry entry for one pattern.
const PatternInfo& GetPatternInfo(Pattern p);

/// The mining kernels the library implements.
enum class Algorithm {
  kLcm,
  kEclat,
  kFpGrowth,
  kApriori,     // completeness baseline (not in the paper's evaluation)
  kHMine,       // hyper-structure miner (the paper's reference [25])
  kBruteForce,  // test oracle
};

/// Stable lowercase name ("lcm", "eclat", ...).
const char* AlgorithmName(Algorithm a);

/// Parses an algorithm name (case-insensitive).
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// Table 3: kernel characteristics.
struct AlgorithmInfo {
  Algorithm algorithm;
  const char* database_type;  ///< "horizontal" / "vertical"
  const char* data_structure; ///< "array" / "bit vector" / "tree" / ...
  const char* bound;          ///< "memory" / "computation"
};

const AlgorithmInfo& GetAlgorithmInfo(Algorithm a);

/// A set of enabled patterns.
class PatternSet {
 public:
  constexpr PatternSet() = default;

  static constexpr PatternSet None() { return PatternSet(); }
  static PatternSet All();

  /// The patterns the case studies apply to `a` (Table 4's check marks).
  /// Apriori/brute-force get the empty set.
  static PatternSet ApplicableTo(Algorithm a);

  /// Parses a comma-separated list of pattern ids or names:
  /// "P1,P8", "lex,simd", "all", "none".
  static Result<PatternSet> Parse(const std::string& text);

  PatternSet With(Pattern p) const {
    PatternSet s = *this;
    s.bits_ |= Bit(p);
    return s;
  }
  PatternSet Without(Pattern p) const {
    PatternSet s = *this;
    s.bits_ &= static_cast<uint8_t>(~Bit(p));
    return s;
  }
  bool Contains(Pattern p) const { return (bits_ & Bit(p)) != 0; }
  bool empty() const { return bits_ == 0; }
  int count() const;

  /// Raw bit mask — a stable scalar for hashing / cache keys.
  uint8_t bits() const { return bits_; }

  PatternSet Intersect(PatternSet other) const {
    PatternSet s;
    s.bits_ = bits_ & other.bits_;
    return s;
  }
  PatternSet Union(PatternSet other) const {
    PatternSet s;
    s.bits_ = bits_ | other.bits_;
    return s;
  }

  /// "P1+P7" style rendering; "none" when empty.
  std::string ToString() const;

  bool operator==(const PatternSet&) const = default;

 private:
  static constexpr uint8_t Bit(Pattern p) {
    return static_cast<uint8_t>(1u << static_cast<uint8_t>(p));
  }
  uint8_t bits_ = 0;
};

}  // namespace fpm

#endif  // FPM_CORE_PATTERNS_H_
