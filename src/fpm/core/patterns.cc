#include "fpm/core/patterns.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace fpm {
namespace {

// Table 2 of the paper, verbatim.
constexpr std::array<PatternInfo, kNumPatterns> kPatterns = {{
    {Pattern::kLexicographicOrdering, "P1", "lexicographic ordering",
     "database layout", /*spatial=*/true, /*temporal=*/false,
     /*latency=*/false, /*computation=*/false},
    {Pattern::kDataStructureAdaptation, "P2", "data structure adaptation",
     "data structures", true, false, false, false},
    {Pattern::kAggregation, "P3", "aggregation", "data structures", true,
     false, true, false},
    {Pattern::kCompaction, "P4", "compaction", "data structures", true,
     false, false, false},
    {Pattern::kPrefetchPointers, "P5", "prefetch pointers",
     "data structures", false, false, true, false},
    {Pattern::kTiling, "P6", "tiling", "data access", false, true, false,
     false},
    {Pattern::kSoftwarePrefetch, "P7", "software prefetch", "data access",
     false, false, true, false},
    {Pattern::kSimdization, "P8", "SIMDization", "instruction parallelism",
     false, false, false, true},
}};

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// Short aliases accepted by PatternSet::Parse.
Result<Pattern> ParseOnePattern(const std::string& raw) {
  const std::string t = ToLower(raw);
  if (t == "p1" || t == "lex" || t == "lexicographic" ||
      t == "lexicographic ordering") {
    return Pattern::kLexicographicOrdering;
  }
  if (t == "p2" || t == "adapt" || t == "adaptation" ||
      t == "data structure adaptation") {
    return Pattern::kDataStructureAdaptation;
  }
  if (t == "p3" || t == "agg" || t == "aggregation") {
    return Pattern::kAggregation;
  }
  if (t == "p4" || t == "compact" || t == "compaction") {
    return Pattern::kCompaction;
  }
  if (t == "p5" || t == "jump" || t == "prefetch pointers") {
    return Pattern::kPrefetchPointers;
  }
  if (t == "p6" || t == "tile" || t == "tiling") return Pattern::kTiling;
  if (t == "p7" || t == "pref" || t == "prefetch" ||
      t == "software prefetch") {
    return Pattern::kSoftwarePrefetch;
  }
  if (t == "p8" || t == "simd" || t == "simdization") {
    return Pattern::kSimdization;
  }
  return Status::InvalidArgument("unknown pattern: '" + raw + "'");
}

}  // namespace

std::span<const PatternInfo> AllPatterns() { return kPatterns; }

const PatternInfo& GetPatternInfo(Pattern p) {
  return kPatterns[static_cast<size_t>(p)];
}

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kLcm:
      return "lcm";
    case Algorithm::kEclat:
      return "eclat";
    case Algorithm::kFpGrowth:
      return "fpgrowth";
    case Algorithm::kApriori:
      return "apriori";
    case Algorithm::kHMine:
      return "hmine";
    case Algorithm::kBruteForce:
      return "bruteforce";
  }
  return "?";
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  const std::string t = ToLower(name);
  if (t == "lcm") return Algorithm::kLcm;
  if (t == "eclat") return Algorithm::kEclat;
  if (t == "fpgrowth" || t == "fp-growth") return Algorithm::kFpGrowth;
  if (t == "apriori") return Algorithm::kApriori;
  if (t == "hmine" || t == "h-mine") return Algorithm::kHMine;
  if (t == "bruteforce" || t == "brute-force") return Algorithm::kBruteForce;
  return Status::InvalidArgument("unknown algorithm: '" + name + "'");
}

const AlgorithmInfo& GetAlgorithmInfo(Algorithm a) {
  // Table 3 of the paper (plus the extra reference miners).
  static constexpr std::array<AlgorithmInfo, 6> kInfos = {{
      {Algorithm::kLcm, "horizontal", "array", "memory"},
      {Algorithm::kEclat, "vertical", "bit vector (array)", "computation"},
      {Algorithm::kFpGrowth, "horizontal", "tree", "memory"},
      {Algorithm::kApriori, "horizontal", "candidate trie", "memory"},
      {Algorithm::kHMine, "horizontal", "hyper structure", "memory"},
      {Algorithm::kBruteForce, "horizontal", "array", "computation"},
  }};
  return kInfos[static_cast<size_t>(a)];
}

PatternSet PatternSet::All() {
  PatternSet s;
  for (const auto& info : kPatterns) s = s.With(info.pattern);
  return s;
}

PatternSet PatternSet::ApplicableTo(Algorithm a) {
  // Table 4's check marks: the patterns the paper applies per kernel.
  PatternSet s;
  switch (a) {
    case Algorithm::kLcm:
      s = s.With(Pattern::kLexicographicOrdering)
              .With(Pattern::kAggregation)
              .With(Pattern::kCompaction)
              .With(Pattern::kTiling)
              .With(Pattern::kSoftwarePrefetch);
      break;
    case Algorithm::kEclat:
      s = s.With(Pattern::kLexicographicOrdering)
              .With(Pattern::kSimdization);
      break;
    case Algorithm::kFpGrowth:
      s = s.With(Pattern::kLexicographicOrdering)
              .With(Pattern::kDataStructureAdaptation)
              .With(Pattern::kAggregation)
              .With(Pattern::kCompaction)
              .With(Pattern::kPrefetchPointers)
              .With(Pattern::kSoftwarePrefetch);
      break;
    case Algorithm::kApriori:
    case Algorithm::kHMine:
    case Algorithm::kBruteForce:
      break;
  }
  return s;
}

Result<PatternSet> PatternSet::Parse(const std::string& text) {
  PatternSet s;
  const std::string lowered = ToLower(text);
  if (lowered.empty() || lowered == "none") return s;
  if (lowered == "all") return All();
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find_first_of(",+", pos);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(pos, comma - pos);
    // Trim whitespace.
    while (!token.empty() && std::isspace(static_cast<unsigned char>(
                                 token.front()))) {
      token.erase(token.begin());
    }
    while (!token.empty() &&
           std::isspace(static_cast<unsigned char>(token.back()))) {
      token.pop_back();
    }
    if (!token.empty()) {
      FPM_ASSIGN_OR_RETURN(Pattern p, ParseOnePattern(token));
      s = s.With(p);
    }
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return s;
}

int PatternSet::count() const {
  int n = 0;
  for (const auto& info : kPatterns) {
    if (Contains(info.pattern)) ++n;
  }
  return n;
}

std::string PatternSet::ToString() const {
  if (empty()) return "none";
  std::string out;
  for (const auto& info : kPatterns) {
    if (Contains(info.pattern)) {
      if (!out.empty()) out += "+";
      out += info.id;
    }
  }
  return out;
}

}  // namespace fpm
