// The library front door: pick an algorithm, a pattern set and an
// execution policy, mine.
//
//   fpm::MineOptions options;
//   options.algorithm = fpm::Algorithm::kLcm;
//   options.min_support = 3000;
//   options.patterns = fpm::PatternSet::ApplicableTo(options.algorithm);
//   options.execution.num_threads = 8;   // 1 = sequential (default)
//   fpm::CollectingSink sink;
//   fpm::Result<fpm::MineStats> stats = fpm::Mine(db, options, &sink);
//   FPM_CHECK_OK(stats.status());
//
// Migration note (this PR): Mine() now returns Result<MineStats> — the
// per-call statistics that used to be fetched from Miner::stats() after
// the fact. The `MineStats*` out-parameter is gone; Miner::stats()
// remains one more PR as a deprecated shim.

#ifndef FPM_CORE_MINE_H_
#define FPM_CORE_MINE_H_

#include <memory>

#include "fpm/algo/miner.h"
#include "fpm/core/patterns.h"

namespace fpm {

class CancelToken;

/// What to mine and how.
struct MineOptions {
  Algorithm algorithm = Algorithm::kLcm;
  Support min_support = 1;
  /// Patterns to enable. Patterns inapplicable to the chosen algorithm
  /// (Table 4) are ignored; query EffectivePatterns() to see the subset
  /// that will act.
  PatternSet patterns;
  /// num_threads == 1 runs the sequential kernel; > 1 mines first-item
  /// equivalence classes in parallel (fpm/parallel/). With
  /// deterministic (the default), the parallel run's canonical output
  /// is identical to the sequential run's.
  ExecutionPolicy execution;
  /// Cooperative cancellation (fpm/common/cancel.h): honored by the
  /// LCM/Eclat/FP-Growth kernels and, through them, the parallel
  /// drivers; a cancelled Mine() returns CANCELLED or
  /// DEADLINE_EXCEEDED. Ignored by the reference miners
  /// (apriori/hmine/bruteforce). The token must outlive the call.
  const CancelToken* cancel = nullptr;
};

/// Patterns of `set` that actually affect `algorithm`.
PatternSet EffectivePatterns(Algorithm algorithm, PatternSet set);

/// Instantiates a configured sequential miner. Returns InvalidArgument
/// for configurations that cannot run here (e.g. SIMD on a machine
/// without AVX2 — the auto strategy falls back instead of failing).
/// A non-null `cancel` is wired into kernels that support cooperative
/// cancellation and must outlive the miner's runs.
Result<std::unique_ptr<Miner>> CreateMiner(Algorithm algorithm,
                                           PatternSet patterns,
                                           const CancelToken* cancel = nullptr);

/// Instantiates a miner honoring the full options, including the
/// execution policy: a sequential kernel for num_threads == 1, the
/// task-parallel driver above it for num_threads > 1. InvalidArgument
/// on num_threads == 0. (min_support is validated by Mine(), not here.)
Result<std::unique_ptr<Miner>> CreateMiner(const MineOptions& options);

/// One-shot convenience: create, mine, return the run's stats.
Result<MineStats> Mine(const Database& db, const MineOptions& options,
                       ItemsetSink* sink);

}  // namespace fpm

#endif  // FPM_CORE_MINE_H_
