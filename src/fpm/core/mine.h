// The library front door: pick an algorithm and a pattern set, mine.
//
//   fpm::MineOptions options;
//   options.algorithm = fpm::Algorithm::kLcm;
//   options.min_support = 3000;
//   options.patterns = fpm::PatternSet::ApplicableTo(options.algorithm);
//   fpm::CollectingSink sink;
//   FPM_CHECK_OK(fpm::Mine(db, options, &sink));

#ifndef FPM_CORE_MINE_H_
#define FPM_CORE_MINE_H_

#include <memory>

#include "fpm/algo/miner.h"
#include "fpm/core/patterns.h"

namespace fpm {

/// What to mine and how.
struct MineOptions {
  Algorithm algorithm = Algorithm::kLcm;
  Support min_support = 1;
  /// Patterns to enable. Patterns inapplicable to the chosen algorithm
  /// (Table 4) are ignored; query EffectivePatterns() to see the subset
  /// that will act.
  PatternSet patterns;
};

/// Patterns of `set` that actually affect `algorithm`.
PatternSet EffectivePatterns(Algorithm algorithm, PatternSet set);

/// Instantiates a configured miner. Returns InvalidArgument for
/// configurations that cannot run here (e.g. SIMD on a machine without
/// AVX2 — the auto strategy falls back instead of failing).
Result<std::unique_ptr<Miner>> CreateMiner(Algorithm algorithm,
                                           PatternSet patterns);

/// One-shot convenience: create, mine, optionally return stats.
Status Mine(const Database& db, const MineOptions& options, ItemsetSink* sink,
            MineStats* stats = nullptr);

}  // namespace fpm

#endif  // FPM_CORE_MINE_H_
