// Two-phase partitioned mining, after Savasere, Omiecinski & Navathe
// (VLDB'95 — the paper's reference [30]).
//
// Phase 1 splits the database into k partitions and mines each with a
// proportionally scaled local support; any globally frequent itemset is
// locally frequent in at least one partition, so the union of the local
// results is a complete candidate set. Phase 2 counts the candidates'
// exact supports with one pass over the full database (candidate trie)
// and emits those meeting the global threshold.
//
// The classic motivation is out-of-core mining (each partition fits in
// memory); here it also serves as an independently-derived cross-check
// of the depth-first kernels and as the substrate for the paper's
// reference [30] baseline.

#ifndef FPM_CORE_PARTITION_H_
#define FPM_CORE_PARTITION_H_

#include "fpm/algo/miner.h"
#include "fpm/core/patterns.h"

namespace fpm {

/// Configuration of the partitioned miner.
struct PartitionOptions {
  /// Number of partitions (>= 1). 1 degenerates to plain mining plus a
  /// verification pass.
  uint32_t num_partitions = 4;
  /// Kernel used for the per-partition phase-1 mining.
  Algorithm inner_algorithm = Algorithm::kLcm;
  /// Patterns for the inner miner.
  PatternSet inner_patterns;
  /// num_threads > 1 mines the phase-1 partitions concurrently on a
  /// work-stealing pool (partitions are independent; each mines into a
  /// private sink). Phase 2 is a single counting pass either way, so
  /// the output never depends on the policy.
  ExecutionPolicy execution;
};

/// Two-phase partitioned miner. Exact: output equals direct mining.
class PartitionedMiner : public Miner {
 public:
  explicit PartitionedMiner(PartitionOptions options = PartitionOptions());

  std::string name() const override;

  /// Candidates produced by phase 1 in the latest run (>= the number of
  /// truly frequent itemsets; the gap measures phase-1 overshoot).
  uint64_t last_candidate_count() const { return last_candidates_; }

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;

 private:
  PartitionOptions options_;
  uint64_t last_candidates_ = 0;
};

}  // namespace fpm

#endif  // FPM_CORE_PARTITION_H_
