#include "fpm/core/pattern_advisor.h"

#include <sstream>

namespace fpm {
namespace {

std::string Fmt(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

}  // namespace

PatternAdvice AdvisePatterns(Algorithm algorithm, const DatabaseStats& stats,
                             const AdvisorConfig& config) {
  PatternAdvice advice;
  PatternSet set = PatternSet::ApplicableTo(algorithm);
  auto keep = [&](Pattern p, const std::string& why) {
    if (set.Contains(p)) {
      advice.rationale.push_back(std::string(GetPatternInfo(p).id) +
                                 " kept: " + why);
    }
  };
  auto drop = [&](Pattern p, const std::string& why) {
    if (set.Contains(p)) {
      set = set.Without(p);
      advice.rationale.push_back(std::string(GetPatternInfo(p).id) +
                                 " dropped: " + why);
    }
  };

  // P1 — lexicographic ordering.
  if (stats.consecutive_jaccard > config.lex_jaccard_ceiling) {
    drop(Pattern::kLexicographicOrdering,
         "input already clustered (consecutive Jaccard " +
             Fmt(stats.consecutive_jaccard) + " > " +
             Fmt(config.lex_jaccard_ceiling) + ")");
  } else if (algorithm == Algorithm::kFpGrowth &&
             stats.num_transactions > config.lex_fpgrowth_tx_limit) {
    drop(Pattern::kLexicographicOrdering,
         "too many transactions (" + std::to_string(stats.num_transactions) +
             "); the sort would dominate FP-tree build time (the paper's "
             "DS4 case)");
  } else {
    keep(Pattern::kLexicographicOrdering,
         "input order is random (consecutive Jaccard " +
             Fmt(stats.consecutive_jaccard) + ")");
  }

  // P3/P5/P7 — latency hiding wants long linked structures.
  const bool long_structures =
      stats.avg_transaction_len >= config.prefetch_min_avg_len;
  if (!long_structures) {
    const std::string why = "average transaction length " +
                            Fmt(stats.avg_transaction_len) +
                            " too short to hide latency in";
    drop(Pattern::kAggregation, why);
    drop(Pattern::kPrefetchPointers, why);
    drop(Pattern::kSoftwarePrefetch, why);
  } else {
    const std::string why = "long transactions (avg " +
                            Fmt(stats.avg_transaction_len) +
                            ") imply deep linked structures";
    keep(Pattern::kAggregation, why);
    keep(Pattern::kPrefetchPointers, why);
    keep(Pattern::kSoftwarePrefetch, why);
  }

  // P6 — tiling needs reuse.
  if (stats.density < config.tiling_density_floor) {
    drop(Pattern::kTiling, "database too sparse (density " +
                               Fmt(stats.density) +
                               "); tiling adds loop overhead without "
                               "reuse (the paper's DS4 case)");
  } else {
    keep(Pattern::kTiling,
         "density " + Fmt(stats.density) + " gives cache reuse to exploit");
  }

  // P2/P4 — smaller/denser structures help whenever applicable.
  keep(Pattern::kDataStructureAdaptation,
       "smaller nodes always reduce the tree working set");
  keep(Pattern::kCompaction, "contiguous counters always reduce misses");

  // P8 — computation-bound kernels always benefit.
  keep(Pattern::kSimdization, "the kernel is computation bound (Table 3)");

  advice.patterns = set;
  return advice;
}

MiningAdvice AdviseMining(const DatabaseStats& stats,
                          const AdvisorConfig& config) {
  MiningAdvice advice;
  if (stats.density >= config.eclat_density_floor &&
      stats.num_used_items <= config.eclat_max_items) {
    advice.algorithm = Algorithm::kEclat;
    advice.rationale.push_back(
        "algorithm eclat: dense matrix (density " + Fmt(stats.density) +
        " >= " + Fmt(config.eclat_density_floor) + ") over a moderate "
        "universe (" + std::to_string(stats.num_used_items) +
        " items) keeps the bit matrix compact and intersection bound");
  } else {
    advice.algorithm = Algorithm::kLcm;
    advice.rationale.push_back(
        "algorithm lcm: sparse or wide-universe input (density " +
        Fmt(stats.density) + ", " + std::to_string(stats.num_used_items) +
        " items) favors the horizontal array kernel");
  }
  PatternAdvice patterns = AdvisePatterns(advice.algorithm, stats, config);
  advice.patterns = patterns.patterns;
  for (auto& reason : patterns.rationale) {
    advice.rationale.push_back(std::move(reason));
  }
  return advice;
}

}  // namespace fpm
