#include "fpm/core/partition.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "fpm/algo/candidate_trie.h"
#include "fpm/core/mine.h"
#include "fpm/obs/trace.h"
#include "fpm/parallel/thread_pool.h"

namespace fpm {
namespace {

uint64_t HashItemset(const Itemset& set) {
  uint64_t h = 1469598103934665603ull;
  for (Item it : set) {
    h ^= it;
    h *= 1099511628211ull;
  }
  return h;
}

struct ItemsetHash {
  size_t operator()(const Itemset& set) const {
    return static_cast<size_t>(HashItemset(set));
  }
};

}  // namespace

PartitionedMiner::PartitionedMiner(PartitionOptions options)
    : options_(options) {}

std::string PartitionedMiner::name() const {
  return std::string("partition(") +
         std::to_string(options_.num_partitions) + "x" +
         AlgorithmName(options_.inner_algorithm) + ")";
}

Result<MineStats> PartitionedMiner::MineImpl(const Database& db,
                                             Support min_support,
                                             ItemsetSink* sink) {
  if (options_.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (options_.execution.num_threads == 0) {
    return Status::InvalidArgument("ExecutionPolicy.num_threads must be >= 1");
  }
  MineStats stats;
  last_candidates_ = 0;
  PhaseSpan mine_span(PhaseName(PhaseId::kMine));

  const size_t n = db.num_transactions();
  const uint32_t k = static_cast<uint32_t>(
      std::min<size_t>(options_.num_partitions, n == 0 ? 1 : n));
  const Support total_weight = db.total_weight();

  // ---- Phase 1: mine each contiguous partition at scaled support. ----
  // Partitions are independent, so with num_threads > 1 they run
  // concurrently on the pool; each mines into its own CollectingSink and
  // the candidate union is formed afterwards on the calling thread.
  std::vector<CollectingSink> locals(k);
  std::mutex err_mu;
  Status first_error = Status::OK();

  auto mine_partition = [&](uint32_t p) {
    ScopedSpan part_span("partition");
    part_span.AddArg("partition", p);
    const size_t begin = n * p / k;
    const size_t end = n * (p + 1) / k;
    DatabaseBuilder builder;
    Support part_weight = 0;
    for (size_t t = begin; t < end; ++t) {
      builder.AddTransaction(db.transaction(static_cast<Tid>(t)),
                             db.weight(static_cast<Tid>(t)));
      part_weight += db.weight(static_cast<Tid>(t));
    }
    if (part_weight == 0) return;
    // ceil(min_support * part_weight / total_weight), at least 1.
    const uint64_t scaled =
        (static_cast<uint64_t>(min_support) * part_weight +
         total_weight - 1) /
        total_weight;
    const Support local_support =
        scaled < 1 ? 1 : static_cast<Support>(scaled);

    Result<std::unique_ptr<Miner>> inner =
        CreateMiner(options_.inner_algorithm, options_.inner_patterns);
    Status status = inner.status();
    if (status.ok()) {
      status = (*inner)->Mine(builder.Build(), local_support, &locals[p])
                   .status();
    }
    if (!status.ok()) {
      std::lock_guard<std::mutex> lk(err_mu);
      if (first_error.ok()) first_error = status;
    }
  };

  if (options_.execution.num_threads > 1 && k > 1) {
    ThreadPool pool(std::min(options_.execution.num_threads, k));
    for (uint32_t p = 0; p < k; ++p) {
      pool.Submit([&mine_partition, p] { mine_partition(p); });
    }
    pool.Wait();
  } else {
    for (uint32_t p = 0; p < k; ++p) mine_partition(p);
  }
  if (!first_error.ok()) return first_error;

  ScopedSpan count_span("count_candidates");
  std::unordered_set<Itemset, ItemsetHash> candidates;
  for (CollectingSink& local : locals) {
    for (auto& [set, support] : local.mutable_results()) {
      candidates.insert(std::move(set));
    }
  }
  last_candidates_ = candidates.size();

  // ---- Phase 2: exact counting over the full database. ---------------
  CandidateTrie trie;
  std::vector<Itemset> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());
  for (size_t i = 0; i < ordered.size(); ++i) {
    trie.Insert(ordered[i], static_cast<uint32_t>(i));
  }
  std::vector<Support> counts(ordered.size(), 0);
  std::vector<Item> sorted_tx;
  for (Tid t = 0; t < n; ++t) {
    const auto tx = db.transaction(t);
    sorted_tx.assign(tx.begin(), tx.end());
    std::sort(sorted_tx.begin(), sorted_tx.end());
    trie.CountTransaction(sorted_tx, db.weight(t), &counts);
  }
  for (size_t i = 0; i < ordered.size(); ++i) {
    if (counts[i] >= min_support) {
      sink->Emit(ordered[i], counts[i]);
      ++stats.num_frequent;
    }
  }

  count_span.AddArg("candidates", last_candidates_);
  count_span.End();
  stats.FinishPhase(PhaseId::kMine, mine_span);
  return stats;
}

}  // namespace fpm
