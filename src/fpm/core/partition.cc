#include "fpm/core/partition.h"

#include <algorithm>
#include <unordered_set>

#include "fpm/algo/candidate_trie.h"
#include "fpm/common/timer.h"
#include "fpm/core/mine.h"

namespace fpm {
namespace {

uint64_t HashItemset(const Itemset& set) {
  uint64_t h = 1469598103934665603ull;
  for (Item it : set) {
    h ^= it;
    h *= 1099511628211ull;
  }
  return h;
}

struct ItemsetHash {
  size_t operator()(const Itemset& set) const {
    return static_cast<size_t>(HashItemset(set));
  }
};

}  // namespace

PartitionedMiner::PartitionedMiner(PartitionOptions options)
    : options_(options) {}

std::string PartitionedMiner::name() const {
  return std::string("partition(") +
         std::to_string(options_.num_partitions) + "x" +
         AlgorithmName(options_.inner_algorithm) + ")";
}

Status PartitionedMiner::Mine(const Database& db, Support min_support,
                              ItemsetSink* sink) {
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (sink == nullptr) return Status::InvalidArgument("sink is null");
  if (options_.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  stats_ = MineStats{};
  last_candidates_ = 0;
  WallTimer timer;

  const size_t n = db.num_transactions();
  const uint32_t k = static_cast<uint32_t>(
      std::min<size_t>(options_.num_partitions, n == 0 ? 1 : n));
  const Support total_weight = db.total_weight();

  // ---- Phase 1: mine each contiguous partition at scaled support. ----
  std::unordered_set<Itemset, ItemsetHash> candidates;
  for (uint32_t p = 0; p < k; ++p) {
    const size_t begin = n * p / k;
    const size_t end = n * (p + 1) / k;
    DatabaseBuilder builder;
    Support part_weight = 0;
    for (size_t t = begin; t < end; ++t) {
      builder.AddTransaction(db.transaction(static_cast<Tid>(t)),
                             db.weight(static_cast<Tid>(t)));
      part_weight += db.weight(static_cast<Tid>(t));
    }
    if (part_weight == 0) continue;
    // ceil(min_support * part_weight / total_weight), at least 1.
    const uint64_t scaled =
        (static_cast<uint64_t>(min_support) * part_weight +
         total_weight - 1) /
        total_weight;
    const Support local_support =
        scaled < 1 ? 1 : static_cast<Support>(scaled);

    FPM_ASSIGN_OR_RETURN(
        std::unique_ptr<Miner> inner,
        CreateMiner(options_.inner_algorithm, options_.inner_patterns));
    CollectingSink local;
    FPM_RETURN_IF_ERROR(
        inner->Mine(builder.Build(), local_support, &local));
    for (auto& [set, support] : local.mutable_results()) {
      candidates.insert(std::move(set));
    }
  }
  last_candidates_ = candidates.size();

  // ---- Phase 2: exact counting over the full database. ---------------
  CandidateTrie trie;
  std::vector<Itemset> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());
  for (size_t i = 0; i < ordered.size(); ++i) {
    trie.Insert(ordered[i], static_cast<uint32_t>(i));
  }
  std::vector<Support> counts(ordered.size(), 0);
  std::vector<Item> sorted_tx;
  for (Tid t = 0; t < n; ++t) {
    const auto tx = db.transaction(t);
    sorted_tx.assign(tx.begin(), tx.end());
    std::sort(sorted_tx.begin(), sorted_tx.end());
    trie.CountTransaction(sorted_tx, db.weight(t), &counts);
  }
  for (size_t i = 0; i < ordered.size(); ++i) {
    if (counts[i] >= min_support) {
      sink->Emit(ordered[i], counts[i]);
      ++stats_.num_frequent;
    }
  }

  stats_.mine_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace fpm
