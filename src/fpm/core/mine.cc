#include "fpm/core/mine.h"

#include <utility>

#include "fpm/algo/apriori.h"
#include "fpm/algo/bruteforce.h"
#include "fpm/algo/eclat/eclat_miner.h"
#include "fpm/algo/fpgrowth/fpgrowth_miner.h"
#include "fpm/algo/hmine.h"
#include "fpm/algo/lcm/lcm_miner.h"
#include "fpm/common/cancel.h"
#include "fpm/parallel/nested_miner.h"
#include "fpm/parallel/parallel_miner.h"

namespace fpm {

PatternSet EffectivePatterns(Algorithm algorithm, PatternSet set) {
  return set.Intersect(PatternSet::ApplicableTo(algorithm));
}

Result<std::unique_ptr<Miner>> CreateMiner(Algorithm algorithm,
                                           PatternSet patterns,
                                           const CancelToken* cancel) {
  const PatternSet p = EffectivePatterns(algorithm, patterns);
  switch (algorithm) {
    case Algorithm::kLcm: {
      LcmOptions o;
      o.cancel = cancel;
      o.lexicographic_order = p.Contains(Pattern::kLexicographicOrdering);
      o.bucket_aggregation = p.Contains(Pattern::kAggregation);
      o.counter_compaction = p.Contains(Pattern::kCompaction);
      o.tiling = p.Contains(Pattern::kTiling);
      o.wavefront_prefetch = p.Contains(Pattern::kSoftwarePrefetch);
      return std::unique_ptr<Miner>(std::make_unique<LcmMiner>(o));
    }
    case Algorithm::kEclat: {
      EclatOptions o;
      o.cancel = cancel;
      // §4.2 couples them: the lexicographic ordering is what makes the
      // 0-escaping ranges short, so P1 enables both.
      o.lexicographic_order = p.Contains(Pattern::kLexicographicOrdering);
      o.zero_escaping = o.lexicographic_order;
      o.popcount = p.Contains(Pattern::kSimdization)
                       ? PopcountStrategy::kAuto
                       : PopcountStrategy::kLut16;
      return std::unique_ptr<Miner>(std::make_unique<EclatMiner>(o));
    }
    case Algorithm::kFpGrowth: {
      FpGrowthOptions o;
      o.cancel = cancel;
      o.lexicographic_order = p.Contains(Pattern::kLexicographicOrdering);
      o.node_compaction = p.Contains(Pattern::kDataStructureAdaptation);
      // P3 and P4 both act through the DFS re-layout of the compact
      // store (see fptree.h); either enables it.
      o.dfs_relayout = p.Contains(Pattern::kAggregation) ||
                       p.Contains(Pattern::kCompaction);
      o.software_prefetch = p.Contains(Pattern::kSoftwarePrefetch) ||
                            p.Contains(Pattern::kPrefetchPointers);
      return std::unique_ptr<Miner>(std::make_unique<FpGrowthMiner>(o));
    }
    case Algorithm::kApriori:
      return std::unique_ptr<Miner>(std::make_unique<AprioriMiner>());
    case Algorithm::kHMine:
      return std::unique_ptr<Miner>(std::make_unique<HMineMiner>());
    case Algorithm::kBruteForce:
      return std::unique_ptr<Miner>(std::make_unique<BruteForceMiner>());
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<std::unique_ptr<Miner>> CreateMiner(const MineOptions& options) {
  if (options.execution.num_threads == 0) {
    return Status::InvalidArgument("ExecutionPolicy.num_threads must be >= 1");
  }
  if (options.execution.num_threads == 1) {
    return CreateMiner(options.algorithm, options.patterns, options.cancel);
  }
  // Probe the configuration once so a bad algorithm/pattern combination
  // fails here instead of inside every worker task.
  FPM_ASSIGN_OR_RETURN(std::unique_ptr<Miner> probe,
                       CreateMiner(options.algorithm, options.patterns));
  MinerFactory factory = [algorithm = options.algorithm,
                          patterns = options.patterns,
                          cancel = options.cancel] {
    return CreateMiner(algorithm, patterns, cancel);
  };
  if (options.execution.nested) {
    NestedParallelMinerOptions no;
    no.execution = options.execution;
    no.kernel_name = probe->name();
    no.factory = std::move(factory);
    return std::unique_ptr<Miner>(
        std::make_unique<NestedParallelMiner>(std::move(no)));
  }
  ParallelMinerOptions po;
  po.execution = options.execution;
  po.kernel_name = probe->name();
  po.factory = std::move(factory);
  return std::unique_ptr<Miner>(std::make_unique<ParallelMiner>(std::move(po)));
}

Result<MineStats> Mine(const Database& db, const MineOptions& options,
                       ItemsetSink* sink) {
  FPM_ASSIGN_OR_RETURN(std::unique_ptr<Miner> miner, CreateMiner(options));
  return miner->Mine(db, options.min_support, sink);
}

}  // namespace fpm
