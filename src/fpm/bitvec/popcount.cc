#include "fpm/bitvec/popcount.h"

#include <array>

#include "fpm/common/bits.h"
#include "fpm/common/logging.h"

namespace fpm {
namespace {

// 16-bit popcount lookup table, built once. This mirrors the original
// Eclat implementation's counting scheme: four dependent indirect loads
// per 64-bit word.
const uint8_t* Lut16() {
  static const std::array<uint8_t, 65536> table = [] {
    std::array<uint8_t, 65536> t{};
    for (uint32_t v = 0; v < 65536; ++v) {
      t[v] = static_cast<uint8_t>(PopCount64Swar(v));
    }
    return t;
  }();
  return table.data();
}

inline uint64_t CountWordLut(const uint8_t* lut, uint64_t w) {
  return static_cast<uint64_t>(lut[w & 0xffff]) + lut[(w >> 16) & 0xffff] +
         lut[(w >> 32) & 0xffff] + lut[(w >> 48) & 0xffff];
}

uint64_t CountOnesLut16(const uint64_t* words, size_t n) {
  const uint8_t* lut = Lut16();
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += CountWordLut(lut, words[i]);
  return total;
}

uint64_t CountOnesSwar(const uint64_t* words, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(PopCount64Swar(words[i]));
  }
  return total;
}

uint64_t CountOnesHardware(const uint64_t* words, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(PopCount64(words[i]));
  }
  return total;
}

bool HaveAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

const char* PopcountStrategyName(PopcountStrategy s) {
  switch (s) {
    case PopcountStrategy::kLut16:
      return "lut16";
    case PopcountStrategy::kSwar:
      return "swar";
    case PopcountStrategy::kHardware:
      return "hardware";
    case PopcountStrategy::kAvx2:
      return "avx2";
    case PopcountStrategy::kAuto:
      return "auto";
  }
  return "?";
}

bool PopcountStrategyAvailable(PopcountStrategy s) {
  if (s == PopcountStrategy::kAvx2) return HaveAvx2();
  return true;
}

PopcountStrategy ResolvePopcountStrategy(PopcountStrategy s) {
  if (s != PopcountStrategy::kAuto) return s;
  if (HaveAvx2()) return PopcountStrategy::kAvx2;
  return PopcountStrategy::kHardware;
}

uint64_t CountOnes(const uint64_t* words, size_t n, PopcountStrategy s) {
  switch (ResolvePopcountStrategy(s)) {
    case PopcountStrategy::kLut16:
      return CountOnesLut16(words, n);
    case PopcountStrategy::kSwar:
      return CountOnesSwar(words, n);
    case PopcountStrategy::kHardware:
      return CountOnesHardware(words, n);
    case PopcountStrategy::kAvx2:
      FPM_CHECK(HaveAvx2()) << "AVX2 popcount requested without AVX2";
      return internal::CountOnesAvx2(words, n);
    case PopcountStrategy::kAuto:
      break;  // unreachable after resolution
  }
  FPM_CHECK(false) << "unresolved popcount strategy";
  return 0;
}

uint64_t AndCount(const uint64_t* a, const uint64_t* b, uint64_t* out,
                  size_t n, PopcountStrategy s) {
  switch (ResolvePopcountStrategy(s)) {
    case PopcountStrategy::kLut16: {
      const uint8_t* lut = Lut16();
      uint64_t total = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t w = a[i] & b[i];
        out[i] = w;
        total += CountWordLut(lut, w);
      }
      return total;
    }
    case PopcountStrategy::kSwar: {
      uint64_t total = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t w = a[i] & b[i];
        out[i] = w;
        total += static_cast<uint64_t>(PopCount64Swar(w));
      }
      return total;
    }
    case PopcountStrategy::kHardware: {
      uint64_t total = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t w = a[i] & b[i];
        out[i] = w;
        total += static_cast<uint64_t>(PopCount64(w));
      }
      return total;
    }
    case PopcountStrategy::kAvx2:
      FPM_CHECK(HaveAvx2()) << "AVX2 AndCount requested without AVX2";
      return internal::AndCountAvx2(a, b, out, n);
    case PopcountStrategy::kAuto:
      break;
  }
  FPM_CHECK(false) << "unresolved popcount strategy";
  return 0;
}

}  // namespace fpm
