// Vertical (item-major) database: one bit vector per item over the
// transaction axis — the dense boolean-matrix representation of §3.3 that
// Eclat mines. Construction optionally records per-item 1-ranges for
// 0-escaping.

#ifndef FPM_BITVEC_VERTICAL_H_
#define FPM_BITVEC_VERTICAL_H_

#include <vector>

#include "fpm/bitvec/bitvector.h"
#include "fpm/dataset/database.h"

namespace fpm {

/// Immutable vertical bit-matrix view of a horizontal database.
///
/// Weighted databases are expanded: a transaction with weight w occupies
/// w consecutive bit positions, so popcounts equal weighted supports.
class VerticalDatabase {
 public:
  /// Builds the matrix. O(num_entries) after allocation.
  ///
  /// `item_bound` (default: the full universe) limits the build to items
  /// with id < item_bound. Miners that rank items by frequency pass the
  /// count of frequent ranks here, so no storage is spent on columns the
  /// mining run can never touch.
  static VerticalDatabase FromDatabase(const Database& db,
                                       size_t item_bound = ~size_t{0});

  size_t num_items() const { return columns_.size(); }
  size_t num_transactions() const { return num_transactions_; }
  /// Words per column (all columns are equally sized).
  size_t words_per_column() const { return words_per_column_; }

  const BitVector& column(Item item) const { return columns_[item]; }

  /// Tight 1-range of `item`'s column (empty if the item never occurs).
  WordRange one_range(Item item) const { return one_ranges_[item]; }

  /// Full [0, words_per_column) window — the no-0-escaping baseline.
  WordRange full_range() const {
    return WordRange{0, static_cast<uint32_t>(words_per_column_)};
  }

  /// Bytes held by the matrix.
  size_t memory_bytes() const {
    return columns_.size() *
           (words_per_column_ * sizeof(uint64_t) + sizeof(BitVector));
  }

 private:
  std::vector<BitVector> columns_;
  std::vector<WordRange> one_ranges_;
  size_t num_transactions_ = 0;
  size_t words_per_column_ = 0;
};

}  // namespace fpm

#endif  // FPM_BITVEC_VERTICAL_H_
