#include "fpm/bitvec/bitvector.h"

namespace fpm {

WordRange BitVector::ComputeOneRange() const {
  uint32_t begin = 0;
  const uint32_t n = static_cast<uint32_t>(words_.size());
  while (begin < n && words_[begin] == 0) ++begin;
  if (begin == n) return WordRange{0, 0};
  uint32_t end = n;
  while (end > begin && words_[end - 1] == 0) --end;
  return WordRange{begin, end};
}

}  // namespace fpm
