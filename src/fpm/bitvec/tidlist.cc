#include "fpm/bitvec/tidlist.h"

#include <algorithm>

namespace fpm {

TidListDatabase TidListDatabase::FromDatabase(const Database& db,
                                              size_t item_bound) {
  TidListDatabase v;
  const size_t num_items = std::min(item_bound, db.num_items());
  std::vector<size_t> counts(num_items, 0);
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    for (Item it : db.transaction(t)) {
      if (it < num_items) ++counts[it];
    }
  }
  v.offsets_.resize(num_items + 1);
  v.offsets_[0] = 0;
  for (size_t i = 0; i < num_items; ++i) {
    v.offsets_[i + 1] = v.offsets_[i] + counts[i];
  }
  v.tids_.resize(v.offsets_[num_items]);
  std::vector<size_t> cursor(v.offsets_.begin(), v.offsets_.end() - 1);
  v.weights_.resize(db.num_transactions());
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    v.weights_[t] = db.weight(t);
    for (Item it : db.transaction(t)) {
      if (it < num_items) v.tids_[cursor[it]++] = t;
    }
  }
  return v;
}

Support TidListDatabase::ItemSupport(Item item) const {
  Support total = 0;
  for (Tid t : list(item)) total += weights_[t];
  return total;
}

size_t IntersectTidLists(std::span<const Tid> a, std::span<const Tid> b,
                         const Support* weights, Tid* out,
                         Support* support) {
  size_t i = 0, j = 0, n = 0;
  Support total = 0;
  while (i < a.size() && j < b.size()) {
    const Tid ta = a[i];
    const Tid tb = b[j];
    if (ta == tb) {
      out[n++] = ta;
      total += weights[ta];
      ++i;
      ++j;
    } else if (ta < tb) {
      ++i;
    } else {
      ++j;
    }
  }
  *support = total;
  return n;
}

size_t DifferenceTidLists(std::span<const Tid> a, std::span<const Tid> b,
                          const Support* weights, Tid* out,
                          Support* weight) {
  size_t i = 0, j = 0, n = 0;
  Support total = 0;
  while (i < a.size()) {
    const Tid ta = a[i];
    while (j < b.size() && b[j] < ta) ++j;
    if (j < b.size() && b[j] == ta) {
      ++i;
      ++j;
    } else {
      out[n++] = ta;
      total += weights[ta];
      ++i;
    }
  }
  *weight = total;
  return n;
}

}  // namespace fpm
