// Dense bit vector over transaction ids — the vertical representation of
// §3.3 (Feature 2, choice (1)) used by Eclat. Each item (and, during
// mining, each itemset) owns one vector; bit t is set iff transaction t
// contains the item(set).

#ifndef FPM_BITVEC_BITVECTOR_H_
#define FPM_BITVEC_BITVECTOR_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "fpm/common/logging.h"

namespace fpm {

/// Half-open range of 64-bit words [begin, end). The "1-range" of §4.2:
/// a conservative window containing every set bit of a vector. 0-escaping
/// restricts intersections and popcounts to this window.
struct WordRange {
  uint32_t begin = 0;
  uint32_t end = 0;

  bool empty() const { return begin >= end; }
  uint32_t size() const { return empty() ? 0 : end - begin; }

  bool operator==(const WordRange&) const = default;
};

/// Intersection of two conservative 1-ranges is a conservative 1-range of
/// the AND (§4.2: "updated by intersecting the corresponding 1-ranges").
inline WordRange IntersectRanges(WordRange a, WordRange b) {
  WordRange r;
  r.begin = a.begin > b.begin ? a.begin : b.begin;
  r.end = a.end < b.end ? a.end : b.end;
  if (r.begin > r.end) r.end = r.begin;
  return r;
}

/// Fixed-width dense bit vector backed by 64-bit words.
class BitVector {
 public:
  BitVector() = default;

  /// All-zero vector able to hold `num_bits` bits.
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  void Set(size_t i) {
    FPM_DCHECK(i < num_bits_);
    words_[i >> 6] |= 1ull << (i & 63);
  }

  void Clear(size_t i) {
    FPM_DCHECK(i < num_bits_);
    words_[i >> 6] &= ~(1ull << (i & 63));
  }

  bool Test(size_t i) const {
    FPM_DCHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  /// Sets every word to zero.
  void Reset() {
    std::memset(words_.data(), 0, words_.size() * sizeof(uint64_t));
  }

  /// Scans for the tightest window of words containing all set bits.
  /// Returns an empty range when no bit is set. O(num_words).
  WordRange ComputeOneRange() const;

  /// Full range [0, num_words) — the "no 0-escaping" baseline window.
  WordRange FullRange() const {
    return WordRange{0, static_cast<uint32_t>(words_.size())};
  }

  bool operator==(const BitVector&) const = default;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace fpm

#endif  // FPM_BITVEC_BITVECTOR_H_
