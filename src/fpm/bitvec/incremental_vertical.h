// Delta-maintained vertical bit matrix (streaming ingestion, DESIGN.md
// §16).
//
// VerticalDatabase is immutable and rank-indexed: every query rebuilds
// it from scratch. IncrementalVertical is its maintainable sibling,
// indexed by RAW item id (the raw universe is append-only, unlike the
// frequency ranking, which reshuffles with every delta): one growable
// bit column per item over the expanded transaction-row axis (a
// weight-w transaction occupies w consecutive rows, exactly as
// VerticalDatabase expands it, so popcounts equal weighted supports).
//
//   Append — new transactions claim fresh rows at the top end; only the
//   columns of items present in the delta are touched (plus a bounds
//   resize of the rest).
//
//   Expire — the expired transactions' rows have their bits cleared in
//   place and `start_row` advances past them: the dead prefix reads as
//   zero words forever. Supports are preserved exactly, which is all
//   Eclat's emission depends on — row *positions* only shift popcount
//   windows, never counts — so mining the masked matrix is
//   byte-identical to rebuilding a fresh one over the window database.
//
// The matrix is mined by MineIncrementalVertical (eclat_miner.h), which
// ranks the current window database and borrows these columns as the
// top-level equivalence class.

#ifndef FPM_BITVEC_INCREMENTAL_VERTICAL_H_
#define FPM_BITVEC_INCREMENTAL_VERTICAL_H_

#include <cstdint>
#include <vector>

#include "fpm/bitvec/bitvector.h"
#include "fpm/dataset/versioned.h"

namespace fpm {

/// Mutable raw-item-indexed bit matrix with an expired-row prefix mask.
class IncrementalVertical {
 public:
  /// Builds the matrix over `db` (version 1 of a chain).
  explicit IncrementalVertical(const Database& db);

  /// Appends transactions (normalized item lists) with weights.
  void Append(const std::vector<Itemset>& transactions,
              const std::vector<Support>& weights);

  /// Clears the rows of the `transactions.size()` oldest live
  /// transactions, which must equal (item-for-item) the expired half of
  /// the version delta being applied.
  void Expire(const std::vector<Itemset>& transactions,
              const std::vector<Support>& weights);

  /// Applies one version delta: append, then expire.
  void Advance(const VersionDelta& delta);

  /// Raw item universe bound (columns exist for ids below this).
  size_t num_items() const { return columns_.size(); }
  /// First live row (rows below are masked-out expired history).
  size_t start_row() const { return start_row_; }
  /// One past the last row (== expired weight + live weight).
  size_t num_rows() const { return num_rows_; }
  size_t words_per_column() const { return words_per_column_; }

  /// Column words of `item`; all columns are words_per_column() long.
  /// Null for an item that has never occurred (its column is all-zero
  /// and never allocated).
  const uint64_t* column_words(Item item) const {
    return static_cast<size_t>(item) < columns_.size() &&
                   !columns_[item].empty()
               ? columns_[item].data()
               : zero_words_.data();
  }

  /// Tight 1-range of `item`'s column (empty when all-zero). O(words).
  WordRange one_range(Item item) const;

  WordRange full_range() const {
    return WordRange{0, static_cast<uint32_t>(words_per_column_)};
  }

  size_t memory_bytes() const;

 private:
  void EnsureItem(Item item);
  void SetBitRange(Item item, size_t row, Support weight);
  void ClearBitRange(Item item, size_t row, Support weight);

  // Jagged during a batch; every column is padded to words_per_column_
  // before the batch returns. Unoccurring items stay empty and alias
  // zero_words_.
  std::vector<std::vector<uint64_t>> columns_;
  std::vector<uint64_t> zero_words_;  // shared all-zero column backing
  size_t start_row_ = 0;
  size_t num_rows_ = 0;
  size_t words_per_column_ = 0;
};

}  // namespace fpm

#endif  // FPM_BITVEC_INCREMENTAL_VERTICAL_H_
