// Popcount strategies over word arrays (pattern P8 and its baseline).
//
// The original Eclat counts 1s through a 16-bit lookup table; the paper
// replaces the table's indirect loads with computation (SWAR), which
// vectorizes. We keep all variants so the benches can reproduce the
// comparison:
//   kLut16    — baseline table lookup (not SIMDizable; indirect loads)
//   kSwar     — branch-free bit arithmetic, scalar
//   kHardware — POPCNT instruction via std::popcount
//   kAvx2     — 256-bit nibble-shuffle popcount (requires AVX2)
//   kAuto     — best available at runtime

#ifndef FPM_BITVEC_POPCOUNT_H_
#define FPM_BITVEC_POPCOUNT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fpm {

enum class PopcountStrategy {
  kLut16,
  kSwar,
  kHardware,
  kAvx2,
  kAuto,
};

/// Stable display name ("lut16", "swar", ...).
const char* PopcountStrategyName(PopcountStrategy s);

/// True when the strategy can execute on this machine.
bool PopcountStrategyAvailable(PopcountStrategy s);

/// Resolves kAuto to the best available concrete strategy.
PopcountStrategy ResolvePopcountStrategy(PopcountStrategy s);

/// Number of set bits in words[0..n).
uint64_t CountOnes(const uint64_t* words, size_t n, PopcountStrategy s);

/// out[i] = a[i] & b[i] for i in [0, n); returns the popcount of `out`.
/// This fused kernel is where Eclat spends 98% of its time (§4.2).
uint64_t AndCount(const uint64_t* a, const uint64_t* b, uint64_t* out,
                  size_t n, PopcountStrategy s);

namespace internal {
// AVX2 implementations live in a separate -mavx2 TU.
uint64_t CountOnesAvx2(const uint64_t* words, size_t n);
uint64_t AndCountAvx2(const uint64_t* a, const uint64_t* b, uint64_t* out,
                      size_t n);
}  // namespace internal

}  // namespace fpm

#endif  // FPM_BITVEC_POPCOUNT_H_
