#include "fpm/bitvec/incremental_vertical.h"

#include "fpm/common/logging.h"

namespace fpm {

IncrementalVertical::IncrementalVertical(const Database& db)
    : columns_(db.num_items()) {
  num_rows_ = static_cast<size_t>(db.total_weight());
  words_per_column_ = (num_rows_ + 63) / 64;
  zero_words_.assign(words_per_column_, 0);
  size_t row = 0;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    const Support w = db.weight(t);
    for (Item it : db.transaction(t)) {
      SetBitRange(it, row, w);
    }
    row += static_cast<size_t>(w);
  }
}

void IncrementalVertical::EnsureItem(Item item) {
  if (static_cast<size_t>(item) >= columns_.size()) {
    columns_.resize(static_cast<size_t>(item) + 1);
  }
}

void IncrementalVertical::SetBitRange(Item item, size_t row,
                                      Support weight) {
  EnsureItem(item);
  std::vector<uint64_t>& col = columns_[item];
  const size_t need = (row + static_cast<size_t>(weight) + 63) / 64;
  if (col.size() < need) col.resize(need, 0);
  for (size_t r = row; r < row + static_cast<size_t>(weight); ++r) {
    col[r >> 6] |= 1ull << (r & 63);
  }
}

void IncrementalVertical::ClearBitRange(Item item, size_t row,
                                        Support weight) {
  FPM_DCHECK(static_cast<size_t>(item) < columns_.size());
  std::vector<uint64_t>& col = columns_[item];
  for (size_t r = row; r < row + static_cast<size_t>(weight); ++r) {
    if ((r >> 6) < col.size()) col[r >> 6] &= ~(1ull << (r & 63));
  }
}

void IncrementalVertical::Append(const std::vector<Itemset>& transactions,
                                 const std::vector<Support>& weights) {
  for (size_t t = 0; t < transactions.size(); ++t) {
    const Support w = weights[t];
    for (Item it : transactions[t]) {
      SetBitRange(it, num_rows_, w);
    }
    num_rows_ += static_cast<size_t>(w);
  }
  words_per_column_ = (num_rows_ + 63) / 64;
  for (std::vector<uint64_t>& col : columns_) {
    if (!col.empty() && col.size() < words_per_column_) {
      col.resize(words_per_column_, 0);
    }
  }
  if (zero_words_.size() < words_per_column_) {
    zero_words_.assign(words_per_column_, 0);
  }
}

void IncrementalVertical::Expire(const std::vector<Itemset>& transactions,
                                 const std::vector<Support>& weights) {
  for (size_t t = 0; t < transactions.size(); ++t) {
    const Support w = weights[t];
    for (Item it : transactions[t]) {
      ClearBitRange(it, start_row_, w);
    }
    start_row_ += static_cast<size_t>(w);
  }
  FPM_DCHECK(start_row_ <= num_rows_);
}

void IncrementalVertical::Advance(const VersionDelta& delta) {
  Append(delta.appended, delta.appended_weights);
  Expire(delta.expired, delta.expired_weights);
}

WordRange IncrementalVertical::one_range(Item item) const {
  const uint64_t* words = column_words(item);
  uint32_t begin = 0;
  uint32_t end = static_cast<uint32_t>(words_per_column_);
  while (begin < end && words[begin] == 0) ++begin;
  while (end > begin && words[end - 1] == 0) --end;
  return WordRange{begin, end};
}

size_t IncrementalVertical::memory_bytes() const {
  size_t bytes = zero_words_.size() * sizeof(uint64_t);
  for (const std::vector<uint64_t>& col : columns_) {
    bytes += col.size() * sizeof(uint64_t) + sizeof(col);
  }
  return bytes;
}

}  // namespace fpm
