#include "fpm/bitvec/intersect.h"

namespace fpm {

AndResult AndCountRange(const uint64_t* a, WordRange ra, const uint64_t* b,
                        WordRange rb, uint64_t* out,
                        PopcountStrategy strategy) {
  AndResult result;
  const WordRange window = IntersectRanges(ra, rb);
  if (window.empty()) {
    result.range = WordRange{window.begin, window.begin};
    return result;
  }
  result.support = AndCount(a + window.begin, b + window.begin,
                            out + window.begin, window.size(), strategy);
  if (result.support == 0) {
    result.range = WordRange{window.begin, window.begin};
    return result;
  }
  // Tighten the conservative window to the actual extremal non-zero
  // words; cheap relative to the AND and keeps ranges short along deep
  // DFS paths.
  uint32_t begin = window.begin;
  while (begin < window.end && out[begin] == 0) ++begin;
  uint32_t end = window.end;
  while (end > begin && out[end - 1] == 0) --end;
  result.range = WordRange{begin, end};
  return result;
}

uint64_t CountOnesRange(const uint64_t* words, WordRange r,
                        PopcountStrategy strategy) {
  if (r.empty()) return 0;
  return CountOnes(words + r.begin, r.size(), strategy);
}

AndResult AndCount(const BitVector& a, WordRange ra, const BitVector& b,
                   WordRange rb, BitVector* out, PopcountStrategy strategy) {
  FPM_CHECK(a.num_words() == b.num_words() &&
            a.num_words() == out->num_words())
      << "AndCount requires equally sized vectors";
  return AndCountRange(a.words(), ra, b.words(), rb, out->words(), strategy);
}

}  // namespace fpm
