#include "fpm/bitvec/vertical.h"

#include <algorithm>

namespace fpm {

VerticalDatabase VerticalDatabase::FromDatabase(const Database& db,
                                                size_t item_bound) {
  VerticalDatabase v;
  const size_t num_columns = std::min(item_bound, db.num_items());
  // Expand weighted transactions into runs of bit positions.
  size_t total_rows = 0;
  for (Tid t = 0; t < db.num_transactions(); ++t) total_rows += db.weight(t);
  v.num_transactions_ = total_rows;

  v.columns_.assign(num_columns, BitVector(total_rows));
  v.words_per_column_ = total_rows == 0 ? 0 : (total_rows + 63) / 64;

  size_t row = 0;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    const Support w = db.weight(t);
    for (Item it : db.transaction(t)) {
      if (it >= num_columns) continue;
      for (Support k = 0; k < w; ++k) v.columns_[it].Set(row + k);
    }
    row += w;
  }

  v.one_ranges_.resize(num_columns);
  for (size_t i = 0; i < v.columns_.size(); ++i) {
    v.one_ranges_[i] = v.columns_[i].ComputeOneRange();
  }
  return v;
}

}  // namespace fpm
