// Sparse vertical representation: per-item sorted transaction-id lists
// (§3.3 Feature 2, choice (2), in item-major form). The data structure
// adaptation pattern (P2) picks between this and the dense bit matrix by
// input density: a tid list beats a bit vector once the column holds
// fewer than ~1/32 of the transactions (4 bytes/entry vs 1 bit/row).

#ifndef FPM_BITVEC_TIDLIST_H_
#define FPM_BITVEC_TIDLIST_H_

#include <span>
#include <vector>

#include "fpm/dataset/database.h"

namespace fpm {

/// Immutable item-major tid-list view of a horizontal database.
/// Transaction weights are kept out-of-line (no row expansion): support
/// of a list is the sum of its transactions' weights.
class TidListDatabase {
 public:
  /// Builds lists for items with id < item_bound.
  static TidListDatabase FromDatabase(const Database& db, size_t item_bound);

  size_t num_items() const { return offsets_.size() - 1; }
  size_t num_transactions() const { return weights_.size(); }

  /// Ascending tids of transactions containing `item`.
  std::span<const Tid> list(Item item) const {
    return {tids_.data() + offsets_[item],
            offsets_[item + 1] - offsets_[item]};
  }

  /// Per-transaction weights (all 1 for unweighted inputs).
  const std::vector<Support>& weights() const { return weights_; }

  /// Weighted support of `item`.
  Support ItemSupport(Item item) const;

  size_t memory_bytes() const {
    return tids_.size() * sizeof(Tid) + offsets_.size() * sizeof(size_t) +
           weights_.size() * sizeof(Support);
  }

 private:
  std::vector<Tid> tids_;
  std::vector<size_t> offsets_{0};
  std::vector<Support> weights_;
};

/// Sorted-merge intersection: writes the common tids of `a` and `b` to
/// `out` (must have room for min(|a|,|b|)) and returns the number
/// written; `*support` receives the weighted support of the result.
size_t IntersectTidLists(std::span<const Tid> a, std::span<const Tid> b,
                         const Support* weights, Tid* out,
                         Support* support);

/// Sorted-merge difference a \ b: writes tids of `a` absent from `b` to
/// `out` (must have room for |a|) and returns the number written;
/// `*weight` receives the summed weight of the result. This is the
/// diffset primitive of dEclat (Zaki & Gouda, KDD'03 — the paper's
/// reference [33]): d(PXY) = d(PY) \ d(PX), support(PXY) =
/// support(PX) - weight(d(PXY)).
size_t DifferenceTidLists(std::span<const Tid> a, std::span<const Tid> b,
                          const Support* weights, Tid* out,
                          Support* weight);

}  // namespace fpm

#endif  // FPM_BITVEC_TIDLIST_H_
