// Bit-vector intersection with optional 0-escaping (§4.2).
//
// 0-escaping skips the AND and popcount outside the conservative 1-range
// of either operand. After lexicographic ordering (P1) the set bits of
// frequent items cluster at the front of the vector, so ranges are short
// and the skipped prefix/suffix is large.
//
// Invariant: the destination's words are only defined inside the returned
// range. Consumers must never read outside the range they carry — the
// Eclat DFS maintains this because ranges only shrink along a path.

#ifndef FPM_BITVEC_INTERSECT_H_
#define FPM_BITVEC_INTERSECT_H_

#include "fpm/bitvec/bitvector.h"
#include "fpm/bitvec/popcount.h"

namespace fpm {

/// Outcome of a fused and+count.
struct AndResult {
  uint64_t support = 0;
  WordRange range;  ///< conservative 1-range of the output
};

/// out[w] = a[w] & b[w] for w in intersect(ra, rb); support counted over
/// that window only. Words outside the window are left untouched.
AndResult AndCountRange(const uint64_t* a, WordRange ra, const uint64_t* b,
                        WordRange rb, uint64_t* out, PopcountStrategy strategy);

/// Popcount restricted to the window `r`.
uint64_t CountOnesRange(const uint64_t* words, WordRange r,
                        PopcountStrategy strategy);

/// Convenience wrapper over BitVector objects (used by tests/examples;
/// the miner works on raw word arrays).
AndResult AndCount(const BitVector& a, WordRange ra, const BitVector& b,
                   WordRange rb, BitVector* out, PopcountStrategy strategy);

}  // namespace fpm

#endif  // FPM_BITVEC_INTERSECT_H_
