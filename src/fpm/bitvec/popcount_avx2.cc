// AVX2 popcount / fused and-popcount kernels (pattern P8).
//
// Compiled with -mavx2 in this TU only; callers reach it through the
// runtime dispatch in popcount.cc. The counting core is the classic
// nibble-shuffle method: VPSHUFB maps each nibble to its popcount, VPSADBW
// horizontally sums bytes — pure computation, no indirect loads, exactly
// the transformation §4.2 describes for replacing the lookup table.

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "fpm/common/bits.h"

namespace fpm {
namespace internal {

#if defined(__AVX2__)

namespace {

// Per-byte popcount of a 256-bit lane via nibble shuffle.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

// Horizontal sum of the four 64-bit sub-sums produced by VPSADBW.
inline uint64_t HorizontalSum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

}  // namespace

uint64_t CountOnesAvx2(const uint64_t* words, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(PopcountBytes(v),
                                           _mm256_setzero_si256()));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) total += static_cast<uint64_t>(PopCount64(words[i]));
  return total;
}

uint64_t AndCountAvx2(const uint64_t* a, const uint64_t* b, uint64_t* out,
                      size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(PopcountBytes(v),
                                           _mm256_setzero_si256()));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    out[i] = w;
    total += static_cast<uint64_t>(PopCount64(w));
  }
  return total;
}

#else  // !defined(__AVX2__)

// Non-x86 fallback: these are never dispatched to (availability check
// fails), but must link.
uint64_t CountOnesAvx2(const uint64_t* words, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += PopCount64(words[i]);
  return total;
}

uint64_t AndCountAvx2(const uint64_t* a, const uint64_t* b, uint64_t* out,
                      size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] & b[i];
    total += PopCount64(out[i]);
  }
  return total;
}

#endif  // __AVX2__

}  // namespace internal
}  // namespace fpm
