// Quantitative locality metrics for database layouts.
//
// §3.2 of the paper argues lexicographic ordering "will tend to reduce
// the total number of discontinuities, and especially reduce
// discontinuities for frequent items". These metrics make that claim
// measurable: a *discontinuity* of item i is a maximal run boundary in
// the sequence of transactions containing i (in stored order).

#ifndef FPM_LAYOUT_LOCALITY_METRICS_H_
#define FPM_LAYOUT_LOCALITY_METRICS_H_

#include <cstdint>
#include <vector>

#include "fpm/dataset/database.h"

namespace fpm {

/// For each item, the number of maximal contiguous runs of transactions
/// containing it. 1 = perfectly contiguous; higher = more scattered.
/// Items with zero occurrences report 0.
std::vector<uint32_t> ItemRunCounts(const Database& db);

/// Sum of (run count - 1) over all occurring items: the total number of
/// discontinuities a full per-item column sweep encounters.
uint64_t TotalDiscontinuities(const Database& db);

/// Discontinuities weighted by item frequency — approximates how often a
/// column walk actually pays for a discontinuity. Frequent items
/// dominate, matching the paper's emphasis.
double FrequencyWeightedDiscontinuities(const Database& db);

}  // namespace fpm

#endif  // FPM_LAYOUT_LOCALITY_METRICS_H_
