// Pattern P1 — lexicographic ordering of the initial database (§3.2).
//
// Two steps: (1) remap items into decreasing-frequency ranks and sort
// each transaction by rank, so the most frequent item leads; (2) sort the
// transactions lexicographically over that alphabet. Transactions
// sharing frequent prefixes become memory-adjacent, which improves the
// spatial locality of every per-item column walk (LCM's occurrence
// traversal, FP-tree insertion, and — via clustered tid ranges — enables
// Eclat's 0-escaping).

#ifndef FPM_LAYOUT_LEXICOGRAPHIC_H_
#define FPM_LAYOUT_LEXICOGRAPHIC_H_

#include <vector>

#include "fpm/dataset/database.h"
#include "fpm/layout/item_order.h"

namespace fpm {

/// Result of applying P1: the reordered database plus the permutation
/// that produced it (`tid_permutation[new_tid] == old_tid`).
struct LexicographicResult {
  Database database;
  ItemOrder item_order;
  std::vector<Tid> tid_permutation;
};

/// Applies pattern P1 to `db`. Items in the result are *ranks* (dense,
/// 0 = most frequent); transactions are sorted lexicographically.
/// Weighted transactions keep their weights.
LexicographicResult LexicographicOrder(const Database& db);

/// Step (2) only: sorts transactions of an already rank-mapped database
/// lexicographically. Exposed for ablations that separate the two steps.
LexicographicResult LexicographicSortTransactions(const Database& db);

}  // namespace fpm

#endif  // FPM_LAYOUT_LEXICOGRAPHIC_H_
