#include "fpm/layout/locality_metrics.h"

namespace fpm {
namespace {

// Shared single pass: computes run counts per item.
std::vector<uint32_t> ComputeRuns(const Database& db) {
  std::vector<uint32_t> runs(db.num_items(), 0);
  // last_seen[i] == most recent transaction containing i, or kNone.
  constexpr Tid kNone = ~static_cast<Tid>(0);
  std::vector<Tid> last_seen(db.num_items(), kNone);
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    for (Item it : db.transaction(t)) {
      if (last_seen[it] == kNone || last_seen[it] + 1 != t) ++runs[it];
      last_seen[it] = t;
    }
  }
  return runs;
}

}  // namespace

std::vector<uint32_t> ItemRunCounts(const Database& db) {
  return ComputeRuns(db);
}

uint64_t TotalDiscontinuities(const Database& db) {
  uint64_t total = 0;
  for (uint32_t r : ComputeRuns(db)) {
    if (r > 0) total += r - 1;
  }
  return total;
}

double FrequencyWeightedDiscontinuities(const Database& db) {
  const auto runs = ComputeRuns(db);
  const auto& freq = db.item_frequencies();
  double total = 0.0;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i] > 0) {
      total += static_cast<double>(runs[i] - 1) * freq[i];
    }
  }
  return total;
}

}  // namespace fpm
