#include "fpm/layout/lexicographic.h"

#include <algorithm>
#include <numeric>

namespace fpm {
namespace {

// Sorts the transactions of `db` lexicographically, returning the
// permutation and the rebuilt database.
LexicographicResult SortByTransaction(const Database& db,
                                      ItemOrder item_order) {
  std::vector<Tid> perm(db.num_transactions());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&db](Tid a, Tid b) {
    const auto ta = db.transaction(a);
    const auto tb = db.transaction(b);
    return std::lexicographical_compare(ta.begin(), ta.end(), tb.begin(),
                                        tb.end());
  });
  DatabaseBuilder builder;
  for (Tid t : perm) {
    const auto tx = db.transaction(t);
    builder.AddTransaction(tx, db.weight(t));
  }
  LexicographicResult result;
  result.database = builder.Build();
  result.item_order = std::move(item_order);
  result.tid_permutation = std::move(perm);
  return result;
}

}  // namespace

LexicographicResult LexicographicOrder(const Database& db) {
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  Database ranked = RemapItems(db, order);
  return SortByTransaction(ranked, std::move(order));
}

LexicographicResult LexicographicSortTransactions(const Database& db) {
  ItemOrder identity;  // empty mapping: caller already ranked the items
  return SortByTransaction(db, std::move(identity));
}

}  // namespace fpm
