// Item re-ranking by frequency — the "alphabet" of pattern P1.
//
// Every miner in the paper orders items by frequency before mining; P1
// additionally sorts the transactions themselves over that alphabet
// (see lexicographic.h). The ItemOrder maps raw item ids to dense ranks
// where rank 0 is the most frequent item.

#ifndef FPM_LAYOUT_ITEM_ORDER_H_
#define FPM_LAYOUT_ITEM_ORDER_H_

#include <vector>

#include "fpm/dataset/database.h"

namespace fpm {

/// Bidirectional mapping between raw item ids and frequency ranks.
class ItemOrder {
 public:
  /// Builds the decreasing-frequency order for `db` (weighted
  /// frequencies). Ties are broken by ascending raw item id, which makes
  /// the mapping deterministic.
  static ItemOrder ByDecreasingFrequency(const Database& db);

  /// Rank of raw item `item` (0 = most frequent). Items that never occur
  /// are ranked after all occurring items.
  Item RankOf(Item item) const { return to_rank_[item]; }

  /// Raw item id of `rank`.
  Item ItemAt(Item rank) const { return to_item_[rank]; }

  /// Size of the item universe covered.
  size_t size() const { return to_rank_.size(); }

  const std::vector<Item>& to_rank() const { return to_rank_; }
  const std::vector<Item>& to_item() const { return to_item_; }

 private:
  std::vector<Item> to_rank_;
  std::vector<Item> to_item_;
};

/// Rewrites `db` with items replaced by their ranks; within each
/// transaction items are sorted ascending by rank — i.e. in decreasing
/// frequency order, as P1 prescribes. Transaction order is unchanged.
Database RemapItems(const Database& db, const ItemOrder& order);

}  // namespace fpm

#endif  // FPM_LAYOUT_ITEM_ORDER_H_
