#include "fpm/layout/item_order.h"

#include <algorithm>
#include <numeric>

namespace fpm {

ItemOrder ItemOrder::ByDecreasingFrequency(const Database& db) {
  const auto& freq = db.item_frequencies();
  ItemOrder order;
  order.to_item_.resize(freq.size());
  std::iota(order.to_item_.begin(), order.to_item_.end(), 0);
  std::stable_sort(order.to_item_.begin(), order.to_item_.end(),
                   [&freq](Item a, Item b) { return freq[a] > freq[b]; });
  order.to_rank_.resize(freq.size());
  for (size_t r = 0; r < order.to_item_.size(); ++r) {
    order.to_rank_[order.to_item_[r]] = static_cast<Item>(r);
  }
  return order;
}

Database RemapItems(const Database& db, const ItemOrder& order) {
  DatabaseBuilder builder;
  std::vector<Item> tx;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    const auto span = db.transaction(t);
    tx.clear();
    tx.reserve(span.size());
    for (Item it : span) tx.push_back(order.RankOf(it));
    std::sort(tx.begin(), tx.end());
    // Ranks of distinct items are distinct, so the sorted transaction is
    // strictly increasing — the builder's no-dedup fast path applies.
    builder.AddSortedTransaction(tx, db.weight(t));
  }
  return builder.Build();
}

}  // namespace fpm
