// Structured per-query log: one JSON object per line, one line per
// finished (or rejected) request, designed to be grep/jq-friendly and
// cheap enough to sit on the service request path.
//
// Write path: the entry is serialized to a string with no lock held,
// then appended to the sink under a mutex (one contended section per
// query, a few hundred bytes of I/O). A disabled log — the default —
// costs one relaxed load and a branch per Write(), which keeps the
// hook inside the <1% obs-overhead budget (see bench_obs_overhead).
//
// A slow-query threshold can be set; entries whose total wall time
// (queue + mine + derive) meets it are additionally mirrored to stderr
// so operators see outliers without tailing the log file.

#ifndef FPM_OBS_QUERY_LOG_H_
#define FPM_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>

#include "fpm/common/status.h"

namespace fpm {

/// One query's record. Fields left at their default are omitted from
/// the JSON line (except the always-present event/query_id/status).
struct QueryLogEntry {
  std::string event = "query";  ///< "query" | "watchdog_stuck"
  uint64_t query_id = 0;
  std::string trace_id;  ///< client-supplied passthrough, may be empty
  std::string op;        ///< protocol op: "mine" | "query" | "batch" | ...
  std::string task;      ///< frequent | closed | maximal | top_k | rules
  std::string dataset;   ///< path, when addressed by path
  std::string dataset_id;
  uint64_t dataset_version = 0;
  std::string digest;
  std::string algorithm;
  uint64_t min_support = 0;
  uint64_t k = 0;           ///< top-k only
  double queue_ms = 0.0;    ///< scheduler wait
  double mine_ms = 0.0;     ///< kernel wall time (0 on cache hits)
  double derive_ms = 0.0;   ///< cache derivation / reseed wall time
  std::string cache;        ///< miss|hit|dominated|cross_task|reseeded
  uint64_t num_results = 0;
  uint64_t peak_bytes = 0;  ///< peak arena bytes, when known
  std::string status;       ///< ok | error | cancelled | deadline | rejected
  std::string reason;       ///< error / cancellation / watchdog detail

  /// The JSON object for this entry (no trailing newline). `ts_ms` is
  /// stamped by the caller so serialization stays deterministic.
  std::string ToJson(uint64_t ts_ms) const;
};

/// Append-only JSON-lines sink. Thread-safe; starts disabled.
class QueryLog {
 public:
  QueryLog() = default;

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Opens `path` for appending and enables the log.
  Status OpenFile(const std::string& path);

  /// Routes lines to `os` (not owned, must outlive the log) and enables
  /// the log. Tests and in-memory consumers use this.
  void SetStream(std::ostream* os);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Entries at least this slow (queue + mine + derive wall time) are
  /// mirrored to stderr. 0 disables mirroring.
  void set_slow_threshold_ms(double ms) { slow_threshold_ms_ = ms; }
  double slow_threshold_ms() const { return slow_threshold_ms_; }

  /// Appends one line (stamped with the current wall clock) and flushes.
  /// No-op when disabled.
  void Write(const QueryLogEntry& entry);

  /// Lines appended since construction.
  uint64_t lines_written() const {
    return lines_written_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  double slow_threshold_ms_ = 0.0;
  std::atomic<uint64_t> lines_written_{0};

  std::mutex mu_;  // guards sink_ / file_
  std::ofstream file_;
  std::ostream* sink_ = nullptr;  // == &file_ after OpenFile()
};

}  // namespace fpm

#endif  // FPM_OBS_QUERY_LOG_H_
