#include "fpm/obs/metrics.h"

#include <algorithm>
#include <ostream>

#include "fpm/common/logging.h"
#include "fpm/obs/thread_index.h"

namespace fpm {
namespace {

std::atomic<uint64_t> g_next_registry_id{1};

// One-entry cache mapping this thread to its shard in the registry it
// used last. Threads alternating between registries re-resolve through
// the slow path on each switch; the common case (one registry) stays a
// single comparison. Registry ids are never reused, so a stale cache
// entry can only miss, never alias.
struct TlsShardCache {
  uint64_t registry_id = 0;
  void* shard = nullptr;
};
thread_local TlsShardCache tls_shard_cache;

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

// ---------------------------------------------------------------------------
// Shard

MetricsRegistry::Shard::~Shard() {
  for (auto& block : blocks) {
    delete[] block.load(std::memory_order_acquire);
  }
}

std::atomic<uint64_t>* MetricsRegistry::Shard::GetBlock(uint32_t block_index) {
  std::atomic<uint64_t>* block =
      blocks[block_index].load(std::memory_order_acquire);
  if (block != nullptr) return block;
  std::lock_guard<std::mutex> lk(grow_mu);
  block = blocks[block_index].load(std::memory_order_acquire);
  if (block == nullptr) {
    block = new std::atomic<uint64_t>[kBlockSlots]();  // zero-initialized
    blocks[block_index].store(block, std::memory_order_release);
  }
  return block;
}

// ---------------------------------------------------------------------------
// Write path

void Counter::Add(uint64_t delta) {
  if (!registry_->enabled()) return;
  registry_->AddToSlot(slot_, delta);
}

void Gauge::Set(uint64_t value) {
  if (!registry_->enabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::UpdateMax(uint64_t value) {
  if (!registry_->enabled()) return;
  uint64_t current = value_.load(std::memory_order_relaxed);
  while (current < value &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::Observe(uint64_t value) {
  if (!registry_->enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const uint32_t bucket = static_cast<uint32_t>(it - bounds_.begin());
  registry_->AddToSlot(base_slot_ + bucket, 1);
  registry_->AddToSlot(base_slot_ + static_cast<uint32_t>(bounds_.size()) + 1,
                       value);
}

void MetricsRegistry::AddToSlot(uint32_t slot, uint64_t delta) {
  Shard* shard = ShardForThisThread();
  std::atomic<uint64_t>* block = shard->GetBlock(slot / kBlockSlots);
  block[slot % kBlockSlots].fetch_add(delta, std::memory_order_relaxed);
}

MetricsRegistry::Shard* MetricsRegistry::ShardForThisThread() {
  if (tls_shard_cache.registry_id == id_) {
    return static_cast<Shard*>(tls_shard_cache.shard);
  }
  const uint32_t thread_index = ObsThreadIndex();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& shard : shards_) {
    if (shard->thread_index == thread_index) {
      tls_shard_cache = {id_, shard.get()};
      return shard.get();
    }
  }
  shards_.push_back(std::make_unique<Shard>());
  shards_.back()->thread_index = thread_index;
  tls_shard_cache = {id_, shards_.back().get()};
  return shards_.back().get();
}

// ---------------------------------------------------------------------------
// Registration

MetricsRegistry::MetricsRegistry(bool enabled)
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)),
      enabled_(enabled) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry(/*enabled=*/false);
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& c : counters_) {
    if (c->name_ == name) return c.get();
  }
  FPM_CHECK(next_slot_ + 1 <= kMaxSlots) << "metric slot space exhausted";
  counters_.emplace_back(new Counter(this, next_slot_, std::string(name)));
  ++next_slot_;
  return counters_.back().get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& g : gauges_) {
    if (g->name_ == name) return g.get();
  }
  gauges_.emplace_back(new Gauge(this, std::string(name)));
  return gauges_.back().get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<uint64_t> bounds) {
  FPM_CHECK(!bounds.empty()) << "histogram needs at least one bucket bound";
  FPM_CHECK(std::is_sorted(bounds.begin(), bounds.end()) &&
            std::adjacent_find(bounds.begin(), bounds.end()) == bounds.end())
      << "histogram bounds must be strictly increasing";
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& h : histograms_) {
    if (h->name_ == name) {
      FPM_CHECK(h->bounds_ == bounds)
          << "histogram '" << h->name_ << "' re-registered with other bounds";
      return h.get();
    }
  }
  const uint32_t slots = static_cast<uint32_t>(bounds.size()) + 2;
  FPM_CHECK(next_slot_ + slots <= kMaxSlots) << "metric slot space exhausted";
  histograms_.emplace_back(
      new Histogram(this, next_slot_, std::move(bounds), std::string(name)));
  next_slot_ += slots;
  return histograms_.back().get();
}

// ---------------------------------------------------------------------------
// Read path

uint64_t MetricsRegistry::SumSlot(uint32_t slot) const {
  // Caller holds mu_.
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::atomic<uint64_t>* block =
        shard->blocks[slot / kBlockSlots].load(std::memory_order_acquire);
    if (block != nullptr) {
      total += block[slot % kBlockSlots].load(std::memory_order_relaxed);
    }
  }
  return total;
}

MetricsSnapshot MetricsRegistry::Snapshot(bool per_thread) const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& c : counters_) {
    CounterSample sample;
    sample.name = c->name_;
    sample.value = SumSlot(c->slot_);
    if (per_thread) {
      for (const auto& shard : shards_) {
        const std::atomic<uint64_t>* block =
            shard->blocks[c->slot_ / kBlockSlots].load(
                std::memory_order_acquire);
        const uint64_t v =
            block == nullptr
                ? 0
                : block[c->slot_ % kBlockSlots].load(
                      std::memory_order_relaxed);
        if (v != 0) sample.per_thread.emplace_back(shard->thread_index, v);
      }
      std::sort(sample.per_thread.begin(), sample.per_thread.end());
    }
    snap.counters.push_back(std::move(sample));
  }
  for (const auto& g : gauges_) {
    snap.gauges.push_back({g->name_, g->value()});
  }
  for (const auto& h : histograms_) {
    HistogramSample sample;
    sample.name = h->name_;
    sample.bounds = h->bounds_;
    const uint32_t nb = static_cast<uint32_t>(h->bounds_.size());
    sample.counts.resize(nb + 1);
    for (uint32_t i = 0; i <= nb; ++i) {
      sample.counts[i] = SumSlot(h->base_slot_ + i);
    }
    sample.sum = SumSlot(h->base_slot_ + nb + 1);
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& shard : shards_) {
    for (auto& block_ptr : shard->blocks) {
      std::atomic<uint64_t>* block =
          block_ptr.load(std::memory_order_acquire);
      if (block == nullptr) continue;
      for (uint32_t i = 0; i < kBlockSlots; ++i) {
        block[i].store(0, std::memory_order_relaxed);
      }
    }
  }
  for (const auto& g : gauges_) g->value_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshot

uint64_t HistogramSample::count() const {
  uint64_t n = 0;
  for (uint64_t c : counts) n += c;
  return n;
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

uint64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const HistogramSample* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (CounterSample& c : delta.counters) {
    const uint64_t before = earlier.counter(c.name);
    c.value -= before < c.value ? before : c.value;
    c.per_thread.clear();  // per-thread deltas are not tracked
  }
  for (HistogramSample& h : delta.histograms) {
    const HistogramSample* before = earlier.histogram(h.name);
    if (before == nullptr || before->counts.size() != h.counts.size()) {
      continue;
    }
    for (size_t i = 0; i < h.counts.size(); ++i) {
      h.counts[i] -= std::min(before->counts[i], h.counts[i]);
    }
    h.sum -= std::min(before->sum, h.sum);
  }
  return delta;
}

void MetricsSnapshot::WriteJson(std::ostream& os) const {
  os << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ',';
    WriteJsonString(os, counters[i].name);
    os << ':' << counters[i].value;
  }
  os << "}";
  bool any_per_thread = false;
  for (const CounterSample& c : counters) {
    if (!c.per_thread.empty()) any_per_thread = true;
  }
  if (any_per_thread) {
    os << ",\"counters_per_thread\":{";
    bool first = true;
    for (const CounterSample& c : counters) {
      if (c.per_thread.empty()) continue;
      if (!first) os << ',';
      first = false;
      WriteJsonString(os, c.name);
      os << ":{";
      for (size_t i = 0; i < c.per_thread.size(); ++i) {
        if (i > 0) os << ',';
        os << '"' << c.per_thread[i].first << "\":" << c.per_thread[i].second;
      }
      os << '}';
    }
    os << '}';
  }
  os << ",\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ',';
    WriteJsonString(os, gauges[i].name);
    os << ':' << gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    if (i > 0) os << ',';
    WriteJsonString(os, h.name);
    os << ":{\"bounds\":[";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) os << ',';
      os << h.bounds[b];
    }
    os << "],\"counts\":[";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) os << ',';
      os << h.counts[b];
    }
    os << "],\"sum\":" << h.sum << '}';
  }
  os << "}}";
}

}  // namespace fpm
