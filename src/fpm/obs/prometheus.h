// Prometheus text-exposition rendering of a MetricsSnapshot, so
// standard scrapers (prometheus, the node_exporter textfile collector,
// vmagent) can consume fpmd's metrics without a bespoke integration.
//
// Metric names are sanitized to the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): the registry's dots become underscores,
// so "fpm.service.cache.hits" exports as "fpm_service_cache_hits".
// Counters and gauges emit a `# TYPE` line plus one sample; histograms
// emit cumulative `_bucket{le="..."}` samples (including `+Inf`), plus
// `_sum` and `_count`, matching Prometheus histogram conventions.

#ifndef FPM_OBS_PROMETHEUS_H_
#define FPM_OBS_PROMETHEUS_H_

#include <iosfwd>
#include <string>
#include <string_view>

namespace fpm {

struct MetricsSnapshot;

/// A valid Prometheus metric name derived from `name` (dots and any
/// other illegal characters become '_', including a leading digit).
std::string PrometheusName(std::string_view name);

/// Writes the snapshot in Prometheus text exposition format (version
/// 0.0.4): `# TYPE` comments, one sample line per metric/bucket, and a
/// trailing newline after every line.
void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& os);

}  // namespace fpm

#endif  // FPM_OBS_PROMETHEUS_H_
