// Lightweight phase-span tracer.
//
// A span is a named interval on one thread (begin/end, with the nesting
// depth at begin and optional numeric args). Completed spans land in a
// per-thread ring buffer — the newest spans win when a ring fills — and
// are merged on export. Two exporters are provided: JSON-lines (one span
// object per line, grep/jq-friendly) and the Chrome trace-event format
// ("ph":"X" complete events) loadable straight into chrome://tracing or
// https://ui.perfetto.dev.
//
// Like the metrics registry, the default tracer starts disabled: a
// ScopedSpan on a disabled tracer neither reads the clock nor allocates
// (one relaxed load + branch). mine_cli enables it for --trace-out.
//
// PhaseSpan is the bridge to MineStats: kernels must report phase wall
// times whether or not tracing is on, so PhaseSpan always times and
// additionally records a trace span when the tracer is enabled. Kernels
// close a phase with MineStats::FinishPhase(phase, span), which stores
// the elapsed seconds of End() plus any sampler counter deltas.
//
// When a PhaseSampler (fpm/obs/phase_sampler.h) is installed on the
// tracer, every PhaseSpan additionally latches the sampler's deltas —
// e.g. hardware-counter readings — over the phase: they are exposed via
// counter_deltas() (kernels merge them into MineStats), attached to the
// trace span as args, and recorded into the default MetricsRegistry as
// "fpm.phase.<phase>.<counter>" counters and gauges.

#ifndef FPM_OBS_TRACE_H_
#define FPM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fpm/obs/phase_sampler.h"

namespace fpm {

class Counter;

/// One completed span. Timestamps are nanoseconds since the tracer's
/// construction (Clear() keeps the epoch, so successive exports share a
/// time base).
struct TraceSpan {
  std::string name;
  uint32_t thread_index = 0;  ///< ObsThreadIndex() of the emitting thread
  uint32_t depth = 0;         ///< nesting level at begin (0 = top)
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, uint64_t>> args;
};

/// Collects spans into per-thread ring buffers.
///
/// Record()/ScopedSpan are safe from any thread; CollectSpans()/Clear()
/// may run concurrently with writers (each ring is briefly locked — the
/// lock is per-thread and uncontended on the hot path).
class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 16;

  /// The process-wide tracer the library's instrumentation records to.
  /// Starts disabled.
  static Tracer& Default();

  /// `ring_capacity` bounds the spans retained *per thread*; when a ring
  /// is full the oldest span is overwritten (and counted in dropped()).
  explicit Tracer(size_t ring_capacity = kDefaultRingCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Installs (or, with nullptr, removes) the sampler new PhaseSpans
  /// consult. The sampler must outlive every span begun while it was
  /// installed; spans in flight keep driving the sampler they started
  /// with. Independent of enabled(): sampling works without tracing.
  void set_phase_sampler(PhaseSampler* sampler) {
    phase_sampler_.store(sampler, std::memory_order_release);
  }
  PhaseSampler* phase_sampler() const {
    return phase_sampler_.load(std::memory_order_acquire);
  }

  /// Request-scoped span context. A nonzero query id set on a thread is
  /// attached as a "query_id" arg to every ScopedSpan/PhaseSpan the
  /// thread records (all tracers — the context is per thread, like the
  /// nesting depth), so kernel and task spans can be joined back to the
  /// service request that caused them. Prefer SpanContextScope over
  /// calling these directly.
  static void SetThreadQueryId(uint64_t query_id);
  static uint64_t ThreadQueryId();

  /// Nanoseconds since construction (the span time base).
  uint64_t NowNs() const;

  /// Appends a completed span to the calling thread's ring. Records
  /// unconditionally — the enabled() gate lives in ScopedSpan/PhaseSpan
  /// so tests can inject handcrafted spans.
  void Record(TraceSpan span);

  /// Every retained span, oldest-first per ring, merged and sorted by
  /// (start_ns, depth) so parents precede their children.
  std::vector<TraceSpan> CollectSpans() const;

  /// Spans lost to ring overwrites since construction or Clear().
  uint64_t dropped() const;

  /// Discards all retained spans (the epoch is kept).
  void Clear();

 private:
  friend class ScopedSpan;
  friend class PhaseSpan;

  struct ThreadRing;
  ThreadRing* RingForThisThread();

  const uint64_t id_;  // process-unique, for the thread-local ring cache
  const size_t ring_capacity_;
  Counter* spans_dropped_counter_;  // fpm.obs.spans_dropped
  std::atomic<bool> enabled_{false};
  std::atomic<PhaseSampler*> phase_sampler_{nullptr};
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // guards rings_ (the list, not the contents)
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

/// RAII query-id span context: installs `query_id` as the calling
/// thread's context for its lifetime and restores the previous value on
/// destruction (nesting is well-formed). Spawning code that ships work
/// to another thread must capture Tracer::ThreadQueryId() at submit time
/// and open a new scope inside the task body.
class SpanContextScope {
 public:
  explicit SpanContextScope(uint64_t query_id)
      : previous_(Tracer::ThreadQueryId()) {
    Tracer::SetThreadQueryId(query_id);
  }
  ~SpanContextScope() { Tracer::SetThreadQueryId(previous_); }

  SpanContextScope(const SpanContextScope&) = delete;
  SpanContextScope& operator=(const SpanContextScope&) = delete;

 private:
  uint64_t previous_;
};

/// RAII span: begins at construction, ends (and records) at End() or
/// destruction. On a disabled tracer the whole object is inert.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string_view name);
  /// Spans on the default tracer.
  explicit ScopedSpan(std::string_view name)
      : ScopedSpan(Tracer::Default(), name) {}
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when the tracer was enabled at construction (args will be
  /// retained, End() will record).
  bool active() const { return tracer_ != nullptr; }

  /// Attaches a numeric arg (no-op when inactive).
  void AddArg(std::string_view key, uint64_t value);

  /// Ends and records the span; later calls (and the destructor) no-op.
  void End();

 private:
  Tracer* tracer_ = nullptr;  // null = inactive
  TraceSpan span_;
};

/// Always-on phase stopwatch that doubles as a trace span when the
/// tracer is enabled. End() returns the elapsed wall seconds (kernels
/// store it into MineStats); the destructor ends implicitly for early
/// returns. When the tracer has a PhaseSampler, the span drives it and
/// latches its deltas (see counter_deltas()).
class PhaseSpan {
 public:
  PhaseSpan(Tracer& tracer, std::string_view name);
  explicit PhaseSpan(std::string_view name)
      : PhaseSpan(Tracer::Default(), name) {}
  ~PhaseSpan() { End(); }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// Attaches a numeric arg to the trace span (no-op unless tracing).
  void AddArg(std::string_view key, uint64_t value);

  /// Stops the stopwatch, latches the sampler deltas, records the trace
  /// span when tracing, and returns the elapsed seconds. Idempotent.
  double End();

  /// Sampler counter deltas over the phase; empty before End() and when
  /// no sampler was installed. Valid until the span is destroyed (take
  /// ownership with TakeCounterDeltas()).
  const std::vector<std::pair<std::string, uint64_t>>& counter_deltas()
      const {
    return deltas_.counters;
  }
  std::vector<std::pair<std::string, uint64_t>> TakeCounterDeltas() {
    return std::move(deltas_.counters);
  }

 private:
  Tracer* tracer_ = nullptr;  // null once ended; tracing gated separately
  bool tracing_ = false;
  PhaseSampler* sampler_ = nullptr;  // latched at construction
  double elapsed_seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_;
  TraceSpan span_;
  PhaseSampleDeltas deltas_;
};

/// Writes one JSON object per span:
///   {"name":"mine","tid":0,"depth":1,"start_ns":12,"dur_ns":34,
///    "args":{"itemsets":5}}
void WriteTraceJsonLines(std::span<const TraceSpan> spans, std::ostream& os);

/// Writes the Chrome trace-event JSON document ("X" complete events,
/// microsecond timestamps) for chrome://tracing / Perfetto.
void WriteChromeTracing(std::span<const TraceSpan> spans, std::ostream& os);

}  // namespace fpm

#endif  // FPM_OBS_TRACE_H_
