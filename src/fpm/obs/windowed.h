// Sliding-window latency/QPS aggregation for live introspection.
//
// A WindowedHistogram keeps one bucket per wall-clock second in a
// fixed-size ring (128 seconds by default — enough for the 1s/10s/60s
// windows the stats op reports, with slack for clock skew at the
// window edge). Each bucket holds a count, sum, max, and a fixed
// log-spaced latency histogram; Stats(window) merges the buckets whose
// second falls inside the window and interpolates p50/p99 from the
// merged histogram. Record() is a short mutex-guarded update (the
// stats path is nowhere near the kernel hot loops), and the
// *At(second) overloads take an explicit clock so tests are
// deterministic.

#ifndef FPM_OBS_WINDOWED_H_
#define FPM_OBS_WINDOWED_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace fpm {

class WindowedHistogram {
 public:
  /// Upper bounds (milliseconds) of the latency buckets, log-spaced
  /// from 100us to 2 minutes; one implicit overflow bucket follows.
  static constexpr std::array<double, 20> kBoundsMs = {
      0.1,    0.2,    0.5,    1.0,    2.0,     5.0,     10.0,
      20.0,   50.0,   100.0,  200.0,  500.0,   1000.0,  2000.0,
      5000.0, 10000.0, 20000.0, 30000.0, 60000.0, 120000.0};

  struct Stats {
    uint64_t count = 0;   ///< observations inside the window
    double qps = 0.0;     ///< count / window_seconds
    double p50_ms = 0.0;  ///< interpolated; 0 when count == 0
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };

  explicit WindowedHistogram(size_t ring_seconds = 128);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  /// Records one observation at the current second.
  void Record(double ms) { RecordAt(NowSecond(), ms); }
  /// Records at an explicit second (monotone, seconds since an
  /// arbitrary epoch). Deterministic-test entry point.
  void RecordAt(uint64_t second, double ms);

  /// Aggregates the last `window_seconds` full seconds ending at the
  /// current second (exclusive of the in-progress second when
  /// possible, so 1s windows are not systematically short).
  Stats Query(uint64_t window_seconds) const {
    return QueryAt(window_seconds, NowSecond());
  }
  Stats QueryAt(uint64_t window_seconds, uint64_t now_second) const;

  /// Seconds since construction (the clock Record()/Query() use).
  uint64_t NowSecond() const;

 private:
  struct Bucket {
    uint64_t second = ~uint64_t{0};  ///< which second this bucket holds
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::array<uint32_t, kBoundsMs.size() + 1> hist{};  ///< last = overflow
  };

  Bucket& BucketFor(uint64_t second);

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
};

}  // namespace fpm

#endif  // FPM_OBS_WINDOWED_H_
