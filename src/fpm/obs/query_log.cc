#include "fpm/obs/query_log.h"

#include <chrono>
#include <cstdio>
#include <ostream>

namespace fpm {
namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendField(std::string& out, const char* key, const std::string& value) {
  if (value.empty()) return;
  out += ",\"";
  out += key;
  out += "\":";
  AppendJsonString(out, value);
}

void AppendField(std::string& out, const char* key, uint64_t value) {
  if (value == 0) return;
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendMsField(std::string& out, const char* key, double ms) {
  if (ms <= 0.0) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.3f", key, ms);
  out += buf;
}

}  // namespace

std::string QueryLogEntry::ToJson(uint64_t ts_ms) const {
  std::string out;
  out.reserve(256);
  out += "{\"event\":";
  AppendJsonString(out, event);
  out += ",\"ts_ms\":";
  out += std::to_string(ts_ms);
  out += ",\"query_id\":";
  out += std::to_string(query_id);
  AppendField(out, "trace_id", trace_id);
  AppendField(out, "op", op);
  AppendField(out, "task", task);
  AppendField(out, "dataset", dataset);
  AppendField(out, "dataset_id", dataset_id);
  AppendField(out, "version", dataset_version);
  AppendField(out, "digest", digest);
  AppendField(out, "algorithm", algorithm);
  AppendField(out, "min_support", min_support);
  AppendField(out, "k", k);
  AppendMsField(out, "queue_ms", queue_ms);
  AppendMsField(out, "mine_ms", mine_ms);
  AppendMsField(out, "derive_ms", derive_ms);
  AppendField(out, "cache", cache);
  AppendField(out, "num_results", num_results);
  AppendField(out, "peak_bytes", peak_bytes);
  out += ",\"status\":";
  AppendJsonString(out, status);
  AppendField(out, "reason", reason);
  out += '}';
  return out;
}

Status QueryLog::OpenFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  file_.open(path, std::ios::app);
  if (!file_) {
    return Status::IOError("cannot open query log '" + path + "'");
  }
  sink_ = &file_;
  enabled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void QueryLog::SetStream(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = os;
  enabled_.store(os != nullptr, std::memory_order_relaxed);
}

void QueryLog::Write(const QueryLogEntry& entry) {
  if (!enabled()) return;
  const uint64_t ts_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  // Serialize outside the lock; the contended section is one append.
  const std::string line = entry.ToJson(ts_ms);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_ == nullptr) return;
    *sink_ << line << '\n';
    sink_->flush();
  }
  lines_written_.fetch_add(1, std::memory_order_relaxed);
  const double total_ms = entry.queue_ms + entry.mine_ms + entry.derive_ms;
  if (slow_threshold_ms_ > 0.0 && total_ms >= slow_threshold_ms_) {
    std::fprintf(stderr, "fpm slow query (%.3f ms): %s\n", total_ms,
                 line.c_str());
  }
}

}  // namespace fpm
