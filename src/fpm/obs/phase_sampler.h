// Sampler hook for PhaseSpan: a way to attribute *external* measurements
// (hardware performance counters, rusage, allocator stats) to the phases
// the kernels already delimit, without fpm/obs/ knowing what is being
// sampled.
//
// A PhaseSampler is installed on a Tracer (Tracer::set_phase_sampler).
// Every PhaseSpan on that tracer then calls OnPhaseBegin() on the span's
// thread when the phase starts and OnPhaseEnd() when it ends; the
// sampler returns named deltas which the span (a) exposes to the kernel
// for MineStats, (b) attaches to the trace span as args, and (c) records
// into the default MetricsRegistry under "fpm.phase.<phase>.<name>".
//
// The concrete hardware-counter implementation lives in
// fpm/perf/perf_sampler.h (fpm_perf links against fpm_obs, not the
// other way around). With no sampler installed a PhaseSpan pays one
// relaxed atomic load.

#ifndef FPM_OBS_PHASE_SAMPLER_H_
#define FPM_OBS_PHASE_SAMPLER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fpm {

/// What a sampler hands back for one ended phase.
struct PhaseSampleDeltas {
  /// Additive deltas over the phase (e.g. "cycles", "cache_misses").
  /// Merged into MineStats' per-phase counter table and Add()ed to
  /// "fpm.phase.<phase>.<name>" counters.
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Derived point-in-time values (e.g. "cpi_milli" = 1000 x CPI).
  /// Set() on "fpm.phase.<phase>.<name>" gauges — last phase wins.
  std::vector<std::pair<std::string, uint64_t>> gauges;

  bool empty() const { return counters.empty() && gauges.empty(); }
};

/// Interface PhaseSpan drives. Begin/End are always called in pairs, in
/// LIFO order per thread (phases nest), on the thread running the phase.
/// Implementations must be safe to drive from many threads at once.
class PhaseSampler {
 public:
  virtual ~PhaseSampler() = default;

  /// The phase is starting on the calling thread.
  virtual void OnPhaseBegin() = 0;

  /// The phase named `phase` ended; append its deltas to `out` (leave it
  /// untouched when this thread has nothing to report).
  virtual void OnPhaseEnd(std::string_view phase, PhaseSampleDeltas* out) = 0;
};

}  // namespace fpm

#endif  // FPM_OBS_PHASE_SAMPLER_H_
