// Small sequential per-thread ids for the observability layer.
//
// std::thread::id is opaque and unordered; the metrics registry and the
// span tracer both want a compact, stable integer per thread (shard
// labels, chrome://tracing "tid" fields). The index is assigned on a
// thread's first call and never reused within the process.

#ifndef FPM_OBS_THREAD_INDEX_H_
#define FPM_OBS_THREAD_INDEX_H_

#include <atomic>
#include <cstdint>

namespace fpm {
namespace internal {
inline std::atomic<uint32_t> g_next_obs_thread_index{0};
}  // namespace internal

/// Process-unique small id of the calling thread, assigned in first-call
/// order (the main thread is usually 0).
inline uint32_t ObsThreadIndex() {
  thread_local const uint32_t index =
      internal::g_next_obs_thread_index.fetch_add(1,
                                                  std::memory_order_relaxed);
  return index;
}

}  // namespace fpm

#endif  // FPM_OBS_THREAD_INDEX_H_
