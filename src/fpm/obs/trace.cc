#include "fpm/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "fpm/obs/metrics.h"
#include "fpm/obs/thread_index.h"

namespace fpm {
namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

struct TlsRingCache {
  uint64_t tracer_id = 0;
  void* ring = nullptr;
};
thread_local TlsRingCache tls_ring_cache;

// Per-thread nesting level. Global across tracers: in practice one
// tracer is active at a time, and a shared depth is still well-formed
// (spans just nest across tracers too).
thread_local uint32_t tls_span_depth = 0;

// Per-thread request context (see Tracer::SetThreadQueryId). Global
// across tracers for the same reason as the depth.
thread_local uint64_t tls_query_id = 0;

// Appends the thread's query-id context to a span about to be recorded.
void AttachSpanContext(TraceSpan& span) {
  if (tls_query_id != 0) span.args.emplace_back("query_id", tls_query_id);
}

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

struct Tracer::ThreadRing {
  std::mutex mu;
  std::vector<TraceSpan> slots;
  size_t next = 0;  // insertion cursor once full
  uint64_t overwritten = 0;
  uint32_t thread_index = 0;
};

Tracer::Tracer(size_t ring_capacity)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      ring_capacity_(ring_capacity < 1 ? 1 : ring_capacity),
      spans_dropped_counter_(
          MetricsRegistry::Default().GetCounter("fpm.obs.spans_dropped")),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetThreadQueryId(uint64_t query_id) {
  tls_query_id = query_id;
}

uint64_t Tracer::ThreadQueryId() { return tls_query_id; }

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadRing* Tracer::RingForThisThread() {
  if (tls_ring_cache.tracer_id == id_) {
    return static_cast<ThreadRing*>(tls_ring_cache.ring);
  }
  const uint32_t thread_index = ObsThreadIndex();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    if (ring->thread_index == thread_index) {
      tls_ring_cache = {id_, ring.get()};
      return ring.get();
    }
  }
  rings_.push_back(std::make_unique<ThreadRing>());
  rings_.back()->thread_index = thread_index;
  tls_ring_cache = {id_, rings_.back().get()};
  return rings_.back().get();
}

void Tracer::Record(TraceSpan span) {
  ThreadRing* ring = RingForThisThread();
  span.thread_index = ring->thread_index;
  std::lock_guard<std::mutex> lk(ring->mu);
  if (ring->slots.size() < ring_capacity_) {
    ring->slots.push_back(std::move(span));
  } else {
    ring->slots[ring->next] = std::move(span);
    ring->next = (ring->next + 1) % ring_capacity_;
    ++ring->overwritten;
    spans_dropped_counter_->Increment();
  }
}

std::vector<TraceSpan> Tracer::CollectSpans() const {
  std::vector<TraceSpan> out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    // Oldest-first: once wrapped, `next` points at the oldest slot.
    const size_t n = ring->slots.size();
    const size_t start = n < ring_capacity_ ? 0 : ring->next;
    for (size_t k = 0; k < n; ++k) {
      out.push_back(ring->slots[(start + k) % n]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.depth < b.depth;
                   });
  return out;
}

uint64_t Tracer::dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    total += ring->overwritten;
  }
  return total;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    ring->slots.clear();
    ring->next = 0;
    ring->overwritten = 0;
  }
}

// ---------------------------------------------------------------------------
// ScopedSpan / PhaseSpan

ScopedSpan::ScopedSpan(Tracer& tracer, std::string_view name) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  span_.name.assign(name);
  span_.depth = tls_span_depth++;
  span_.start_ns = tracer.NowNs();
}

void ScopedSpan::AddArg(std::string_view key, uint64_t value) {
  if (tracer_ == nullptr) return;
  span_.args.emplace_back(std::string(key), value);
}

void ScopedSpan::End() {
  if (tracer_ == nullptr) return;
  span_.duration_ns = tracer_->NowNs() - span_.start_ns;
  --tls_span_depth;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  AttachSpanContext(span_);
  tracer->Record(std::move(span_));
}

PhaseSpan::PhaseSpan(Tracer& tracer, std::string_view name)
    : tracer_(&tracer),
      tracing_(tracer.enabled()),
      sampler_(tracer.phase_sampler()) {
  if (tracing_ || sampler_ != nullptr) span_.name.assign(name);
  if (tracing_) {
    span_.depth = tls_span_depth++;
    span_.start_ns = tracer.NowNs();
  }
  // The sampler read (a syscall for hardware counters) happens before
  // the stopwatch starts so it is not billed to the phase.
  if (sampler_ != nullptr) sampler_->OnPhaseBegin();
  start_ = std::chrono::steady_clock::now();
}

void PhaseSpan::AddArg(std::string_view key, uint64_t value) {
  if (!tracing_ || tracer_ == nullptr) return;
  span_.args.emplace_back(std::string(key), value);
}

// Records one phase's sampler deltas into the default registry:
// counters accumulate ("fpm.phase.mine.cycles" over all mine phases),
// gauges keep the latest phase's derived value.
namespace {
void RecordPhaseSampleMetrics(const std::string& phase,
                              const PhaseSampleDeltas& deltas) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  if (!registry.enabled() || deltas.empty()) return;
  std::string name;
  for (const auto& [key, value] : deltas.counters) {
    name = "fpm.phase." + phase + "." + key;
    registry.GetCounter(name)->Add(value);
  }
  for (const auto& [key, value] : deltas.gauges) {
    name = "fpm.phase." + phase + "." + key;
    registry.GetGauge(name)->Set(value);
  }
}
}  // namespace

double PhaseSpan::End() {
  if (tracer_ == nullptr) return elapsed_seconds_;
  elapsed_seconds_ = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  // Stopwatch is stopped; the sampler read and metric writes below are
  // span-exit overhead, not phase time.
  if (sampler_ != nullptr) {
    sampler_->OnPhaseEnd(span_.name, &deltas_);
    RecordPhaseSampleMetrics(span_.name, deltas_);
    if (tracing_) {
      for (const auto& [key, value] : deltas_.counters) {
        span_.args.emplace_back(key, value);
      }
    }
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  if (tracing_) {
    span_.duration_ns = tracer->NowNs() - span_.start_ns;
    --tls_span_depth;
    AttachSpanContext(span_);
    tracer->Record(std::move(span_));
  }
  return elapsed_seconds_;
}

// ---------------------------------------------------------------------------
// Exporters

void WriteTraceJsonLines(std::span<const TraceSpan> spans, std::ostream& os) {
  for (const TraceSpan& s : spans) {
    os << "{\"name\":";
    WriteJsonString(os, s.name);
    os << ",\"tid\":" << s.thread_index << ",\"depth\":" << s.depth
       << ",\"start_ns\":" << s.start_ns << ",\"dur_ns\":" << s.duration_ns;
    if (!s.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i > 0) os << ',';
        WriteJsonString(os, s.args[i].first);
        os << ':' << s.args[i].second;
      }
      os << '}';
    }
    os << "}\n";
  }
}

void WriteChromeTracing(std::span<const TraceSpan> spans, std::ostream& os) {
  os << "{\"traceEvents\":[";
  char buf[64];
  for (size_t k = 0; k < spans.size(); ++k) {
    const TraceSpan& s = spans[k];
    if (k > 0) os << ',';
    os << "{\"name\":";
    WriteJsonString(os, s.name);
    // Microsecond timestamps with nanosecond precision kept as decimals.
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", s.start_ns / 1000,
                  static_cast<unsigned>(s.start_ns % 1000));
    os << ",\"cat\":\"fpm\",\"ph\":\"X\",\"ts\":" << buf;
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", s.duration_ns / 1000,
                  static_cast<unsigned>(s.duration_ns % 1000));
    os << ",\"dur\":" << buf << ",\"pid\":1,\"tid\":" << s.thread_index;
    if (!s.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i > 0) os << ',';
        WriteJsonString(os, s.args[i].first);
        os << ':' << s.args[i].second;
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace fpm
