#include "fpm/obs/prometheus.h"

#include <ostream>

#include "fpm/obs/metrics.h"

namespace fpm {
namespace {

bool LegalNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out += LegalNameChar(c, out.empty()) ? c : '_';
  }
  return out;
}

void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name);
    os << "# TYPE " << name << " counter\n";
    os << name << ' ' << c.value << '\n';
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << ' ' << g.value << '\n';
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    os << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      os << name << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative
         << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
    os << name << "_sum " << h.sum << '\n';
    os << name << "_count " << h.count() << '\n';
  }
}

}  // namespace fpm
