#include "fpm/obs/windowed.h"

#include <algorithm>

namespace fpm {

WindowedHistogram::WindowedHistogram(size_t ring_seconds)
    : epoch_(std::chrono::steady_clock::now()),
      ring_(ring_seconds < 2 ? 2 : ring_seconds) {}

uint64_t WindowedHistogram::NowSecond() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

WindowedHistogram::Bucket& WindowedHistogram::BucketFor(uint64_t second) {
  Bucket& b = ring_[second % ring_.size()];
  if (b.second != second) b = Bucket{second, 0, 0.0, 0.0, {}};
  return b;
}

void WindowedHistogram::RecordAt(uint64_t second, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = BucketFor(second);
  ++b.count;
  b.sum += ms;
  b.max = std::max(b.max, ms);
  size_t i = 0;
  while (i < kBoundsMs.size() && ms > kBoundsMs[i]) ++i;
  ++b.hist[i];
}

WindowedHistogram::Stats WindowedHistogram::QueryAt(
    uint64_t window_seconds, uint64_t now_second) const {
  Stats out;
  if (window_seconds == 0) return out;
  // The window is the last `window_seconds` whole seconds ending at the
  // in-progress one (inclusive), so fresh traffic shows up immediately.
  const uint64_t end = now_second;
  const uint64_t begin =
      end + 1 >= window_seconds ? end + 1 - window_seconds : 0;

  std::array<uint64_t, kBoundsMs.size() + 1> merged{};
  std::lock_guard<std::mutex> lock(mu_);
  for (const Bucket& b : ring_) {
    if (b.count == 0 || b.second < begin || b.second > end) continue;
    out.count += b.count;
    out.max_ms = std::max(out.max_ms, b.max);
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += b.hist[i];
  }
  out.qps = static_cast<double>(out.count) /
            static_cast<double>(window_seconds);
  if (out.count == 0) return out;

  // Linear interpolation inside the bucket containing the quantile's
  // rank; the overflow bucket reports the observed max.
  auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(out.count);
    uint64_t cum = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i] == 0) continue;
      const uint64_t next = cum + merged[i];
      if (static_cast<double>(next) >= rank) {
        if (i == kBoundsMs.size()) return out.max_ms;
        const double lo = i == 0 ? 0.0 : kBoundsMs[i - 1];
        const double hi = std::min(kBoundsMs[i], out.max_ms);
        const double frac =
            (rank - static_cast<double>(cum)) /
            static_cast<double>(merged[i]);
        return lo + (std::max(hi, lo) - lo) * frac;
      }
      cum = next;
    }
    return out.max_ms;
  };
  out.p50_ms = quantile(0.50);
  out.p99_ms = quantile(0.99);
  return out;
}

}  // namespace fpm
