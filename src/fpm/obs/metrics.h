// Process-wide metrics registry: named monotonic counters, gauges, and
// fixed-bucket histograms.
//
// Write path: counter increments and histogram observations go to a
// per-thread shard (one cache-line-padded atomic slot array per thread),
// so concurrent writers — including the work-stealing pool's workers —
// never contend. The fast path is lock-free: a relaxed enabled check, a
// cached shard lookup, and one relaxed fetch_add. Read path: Snapshot()
// merges all shards under the registration mutex; it is exact for every
// increment that happened-before the snapshot and may or may not include
// concurrent ones (each is either fully counted or not yet — never torn).
//
// Gauges (set/max semantics, e.g. structure sizes) are set rarely and
// use a single atomic per gauge instead of shards.
//
// The registry is disabled by default: every write degenerates to one
// relaxed load and a predictable branch, keeping the instrumentation
// threaded through the miners below ~1% overhead (see
// bench_obs_overhead). Enable it process-wide via
// MetricsRegistry::Default().set_enabled(true) — mine_cli does this when
// --metrics-out is given.

#ifndef FPM_OBS_METRICS_H_
#define FPM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fpm {

class MetricsRegistry;

/// Monotonic named counter. Obtain via MetricsRegistry::GetCounter();
/// pointers remain valid for the registry's lifetime. Add() is safe from
/// any thread.
class Counter {
 public:
  void Add(uint64_t delta = 1);
  void Increment() { Add(1); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, uint32_t slot, std::string name)
      : registry_(registry), slot_(slot), name_(std::move(name)) {}

  MetricsRegistry* registry_;
  uint32_t slot_;
  std::string name_;
};

/// Named gauge: a value that can move both ways (structure sizes, queue
/// depths). Set/UpdateMax are safe from any thread; last/largest writer
/// wins process-wide (gauges are not per-thread sharded).
class Gauge {
 public:
  void Set(uint64_t value);
  /// Raises the gauge to `value` if larger (peak tracking).
  void UpdateMax(uint64_t value);
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  MetricsRegistry* registry_;
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// v <= bounds[i] (and > bounds[i-1]); one extra overflow bucket counts
/// v > bounds.back(). Observe() is safe from any thread.
class Histogram {
 public:
  void Observe(uint64_t value);
  const std::string& name() const { return name_; }
  const std::vector<uint64_t>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, uint32_t base_slot,
            std::vector<uint64_t> bounds, std::string name)
      : registry_(registry),
        base_slot_(base_slot),
        bounds_(std::move(bounds)),
        name_(std::move(name)) {}

  MetricsRegistry* registry_;
  uint32_t base_slot_;  // bounds.size()+2 slots: buckets, overflow, sum
  std::vector<uint64_t> bounds_;
  std::string name_;
};

/// One counter's merged value, with the optional per-thread breakdown
/// (pairs of ObsThreadIndex and that thread's contribution).
struct CounterSample {
  std::string name;
  uint64_t value = 0;
  std::vector<std::pair<uint32_t, uint64_t>> per_thread;
};

struct GaugeSample {
  std::string name;
  uint64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> counts;  ///< bounds.size()+1 (last = overflow)
  uint64_t sum = 0;

  uint64_t count() const;
};

/// Point-in-time merged view of a registry.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Merged value of a counter, 0 when absent.
  uint64_t counter(std::string_view name) const;
  /// Gauge value, 0 when absent.
  uint64_t gauge(std::string_view name) const;
  /// Histogram sample, nullptr when absent.
  const HistogramSample* histogram(std::string_view name) const;

  /// Counters and histograms as the difference against an earlier
  /// snapshot of the same registry; gauges keep this snapshot's value.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Renders the snapshot as a single JSON object.
  void WriteJson(std::ostream& os) const;
};

/// Registry of named metrics. Registration (Get*) is mutex-guarded and
/// idempotent by name; the returned handles write lock-free. A registry
/// must outlive every thread that writes through its handles.
class MetricsRegistry {
 public:
  /// The process-wide registry the library's instrumentation writes to.
  /// Starts disabled.
  static MetricsRegistry& Default();

  explicit MetricsRegistry(bool enabled = true);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Finds or creates the counter named `name`.
  Counter* GetCounter(std::string_view name);
  /// Finds or creates the gauge named `name`.
  Gauge* GetGauge(std::string_view name);
  /// Finds or creates the histogram named `name`. `bounds` must be
  /// non-empty and strictly increasing, and must match the existing
  /// bounds when the name is already registered.
  Histogram* GetHistogram(std::string_view name, std::vector<uint64_t> bounds);

  /// Merged view of every registered metric, in registration order.
  /// `per_thread` additionally breaks counters down by ObsThreadIndex.
  MetricsSnapshot Snapshot(bool per_thread = false) const;

  /// Zeroes every counter, histogram and gauge (tests / run isolation).
  /// Must not race with writers.
  void Reset();

  /// Slot capacity per registry; registration beyond this dies.
  static constexpr uint32_t kMaxSlots = 4096;

 private:
  friend class Counter;
  friend class Histogram;
  friend class Gauge;

  static constexpr uint32_t kBlockSlots = 64;
  static constexpr uint32_t kMaxBlocks = kMaxSlots / kBlockSlots;

  // One thread's slot array, grown block-by-block so writers never
  // invalidate a pointer another thread is reading through.
  struct Shard {
    std::array<std::atomic<std::atomic<uint64_t>*>, kMaxBlocks> blocks{};
    std::mutex grow_mu;
    uint32_t thread_index = 0;

    ~Shard();
    std::atomic<uint64_t>* GetBlock(uint32_t block_index);
  };

  void AddToSlot(uint32_t slot, uint64_t delta);
  Shard* ShardForThisThread();
  uint64_t SumSlot(uint32_t slot) const;

  const uint64_t id_;  // process-unique, for the thread-local shard cache
  std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint32_t next_slot_ = 0;
  // Handle addresses must survive later registrations (and Gauge holds
  // an atomic, so handles are immovable) — hence unique_ptr storage.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fpm

#endif  // FPM_OBS_METRICS_H_
