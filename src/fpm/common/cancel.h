// Cooperative cancellation for long-running mining calls.
//
// A CancelToken is a tiny shared flag (plus an optional deadline) the
// caller owns and the kernels poll at frame boundaries — once per
// recursion level, never per itemset. Cancellation is therefore bounded
// by the cost of one frame, not instantaneous: on realistic inputs a
// frame is microseconds, so a deadline or an explicit RequestCancel()
// stops the run within a few milliseconds.
//
// Threading: RequestCancel() and cancelled() may race freely from any
// thread — the token is how the service's deadline enforcement and
// client-disconnect handling reach into a mining run that is spread
// over the pool's workers. The token must outlive every task of the
// run it is attached to (detached subtree frames copy the pointer).
//
// Deadline polls are amortized: the flag is one relaxed load, and the
// steady_clock read behind a deadline happens only every
// kDeadlinePollStride-th poll, keeping frame boundaries cheap even for
// kernels with very small frames (Eclat on shallow data).

#ifndef FPM_COMMON_CANCEL_H_
#define FPM_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "fpm/common/status.h"

namespace fpm {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Clock reads happen on every stride-th cancelled() poll of a token
  /// with a deadline; between reads only the atomic flag is consulted.
  static constexpr uint32_t kDeadlinePollStride = 32;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms a deadline: cancelled() starts returning true once `deadline`
  /// passes. Set before the run starts (not thread-safe against
  /// concurrent polls of the same token).
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Convenience: deadline `timeout` from now.
  void SetTimeout(std::chrono::nanoseconds timeout) {
    set_deadline(Clock::now() + timeout);
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// True once cancellation was requested or the deadline passed. The
  /// call the kernels make at every frame boundary.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if ((polls_.fetch_add(1, std::memory_order_relaxed) %
         kDeadlinePollStride) != 0) {
      return false;
    }
    if (Clock::now() < deadline_) return false;
    deadline_hit_.store(true, std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
    return true;
  }

  /// True when cancellation came from the deadline rather than an
  /// explicit RequestCancel().
  bool deadline_exceeded() const {
    return deadline_hit_.load(std::memory_order_relaxed);
  }

  /// The status a cancelled run reports: DEADLINE_EXCEEDED when the
  /// deadline fired, CANCELLED otherwise (OK when not cancelled —
  /// callers typically guard with cancelled() first).
  Status ToStatus() const {
    if (deadline_exceeded()) {
      return Status::DeadlineExceeded("mining deadline exceeded");
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("mining cancelled");
    }
    return Status::OK();
  }

 private:
  // All three are written from const cancelled() — deadline promotion is
  // logically a read-side cache fill, not an observable mutation.
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  mutable std::atomic<uint32_t> polls_{0};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace fpm

#endif  // FPM_COMMON_CANCEL_H_
