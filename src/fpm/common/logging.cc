#include "fpm/common/logging.h"

#include <atomic>
#include <cstdio>

namespace fpm {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

void LogMessage::Flush() {
  if (flushed_) return;
  flushed_ = true;
  if (static_cast<int>(level_) < static_cast<int>(GetLogLevel())) return;
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
}

LogMessage::~LogMessage() { Flush(); }

FatalLogMessage::~FatalLogMessage() {
  Flush();
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace fpm
