// Portable software-prefetch wrapper (pattern P7). The paper issues
// prefetches via SSE instructions; on GCC/Clang __builtin_prefetch emits
// the same PREFETCHT0/NTA forms.

#ifndef FPM_COMMON_PREFETCH_H_
#define FPM_COMMON_PREFETCH_H_

namespace fpm {

/// Temporal-locality hint passed to the hardware prefetcher.
enum class PrefetchLocality : int {
  kNone = 0,  // NTA: bypass lower cache levels
  kLow = 1,
  kModerate = 2,
  kHigh = 3,  // T0: into all levels (default)
};

/// Issues a read prefetch for the cache line containing `addr`.
/// A null pointer is allowed and ignored by hardware.
inline void Prefetch(const void* addr,
                     PrefetchLocality locality = PrefetchLocality::kHigh) {
  switch (locality) {
    case PrefetchLocality::kNone:
      __builtin_prefetch(addr, /*rw=*/0, 0);
      break;
    case PrefetchLocality::kLow:
      __builtin_prefetch(addr, 0, 1);
      break;
    case PrefetchLocality::kModerate:
      __builtin_prefetch(addr, 0, 2);
      break;
    case PrefetchLocality::kHigh:
      __builtin_prefetch(addr, 0, 3);
      break;
  }
}

/// Issues a write prefetch (exclusive state) for the line at `addr`.
inline void PrefetchForWrite(const void* addr) {
  __builtin_prefetch(addr, /*rw=*/1, 3);
}

/// Cache line size assumed throughout the library. Both evaluation
/// platforms in the paper (Pentium D, Athlon 64 X2) and all current x86
/// parts use 64-byte lines.
inline constexpr int kCacheLineBytes = 64;

}  // namespace fpm

#endif  // FPM_COMMON_PREFETCH_H_
