// Deterministic pseudo-random number generation and the samplers needed
// by the synthetic dataset generators (Quest, WebDocs-like, AP-like).
//
// We intentionally avoid std::mt19937 + std::*_distribution: their output
// is not guaranteed identical across standard library implementations,
// and reproducible datasets are a hard requirement for the benches.

#ifndef FPM_COMMON_RNG_H_
#define FPM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "fpm/common/logging.h"

namespace fpm {

/// SplitMix64: used to seed Xoshiro and as a cheap standalone generator.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, fully deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(&sm);
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    FPM_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method with rejection.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponential with the given mean (mean > 0).
  double NextExponential(double mean) {
    FPM_DCHECK(mean > 0);
    double u = NextDouble();
    // Guard log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normal via Marsaglia polar method.
  double NextNormal(double mean, double stddev) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Poisson. Knuth's method for small means, normal approximation
  /// (rounded, clamped at 0) for large means — adequate for workload
  /// generation where only the length distribution's shape matters.
  uint32_t NextPoisson(double mean) {
    FPM_DCHECK(mean >= 0);
    if (mean <= 0) return 0;
    if (mean < 32.0) {
      const double limit = std::exp(-mean);
      uint32_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= NextDouble();
      } while (p > limit);
      return k - 1;
    }
    double x = NextNormal(mean, std::sqrt(mean));
    if (x < 0) return 0;
    return static_cast<uint32_t>(x + 0.5);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Samples from a Zipf(s) distribution over {0, 1, ..., n-1} using a
/// precomputed inverse-CDF table (O(log n) per sample).
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` (s = 0 is uniform; larger = more skewed).
  ZipfSampler(uint32_t n, double s);

  /// Returns a rank in [0, n); rank 0 is most probable.
  uint32_t Sample(Rng* rng) const;

  /// Probability mass of `rank`.
  double Pmf(uint32_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

/// Samples indices in [0, n) proportionally to the given non-negative
/// weights (cumulative-table inversion; O(log n) per sample).
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights);

  uint32_t Sample(Rng* rng) const;

  double total_weight() const { return cdf_.empty() ? 0.0 : cdf_.back(); }

 private:
  std::vector<double> cdf_;  // inclusive prefix sums
};

}  // namespace fpm

#endif  // FPM_COMMON_RNG_H_
