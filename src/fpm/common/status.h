// Status / Result error model for the fpm library.
//
// The public API does not throw exceptions (Google C++ style / Arrow
// convention for database libraries). Fallible operations return
// `fpm::Status` or `fpm::Result<T>`; callers propagate with
// FPM_RETURN_IF_ERROR / FPM_ASSIGN_OR_RETURN.

#ifndef FPM_COMMON_STATUS_H_
#define FPM_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace fpm {

/// Canonical error space, modeled after absl::StatusCode.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kResourceExhausted = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  kUnavailable = 11,
  kFailedPrecondition = 12,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Value-semantic success-or-error type. Cheap to copy on the OK path
/// (a single enum); carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace internal {
[[noreturn]] void DieOnBadAccess(const Status& status, const char* what);
}  // namespace internal

/// Result<T> holds either a T or a non-OK Status.
///
/// Accessing the value of an error Result aborts the process with a
/// diagnostic (programming error), mirroring absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (this->status().ok()) {
      internal::DieOnBadAccess(this->status(),
                               "Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns OK when holding a value, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      internal::DieOnBadAccess(std::get<Status>(data_),
                               "Result::value() on error");
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace fpm

/// Propagates a non-OK Status from the enclosing function.
#define FPM_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::fpm::Status fpm_status_internal_ = (expr);         \
    if (!fpm_status_internal_.ok()) {                    \
      return fpm_status_internal_;                       \
    }                                                    \
  } while (false)

#define FPM_STATUS_CONCAT_INNER_(x, y) x##y
#define FPM_STATUS_CONCAT_(x, y) FPM_STATUS_CONCAT_INNER_(x, y)

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error. `lhs` may include a declaration: FPM_ASSIGN_OR_RETURN(auto v, F());
#define FPM_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  auto FPM_STATUS_CONCAT_(fpm_result_, __LINE__) = (rexpr);           \
  if (!FPM_STATUS_CONCAT_(fpm_result_, __LINE__).ok()) {              \
    return FPM_STATUS_CONCAT_(fpm_result_, __LINE__).status();        \
  }                                                                   \
  lhs = std::move(FPM_STATUS_CONCAT_(fpm_result_, __LINE__)).value()

#endif  // FPM_COMMON_STATUS_H_
