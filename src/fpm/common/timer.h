// Wall-clock timing utilities used by the perf harness and benches.

#ifndef FPM_COMMON_TIMER_H_
#define FPM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fpm {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last Reset().
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fpm

#endif  // FPM_COMMON_TIMER_H_
