#include "fpm/common/status.h"

#include <cstdio>

namespace fpm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadAccess(const Status& status, const char* what) {
  std::fprintf(stderr, "fpm fatal: %s (%s)\n", what,
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace fpm
