// Scalar bit-manipulation utilities shared by the bit-vector library and
// the popcount strategy implementations.

#ifndef FPM_COMMON_BITS_H_
#define FPM_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace fpm {

/// Number of set bits, hardware instruction when available.
inline int PopCount64(uint64_t x) { return std::popcount(x); }

/// Pure-software SWAR popcount — the "computation" the paper SIMDizes in
/// §4.2; kept as an explicit implementation so the scalar/SIMD variants
/// compute the same function and can be benchmarked against the LUT.
inline int PopCount64Swar(uint64_t x) {
  x = x - ((x >> 1) & 0x5555555555555555ULL);
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
  return static_cast<int>((x * 0x0101010101010101ULL) >> 56);
}

/// Index of the lowest set bit; undefined for x == 0.
inline int CountTrailingZeros64(uint64_t x) { return std::countr_zero(x); }

/// Index of the highest set bit; undefined for x == 0.
inline int Log2Floor64(uint64_t x) { return 63 - std::countl_zero(x); }

/// Rounds up to the next multiple of `align` (align must be a power of 2).
inline uint64_t RoundUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// True iff v is a power of two (v > 0).
inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace fpm

#endif  // FPM_COMMON_BITS_H_
