// Bump-pointer arena allocator.
//
// Frequent pattern miners allocate enormous numbers of small nodes
// (FP-tree nodes, bucket-list links, conditional databases) with
// stack-like lifetime. The arena provides O(1) allocation, contiguous
// placement (the substrate several ALSO patterns build on), and bulk
// release. Modeled on the RocksDB/LevelDB Arena.

#ifndef FPM_COMMON_ARENA_H_
#define FPM_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "fpm/common/bits.h"
#include "fpm/common/logging.h"

namespace fpm {

/// Not thread-safe; one arena per mining task.
///
/// Blocks grow geometrically from `initial_block_bytes` up to
/// `max_block_bytes`, so tiny arenas (e.g. a three-node conditional
/// FP-tree) cost one small allocation while large ones amortize to big
/// blocks.
class Arena {
 public:
  static constexpr size_t kDefaultInitialBlockBytes = 4096;
  static constexpr size_t kDefaultMaxBlockBytes = 1u << 20;  // 1 MiB

  explicit Arena(size_t initial_block_bytes = kDefaultInitialBlockBytes,
                 size_t max_block_bytes = kDefaultMaxBlockBytes)
      : next_block_bytes_(initial_block_bytes),
        max_block_bytes_(max_block_bytes) {
    FPM_CHECK(next_block_bytes_ >= 64) << "arena block too small";
    FPM_CHECK(max_block_bytes_ >= next_block_bytes_);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with the given alignment (power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    FPM_DCHECK(IsPowerOfTwo(align));
    uintptr_t p = RoundUp(cursor_, align);
    if (p + bytes > limit_) {
      AddBlock(bytes + align);
      p = RoundUp(cursor_, align);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Allocates and default-constructs an array of `n` objects of type T.
  /// T must be trivially destructible: the arena never runs destructors.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    T* ptr = static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    for (size_t i = 0; i < n; ++i) new (ptr + i) T();
    return ptr;
  }

  /// Allocates and constructs a single T with the given arguments.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Releases every block. All pointers previously returned are invalid.
  void Reset() {
    blocks_.clear();
    cursor_ = 0;
    limit_ = 0;
    bytes_used_ = 0;
    bytes_reserved_ = 0;
  }

  /// Sum of all Allocate() request sizes (excludes alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Total bytes obtained from the system allocator.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  void AddBlock(size_t min_bytes) {
    size_t size = next_block_bytes_;
    if (min_bytes > size) size = min_bytes;
    // make_unique_for_overwrite: the arena must not pay for zeroing
    // memory the caller will initialize anyway.
    blocks_.push_back(std::make_unique_for_overwrite<char[]>(size));
    cursor_ = reinterpret_cast<uintptr_t>(blocks_.back().get());
    limit_ = cursor_ + size;
    bytes_reserved_ += size;
    if (next_block_bytes_ < max_block_bytes_) {
      next_block_bytes_ = std::min(next_block_bytes_ * 2, max_block_bytes_);
    }
  }

  size_t next_block_bytes_;
  size_t max_block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace fpm

#endif  // FPM_COMMON_ARENA_H_
