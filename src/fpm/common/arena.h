// Bump-pointer arena allocator.
//
// Frequent pattern miners allocate enormous numbers of small nodes
// (FP-tree nodes, bucket-list links, conditional databases) with
// stack-like lifetime. The arena provides O(1) allocation, contiguous
// placement (the substrate several ALSO patterns build on), and bulk
// release. Modeled on the RocksDB/LevelDB Arena.
//
// Reset() rewinds the arena but *retains* its blocks, so a reused arena
// (one per mining task, leased from an ArenaPool) reaches a steady state
// where filling it again touches the system allocator zero times.
// Release() gives the memory back.

#ifndef FPM_COMMON_ARENA_H_
#define FPM_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "fpm/common/bits.h"
#include "fpm/common/logging.h"

namespace fpm {

/// Not thread-safe; one arena per mining task.
///
/// Blocks grow geometrically from `initial_block_bytes` up to
/// `max_block_bytes`, so tiny arenas (e.g. a three-node conditional
/// FP-tree) cost one small allocation while large ones amortize to big
/// blocks. A single allocation larger than max_block_bytes gets a block
/// of exactly its size.
class Arena {
 public:
  static constexpr size_t kDefaultInitialBlockBytes = 4096;
  static constexpr size_t kDefaultMaxBlockBytes = 1u << 20;  // 1 MiB

  explicit Arena(size_t initial_block_bytes = kDefaultInitialBlockBytes,
                 size_t max_block_bytes = kDefaultMaxBlockBytes)
      : next_block_bytes_(initial_block_bytes),
        max_block_bytes_(max_block_bytes) {
    FPM_CHECK(next_block_bytes_ >= 64) << "arena block too small";
    FPM_CHECK(max_block_bytes_ >= next_block_bytes_);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Movable: an FP-tree (which embeds its node arena) can be moved into
  // a detached subtree task. Block storage is heap-allocated, so moving
  // the arena never invalidates pointers it handed out.
  Arena(Arena&& other) noexcept { *this = std::move(other); }
  Arena& operator=(Arena&& other) noexcept {
    next_block_bytes_ = other.next_block_bytes_;
    max_block_bytes_ = other.max_block_bytes_;
    blocks_ = std::move(other.blocks_);
    active_ = other.active_;
    cursor_ = other.cursor_;
    limit_ = other.limit_;
    bytes_used_ = other.bytes_used_;
    bytes_reserved_ = other.bytes_reserved_;
    other.blocks_.clear();
    other.active_ = 0;
    other.cursor_ = other.limit_ = 0;
    other.bytes_used_ = other.bytes_reserved_ = 0;
    return *this;
  }

  /// Allocates `bytes` with the given alignment (power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    FPM_DCHECK(IsPowerOfTwo(align));
    uintptr_t p = RoundUp(cursor_, align);
    if (p + bytes > limit_) {
      AddBlock(bytes + align);
      p = RoundUp(cursor_, align);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Allocates and default-constructs an array of `n` objects of type T.
  /// T must be trivially destructible: the arena never runs destructors.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    T* ptr = static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    for (size_t i = 0; i < n; ++i) new (ptr + i) T();
    return ptr;
  }

  /// Allocates and constructs a single T with the given arguments.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Rewinds to empty but retains every block for reuse: a second fill
  /// of the same size allocates nothing from the system. All pointers
  /// previously returned are invalid.
  void Reset() {
    active_ = 0;
    cursor_ = 0;
    limit_ = 0;
    bytes_used_ = 0;
  }

  /// Releases every block back to the system allocator. All pointers
  /// previously returned are invalid.
  void Release() {
    blocks_.clear();
    active_ = 0;
    cursor_ = 0;
    limit_ = 0;
    bytes_used_ = 0;
    bytes_reserved_ = 0;
  }

  /// Sum of all Allocate() request sizes (excludes alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Total bytes obtained from the system allocator (survives Reset()).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void AddBlock(size_t min_bytes) {
    if (active_ < blocks_.size()) {
      // Reuse a block retained by Reset(). A retained block too small
      // for this allocation is replaced in place (its old bytes leave
      // the reserved accounting), keeping the block list compact.
      Block& block = blocks_[active_];
      if (block.size < min_bytes) {
        const size_t size = std::max(next_block_bytes_, min_bytes);
        bytes_reserved_ += size - block.size;
        block.data = std::make_unique_for_overwrite<char[]>(size);
        block.size = size;
      }
      cursor_ = reinterpret_cast<uintptr_t>(block.data.get());
      limit_ = cursor_ + block.size;
    } else {
      const size_t size = std::max(next_block_bytes_, min_bytes);
      // make_unique_for_overwrite: the arena must not pay for zeroing
      // memory the caller will initialize anyway.
      blocks_.push_back(
          Block{std::make_unique_for_overwrite<char[]>(size), size});
      cursor_ = reinterpret_cast<uintptr_t>(blocks_.back().data.get());
      limit_ = cursor_ + size;
      bytes_reserved_ += size;
    }
    ++active_;
    if (next_block_bytes_ < max_block_bytes_) {
      next_block_bytes_ = std::min(next_block_bytes_ * 2, max_block_bytes_);
    }
  }

  size_t next_block_bytes_;
  size_t max_block_bytes_;
  std::vector<Block> blocks_;
  size_t active_ = 0;  // blocks_[0..active_) hold live allocations
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

/// Thread-safe free list of arenas for task-parallel mining: each
/// in-flight task leases one arena and returns it Reset() (blocks
/// retained), so a steady stream of tasks stops allocating blocks once
/// the pool has warmed up to the concurrency level.
class ArenaPool {
 public:
  /// Move-only RAII lease; returns the arena to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          arena_(std::move(other.arena_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Return();
        pool_ = std::exchange(other.pool_, nullptr);
        arena_ = std::move(other.arena_);
      }
      return *this;
    }
    ~Lease() { Return(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Arena* get() const { return arena_.get(); }
    Arena* operator->() const { return arena_.get(); }
    Arena& operator*() const { return *arena_; }

   private:
    friend class ArenaPool;
    Lease(ArenaPool* pool, std::unique_ptr<Arena> arena)
        : pool_(pool), arena_(std::move(arena)) {}

    void Return() {
      if (pool_ != nullptr && arena_ != nullptr) {
        pool_->Return(std::move(arena_));
      }
      pool_ = nullptr;
      arena_ = nullptr;
    }

    ArenaPool* pool_ = nullptr;
    std::unique_ptr<Arena> arena_;
  };

  ArenaPool() = default;

  // Leases must not outlive the pool.
  ~ArenaPool() = default;
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// Hands out a free arena, or a fresh one when none is available.
  Lease Acquire() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!free_.empty()) {
        std::unique_ptr<Arena> arena = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(arena));
      }
      ++created_;
    }
    return Lease(this, std::make_unique<Arena>());
  }

  /// Arenas ever created by this pool (== peak concurrent leases).
  size_t arenas_created() const {
    std::lock_guard<std::mutex> lk(mu_);
    return created_;
  }

 private:
  friend class Lease;

  void Return(std::unique_ptr<Arena> arena) {
    arena->Reset();  // retain blocks: the next lease reuses them
    std::lock_guard<std::mutex> lk(mu_);
    free_.push_back(std::move(arena));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Arena>> free_;
  size_t created_ = 0;
};

}  // namespace fpm

#endif  // FPM_COMMON_ARENA_H_
