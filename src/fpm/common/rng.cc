#include "fpm/common/rng.h"

#include <algorithm>

namespace fpm {

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  FPM_CHECK(n > 0) << "ZipfSampler needs at least one rank";
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against FP drift
}

uint32_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint32_t rank) const {
  FPM_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

WeightedSampler::WeightedSampler(const std::vector<double>& weights) {
  FPM_CHECK(!weights.empty()) << "WeightedSampler needs weights";
  cdf_.resize(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    FPM_CHECK(weights[i] >= 0) << "negative weight";
    total += weights[i];
    cdf_[i] = total;
  }
  FPM_CHECK(total > 0) << "all weights zero";
}

uint32_t WeightedSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble() * cdf_.back();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace fpm
