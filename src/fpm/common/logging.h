// Minimal leveled logging + check macros for the fpm library.
//
// FPM_CHECK is used for internal invariants (programming errors), never
// for user-input validation — that path returns Status.

#ifndef FPM_COMMON_LOGGING_H_
#define FPM_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace fpm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 protected:
  /// Emits the buffered message (once); further calls are no-ops.
  void Flush();

 private:
  LogLevel level_;
  bool flushed_ = false;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kError, file, line) {}
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    LogMessage::operator<<(v);
    return *this;
  }
};

}  // namespace internal
}  // namespace fpm

#define FPM_LOG(level)                                                     \
  ::fpm::internal::LogMessage(::fpm::LogLevel::k##level, __FILE__, __LINE__)

#define FPM_CHECK(cond)                                            \
  if (!(cond))                                                     \
  ::fpm::internal::FatalLogMessage(__FILE__, __LINE__)             \
      << "Check failed: " #cond " "

#define FPM_CHECK_OK(expr)                                         \
  if (::fpm::Status fpm_check_status_ = (expr); !fpm_check_status_.ok()) \
  ::fpm::internal::FatalLogMessage(__FILE__, __LINE__)             \
      << "Status not OK: " << fpm_check_status_.ToString() << " "

#ifdef NDEBUG
#define FPM_DCHECK(cond) \
  if (false) FPM_CHECK(cond)
#else
#define FPM_DCHECK(cond) FPM_CHECK(cond)
#endif

#endif  // FPM_COMMON_LOGGING_H_
