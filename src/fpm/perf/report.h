// Fixed-width table printer for the paper-style bench reports.

#ifndef FPM_PERF_REPORT_H_
#define FPM_PERF_REPORT_H_

#include <string>
#include <vector>

namespace fpm {

/// Accumulates rows of strings and renders an aligned ASCII table.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header);

  /// Adds a row; missing trailing cells render empty, extra cells die.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column separators and a header rule.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with 3 significant decimals ("0.124s").
std::string FormatSeconds(double seconds);

/// Formats a speedup ("1.37x").
std::string FormatSpeedup(double speedup);

/// Formats a count with thousands separators ("1,234,567").
std::string FormatCount(uint64_t value);

}  // namespace fpm

#endif  // FPM_PERF_REPORT_H_
