// Hardware performance counters via perf_event_open (Linux).
//
// The paper's architecture-level claims (Figure 2, Tables 4-5) rest on
// on-chip PMC readings: CPI, cache misses, TLB misses. PerfCounterGroup
// opens a configurable event set as ONE perf event group for the calling
// thread, so all events are scheduled together and a single
// time_enabled/time_running pair describes the group. Reads use
// PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
// PERF_FORMAT_TOTAL_TIME_RUNNING; when the PMU multiplexes (more events
// than hardware counters, or competing sessions) counts are scaled by
// time_enabled/time_running to estimates of the full-window value.
//
// Degradation is per event: an event the kernel or hardware refuses is
// dropped from the group with its errno recorded (dropped()), and the
// group carries on with what opened. Only when *nothing* opens — the
// common case in containers with perf_event_paranoid >= 2 and no
// CAP_PERFMON — does Create() fail; callers then fall back to the
// software path (simcache model or wall-time shares), saying so.
//
// Buffer parsing and multiplex scaling are pure functions
// (ParseGroupReadBuffer) so they are testable without the syscall.

#ifndef FPM_PERF_PERF_COUNTERS_H_
#define FPM_PERF_PERF_COUNTERS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fpm/common/status.h"

namespace fpm {

/// The portable event set. Generic PERF_TYPE_HARDWARE events plus the
/// two PERF_TYPE_HW_CACHE reads the paper's analysis leans on (L1D and
/// dTLB read misses).
enum class PerfEventId {
  kCycles = 0,           ///< PERF_COUNT_HW_CPU_CYCLES
  kInstructions,         ///< PERF_COUNT_HW_INSTRUCTIONS
  kCacheReferences,      ///< PERF_COUNT_HW_CACHE_REFERENCES (usually LLC)
  kCacheMisses,          ///< PERF_COUNT_HW_CACHE_MISSES (usually LLC)
  kL1dReadMisses,        ///< HW_CACHE: L1D | READ | MISS
  kDtlbReadMisses,       ///< HW_CACHE: DTLB | READ | MISS
  kBranchMisses,         ///< PERF_COUNT_HW_BRANCH_MISSES
};

inline constexpr int kNumPerfEvents = 7;

/// Stable snake_case name ("cycles", "l1d_read_misses", ...) used as the
/// counter key in MineStats tables, metrics, and bench JSON.
std::string_view PerfEventName(PerfEventId id);

/// One event's value from a group read.
struct PerfEventReading {
  PerfEventId id{};
  uint64_t value = 0;  ///< multiplex-scaled estimate (== raw when not multiplexed)
  uint64_t raw = 0;    ///< unscaled count as the kernel reported it
};

/// A decoded group read.
struct PerfGroupReading {
  std::vector<PerfEventReading> events;  ///< in group (open) order
  uint64_t time_enabled_ns = 0;
  uint64_t time_running_ns = 0;

  /// True when the group was descheduled part of the window and the
  /// values are scaled estimates.
  bool multiplexed() const { return time_running_ns < time_enabled_ns; }

  /// Scaled value of `id`, or nullptr when the event is not in the set.
  const PerfEventReading* Find(PerfEventId id) const {
    for (const PerfEventReading& e : events) {
      if (e.id == id) return &e;
    }
    return nullptr;
  }
};

/// Decodes a PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING
/// read buffer: words = {nr, time_enabled, time_running, value[0..nr-1]}
/// with value[i] belonging to events[i] (group open order). Applies
/// multiplex scaling: value = raw * time_enabled / time_running, rounded
/// to nearest; raw values pass through when the group ran the whole
/// window, and a never-scheduled group (time_running == 0) reads 0.
/// Fails with InvalidArgument on a short buffer or an nr mismatch.
Result<PerfGroupReading> ParseGroupReadBuffer(
    std::span<const uint64_t> words, std::span<const PerfEventId> events);

/// A perf event group counting the calling thread. Movable, not
/// copyable. The group starts disabled; Start() resets and enables it.
class PerfCounterGroup {
 public:
  /// The full default event set, in open order (cycles first, so the
  /// leader is the event most likely to be grantable).
  static std::span<const PerfEventId> DefaultEvents();

  /// Opens `requested` as one group for the calling thread (user-space
  /// only: exclude_kernel/hv). Events the kernel refuses are dropped
  /// individually and recorded with their errno in dropped(); Create()
  /// fails only when no event at all opens (the leader error message
  /// then carries the perf_event_paranoid hint).
  static Result<PerfCounterGroup> Create(
      std::span<const PerfEventId> requested = DefaultEvents());

  PerfCounterGroup(PerfCounterGroup&& other) noexcept;
  PerfCounterGroup& operator=(PerfCounterGroup&& other) noexcept;
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;
  ~PerfCounterGroup();

  /// Resets all counters and enables the group.
  Status Start();

  /// Disables the group (values stay latched and readable).
  Status Stop();

  /// Reads the group — valid both while running (latches the moment) and
  /// after Stop(). Returns scaled values per event in open order.
  Result<PerfGroupReading> Read() const;

  /// Events that actually opened, in group order.
  std::span<const PerfEventId> events() const { return events_; }

  /// Requested events that did not open, with the reason each was
  /// dropped ("perf_event_open: Permission denied", ...).
  const std::vector<std::pair<PerfEventId, std::string>>& dropped() const {
    return dropped_;
  }

 private:
  PerfCounterGroup() = default;
  void Close();

  std::vector<int> fds_;  // fds_[0] is the group leader
  std::vector<PerfEventId> events_;
  std::vector<std::pair<PerfEventId, std::string>> dropped_;
};

/// OK when PerfCounterGroup::Create() is expected to succeed (a cheap
/// cycles-counter probe); otherwise the reason it will not — errno text
/// plus the perf_event_paranoid value when readable. Callers print this
/// when falling back to the software path.
Status PerfCountersStatus();

/// Convenience: PerfCountersStatus().ok().
bool PerfCountersAvailable();

}  // namespace fpm

#endif  // FPM_PERF_PERF_COUNTERS_H_
