// Hardware performance counters via perf_event_open (Linux).
//
// The paper's Figure 2 reports CPI (cycles per instruction) of the hot
// mining kernels, measured with on-chip PMCs. We read the same two
// counters (CPU cycles, retired instructions) through perf_event_open.
// Containers and locked-down kernels frequently refuse the syscall
// (perf_event_paranoid); creation then returns an error and the CPI
// bench falls back to wall-time shares, saying so.

#ifndef FPM_PERF_PERF_COUNTERS_H_
#define FPM_PERF_PERF_COUNTERS_H_

#include <cstdint>

#include "fpm/common/status.h"

namespace fpm {

/// One cycles+instructions counter pair for the calling thread.
/// Movable, not copyable. Counting is stopped until Start().
class CpiCounter {
 public:
  CpiCounter(CpiCounter&& other) noexcept;
  CpiCounter& operator=(CpiCounter&& other) noexcept;
  CpiCounter(const CpiCounter&) = delete;
  CpiCounter& operator=(const CpiCounter&) = delete;
  ~CpiCounter();

  /// Opens the counter pair. Fails with Unimplemented on non-Linux
  /// builds and IOError when the kernel refuses perf_event_open.
  static Result<CpiCounter> Create();

  /// Resets and enables counting.
  Status Start();

  /// Disables counting and latches the values.
  Status Stop();

  /// Values of the last Start()/Stop() window.
  uint64_t cycles() const { return cycles_; }
  uint64_t instructions() const { return instructions_; }

  /// Cycles per instruction; 0 when no instructions were counted.
  double Cpi() const {
    return instructions_ == 0
               ? 0.0
               : static_cast<double>(cycles_) /
                     static_cast<double>(instructions_);
  }

 private:
  CpiCounter(int cycles_fd, int instructions_fd)
      : cycles_fd_(cycles_fd), instructions_fd_(instructions_fd) {}
  void Close();

  int cycles_fd_ = -1;
  int instructions_fd_ = -1;
  uint64_t cycles_ = 0;
  uint64_t instructions_ = 0;
};

/// True when CpiCounter::Create() is expected to succeed (cheap probe).
bool CpiCountersAvailable();

}  // namespace fpm

#endif  // FPM_PERF_PERF_COUNTERS_H_
