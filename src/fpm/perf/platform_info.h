// Host platform detection — the reproduction's stand-in for the paper's
// Table 5: every bench prints the detected platform so results are
// interpretable (we run on whatever host we get, not on the paper's
// Pentium D / Athlon 64).

#ifndef FPM_PERF_PLATFORM_INFO_H_
#define FPM_PERF_PLATFORM_INFO_H_

#include <cstddef>
#include <string>

namespace fpm {

/// CPU and cache-hierarchy facts discovered at runtime.
struct PlatformInfo {
  std::string cpu_model = "unknown";
  int logical_cpus = 1;
  size_t l1d_bytes = 0;  ///< 0 = undetected
  size_t l2_bytes = 0;
  size_t l3_bytes = 0;
  bool has_popcnt = false;
  bool has_avx2 = false;
  bool has_avx512f = false;

  /// Reads /proc/cpuinfo and sysfs cache indices (Linux); degrades to
  /// compile-time feature tests elsewhere.
  static PlatformInfo Detect();

  /// Multi-line table, Table-5 style.
  std::string ToString() const;
};

}  // namespace fpm

#endif  // FPM_PERF_PLATFORM_INFO_H_
