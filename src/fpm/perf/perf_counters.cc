#include "fpm/perf/perf_counters.h"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace fpm {

#if defined(__linux__)

namespace {

int OpenCounter(uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = (group_fd == -1) ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0));
}

Result<uint64_t> ReadCounter(int fd) {
  uint64_t value = 0;
  const ssize_t n = read(fd, &value, sizeof(value));
  if (n != static_cast<ssize_t>(sizeof(value))) {
    return Status::IOError("short read from perf counter");
  }
  return value;
}

}  // namespace

Result<CpiCounter> CpiCounter::Create() {
  const int cycles_fd = OpenCounter(PERF_COUNT_HW_CPU_CYCLES, -1);
  if (cycles_fd < 0) {
    return Status::IOError(
        "perf_event_open(cycles) failed: " + std::string(strerror(errno)) +
        " (check /proc/sys/kernel/perf_event_paranoid)");
  }
  const int instr_fd = OpenCounter(PERF_COUNT_HW_INSTRUCTIONS, cycles_fd);
  if (instr_fd < 0) {
    const std::string err = strerror(errno);
    close(cycles_fd);
    return Status::IOError("perf_event_open(instructions) failed: " + err);
  }
  return CpiCounter(cycles_fd, instr_fd);
}

Status CpiCounter::Start() {
  if (cycles_fd_ < 0) return Status::Internal("counter moved-from");
  if (ioctl(cycles_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ioctl(cycles_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    return Status::IOError("failed to enable perf counters");
  }
  return Status::OK();
}

Status CpiCounter::Stop() {
  if (cycles_fd_ < 0) return Status::Internal("counter moved-from");
  if (ioctl(cycles_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP) != 0) {
    return Status::IOError("failed to disable perf counters");
  }
  FPM_ASSIGN_OR_RETURN(cycles_, ReadCounter(cycles_fd_));
  FPM_ASSIGN_OR_RETURN(instructions_, ReadCounter(instructions_fd_));
  return Status::OK();
}

void CpiCounter::Close() {
  if (cycles_fd_ >= 0) close(cycles_fd_);
  if (instructions_fd_ >= 0) close(instructions_fd_);
  cycles_fd_ = instructions_fd_ = -1;
}

bool CpiCountersAvailable() {
  auto probe = CpiCounter::Create();
  return probe.ok();
}

#else  // !__linux__

Result<CpiCounter> CpiCounter::Create() {
  return Status::Unimplemented("perf counters require Linux");
}
Status CpiCounter::Start() { return Status::Unimplemented("no perf"); }
Status CpiCounter::Stop() { return Status::Unimplemented("no perf"); }
void CpiCounter::Close() {}
bool CpiCountersAvailable() { return false; }

#endif  // __linux__

CpiCounter::CpiCounter(CpiCounter&& other) noexcept
    : cycles_fd_(other.cycles_fd_),
      instructions_fd_(other.instructions_fd_),
      cycles_(other.cycles_),
      instructions_(other.instructions_) {
  other.cycles_fd_ = other.instructions_fd_ = -1;
}

CpiCounter& CpiCounter::operator=(CpiCounter&& other) noexcept {
  if (this != &other) {
    Close();
    cycles_fd_ = other.cycles_fd_;
    instructions_fd_ = other.instructions_fd_;
    cycles_ = other.cycles_;
    instructions_ = other.instructions_;
    other.cycles_fd_ = other.instructions_fd_ = -1;
  }
  return *this;
}

CpiCounter::~CpiCounter() { Close(); }

}  // namespace fpm
