#include "fpm/perf/perf_counters.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace fpm {

std::string_view PerfEventName(PerfEventId id) {
  switch (id) {
    case PerfEventId::kCycles: return "cycles";
    case PerfEventId::kInstructions: return "instructions";
    case PerfEventId::kCacheReferences: return "cache_references";
    case PerfEventId::kCacheMisses: return "cache_misses";
    case PerfEventId::kL1dReadMisses: return "l1d_read_misses";
    case PerfEventId::kDtlbReadMisses: return "dtlb_read_misses";
    case PerfEventId::kBranchMisses: return "branch_misses";
  }
  return "unknown";
}

std::span<const PerfEventId> PerfCounterGroup::DefaultEvents() {
  static constexpr PerfEventId kDefault[] = {
      PerfEventId::kCycles,          PerfEventId::kInstructions,
      PerfEventId::kCacheReferences, PerfEventId::kCacheMisses,
      PerfEventId::kL1dReadMisses,   PerfEventId::kDtlbReadMisses,
      PerfEventId::kBranchMisses,
  };
  return kDefault;
}

Result<PerfGroupReading> ParseGroupReadBuffer(
    std::span<const uint64_t> words, std::span<const PerfEventId> events) {
  if (words.size() < 3) {
    return Status::InvalidArgument("group read buffer shorter than header");
  }
  const uint64_t nr = words[0];
  if (nr != events.size()) {
    return Status::InvalidArgument("group read nr does not match event set");
  }
  if (words.size() < 3 + nr) {
    return Status::InvalidArgument("group read buffer truncated");
  }
  PerfGroupReading out;
  out.time_enabled_ns = words[1];
  out.time_running_ns = words[2];
  out.events.reserve(nr);
  for (uint64_t i = 0; i < nr; ++i) {
    PerfEventReading e;
    e.id = events[i];
    e.raw = words[3 + i];
    if (out.time_running_ns == 0) {
      // Never scheduled: no basis for an estimate.
      e.value = 0;
    } else if (out.time_running_ns >= out.time_enabled_ns) {
      e.value = e.raw;
    } else {
      // Multiplexed: scale to the full enabled window, rounding to
      // nearest. long double keeps 64-bit counts exact enough here.
      const long double scaled =
          static_cast<long double>(e.raw) *
          static_cast<long double>(out.time_enabled_ns) /
          static_cast<long double>(out.time_running_ns);
      e.value = static_cast<uint64_t>(scaled + 0.5L);
    }
    out.events.push_back(e);
  }
  return out;
}

#if defined(__linux__)

namespace {

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

EventSpec SpecFor(PerfEventId id) {
  constexpr auto hw_cache = [](uint64_t cache, uint64_t op, uint64_t result) {
    return cache | (op << 8) | (result << 16);
  };
  switch (id) {
    case PerfEventId::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case PerfEventId::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case PerfEventId::kCacheReferences:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES};
    case PerfEventId::kCacheMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES};
    case PerfEventId::kL1dReadMisses:
      return {PERF_TYPE_HW_CACHE,
              hw_cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                       PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case PerfEventId::kDtlbReadMisses:
      return {PERF_TYPE_HW_CACHE,
              hw_cache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                       PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case PerfEventId::kBranchMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES};
  }
  return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
}

int OpenEvent(PerfEventId id, int group_fd) {
  const EventSpec spec = SpecFor(id);
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = spec.type;
  attr.size = sizeof(attr);
  attr.config = spec.config;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  attr.disabled = (group_fd == -1) ? 1 : 0;  // only the leader toggles
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0));
}

std::string ParanoidHint() {
  std::string hint = " (check /proc/sys/kernel/perf_event_paranoid";
  if (FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r")) {
    int level = 0;
    if (std::fscanf(f, "%d", &level) == 1) {
      hint += " = " + std::to_string(level);
    }
    std::fclose(f);
  }
  hint += ")";
  return hint;
}

}  // namespace

Result<PerfCounterGroup> PerfCounterGroup::Create(
    std::span<const PerfEventId> requested) {
  if (requested.empty()) {
    return Status::InvalidArgument("empty perf event set");
  }
  PerfCounterGroup group;
  std::string leader_error;
  for (PerfEventId id : requested) {
    const int group_fd = group.fds_.empty() ? -1 : group.fds_[0];
    const int fd = OpenEvent(id, group_fd);
    if (fd < 0) {
      const std::string err = strerror(errno);
      if (group.fds_.empty() && leader_error.empty()) leader_error = err;
      group.dropped_.emplace_back(id,
                                  "perf_event_open: " + err);
      continue;
    }
    group.fds_.push_back(fd);
    group.events_.push_back(id);
  }
  if (group.fds_.empty()) {
    return Status::IOError("perf_event_open failed for every event: " +
                           leader_error + ParanoidHint());
  }
  return group;
}

Status PerfCounterGroup::Start() {
  if (fds_.empty()) return Status::Internal("counter group moved-from");
  if (ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    return Status::IOError("failed to enable perf counter group");
  }
  return Status::OK();
}

Status PerfCounterGroup::Stop() {
  if (fds_.empty()) return Status::Internal("counter group moved-from");
  if (ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP) != 0) {
    return Status::IOError("failed to disable perf counter group");
  }
  return Status::OK();
}

Result<PerfGroupReading> PerfCounterGroup::Read() const {
  if (fds_.empty()) return Status::Internal("counter group moved-from");
  std::vector<uint64_t> words(3 + fds_.size(), 0);
  const size_t want = words.size() * sizeof(uint64_t);
  const ssize_t n = read(fds_[0], words.data(), want);
  if (n < 0 || static_cast<size_t>(n) < 3 * sizeof(uint64_t)) {
    return Status::IOError("short read from perf counter group");
  }
  return ParseGroupReadBuffer(
      std::span<const uint64_t>(words.data(), n / sizeof(uint64_t)), events_);
}

void PerfCounterGroup::Close() {
  // Leader last: member events belong to the group while it exists.
  for (size_t i = fds_.size(); i-- > 0;) close(fds_[i]);
  fds_.clear();
  events_.clear();
}

Status PerfCountersStatus() {
  constexpr PerfEventId kProbe[] = {PerfEventId::kCycles};
  auto probe = PerfCounterGroup::Create(kProbe);
  return probe.ok() ? Status::OK() : probe.status();
}

#else  // !__linux__

Result<PerfCounterGroup> PerfCounterGroup::Create(
    std::span<const PerfEventId>) {
  return Status::Unimplemented("perf counters require Linux");
}
Status PerfCounterGroup::Start() { return Status::Unimplemented("no perf"); }
Status PerfCounterGroup::Stop() { return Status::Unimplemented("no perf"); }
Result<PerfGroupReading> PerfCounterGroup::Read() const {
  return Status::Unimplemented("no perf");
}
void PerfCounterGroup::Close() {}
Status PerfCountersStatus() {
  return Status::Unimplemented("perf counters require Linux");
}

#endif  // __linux__

bool PerfCountersAvailable() { return PerfCountersStatus().ok(); }

PerfCounterGroup::PerfCounterGroup(PerfCounterGroup&& other) noexcept
    : fds_(std::move(other.fds_)),
      events_(std::move(other.events_)),
      dropped_(std::move(other.dropped_)) {
  other.fds_.clear();
  other.events_.clear();
}

PerfCounterGroup& PerfCounterGroup::operator=(
    PerfCounterGroup&& other) noexcept {
  if (this != &other) {
    Close();
    fds_ = std::move(other.fds_);
    events_ = std::move(other.events_);
    dropped_ = std::move(other.dropped_);
    other.fds_.clear();
    other.events_.clear();
  }
  return *this;
}

PerfCounterGroup::~PerfCounterGroup() { Close(); }

}  // namespace fpm
