#include "fpm/perf/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fpm/common/logging.h"
#include "fpm/common/timer.h"
#include "fpm/perf/perf_sampler.h"

namespace fpm {

Measurement MeasureMiner(Miner& miner, const Database& db,
                         Support min_support, int repeats) {
  FPM_CHECK(repeats >= 1);
  Measurement best;
  best.name = miner.name();
  MetricsRegistry& registry = MetricsRegistry::Default();
  const bool metrics_on = registry.enabled();
  for (int r = 0; r < repeats; ++r) {
    CountingSink sink;
    MetricsSnapshot before;
    if (metrics_on) before = registry.Snapshot();
    WallTimer timer;
    Result<MineStats> run = miner.Mine(db, min_support, &sink);
    FPM_CHECK_OK(run.status());
    const double seconds = timer.ElapsedSeconds();
    if (r == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.stats = *run;
      if (metrics_on) best.metrics = registry.Snapshot().DeltaSince(before);
    }
    if (r == 0) {
      best.num_frequent = sink.count();
      best.checksum = sink.checksum();
    } else {
      FPM_CHECK(best.checksum == sink.checksum())
          << miner.name() << ": non-deterministic output across repeats";
    }
  }
  return best;
}

std::vector<SpeedupRow> ComputeSpeedups(
    const Measurement& baseline, const std::vector<Measurement>& runs) {
  std::vector<SpeedupRow> rows;
  rows.reserve(runs.size());
  for (const Measurement& m : runs) {
    FPM_CHECK(m.checksum == baseline.checksum)
        << m.name << " produced different itemsets than baseline "
        << baseline.name << " (" << m.num_frequent << " vs "
        << baseline.num_frequent << ")";
    SpeedupRow row;
    row.label = m.name;
    row.seconds = m.seconds;
    row.speedup = m.seconds > 0 ? baseline.seconds / m.seconds : 0.0;
    rows.push_back(row);
  }
  return rows;
}

std::string FormatPhaseCounterTable(const MineStats& stats) {
  if (!stats.has_phase_counters()) return "";
  // Column set: union of counter names across phases, first-seen order,
  // then the derived ratios.
  std::vector<std::string> columns;
  for (int p = 0; p < kNumPhases; ++p) {
    for (const auto& [name, value] :
         stats.phase_counters(static_cast<PhaseId>(p))) {
      if (std::find(columns.begin(), columns.end(), name) == columns.end()) {
        columns.push_back(name);
      }
    }
  }
  char buf[64];
  std::string out = "  phase  ";
  for (const std::string& col : columns) {
    const int width = std::max<int>(13, static_cast<int>(col.size()) + 2);
    std::snprintf(buf, sizeof(buf), "%*s", width, col.c_str());
    out += buf;
  }
  out += "      CPI  cache-MPKI   dTLB-MPKI\n";
  for (int p = 0; p < kNumPhases; ++p) {
    const PhaseId phase = static_cast<PhaseId>(p);
    const PhaseCounterDeltas& counters = stats.phase_counters(phase);
    if (counters.empty()) continue;
    std::snprintf(buf, sizeof(buf), "%7s  ",
                  std::string(PhaseName(phase)).c_str());
    out += buf;
    for (const std::string& col : columns) {
      const int width = std::max<int>(13, static_cast<int>(col.size()) + 2);
      uint64_t value = 0;
      bool present = false;
      for (const auto& [name, v] : counters) {
        if (name == col) { value = v; present = true; break; }
      }
      if (present) {
        std::snprintf(buf, sizeof(buf), "%*llu", width,
                      static_cast<unsigned long long>(value));
      } else {
        std::snprintf(buf, sizeof(buf), "%*s", width, "-");
      }
      out += buf;
    }
    std::vector<std::pair<std::string, uint64_t>> gauges;
    AppendDerivedPerfGauges(counters, &gauges);
    const char* names[] = {"cpi_milli", "cache_mpki_milli", "dtlb_mpki_milli"};
    for (const char* gauge : names) {
      bool present = false;
      for (const auto& [name, v] : gauges) {
        if (name == gauge) {
          std::snprintf(buf, sizeof(buf), "%9.2f  ",
                        static_cast<double>(v) / 1000.0);
          out += buf;
          present = true;
          break;
        }
      }
      if (!present) out += "        -  ";
    }
    out += '\n';
  }
  return out;
}

double BenchScale() {
  if (const char* env = std::getenv("FPM_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.05;
}

int BenchRepeats() {
  if (const char* env = std::getenv("FPM_BENCH_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 2;
}

}  // namespace fpm
