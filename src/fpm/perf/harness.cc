#include "fpm/perf/harness.h"

#include <cstdlib>

#include "fpm/common/logging.h"
#include "fpm/common/timer.h"

namespace fpm {

Measurement MeasureMiner(Miner& miner, const Database& db,
                         Support min_support, int repeats) {
  FPM_CHECK(repeats >= 1);
  Measurement best;
  best.name = miner.name();
  MetricsRegistry& registry = MetricsRegistry::Default();
  const bool metrics_on = registry.enabled();
  for (int r = 0; r < repeats; ++r) {
    CountingSink sink;
    MetricsSnapshot before;
    if (metrics_on) before = registry.Snapshot();
    WallTimer timer;
    Result<MineStats> run = miner.Mine(db, min_support, &sink);
    FPM_CHECK_OK(run.status());
    const double seconds = timer.ElapsedSeconds();
    if (r == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.stats = *run;
      if (metrics_on) best.metrics = registry.Snapshot().DeltaSince(before);
    }
    if (r == 0) {
      best.num_frequent = sink.count();
      best.checksum = sink.checksum();
    } else {
      FPM_CHECK(best.checksum == sink.checksum())
          << miner.name() << ": non-deterministic output across repeats";
    }
  }
  return best;
}

std::vector<SpeedupRow> ComputeSpeedups(
    const Measurement& baseline, const std::vector<Measurement>& runs) {
  std::vector<SpeedupRow> rows;
  rows.reserve(runs.size());
  for (const Measurement& m : runs) {
    FPM_CHECK(m.checksum == baseline.checksum)
        << m.name << " produced different itemsets than baseline "
        << baseline.name << " (" << m.num_frequent << " vs "
        << baseline.num_frequent << ")";
    SpeedupRow row;
    row.label = m.name;
    row.seconds = m.seconds;
    row.speedup = m.seconds > 0 ? baseline.seconds / m.seconds : 0.0;
    rows.push_back(row);
  }
  return rows;
}

double BenchScale() {
  if (const char* env = std::getenv("FPM_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.05;
}

int BenchRepeats() {
  if (const char* env = std::getenv("FPM_BENCH_REPEATS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 2;
}

}  // namespace fpm
