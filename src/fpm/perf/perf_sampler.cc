#include "fpm/perf/perf_sampler.h"

#include <atomic>
#include <optional>

namespace fpm {
namespace {

std::atomic<uint64_t> g_next_sampler_id{1};

struct TlsStateCache {
  uint64_t sampler_id = 0;
  void* state = nullptr;
};
thread_local TlsStateCache tls_state_cache;

uint64_t RatioMilli(uint64_t numerator, uint64_t denominator,
                    uint64_t per = 1000) {
  if (denominator == 0) return 0;
  const long double r = static_cast<long double>(numerator) *
                        static_cast<long double>(per) /
                        static_cast<long double>(denominator);
  return static_cast<uint64_t>(r + 0.5L);
}

const uint64_t* FindCounter(
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    std::string_view name) {
  for (const auto& [key, value] : counters) {
    if (key == name) return &value;
  }
  return nullptr;
}

}  // namespace

void AppendDerivedPerfGauges(
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    std::vector<std::pair<std::string, uint64_t>>* gauges) {
  const uint64_t* instructions = FindCounter(counters, "instructions");
  if (instructions == nullptr || *instructions == 0) return;
  if (const uint64_t* cycles = FindCounter(counters, "cycles")) {
    gauges->emplace_back("cpi_milli", RatioMilli(*cycles, *instructions));
  }
  if (const uint64_t* misses = FindCounter(counters, "cache_misses")) {
    // MPKI in milli units: misses * 1e6 / instructions.
    gauges->emplace_back("cache_mpki_milli",
                         RatioMilli(*misses, *instructions, 1000000));
  }
  if (const uint64_t* misses = FindCounter(counters, "dtlb_read_misses")) {
    gauges->emplace_back("dtlb_mpki_milli",
                         RatioMilli(*misses, *instructions, 1000000));
  }
}

/// One thread's counter group and its stack of phase-begin readings
/// (phases nest LIFO per thread). `group` is empty when the open failed;
/// the reason is kept for diagnostics.
struct PerfSampler::ThreadState {
  uint32_t thread_index = 0;  // informational
  std::optional<PerfCounterGroup> group;
  std::string open_error;
  std::vector<PerfGroupReading> begin_stack;
};

PerfSampler::PerfSampler(std::vector<PerfEventId> requested)
    : id_(g_next_sampler_id.fetch_add(1, std::memory_order_relaxed)),
      requested_(std::move(requested)) {}

PerfSampler::~PerfSampler() = default;

Result<std::unique_ptr<PerfSampler>> PerfSampler::Create(
    std::span<const PerfEventId> requested) {
  auto sampler = std::unique_ptr<PerfSampler>(new PerfSampler(
      std::vector<PerfEventId>(requested.begin(), requested.end())));
  // Open the creating thread's group now: it doubles as the viability
  // probe, so an all-refused kernel fails here with the paranoid hint.
  ThreadState* state = sampler->StateForThisThread();
  if (!state->group.has_value()) {
    return Status::IOError(state->open_error);
  }
  return sampler;
}

PerfSampler::ThreadState* PerfSampler::StateForThisThread() {
  if (tls_state_cache.sampler_id == id_) {
    return static_cast<ThreadState*>(tls_state_cache.state);
  }
  auto state = std::make_unique<ThreadState>();
  Result<PerfCounterGroup> group = PerfCounterGroup::Create(requested_);
  if (group.ok()) {
    state->group = std::move(group).value();
    // Started once and left running; phase deltas are differences of
    // in-flight reads, so no per-phase reset is needed (and nested
    // phases stay correct).
    const Status started = state->group->Start();
    if (!started.ok()) {
      state->open_error = started.message();
      state->group.reset();
    }
  } else {
    state->open_error = group.status().message();
  }
  ThreadState* raw = state.get();
  {
    std::lock_guard<std::mutex> lk(mu_);
    states_.push_back(std::move(state));
  }
  tls_state_cache = {id_, raw};
  return raw;
}

std::span<const PerfEventId> PerfSampler::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& state : states_) {
    if (state->group.has_value()) return state->group->events();
  }
  return {};
}

const std::vector<std::pair<PerfEventId, std::string>>& PerfSampler::dropped()
    const {
  static const std::vector<std::pair<PerfEventId, std::string>> kEmpty;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& state : states_) {
    if (state->group.has_value()) return state->group->dropped();
  }
  return kEmpty;
}

void PerfSampler::OnPhaseBegin() {
  ThreadState* state = StateForThisThread();
  if (!state->group.has_value()) return;
  Result<PerfGroupReading> reading = state->group->Read();
  // A failed read still pushes (an empty marker) so End's pop stays
  // paired with this Begin.
  state->begin_stack.push_back(reading.ok() ? std::move(reading).value()
                                            : PerfGroupReading{});
}

void PerfSampler::OnPhaseEnd(std::string_view /*phase*/,
                             PhaseSampleDeltas* out) {
  ThreadState* state = StateForThisThread();
  if (!state->group.has_value() || state->begin_stack.empty()) return;
  const PerfGroupReading begin = std::move(state->begin_stack.back());
  state->begin_stack.pop_back();
  if (begin.events.empty()) return;  // the paired Begin's read failed
  Result<PerfGroupReading> end = state->group->Read();
  if (!end.ok() || end->events.size() != begin.events.size()) return;
  const size_t first = out->counters.size();
  for (size_t i = 0; i < begin.events.size(); ++i) {
    const uint64_t b = begin.events[i].value;
    const uint64_t e = end->events[i].value;
    out->counters.emplace_back(PerfEventName(begin.events[i].id),
                               e > b ? e - b : 0);
  }
  // Derive CPI/MPKI from this phase's deltas only (not anything the
  // caller already had in `out`).
  const std::vector<std::pair<std::string, uint64_t>> phase_counters(
      out->counters.begin() + first, out->counters.end());
  AppendDerivedPerfGauges(phase_counters, &out->gauges);
}

}  // namespace fpm
