// Measurement harness for the figure-reproduction benches: repeated
// runs, best-of-N timing (the paper reports overall execution time;
// best-of-N suppresses scheduler noise on a shared host), and speedup
// computation against a named baseline.

#ifndef FPM_PERF_HARNESS_H_
#define FPM_PERF_HARNESS_H_

#include <string>
#include <vector>

#include "fpm/algo/miner.h"
#include "fpm/obs/metrics.h"

namespace fpm {

/// Outcome of measuring one miner configuration on one dataset.
struct Measurement {
  std::string name;          ///< miner name (config suffix included)
  double seconds = 0.0;      ///< best-of-N total wall time
  uint64_t num_frequent = 0; ///< itemsets found (must match across configs)
  uint64_t checksum = 0;     ///< CountingSink checksum (output validation)
  MineStats stats;           ///< stats of the best run
  /// Counter/gauge/histogram deltas attributed to the best run. Empty
  /// unless MetricsRegistry::Default() is enabled while measuring.
  MetricsSnapshot metrics;
};

/// Runs `miner` `repeats` times on (db, min_support) and keeps the
/// fastest run. Dies if the miner fails.
Measurement MeasureMiner(Miner& miner, const Database& db,
                         Support min_support, int repeats);

/// A labeled speedup relative to a baseline measurement.
struct SpeedupRow {
  std::string label;
  double seconds = 0.0;
  double speedup = 1.0;
};

/// speedup[i] = baseline.seconds / runs[i].seconds. Dies if any run's
/// output checksum differs from the baseline's (a tuned variant that
/// changes results is a bug, not a speedup).
std::vector<SpeedupRow> ComputeSpeedups(
    const Measurement& baseline, const std::vector<Measurement>& runs);

/// Scale factor for bench datasets: FPM_BENCH_SCALE env var (default
/// 0.05). 1.0 reproduces the paper's full dataset sizes; smaller values
/// shrink transaction counts and supports proportionally so the suite
/// finishes quickly on small machines.
double BenchScale();

/// Repeat count for best-of-N: FPM_BENCH_REPEATS env var (default 2).
int BenchRepeats();

/// Renders the per-phase hardware counter table of `stats` — one row per
/// phase with counter deltas and derived CPI / cache-MPKI / dTLB-MPKI
/// columns — or "" when no phase carries counters (no sampler was
/// installed). mine_cli --perf and the benches print this.
std::string FormatPhaseCounterTable(const MineStats& stats);

}  // namespace fpm

#endif  // FPM_PERF_HARNESS_H_
