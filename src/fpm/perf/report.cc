#include "fpm/perf/report.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "fpm/common/logging.h"

namespace fpm {

ReportTable::ReportTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FPM_CHECK(!header_.empty());
}

void ReportTable::AddRow(std::vector<std::string> cells) {
  FPM_CHECK(cells.size() <= header_.size())
      << "row has " << cells.size() << " cells, header has "
      << header_.size();
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row,
                      std::string* out) {
    for (size_t c = 0; c < row.size(); ++c) {
      *out += (c == 0) ? "| " : " | ";
      *out += row[c];
      out->append(widths[c] - row[c].size(), ' ');
    }
    *out += " |\n";
  };
  std::string out;
  emit_row(header_, &out);
  for (size_t c = 0; c < header_.size(); ++c) {
    out += (c == 0) ? "|" : "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  return buf;
}

std::string FormatSpeedup(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace fpm
