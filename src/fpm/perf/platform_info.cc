#include "fpm/perf/platform_info.h"

#include <fstream>
#include <sstream>
#include <thread>

namespace fpm {
namespace {

// Parses sysfs cache size strings like "32K" / "1024K" / "8M".
size_t ParseCacheSize(const std::string& text) {
  if (text.empty()) return 0;
  size_t value = 0;
  size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    if (text[i] == 'K' || text[i] == 'k') value <<= 10;
    if (text[i] == 'M' || text[i] == 'm') value <<= 20;
  }
  return value;
}

std::string ReadLineFromFile(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

}  // namespace

PlatformInfo PlatformInfo::Detect() {
  PlatformInfo info;
  info.logical_cpus =
      static_cast<int>(std::thread::hardware_concurrency());
  if (info.logical_cpus == 0) info.logical_cpus = 1;

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        info.cpu_model = line.substr(start);
      }
      break;
    }
  }

  // Cache hierarchy from sysfs; index order varies, so dispatch on the
  // reported level and type.
  for (int index = 0; index < 8; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    const std::string level = ReadLineFromFile(base + "/level");
    if (level.empty()) continue;
    const std::string type = ReadLineFromFile(base + "/type");
    const size_t size = ParseCacheSize(ReadLineFromFile(base + "/size"));
    if (level == "1" && (type == "Data" || type == "Unified")) {
      info.l1d_bytes = size;
    } else if (level == "2") {
      info.l2_bytes = size;
    } else if (level == "3") {
      info.l3_bytes = size;
    }
  }

#if defined(__x86_64__) || defined(__i386__)
  info.has_popcnt = __builtin_cpu_supports("popcnt");
  info.has_avx2 = __builtin_cpu_supports("avx2");
  info.has_avx512f = __builtin_cpu_supports("avx512f");
#endif
  return info;
}

std::string PlatformInfo::ToString() const {
  std::ostringstream os;
  auto cache = [](size_t bytes) {
    if (bytes == 0) return std::string("n/a");
    if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
      return std::to_string(bytes >> 20) + "MB";
    }
    return std::to_string(bytes >> 10) + "KB";
  };
  os << "Processor type    " << cpu_model << "\n"
     << "Logical CPUs      " << logical_cpus << "\n"
     << "L1 data cache     " << cache(l1d_bytes) << "\n"
     << "L2 cache          " << cache(l2_bytes) << "\n"
     << "L3 cache          " << cache(l3_bytes) << "\n"
     << "SIMD              " << (has_avx512f ? "AVX-512 " : "")
     << (has_avx2 ? "AVX2 " : "") << (has_popcnt ? "POPCNT" : "") << "\n";
  return os.str();
}

}  // namespace fpm
