// PhaseSampler implementation backed by PerfCounterGroup: install one on
// the tracer (Tracer::set_phase_sampler) and every PhaseSpan — the
// kernels' prepare/build/mine phases and ParallelMiner's per-class spans
// — latches hardware-counter deltas plus derived gauges (CPI, cache-MPKI
// and dTLB-MPKI as milli-unit integers).
//
// Counters are per thread: each thread driving a phase lazily opens its
// own PerfCounterGroup, started once and left running; a phase delta is
// the difference of two in-flight reads (multiplex-scaled), so nested
// phases each see exactly their own window. A thread whose open fails
// (e.g. a worker hitting an fd limit) records the reason once and stays
// silent; the whole sampler fails to Create() only when the calling
// thread cannot open anything — the caller then reports the degradation
// reason and runs unsampled.

#ifndef FPM_PERF_PERF_SAMPLER_H_
#define FPM_PERF_PERF_SAMPLER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/obs/phase_sampler.h"
#include "fpm/perf/perf_counters.h"

namespace fpm {

class PerfSampler : public PhaseSampler {
 public:
  /// Opens the calling thread's counter group as a viability probe (and
  /// as that thread's group). Fails — with the perf_event_paranoid hint
  /// — only when no requested event opens at all.
  static Result<std::unique_ptr<PerfSampler>> Create(
      std::span<const PerfEventId> requested =
          PerfCounterGroup::DefaultEvents());

  ~PerfSampler() override;

  /// Events the creating thread's group actually opened.
  std::span<const PerfEventId> events() const;

  /// Requested events the creating thread's group dropped, with reasons.
  const std::vector<std::pair<PerfEventId, std::string>>& dropped() const;

  // PhaseSampler:
  void OnPhaseBegin() override;
  void OnPhaseEnd(std::string_view phase, PhaseSampleDeltas* out) override;

 private:
  struct ThreadState;

  explicit PerfSampler(std::vector<PerfEventId> requested);
  ThreadState* StateForThisThread();

  const uint64_t id_;  // process-unique, keys the thread-local cache
  const std::vector<PerfEventId> requested_;

  mutable std::mutex mu_;  // guards states_ (the list, not the contents)
  std::vector<std::unique_ptr<ThreadState>> states_;
};

/// Appends the derived gauges the paper's analysis uses — "cpi_milli"
/// (1000 x cycles/instructions), "cache_mpki_milli" and
/// "dtlb_mpki_milli" (1000 x misses-per-kilo-instruction) — for every
/// ratio whose numerator and denominator are both present in `deltas`.
/// Exposed for tests and for formatting stored counter tables.
void AppendDerivedPerfGauges(
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    std::vector<std::pair<std::string, uint64_t>>* gauges);

}  // namespace fpm

#endif  // FPM_PERF_PERF_SAMPLER_H_
