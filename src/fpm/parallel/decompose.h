// First-item equivalence-class decomposition, shared by the parallel
// drivers (ParallelMiner, NestedParallelMiner).
//
// Items are ranked by frequency once, and each transaction is
// suffix-projected: the class owned by item i (the *least frequent*
// member of its itemsets) receives the conditional database of i — the
// transactions containing i, restricted to items more frequent than i.
// Classes are disjoint and jointly exhaustive.

#ifndef FPM_PARALLEL_DECOMPOSE_H_
#define FPM_PARALLEL_DECOMPOSE_H_

#include <cstdint>
#include <vector>

#include "fpm/dataset/database.h"

namespace fpm {

/// Product of the one-pass decomposition. The global frequency ranking
/// is computed exactly once here; class tasks consume it read-only
/// (rank_to_item) instead of re-deriving it per class.
struct ClassDecomposition {
  /// rank -> raw item id, for mapping class-local results back.
  std::vector<Item> rank_to_item;
  /// Global (weighted) support of each class owner, by rank.
  std::vector<Support> class_supports;
  /// Per-class conditional databases, ready to Build(). Transactions
  /// are rank-remapped and sorted; the builders were filled through the
  /// sorted fast path, so Build() is a move, not a recount.
  std::vector<DatabaseBuilder> builders;
  /// Projected entries per class — the work estimate used for
  /// largest-first scheduling and the spawn-cutoff heuristic.
  std::vector<uint64_t> class_entries;
  /// Sum of class_entries.
  uint64_t projection_entries = 0;

  size_t num_classes() const { return builders.size(); }
};

/// Ranks items, suffix-projects every transaction, and records the
/// fpm.parallel.classes / fpm.parallel.class_entries metrics. Classes
/// exist only for items with support >= min_support.
ClassDecomposition DecomposeClasses(const Database& db,
                                    Support min_support);

}  // namespace fpm

#endif  // FPM_PARALLEL_DECOMPOSE_H_
