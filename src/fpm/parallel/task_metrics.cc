#include "fpm/parallel/task_metrics.h"

#include "fpm/obs/metrics.h"
#include "fpm/obs/thread_index.h"

namespace fpm {

TaskTelemetry::TaskTelemetry() {
  MetricsRegistry& registry = MetricsRegistry::Default();
  if (!registry.enabled()) return;
  spawns_ = registry.GetCounter("fpm.task.spawns");
  cutoffs_ = registry.GetCounter("fpm.task.cutoffs");
  depth_hist_ =
      registry.GetHistogram("fpm.task.depth", {0, 1, 2, 3, 4, 6, 8, 12, 16});
  wall_hist_ = registry.GetHistogram(
      "fpm.task.wall_micros",
      {10, 100, 1000, 10000, 100000, 1000000, 10000000});
  busy_max_gauge_ = registry.GetGauge("fpm.task.busy_max_micros");
  busy_mean_gauge_ = registry.GetGauge("fpm.task.busy_mean_micros");
  imbalance_gauge_ = registry.GetGauge("fpm.task.imbalance_milli");
}

void TaskTelemetry::RecordTask(uint64_t wall_micros) {
  if (wall_hist_ != nullptr) wall_hist_->Observe(wall_micros);
  std::lock_guard<std::mutex> lk(mu_);
  busy_micros_[ObsThreadIndex()] += wall_micros;
}

void TaskTelemetry::RecordSpawn(uint32_t depth) {
  if (spawns_ != nullptr) spawns_->Increment();
  if (depth_hist_ != nullptr) depth_hist_->Observe(depth);
}

void TaskTelemetry::RecordCutoff() {
  if (cutoffs_ != nullptr) cutoffs_->Increment();
}

void TaskTelemetry::Finish() {
  if (busy_max_gauge_ == nullptr) return;
  busy_max_gauge_->Set(busy_max_micros());
  const uint64_t mean = busy_mean_micros();
  busy_mean_gauge_->Set(mean);
  imbalance_gauge_->Set(mean == 0 ? 0 : busy_max_micros() * 1000 / mean);
}

uint64_t TaskTelemetry::busy_max_micros() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t max = 0;
  for (const auto& [tid, micros] : busy_micros_) {
    if (micros > max) max = micros;
  }
  return max;
}

uint64_t TaskTelemetry::busy_mean_micros() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (busy_micros_.empty()) return 0;
  uint64_t sum = 0;
  for (const auto& [tid, micros] : busy_micros_) sum += micros;
  return sum / busy_micros_.size();
}

}  // namespace fpm
