// Sink adapters shared by the parallel drivers.

#ifndef FPM_PARALLEL_SINK_ADAPTERS_H_
#define FPM_PARALLEL_SINK_ADAPTERS_H_

#include <mutex>
#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/dataset/types.h"

namespace fpm {

/// Serializes Emit() calls from concurrent tasks onto one shared sink —
/// the non-deterministic (streaming) merge path.
class LockedSink : public ItemsetSink {
 public:
  LockedSink(ItemsetSink* target, std::mutex* mu) : target_(target), mu_(mu) {}

  void Emit(std::span<const Item> itemset, Support support) override {
    std::lock_guard<std::mutex> lk(*mu_);
    target_->Emit(itemset, support);
  }

 private:
  ItemsetSink* target_;
  std::mutex* mu_;
};

/// Kernels emit in the item-id space of the database they were given — a
/// conditional database whose ids are frequency ranks. This adapter maps
/// ranks back to raw item ids and appends the class's owner item, turning
/// a conditional itemset S into the global itemset S ∪ {owner}.
class ClassSink : public ItemsetSink {
 public:
  ClassSink(const std::vector<Item>& rank_to_item, Item owner_raw,
            ItemsetSink* target)
      : rank_to_item_(rank_to_item), owner_raw_(owner_raw), target_(target) {}

  void Emit(std::span<const Item> itemset, Support support) override {
    buffer_.clear();
    buffer_.reserve(itemset.size() + 1);
    for (Item rank : itemset) buffer_.push_back(rank_to_item_[rank]);
    buffer_.push_back(owner_raw_);
    target_->Emit(buffer_, support);
    ++emitted_;
  }

  uint64_t emitted() const { return emitted_; }

 private:
  const std::vector<Item>& rank_to_item_;
  Item owner_raw_;
  ItemsetSink* target_;
  std::vector<Item> buffer_;
  uint64_t emitted_ = 0;
};

}  // namespace fpm

#endif  // FPM_PARALLEL_SINK_ADAPTERS_H_
