// Fixed-size work-stealing thread pool for task-parallel mining.
//
// Each worker owns a deque: it pushes and pops its own tasks at the back
// (LIFO — depth-first, cache-warm) and steals from other workers at the
// front (FIFO — steals the oldest, typically largest, task). External
// submissions are distributed round-robin. The deques are individually
// mutex-guarded rather than lock-free: mining tasks are coarse (a whole
// first-item equivalence class), so queue operations are nowhere near
// the critical path and the simple scheme is trivially correct under
// TSan.

#ifndef FPM_PARALLEL_THREAD_POOL_H_
#define FPM_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fpm {

class Counter;

/// Work-stealing pool with a fixed worker count. Submit() may be called
/// from any thread, including from inside a running task (nested
/// submissions land on the submitting worker's own deque). Wait() blocks
/// until every submitted task — including ones submitted while waiting —
/// has finished.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(uint32_t num_threads);

  /// Joins all workers. Pending tasks are still executed: the destructor
  /// drains the queues before shutting down.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks the calling thread (not a worker) until all tasks complete.
  void Wait();

  /// Runs pool tasks on the calling thread until `done()` returns true.
  /// On a worker thread this is the continuation-safe join used by
  /// TaskGroup::Wait(): instead of idling (which would deadlock once
  /// every worker blocks on a nested join), the worker keeps executing
  /// pending tasks — its own, or stolen — re-checking `done()` between
  /// tasks. On a non-worker thread it simply blocks until `done()`.
  /// `done()` must be monotonic (once true, stays true) and is called
  /// with `wait_mu_` held, so it must not touch the pool.
  void HelpWhile(const std::function<bool()>& done);

  /// Wakes every thread blocked in HelpWhile so it re-checks `done()`.
  /// Called by TaskGroup when a group's pending count hits zero.
  void NotifyGroupWaiters();

  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// std::thread::hardware_concurrency with a >= 1 fallback.
  static uint32_t HardwareThreads();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(uint32_t worker_index);
  /// Pops from own back, else steals from another front. Returns an
  /// empty function when no work is available anywhere.
  std::function<void()> TakeTask(uint32_t worker_index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Wake/sleep and completion accounting.
  std::mutex wait_mu_;
  std::condition_variable work_cv_;   // workers sleep here
  std::condition_variable done_cv_;   // Wait() sleeps here
  uint64_t pending_ = 0;              // submitted but not yet finished
  uint64_t epoch_ = 0;                // bumped on every submission
  bool stop_ = false;
  std::atomic<uint32_t> next_queue_{0};  // round-robin external submits

  // Scheduler metrics (fpm.pool.*), resolved once at construction. The
  // metrics registry shards per thread, so Snapshot(per_thread=true)
  // yields per-worker submit/steal/idle-wait counts for free.
  Counter* submits_counter_;
  Counter* steals_counter_;
  Counter* idle_waits_counter_;
  Counter* help_runs_counter_;
};

/// Fork-join scope over a ThreadPool: Run() forks a task, Wait() joins
/// every task Run() has forked — including tasks those tasks forked onto
/// the same group. Wait() is continuation-safe: called from a pool
/// worker it executes pending tasks instead of idling, so arbitrarily
/// nested fork-join (every worker blocked in a join somewhere up its
/// stack) cannot deadlock the pool.
///
/// The group may outlive none of its tasks' completions: the completion
/// signal lives in a shared_ptr owned jointly by the group and every
/// in-flight task wrapper, so a task finishing after the group is
/// destroyed touches only memory it co-owns.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool)
      : pool_(pool),
        pending_(std::make_shared<std::atomic<uint64_t>>(0)) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks one task. May be called from any thread, including from a
  /// task of this same group (nested fork).
  void Run(std::function<void()> task);

  /// Joins: returns once every forked task has finished. Reusable —
  /// Run() may be called again after Wait() returns.
  void Wait();

 private:
  ThreadPool* pool_;
  std::shared_ptr<std::atomic<uint64_t>> pending_;
};

}  // namespace fpm

#endif  // FPM_PARALLEL_THREAD_POOL_H_
