#include "fpm/parallel/parallel_miner.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "fpm/layout/item_order.h"
#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"
#include "fpm/parallel/thread_pool.h"

namespace fpm {
namespace {

// Serializes Emit() calls from concurrent tasks onto one shared sink —
// the non-deterministic (streaming) merge path.
class LockedSink : public ItemsetSink {
 public:
  LockedSink(ItemsetSink* target, std::mutex* mu) : target_(target), mu_(mu) {}

  void Emit(std::span<const Item> itemset, Support support) override {
    std::lock_guard<std::mutex> lk(*mu_);
    target_->Emit(itemset, support);
  }

 private:
  ItemsetSink* target_;
  std::mutex* mu_;
};

// Kernels emit in the item-id space of the database they were given — a
// conditional database whose ids are frequency ranks. This adapter maps
// ranks back to raw item ids and appends the class's owner item, turning
// a conditional itemset S into the global itemset S ∪ {owner}.
class ClassSink : public ItemsetSink {
 public:
  ClassSink(const std::vector<Item>& rank_to_item, Item owner_raw,
            ItemsetSink* target)
      : rank_to_item_(rank_to_item), owner_raw_(owner_raw), target_(target) {}

  void Emit(std::span<const Item> itemset, Support support) override {
    buffer_.clear();
    buffer_.reserve(itemset.size() + 1);
    for (Item rank : itemset) buffer_.push_back(rank_to_item_[rank]);
    buffer_.push_back(owner_raw_);
    target_->Emit(buffer_, support);
    ++emitted_;
  }

  uint64_t emitted() const { return emitted_; }

 private:
  const std::vector<Item>& rank_to_item_;
  Item owner_raw_;
  ItemsetSink* target_;
  std::vector<Item> buffer_;
  uint64_t emitted_ = 0;
};

}  // namespace

ParallelMiner::ParallelMiner(ParallelMinerOptions options)
    : options_(std::move(options)) {}

std::string ParallelMiner::name() const {
  return "parallel(" + std::to_string(options_.execution.num_threads) + "x" +
         options_.kernel_name +
         (options_.execution.deterministic ? "" : ",nondet") + ")";
}

Result<MineStats> ParallelMiner::MineImpl(const Database& db,
                                          Support min_support,
                                          ItemsetSink* sink) {
  if (options_.execution.num_threads == 0) {
    return Status::InvalidArgument("ExecutionPolicy.num_threads must be >= 1");
  }
  if (!options_.factory) {
    return Status::InvalidArgument("ParallelMiner requires a miner factory");
  }
  MineStats stats;

  // ---- Decomposition: rank items, suffix-project each transaction. ----
  // Transactions are stored most-frequent-item first, so the class owner
  // (the least frequent member) sees its more-frequent co-members as its
  // conditional transaction — the same direction the kernels extend in,
  // and it bounds every class by the owner item's support.
  PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
  const ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  const Database ranked = RemapItems(db, order);
  const std::vector<Item>& rank_to_item = order.to_item();

  const auto& freq = ranked.item_frequencies();
  size_t num_frequent = 0;
  while (num_frequent < freq.size() && freq[num_frequent] >= min_support) {
    ++num_frequent;
  }

  std::vector<DatabaseBuilder> builders(num_frequent);
  std::vector<uint64_t> class_entries(num_frequent, 0);
  uint64_t projection_entries = 0;
  for (Tid t = 0; t < ranked.num_transactions(); ++t) {
    const auto tx = ranked.transaction(t);
    // Ranks ascend within the transaction, so the frequent items form a
    // prefix; infrequent items can appear in no frequent itemset.
    size_t m = 0;
    while (m < tx.size() && tx[m] < num_frequent) ++m;
    const Support w = ranked.weight(t);
    for (size_t j = 1; j < m; ++j) {
      builders[tx[j]].AddTransaction(tx.subspan(0, j), w);
      class_entries[tx[j]] += j;
      projection_entries += j;
    }
  }
  stats.FinishPhase(PhaseId::kPrepare, prep_span);
  stats.peak_structure_bytes = projection_entries * sizeof(Item);

  // Class-size distribution: how balanced the decomposition is.
  {
    MetricsRegistry& registry = MetricsRegistry::Default();
    if (registry.enabled()) {
      static Histogram* class_sizes = registry.GetHistogram(
          "fpm.parallel.class_entries",
          {0, 10, 100, 1000, 10000, 100000, 1000000});
      static Counter* classes =
          registry.GetCounter("fpm.parallel.classes");
      for (uint64_t entries : class_entries) class_sizes->Observe(entries);
      classes->Add(class_entries.size());
    }
  }

  // ---- Mine every class, largest projection first. --------------------
  PhaseSpan mine_span(PhaseName(PhaseId::kMine));
  std::vector<Item> schedule(num_frequent);
  std::iota(schedule.begin(), schedule.end(), 0);
  std::stable_sort(schedule.begin(), schedule.end(),
                   [&class_entries](Item a, Item b) {
                     return class_entries[a] > class_entries[b];
                   });

  const bool deterministic = options_.execution.deterministic;
  ShardedSink shards(deterministic ? num_frequent : 0);
  std::mutex sink_mu;   // serializes the streaming path
  std::mutex merge_mu;  // guards error + aggregate state below
  Status first_error = Status::OK();
  std::atomic<bool> failed{false};
  uint64_t task_emitted = 0;
  double task_build_seconds = 0.0;
  size_t task_peak_bytes = 0;

  auto mine_class = [&](Item i) {
    if (failed.load(std::memory_order_relaxed)) return;
    // One span per equivalence class, on the worker that mined it.
    // PhaseSpan (not ScopedSpan) so an installed PhaseSampler attributes
    // counter deltas to each class; those deltas reach the trace args and
    // the "fpm.phase.class.*" metrics, not MineStats (the caller-thread
    // prepare/merge/mine spans own the MineStats counter table).
    PhaseSpan class_span("class");
    class_span.AddArg("item", rank_to_item[i]);
    class_span.AddArg("entries", class_entries[i]);
    LockedSink locked(sink, &sink_mu);
    ItemsetSink* target =
        deterministic ? static_cast<ItemsetSink*>(shards.shard(i)) : &locked;

    // The class's own singleton: {owner} at its global support.
    const Item owner_raw = rank_to_item[i];
    target->Emit(std::span<const Item>(&owner_raw, 1), freq[i]);
    uint64_t emitted = 1;

    double build_seconds = 0.0;
    size_t peak_bytes = 0;
    if (builders[i].size() > 0) {
      const Database cond = builders[i].Build();
      Result<std::unique_ptr<Miner>> kernel = options_.factory();
      if (!kernel.ok()) {
        if (!failed.exchange(true)) {
          std::lock_guard<std::mutex> lk(merge_mu);
          first_error = kernel.status();
        }
        return;
      }
      ClassSink class_sink(rank_to_item, owner_raw, target);
      Result<MineStats> run = (*kernel)->Mine(cond, min_support, &class_sink);
      if (!run.ok()) {
        if (!failed.exchange(true)) {
          std::lock_guard<std::mutex> lk(merge_mu);
          first_error = run.status();
        }
        return;
      }
      emitted += class_sink.emitted();
      build_seconds = run->phase_seconds(PhaseId::kBuild);
      peak_bytes = run->peak_structure_bytes;
    }
    class_span.AddArg("itemsets", emitted);
    std::lock_guard<std::mutex> lk(merge_mu);
    task_emitted += emitted;
    task_build_seconds += build_seconds;
    task_peak_bytes = std::max(task_peak_bytes, peak_bytes);
  };

  if (options_.execution.num_threads == 1) {
    for (Item i : schedule) mine_class(i);
  } else {
    ThreadPool pool(options_.execution.num_threads);
    for (Item i : schedule) {
      pool.Submit([&mine_class, i] { mine_class(i); });
    }
    pool.Wait();
  }
  if (failed.load()) return first_error;

  // Deterministic merge: replay class 0, class 1, ... — independent of
  // which worker mined what, so the emission order is reproducible.
  if (deterministic) {
    ScopedSpan merge_span("merge");
    shards.MergeInto(sink);
  }

  stats.num_frequent = task_emitted;
  // For parallel runs, prepare/mine are wall times of the two phases;
  // the build phase aggregates kernel construction time across tasks (it
  // can exceed wall time), and the footprint is the projection plus the
  // largest single task structure.
  stats.set_phase_seconds(PhaseId::kBuild, task_build_seconds);
  stats.peak_structure_bytes += task_peak_bytes;
  stats.FinishPhase(PhaseId::kMine, mine_span);
  return stats;
}

}  // namespace fpm
