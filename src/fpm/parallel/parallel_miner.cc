#include "fpm/parallel/parallel_miner.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "fpm/obs/trace.h"
#include "fpm/parallel/decompose.h"
#include "fpm/parallel/sink_adapters.h"
#include "fpm/parallel/thread_pool.h"

namespace fpm {

ParallelMiner::ParallelMiner(ParallelMinerOptions options)
    : options_(std::move(options)) {}

std::string ParallelMiner::name() const {
  return "parallel(" + std::to_string(options_.execution.num_threads) + "x" +
         options_.kernel_name +
         (options_.execution.deterministic ? "" : ",nondet") + ")";
}

Result<MineStats> ParallelMiner::MineImpl(const Database& db,
                                          Support min_support,
                                          ItemsetSink* sink) {
  if (options_.execution.num_threads == 0) {
    return Status::InvalidArgument("ExecutionPolicy.num_threads must be >= 1");
  }
  if (!options_.factory) {
    return Status::InvalidArgument("ParallelMiner requires a miner factory");
  }
  MineStats stats;

  // ---- Decomposition (shared with the nested driver): one frequency
  // ranking pass, suffix-projection of every transaction. ---------------
  PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
  ClassDecomposition decomp = DecomposeClasses(db, min_support);
  const std::vector<Item>& rank_to_item = decomp.rank_to_item;
  const size_t num_frequent = decomp.num_classes();
  stats.FinishPhase(PhaseId::kPrepare, prep_span);
  stats.peak_structure_bytes = decomp.projection_entries * sizeof(Item);

  // ---- Mine every class, largest projection first. --------------------
  PhaseSpan mine_span(PhaseName(PhaseId::kMine));
  std::vector<Item> schedule(num_frequent);
  std::iota(schedule.begin(), schedule.end(), 0);
  std::stable_sort(schedule.begin(), schedule.end(),
                   [&decomp](Item a, Item b) {
                     return decomp.class_entries[a] > decomp.class_entries[b];
                   });

  const bool deterministic = options_.execution.deterministic;
  ShardedSink shards(deterministic ? num_frequent : 0);
  std::mutex sink_mu;   // serializes the streaming path
  std::mutex merge_mu;  // guards error + aggregate state below
  Status first_error = Status::OK();
  std::atomic<bool> failed{false};
  uint64_t task_emitted = 0;
  double task_build_seconds = 0.0;
  size_t task_peak_bytes = 0;

  auto mine_class = [&](Item i) {
    if (failed.load(std::memory_order_relaxed)) return;
    // One span per equivalence class, on the worker that mined it.
    // PhaseSpan (not ScopedSpan) so an installed PhaseSampler attributes
    // counter deltas to each class; those deltas reach the trace args and
    // the "fpm.phase.class.*" metrics, not MineStats (the caller-thread
    // prepare/merge/mine spans own the MineStats counter table).
    PhaseSpan class_span("class");
    class_span.AddArg("item", rank_to_item[i]);
    class_span.AddArg("entries", decomp.class_entries[i]);
    LockedSink locked(sink, &sink_mu);
    ItemsetSink* target =
        deterministic ? static_cast<ItemsetSink*>(shards.shard(i)) : &locked;

    // The class's own singleton: {owner} at its global support.
    const Item owner_raw = rank_to_item[i];
    target->Emit(std::span<const Item>(&owner_raw, 1),
                 decomp.class_supports[i]);
    uint64_t emitted = 1;

    double build_seconds = 0.0;
    size_t peak_bytes = 0;
    if (decomp.builders[i].size() > 0) {
      const Database cond = decomp.builders[i].Build();
      Result<std::unique_ptr<Miner>> kernel = options_.factory();
      if (!kernel.ok()) {
        if (!failed.exchange(true)) {
          std::lock_guard<std::mutex> lk(merge_mu);
          first_error = kernel.status();
        }
        return;
      }
      ClassSink class_sink(rank_to_item, owner_raw, target);
      Result<MineStats> run = (*kernel)->Mine(cond, min_support, &class_sink);
      if (!run.ok()) {
        if (!failed.exchange(true)) {
          std::lock_guard<std::mutex> lk(merge_mu);
          first_error = run.status();
        }
        return;
      }
      emitted += class_sink.emitted();
      build_seconds = run->phase_seconds(PhaseId::kBuild);
      peak_bytes = run->peak_structure_bytes;
    }
    class_span.AddArg("itemsets", emitted);
    std::lock_guard<std::mutex> lk(merge_mu);
    task_emitted += emitted;
    task_build_seconds += build_seconds;
    task_peak_bytes = std::max(task_peak_bytes, peak_bytes);
  };

  if (options_.execution.num_threads == 1) {
    for (Item i : schedule) mine_class(i);
  } else {
    ThreadPool pool(options_.execution.num_threads);
    for (Item i : schedule) {
      pool.Submit([&mine_class, i] { mine_class(i); });
    }
    pool.Wait();
  }
  if (failed.load()) return first_error;

  // Deterministic merge: replay class 0, class 1, ... — independent of
  // which worker mined what, so the emission order is reproducible.
  if (deterministic) {
    ScopedSpan merge_span("merge");
    shards.MergeInto(sink);
  }

  stats.num_frequent = task_emitted;
  // For parallel runs, prepare/mine are wall times of the two phases;
  // the build phase aggregates kernel construction time across tasks (it
  // can exceed wall time), and the footprint is the projection plus the
  // largest single task structure.
  stats.set_phase_seconds(PhaseId::kBuild, task_build_seconds);
  stats.peak_structure_bytes += task_peak_bytes;
  stats.FinishPhase(PhaseId::kMine, mine_span);
  return stats;
}

}  // namespace fpm
