#include "fpm/parallel/nested_miner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "fpm/algo/subtree.h"
#include "fpm/common/arena.h"
#include "fpm/obs/trace.h"
#include "fpm/parallel/decompose.h"
#include "fpm/parallel/sink_adapters.h"
#include "fpm/parallel/task_metrics.h"
#include "fpm/parallel/thread_pool.h"

namespace fpm {
namespace {

uint64_t NowMicros(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Order-preserving result buffer for one task: an op log interleaving
/// emissions with child markers, recorded in the task's DFS order. One
/// task owns one shard exclusively while mining; AddChild() is called by
/// that task (from SubtreeSpawner::Offer, at the recursion point being
/// detached), and the child shard is then owned exclusively by the
/// spawned task. ReplayInto() runs single-threaded after the join and
/// expands markers in place, reproducing the order a fully sequential
/// run would have emitted.
class TreeShard : public ItemsetSink {
 public:
  void Emit(std::span<const Item> itemset, Support support) override {
    ops_.push_back(Op{false, entries_.size()});
    entries_.emplace_back(Itemset(itemset.begin(), itemset.end()), support);
  }

  TreeShard* AddChild() {
    ops_.push_back(Op{true, children_.size()});
    children_.push_back(std::make_unique<TreeShard>());
    return children_.back().get();
  }

  void ReplayInto(ItemsetSink* target) const {
    for (const Op& op : ops_) {
      if (op.child) {
        children_[op.index]->ReplayInto(target);
      } else {
        const auto& [itemset, support] = entries_[op.index];
        target->Emit(itemset, support);
      }
    }
  }

 private:
  struct Op {
    bool child;
    size_t index;  // into entries_ or children_
  };

  std::vector<Op> ops_;
  std::vector<std::pair<Itemset, Support>> entries_;
  std::vector<std::unique_ptr<TreeShard>> children_;
};

struct NestedRun;

/// Per-task spawner handed to the kernels. Carries the task's shard (its
/// position in the deterministic op-log tree) and class owner; all
/// cross-task state lives in NestedRun.
class TaskSpawner : public SubtreeSpawner {
 public:
  TaskSpawner(NestedRun* run, TreeShard* shard, Item owner_raw)
      : run_(run), shard_(shard), owner_raw_(owner_raw) {}

  bool Offer(uint32_t depth, uint64_t work, const DetachFn& detach) override;

 private:
  NestedRun* run_;
  TreeShard* shard_;  // null in non-deterministic (streaming) mode
  Item owner_raw_;
};

/// State shared by every task of one nested Mine() call. Outlives the
/// join (it is a stack object in MineImpl spanning TaskGroup::Wait()).
struct NestedRun {
  const ClassDecomposition* decomp = nullptr;
  const MinerFactory* factory = nullptr;
  Support min_support = 0;
  uint64_t cutoff_base = 0;
  TaskGroup* group = nullptr;
  ItemsetSink* stream_sink = nullptr;  // locked; null in deterministic mode
  ArenaPool arena_pool;
  TaskTelemetry telemetry;

  std::atomic<bool> failed{false};
  std::mutex merge_mu;  // guards the aggregates below + first_error
  Status first_error = Status::OK();
  uint64_t emitted = 0;
  double build_seconds = 0.0;
  size_t task_peak_bytes = 0;

  uint64_t CutoffFor(uint32_t depth) const {
    return cutoff_base << std::min<uint32_t>(depth, 20);
  }

  void Fail(const Status& status) {
    if (!failed.exchange(true)) {
      std::lock_guard<std::mutex> lk(merge_mu);
      first_error = status;
    }
  }

  void Aggregate(uint64_t task_emitted, double task_build_seconds,
                 size_t peak_bytes) {
    std::lock_guard<std::mutex> lk(merge_mu);
    emitted += task_emitted;
    build_seconds += task_build_seconds;
    task_peak_bytes = std::max(task_peak_bytes, peak_bytes);
  }

  /// Body of a detached subtree task.
  void RunSubtree(TreeShard* shard, Item owner_raw, uint32_t depth,
                  const SubtreeSpawner::SubtreeFn& fn) {
    if (failed.load(std::memory_order_relaxed)) return;
    const auto start = std::chrono::steady_clock::now();
    ScopedSpan span("task");
    span.AddArg("depth", depth);
    span.AddArg("item", owner_raw);
    ItemsetSink* target = shard != nullptr
                              ? static_cast<ItemsetSink*>(shard)
                              : stream_sink;
    ClassSink class_sink(decomp->rank_to_item, owner_raw, target);
    TaskSpawner spawner(this, shard, owner_raw);
    MineStats stats;
    fn(&class_sink, &spawner, &stats);
    span.AddArg("itemsets", class_sink.emitted());
    Aggregate(class_sink.emitted(), 0.0, stats.peak_structure_bytes);
    telemetry.RecordTask(NowMicros(start));
  }

  /// Body of a top-level equivalence-class task. `builder` is the
  /// class's private conditional-database builder; `spawn` selects
  /// whether subtrees may fork (false on the 1-thread inline path).
  void RunClass(Item rank, TreeShard* shard, DatabaseBuilder* builder,
                bool spawn) {
    if (failed.load(std::memory_order_relaxed)) return;
    const auto start = std::chrono::steady_clock::now();
    PhaseSpan class_span("class");
    const Item owner_raw = decomp->rank_to_item[rank];
    class_span.AddArg("item", owner_raw);
    class_span.AddArg("entries", decomp->class_entries[rank]);
    ItemsetSink* target = shard != nullptr
                              ? static_cast<ItemsetSink*>(shard)
                              : stream_sink;

    // The class's own singleton: {owner} at its global support.
    target->Emit(std::span<const Item>(&owner_raw, 1),
                 decomp->class_supports[rank]);
    uint64_t task_emitted = 1;

    double task_build_seconds = 0.0;
    size_t peak_bytes = 0;
    if (builder->size() > 0) {
      const Database cond = builder->Build();
      Result<std::unique_ptr<Miner>> kernel = (*factory)();
      if (!kernel.ok()) {
        Fail(kernel.status());
        return;
      }
      ClassSink class_sink(decomp->rank_to_item, owner_raw, target);
      TaskSpawner spawner(this, shard, owner_raw);
      Result<MineStats> run = (*kernel)->MineNested(
          cond, min_support, &class_sink, spawn ? &spawner : nullptr);
      if (!run.ok()) {
        Fail(run.status());
        return;
      }
      task_emitted += class_sink.emitted();
      task_build_seconds = run->phase_seconds(PhaseId::kBuild);
      peak_bytes = run->peak_structure_bytes;
    }
    class_span.AddArg("itemsets", task_emitted);
    Aggregate(task_emitted, task_build_seconds, peak_bytes);
    telemetry.RecordTask(NowMicros(start));
  }
};

bool TaskSpawner::Offer(uint32_t depth, uint64_t work,
                        const DetachFn& detach) {
  NestedRun* run = run_;
  if (work < run->CutoffFor(depth) ||
      run->failed.load(std::memory_order_relaxed)) {
    run->telemetry.RecordCutoff();
    return false;
  }
  // Child marker at the current op-log position: the replay expands the
  // subtree's results exactly where a sequential recursion would have
  // emitted them.
  TreeShard* child = shard_ != nullptr ? shard_->AddChild() : nullptr;
  auto lease =
      std::make_shared<ArenaPool::Lease>(run->arena_pool.Acquire());
  SubtreeSpawner::SubtreeFn fn = detach(lease->get());
  run->telemetry.RecordSpawn(depth);
  const Item owner = owner_raw_;
  // Detached tasks run on arbitrary pool threads: carry the offering
  // thread's query-id span context so task spans stay attributable to
  // the owning request.
  const uint64_t query_id = Tracer::ThreadQueryId();
  run->group->Run([run, child, owner, depth, query_id, fn = std::move(fn),
                   lease = std::move(lease)]() mutable {
    SpanContextScope span_context(query_id);
    run->RunSubtree(child, owner, depth, fn);
    // The frame's storage lives in the leased arena: destroy the frame
    // before the lease returns (and Reset()s) the arena.
    fn = nullptr;
    lease.reset();
  });
  return true;
}

}  // namespace

NestedParallelMiner::NestedParallelMiner(NestedParallelMinerOptions options)
    : options_(std::move(options)) {}

std::string NestedParallelMiner::name() const {
  return "nested(" + std::to_string(options_.execution.num_threads) + "x" +
         options_.kernel_name +
         (options_.execution.deterministic ? "" : ",nondet") + ")";
}

Result<MineStats> NestedParallelMiner::MineImpl(const Database& db,
                                                Support min_support,
                                                ItemsetSink* sink) {
  if (options_.execution.num_threads == 0) {
    return Status::InvalidArgument("ExecutionPolicy.num_threads must be >= 1");
  }
  if (!options_.factory) {
    return Status::InvalidArgument(
        "NestedParallelMiner requires a miner factory");
  }
  MineStats stats;

  PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
  ClassDecomposition decomp = DecomposeClasses(db, min_support);
  const size_t num_frequent = decomp.num_classes();
  stats.FinishPhase(PhaseId::kPrepare, prep_span);
  stats.peak_structure_bytes = decomp.projection_entries * sizeof(Item);

  PhaseSpan mine_span(PhaseName(PhaseId::kMine));
  NestedRun run;
  run.decomp = &decomp;
  run.factory = &options_.factory;
  run.min_support = min_support;
  run.cutoff_base =
      options_.spawn_min_entries != 0
          ? options_.spawn_min_entries
          : std::max<uint64_t>(256, decomp.projection_entries / 256);

  const uint32_t num_threads = options_.execution.num_threads;
  const bool deterministic = options_.execution.deterministic;

  if (num_threads == 1) {
    // Inline: class order, owner singleton first, kernel DFS below it —
    // the exact order the deterministic replay reproduces.
    run.stream_sink = sink;
    for (size_t i = 0; i < num_frequent; ++i) {
      run.RunClass(static_cast<Item>(i), nullptr, &decomp.builders[i],
                   /*spawn=*/false);
      if (run.failed.load()) return run.first_error;
    }
  } else {
    ThreadPool pool(num_threads);
    TaskGroup group(&pool);
    run.group = &group;

    // Deterministic mode: one shard tree per class, merged in class
    // order after the join. Streaming mode: emissions are serialized
    // straight into the caller's sink.
    std::vector<TreeShard> class_shards(deterministic ? num_frequent : 0);
    std::mutex sink_mu;
    LockedSink locked(sink, &sink_mu);
    if (!deterministic) run.stream_sink = &locked;

    // Largest projection first: the biggest class starts immediately,
    // and its subtree spawns backfill the tail.
    std::vector<Item> schedule(num_frequent);
    std::iota(schedule.begin(), schedule.end(), 0);
    std::stable_sort(schedule.begin(), schedule.end(),
                     [&decomp](Item a, Item b) {
                       return decomp.class_entries[a] >
                              decomp.class_entries[b];
                     });
    const uint64_t query_id = Tracer::ThreadQueryId();
    for (Item i : schedule) {
      TreeShard* shard = deterministic ? &class_shards[i] : nullptr;
      DatabaseBuilder* builder = &decomp.builders[i];
      group.Run([&run, i, shard, builder, query_id] {
        SpanContextScope span_context(query_id);
        run.RunClass(i, shard, builder, /*spawn=*/true);
      });
    }
    group.Wait();
    if (run.failed.load()) return run.first_error;

    if (deterministic) {
      ScopedSpan merge_span("merge");
      for (const TreeShard& shard : class_shards) {
        shard.ReplayInto(sink);
      }
    }
  }
  run.telemetry.Finish();

  stats.num_frequent = run.emitted;
  // As in ParallelMiner: build aggregates kernel construction across
  // tasks (may exceed wall time); the footprint is the projection plus
  // the largest single task structure.
  stats.set_phase_seconds(PhaseId::kBuild, run.build_seconds);
  stats.peak_structure_bytes += run.task_peak_bytes;
  stats.FinishPhase(PhaseId::kMine, mine_span);
  return stats;
}

}  // namespace fpm
