#include "fpm/parallel/decompose.h"

#include "fpm/layout/item_order.h"
#include "fpm/obs/metrics.h"

namespace fpm {

ClassDecomposition DecomposeClasses(const Database& db,
                                    Support min_support) {
  ClassDecomposition out;
  const ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  const Database ranked = RemapItems(db, order);
  out.rank_to_item = order.to_item();

  const auto& freq = ranked.item_frequencies();
  size_t num_frequent = 0;
  while (num_frequent < freq.size() && freq[num_frequent] >= min_support) {
    ++num_frequent;
  }
  out.class_supports.assign(freq.begin(), freq.begin() + num_frequent);

  out.builders.resize(num_frequent);
  out.class_entries.assign(num_frequent, 0);
  for (Tid t = 0; t < ranked.num_transactions(); ++t) {
    const auto tx = ranked.transaction(t);
    // Ranks ascend within the transaction, so the frequent items form a
    // prefix; infrequent items can appear in no frequent itemset.
    size_t m = 0;
    while (m < tx.size() && tx[m] < num_frequent) ++m;
    const Support w = ranked.weight(t);
    for (size_t j = 1; j < m; ++j) {
      // The prefix of a rank-sorted duplicate-free transaction is
      // itself sorted and duplicate-free: take the builder's fast path
      // instead of re-deriving the ordering per class.
      out.builders[tx[j]].AddSortedTransaction(tx.subspan(0, j), w);
      out.class_entries[tx[j]] += j;
      out.projection_entries += j;
    }
  }

  // Class-size distribution: how balanced the decomposition is.
  MetricsRegistry& registry = MetricsRegistry::Default();
  if (registry.enabled()) {
    static Histogram* class_sizes = registry.GetHistogram(
        "fpm.parallel.class_entries",
        {0, 10, 100, 1000, 10000, 100000, 1000000});
    static Counter* classes = registry.GetCounter("fpm.parallel.classes");
    for (uint64_t entries : out.class_entries) class_sizes->Observe(entries);
    classes->Add(out.class_entries.size());
  }
  return out;
}

}  // namespace fpm
