// Nested fork-join mining driver.
//
// Like ParallelMiner, decomposes the search space into first-item
// equivalence classes — but instead of treating a class as the atom of
// parallelism, it hands every class kernel a SubtreeSpawner
// (fpm/algo/subtree.h): when the kernel's recursion reaches a subtree
// whose estimated work clears an adaptive cutoff, the subtree is
// detached (its conditional structures copied into a task-private arena
// leased from an ArenaPool) and forked onto the same TaskGroup as the
// class tasks. A skewed class therefore no longer serializes the tail of
// the run: its heavy subtrees migrate to idle workers, which is exactly
// the load-balance failure mode of the top-level driver.
//
// Determinism: every task owns a TreeShard — an op log of emissions and
// child markers recorded in DFS order. A spawn inserts a child marker at
// the current log position; the subtree's emissions land in the child
// shard. Replaying the shard tree (depth-first, markers expanded in
// place) after the join reproduces the sequential kernel's emission
// order byte-for-byte, no matter which workers mined what, or whether a
// given subtree was spawned or mined inline.

#ifndef FPM_PARALLEL_NESTED_MINER_H_
#define FPM_PARALLEL_NESTED_MINER_H_

#include <string>

#include "fpm/algo/miner.h"
#include "fpm/parallel/parallel_miner.h"

namespace fpm {

/// Configuration of the nested driver.
struct NestedParallelMinerOptions {
  ExecutionPolicy execution;
  /// Per-task kernel factory (required); see MinerFactory.
  MinerFactory factory;
  /// Display name of the kernel the factory produces.
  std::string kernel_name = "kernel";
  /// Base spawn cutoff in conditional-database entries. A subtree at
  /// depth d is spawned when its work estimate is at least
  /// base << min(d, 20); 0 picks the base automatically as
  /// max(256, projection_entries / 256). Tests set 1 to force spawning
  /// on tiny databases.
  uint64_t spawn_min_entries = 0;
};

/// Fork-join driver around a re-entrant sequential kernel. Exact: emits
/// the same itemsets (with the same supports) as the kernel run
/// directly; in deterministic mode, in the same order. Like the
/// kernels, a single Mine() call at a time per instance.
class NestedParallelMiner : public Miner {
 public:
  explicit NestedParallelMiner(NestedParallelMinerOptions options);

  std::string name() const override;

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;

 private:
  NestedParallelMinerOptions options_;
};

}  // namespace fpm

#endif  // FPM_PARALLEL_NESTED_MINER_H_
