#include "fpm/parallel/thread_pool.h"

#include <utility>

#include "fpm/obs/metrics.h"

namespace fpm {
namespace {

// Identifies the pool (and worker slot) owning the current thread, so
// nested Submit() calls can target the submitting worker's own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local uint32_t tls_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  submits_counter_ = registry.GetCounter("fpm.pool.submits");
  steals_counter_ = registry.GetCounter("fpm.pool.steals");
  idle_waits_counter_ = registry.GetCounter("fpm.pool.idle_waits");
  help_runs_counter_ = registry.GetCounter("fpm.pool.help_runs");
  const uint32_t n = num_threads < 1 ? 1 : num_threads;
  queues_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lk(wait_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

uint32_t ThreadPool::HardwareThreads() {
  const uint32_t n = std::thread::hardware_concurrency();
  return n < 1 ? 1 : n;
}

void ThreadPool::Submit(std::function<void()> task) {
  submits_counter_->Increment();
  // Nested submissions go to the submitting worker's own deque (LIFO:
  // keeps the working set hot); external ones are spread round-robin.
  uint32_t qi;
  if (tls_pool == this) {
    qi = tls_worker_index;
  } else {
    qi = next_queue_.fetch_add(1, std::memory_order_relaxed) %
         queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(wait_mu_);
    ++pending_;
    ++epoch_;
    std::lock_guard<std::mutex> qlk(queues_[qi]->mu);
    queues_[qi]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(wait_mu_);
  done_cv_.wait(lk, [this] { return pending_ == 0; });
}

void ThreadPool::HelpWhile(const std::function<bool()>& done) {
  if (tls_pool != this) {
    // Non-worker threads cannot help (they would oversubscribe the
    // configured worker count); they sleep on done_cv_ — NOT work_cv_,
    // where they could consume a Submit() notify_one meant for a worker
    // and strand the task. NotifyGroupWaiters() signals done_cv_ too.
    std::unique_lock<std::mutex> lk(wait_mu_);
    done_cv_.wait(lk, [&done] { return done(); });
    return;
  }
  const uint32_t worker_index = tls_worker_index;
  for (;;) {
    // Same missed-wakeup discipline as WorkerLoop: snapshot the epoch
    // before scanning, and sleep only if it is unchanged. Group
    // completion bumps the epoch too (NotifyGroupWaiters), so a join
    // that races with the final task's completion never sleeps past it.
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lk(wait_mu_);
      seen = epoch_;
    }
    if (done()) return;
    std::function<void()> task = TakeTask(worker_index);
    if (task) {
      help_runs_counter_->Increment();
      task();
      std::lock_guard<std::mutex> lk(wait_mu_);
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lk(wait_mu_);
    if (stop_) return;
    idle_waits_counter_->Increment();
    work_cv_.wait(lk, [this, seen, &done] {
      return stop_ || epoch_ != seen || done();
    });
    if (done()) return;
  }
}

void ThreadPool::NotifyGroupWaiters() {
  {
    // Bump the epoch so a helper that snapshotted it before the final
    // task finished fails its sleep predicate and re-checks done().
    std::lock_guard<std::mutex> lk(wait_mu_);
    ++epoch_;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
}

void TaskGroup::Run(std::function<void()> task) {
  pending_->fetch_add(1, std::memory_order_relaxed);
  // The wrapper captures only the pool pointer and the shared pending
  // count — never `this` — so the group object itself may die (or be
  // reused) while wrappers are still in flight.
  ThreadPool* pool = pool_;
  pool_->Submit(
      [pool, pending = pending_, fn = std::move(task)]() mutable {
        fn();
        // Destroy the task before announcing completion: a joiner may
        // tear down state the task's captures reference (arena leases,
        // sink shards) as soon as the count hits zero.
        fn = nullptr;
        if (pending->fetch_sub(1, std::memory_order_acq_rel) == 1) {
          pool->NotifyGroupWaiters();
        }
      });
}

void TaskGroup::Wait() {
  const std::atomic<uint64_t>* pending = pending_.get();
  pool_->HelpWhile([pending] {
    return pending->load(std::memory_order_acquire) == 0;
  });
}

std::function<void()> ThreadPool::TakeTask(uint32_t worker_index) {
  const size_t n = queues_.size();
  {
    WorkerQueue& own = *queues_[worker_index];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  for (size_t k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(worker_index + k) % n];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      steals_counter_->Increment();
      return task;
    }
  }
  return {};
}

void ThreadPool::WorkerLoop(uint32_t worker_index) {
  tls_pool = this;
  tls_worker_index = worker_index;
  for (;;) {
    // Record the submission epoch before scanning: a submission that
    // races with the scan bumps the epoch, which defeats the cv wait's
    // predicate below — no sleep, rescan. No wakeup can be missed.
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lk(wait_mu_);
      seen = epoch_;
    }
    std::function<void()> task = TakeTask(worker_index);
    if (task) {
      task();
      std::lock_guard<std::mutex> lk(wait_mu_);
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lk(wait_mu_);
    if (stop_) return;
    idle_waits_counter_->Increment();
    work_cv_.wait(lk, [this, seen] { return stop_ || epoch_ != seen; });
  }
}

}  // namespace fpm
