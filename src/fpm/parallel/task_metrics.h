// fpm.task.* telemetry shared by the parallel drivers.
//
// One TaskTelemetry per Mine() call records every mining task's wall
// time (a histogram plus a per-worker busy-time ledger) and the nested
// driver's spawn/cutoff decisions. Finish() turns the ledger into the
// load-balance gauges the scaling bench reports:
//
//   fpm.task.spawns           subtrees accepted as tasks
//   fpm.task.cutoffs          subtrees declined (mined inline)
//   fpm.task.depth            histogram of spawn depths
//   fpm.task.wall_micros      histogram of per-task wall times
//   fpm.task.busy_max_micros  busiest worker's total task time
//   fpm.task.busy_mean_micros mean total task time over active workers
//   fpm.task.imbalance_milli  1000 * max / mean (1000 == perfectly even)

#ifndef FPM_PARALLEL_TASK_METRICS_H_
#define FPM_PARALLEL_TASK_METRICS_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace fpm {

class Counter;
class Gauge;
class Histogram;

/// Per-run task telemetry. RecordTask()/RecordSpawn()/RecordCutoff() are
/// safe from any thread; Finish() must be called once, after the join.
/// When the default metrics registry is disabled every call is a cheap
/// no-op apart from the busy ledger (one mutexed map update per task —
/// tasks are coarse, so this is nowhere near the hot path).
class TaskTelemetry {
 public:
  TaskTelemetry();

  TaskTelemetry(const TaskTelemetry&) = delete;
  TaskTelemetry& operator=(const TaskTelemetry&) = delete;

  /// One mining task (equivalence class or detached subtree) finished on
  /// the calling thread after `wall_micros` of work.
  void RecordTask(uint64_t wall_micros);

  /// A subtree offer was accepted at `depth`.
  void RecordSpawn(uint32_t depth);

  /// A subtree offer was declined (the kernel recursed inline).
  void RecordCutoff();

  /// Publishes the busy_max / busy_mean / imbalance gauges.
  void Finish();

  /// Busiest worker's accumulated task micros (valid any time).
  uint64_t busy_max_micros() const;
  /// Mean accumulated task micros over workers that ran >= 1 task.
  uint64_t busy_mean_micros() const;

 private:
  // Resolved once at construction; null when the registry is disabled.
  Counter* spawns_ = nullptr;
  Counter* cutoffs_ = nullptr;
  Histogram* depth_hist_ = nullptr;
  Histogram* wall_hist_ = nullptr;
  Gauge* busy_max_gauge_ = nullptr;
  Gauge* busy_mean_gauge_ = nullptr;
  Gauge* imbalance_gauge_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<uint32_t, uint64_t> busy_micros_;  // ObsThreadIndex ->
};

}  // namespace fpm

#endif  // FPM_PARALLEL_TASK_METRICS_H_
