// Task-parallel mining driver.
//
// Decomposes the search space into independent first-item equivalence
// classes, in the spirit of the task-parallel FPM literature (Kambadur
// et al.; Zymbler — see PAPERS.md): items are ranked by frequency, each
// transaction is suffix-projected, and the class owned by item i (the
// *least frequent* item of its itemsets) receives the conditional
// database of i — the transactions containing i, restricted to items
// more frequent than i. Classes are disjoint and jointly exhaustive, so
// each one is mined independently by a fresh instance of the existing
// sequential kernel (Eclat rebuilds per-class tidlists, LCM per-class
// occurrence arrays, FP-Growth per-class conditional FP-trees — the
// projection is handed over as a plain horizontal Database, the
// representation every kernel accepts) on a work-stealing ThreadPool.
//
// Results flow through per-class CollectingSink shards (deterministic
// mode: merged into the caller's sink in class order once all tasks
// finish) or directly into the caller's sink under a lock
// (non-deterministic mode: streamed as classes finish). Either way the
// caller's sink only ever sees serialized Emit() calls — the ItemsetSink
// concurrency contract.

#ifndef FPM_PARALLEL_PARALLEL_MINER_H_
#define FPM_PARALLEL_PARALLEL_MINER_H_

#include <functional>
#include <memory>
#include <string>

#include "fpm/algo/miner.h"

namespace fpm {

/// Creates a fresh sequential kernel instance. Called once per mining
/// task, possibly concurrently from several workers — must be
/// thread-safe (stateless factories, e.g. a lambda over value-captured
/// options, trivially are).
using MinerFactory =
    std::function<Result<std::unique_ptr<Miner>>()>;

/// Configuration of the parallel driver.
struct ParallelMinerOptions {
  ExecutionPolicy execution;
  /// Per-task kernel factory (required).
  MinerFactory factory;
  /// Display name of the kernel the factory produces, e.g. "eclat+lex".
  std::string kernel_name = "kernel";
};

/// Task-parallel driver around a sequential kernel. Exact: emits the
/// same itemsets (with the same supports) as the kernel run directly.
/// Like the kernels, a single Mine() call at a time per instance.
class ParallelMiner : public Miner {
 public:
  explicit ParallelMiner(ParallelMinerOptions options);

  std::string name() const override;

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;

 private:
  ParallelMinerOptions options_;
};

}  // namespace fpm

#endif  // FPM_PARALLEL_PARALLEL_MINER_H_
