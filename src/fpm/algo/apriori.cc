#include "fpm/algo/apriori.h"

#include <algorithm>
#include <vector>

#include "fpm/algo/candidate_trie.h"
#include "fpm/obs/trace.h"

namespace fpm {
namespace {

// Candidate k-itemsets as a flat sorted matrix: candidates[i*k .. i*k+k)
// holds the i-th candidate's items ascending; the candidate list itself
// is lexicographically sorted (a by-product of the join).
struct CandidateLevel {
  size_t k = 0;
  std::vector<Item> items;    // k items per candidate
  std::vector<Support> counts;

  size_t size() const { return k == 0 ? 0 : items.size() / k; }
  std::span<const Item> candidate(size_t i) const {
    return {items.data() + i * k, k};
  }
};

// Binary search for `key` in the sorted candidate list of `level`.
bool ContainsCandidate(const CandidateLevel& level,
                       std::span<const Item> key) {
  size_t lo = 0, hi = level.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const auto cand = level.candidate(mid);
    if (std::lexicographical_compare(cand.begin(), cand.end(), key.begin(),
                                     key.end())) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= level.size()) return false;
  const auto cand = level.candidate(lo);
  return std::equal(cand.begin(), cand.end(), key.begin(), key.end());
}

// Join step: pairs of frequent (k-1)-itemsets sharing their first k-2
// items produce a k-candidate; prune candidates with an infrequent
// (k-1)-subset.
CandidateLevel GenerateCandidates(const CandidateLevel& prev) {
  CandidateLevel next;
  next.k = prev.k + 1;
  std::vector<Item> scratch(next.k);
  std::vector<Item> subset(prev.k);
  for (size_t i = 0; i < prev.size(); ++i) {
    const auto a = prev.candidate(i);
    for (size_t j = i + 1; j < prev.size(); ++j) {
      const auto b = prev.candidate(j);
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
      // a and b share the k-2 prefix; a < b lexicographically.
      std::copy(a.begin(), a.end(), scratch.begin());
      scratch[next.k - 1] = b[prev.k - 1];
      // Prune: every (k-1)-subset must be frequent. The two subsets that
      // produced the join are frequent by construction; check the rest.
      bool keep = true;
      for (size_t drop = 0; drop + 2 < next.k && keep; ++drop) {
        size_t out = 0;
        for (size_t pos = 0; pos < next.k; ++pos) {
          if (pos != drop) subset[out++] = scratch[pos];
        }
        keep = ContainsCandidate(prev, subset);
      }
      if (keep) {
        next.items.insert(next.items.end(), scratch.begin(), scratch.end());
      }
    }
  }
  next.counts.assign(next.size(), 0);
  return next;
}

}  // namespace

Result<MineStats> AprioriMiner::MineImpl(const Database& db,
                                         Support min_support,
                                         ItemsetSink* sink) {
  MineStats stats;
  PhaseSpan mine_span(PhaseName(PhaseId::kMine));

  // L1: frequent items (raw ids; Apriori needs no re-ranking, but the
  // candidate machinery needs sorted transactions of frequent items).
  const auto& freq = db.item_frequencies();
  CandidateLevel level;
  level.k = 1;
  for (Item i = 0; i < freq.size(); ++i) {
    if (freq[i] >= min_support) {
      level.items.push_back(i);
      level.counts.push_back(freq[i]);
    }
  }

  std::vector<std::vector<Item>> transactions;
  transactions.reserve(db.num_transactions());
  std::vector<Support> weights;
  {
    std::vector<bool> frequent(db.num_items(), false);
    for (size_t i = 0; i < level.size(); ++i) {
      frequent[level.candidate(i)[0]] = true;
    }
    std::vector<Item> scratch;
    for (Tid t = 0; t < db.num_transactions(); ++t) {
      scratch.clear();
      for (Item it : db.transaction(t)) {
        if (frequent[it]) scratch.push_back(it);
      }
      if (scratch.empty()) continue;
      std::sort(scratch.begin(), scratch.end());
      transactions.push_back(scratch);
      weights.push_back(db.weight(t));
    }
  }

  while (level.size() > 0) {
    // Emit the level.
    for (size_t i = 0; i < level.size(); ++i) {
      sink->Emit(level.candidate(i), level.counts[i]);
      ++stats.num_frequent;
    }
    // Generate and count the next level.
    CandidateLevel next = GenerateCandidates(level);
    if (next.size() == 0) break;
    CandidateTrie trie;
    for (size_t i = 0; i < next.size(); ++i) {
      trie.Insert(next.candidate(i), static_cast<uint32_t>(i));
    }
    for (size_t t = 0; t < transactions.size(); ++t) {
      if (transactions[t].size() >= next.k) {
        trie.CountTransaction(transactions[t], weights[t], &next.counts);
      }
    }
    // Keep only frequent candidates.
    CandidateLevel pruned;
    pruned.k = next.k;
    for (size_t i = 0; i < next.size(); ++i) {
      if (next.counts[i] >= min_support) {
        const auto cand = next.candidate(i);
        pruned.items.insert(pruned.items.end(), cand.begin(), cand.end());
        pruned.counts.push_back(next.counts[i]);
      }
    }
    level = std::move(pruned);
  }

  stats.FinishPhase(PhaseId::kMine, mine_span);
  return stats;
}

}  // namespace fpm
