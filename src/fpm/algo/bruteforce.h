// Reference miner: depth-first enumeration with naive per-candidate
// support counting over the full database. Exponentially slower than the
// real miners but obviously correct — the oracle every other miner is
// property-tested against.

#ifndef FPM_ALGO_BRUTEFORCE_H_
#define FPM_ALGO_BRUTEFORCE_H_

#include "fpm/algo/miner.h"

namespace fpm {

/// Oracle miner for tests. Only use on small databases.
class BruteForceMiner : public Miner {
 public:
  std::string name() const override { return "bruteforce"; }

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;
};

}  // namespace fpm

#endif  // FPM_ALGO_BRUTEFORCE_H_
