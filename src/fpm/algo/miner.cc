#include "fpm/algo/miner.h"

#include <optional>
#include <utility>

#include "fpm/algo/postprocess.h"
#include "fpm/algo/topk.h"
#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"

namespace fpm {
namespace {

// Per-call metrics. Function-local statics so registration (which takes
// the registry mutex) happens once per process, not once per Mine() —
// parallel per-class mining calls this from every worker.
void RecordMineMetrics(const MineStats& stats) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  if (!registry.enabled()) return;
  static Counter* calls = registry.GetCounter("fpm.mine.calls");
  static Counter* itemsets = registry.GetCounter("fpm.mine.itemsets");
  static Gauge* peak_bytes =
      registry.GetGauge("fpm.mine.peak_structure_bytes");
  static Histogram* itemsets_hist = registry.GetHistogram(
      "fpm.mine.itemsets_per_call",
      {1, 10, 100, 1000, 10000, 100000, 1000000});
  calls->Increment();
  itemsets->Add(stats.num_frequent);
  peak_bytes->UpdateMax(stats.peak_structure_bytes);
  itemsets_hist->Observe(stats.num_frequent);
}

// Replays a materialized listing into the caller's sink, preserving
// its order.
void Replay(const std::vector<CollectingSink::Entry>& entries,
            ItemsetSink* sink) {
  for (const CollectingSink::Entry& e : entries) {
    sink->Emit(e.first, e.second);
  }
}

// Mines the canonical closed-set listing at `min_support` into `*out`,
// through the algorithm's native closed kernel when it has one, else by
// filtering the full frequent listing.
Result<MineStats> MineClosedListing(Miner& miner, const Database& db,
                                    Support min_support,
                                    std::vector<CollectingSink::Entry>* out) {
  CollectingSink sink;
  MineStats stats;
  std::unique_ptr<Miner> native = miner.NativeClosedMiner();
  if (native != nullptr) {
    FPM_ASSIGN_OR_RETURN(stats, native->Mine(db, min_support, &sink));
    sink.Canonicalize();
    *out = std::move(sink.mutable_results());
  } else {
    FPM_ASSIGN_OR_RETURN(stats, miner.Mine(db, min_support, &sink));
    sink.Canonicalize();
    *out = FilterClosed(sink.results());
  }
  stats.num_frequent = out->size();
  return stats;
}

}  // namespace

std::string_view PhaseName(PhaseId phase) {
  switch (phase) {
    case PhaseId::kPrepare: return "prepare";
    case PhaseId::kBuild: return "build";
    case PhaseId::kMine: return "mine";
  }
  return "unknown";
}

Result<MineStats> Miner::Mine(const Database& db, const MiningQuery& query,
                              ItemsetSink* sink) {
  FPM_RETURN_IF_ERROR(query.Validate());
  if (sink == nullptr) return Status::InvalidArgument("sink is null");
  switch (query.task) {
    case MiningTask::kFrequent:
      return MineNested(db, query.min_support, sink, nullptr);
    case MiningTask::kClosed: {
      std::vector<CollectingSink::Entry> listing;
      FPM_ASSIGN_OR_RETURN(
          MineStats stats,
          MineClosedListing(*this, db, query.min_support, &listing));
      Replay(listing, sink);
      return stats;
    }
    case MiningTask::kMaximal: {
      std::vector<CollectingSink::Entry> listing;
      FPM_ASSIGN_OR_RETURN(
          MineStats stats,
          MineClosedListing(*this, db, query.min_support, &listing));
      const std::vector<CollectingSink::Entry> maximal =
          FilterMaximalFromClosed(listing);
      Replay(maximal, sink);
      stats.num_frequent = maximal.size();
      return stats;
    }
    case MiningTask::kTopK: {
      std::vector<CollectingSink::Entry> entries;
      FPM_ASSIGN_OR_RETURN(MineStats stats,
                           MineTopK(*this, db, query, &entries));
      Replay(entries, sink);
      return stats;
    }
    case MiningTask::kRules:
      return Status::InvalidArgument(
          "rules queries produce rules, not itemsets; call MineRules()");
  }
  return Status::InvalidArgument("unknown mining task");
}

Result<MineStats> Miner::MineRules(const Database& db,
                                   const MiningQuery& query,
                                   std::vector<AssociationRule>* rules) {
  if (query.task != MiningTask::kRules) {
    return Status::InvalidArgument("MineRules requires a rules query");
  }
  FPM_RETURN_IF_ERROR(query.Validate());
  if (rules == nullptr) return Status::InvalidArgument("rules is null");

  std::vector<CollectingSink::Entry> listing;
  FPM_ASSIGN_OR_RETURN(
      MineStats stats,
      MineClosedListing(*this, db, query.min_support, &listing));

  RuleOptions options;
  options.min_confidence = query.min_confidence;
  options.min_lift = query.min_lift;
  options.max_consequent = query.max_consequent;
  FPM_ASSIGN_OR_RETURN(
      *rules, GenerateRulesFromClosed(listing, db.total_weight(), options));
  stats.num_frequent = rules->size();
  return stats;
}

Result<MineStats> Miner::MineNested(const Database& db, Support min_support,
                                    ItemsetSink* sink,
                                    SubtreeSpawner* spawner) {
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (sink == nullptr) return Status::InvalidArgument("sink is null");

  // Wrap the whole call in a span named after the configured miner. The
  // optional keeps the disabled path free of the name() string build.
  std::optional<ScopedSpan> span;
  if (Tracer::Default().enabled()) {
    span.emplace(name());
  }

  Result<MineStats> result = MineNestedImpl(db, min_support, sink, spawner);
  if (result.ok()) {
    if (span.has_value()) {
      span->AddArg("itemsets", result->num_frequent);
      span->AddArg("peak_structure_bytes", result->peak_structure_bytes);
    }
    RecordMineMetrics(*result);
  }
  return result;
}

}  // namespace fpm
