#include "fpm/algo/miner.h"

#include <optional>

#include "fpm/obs/metrics.h"
#include "fpm/obs/trace.h"

namespace fpm {
namespace {

// Per-call metrics. Function-local statics so registration (which takes
// the registry mutex) happens once per process, not once per Mine() —
// parallel per-class mining calls this from every worker.
void RecordMineMetrics(const MineStats& stats) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  if (!registry.enabled()) return;
  static Counter* calls = registry.GetCounter("fpm.mine.calls");
  static Counter* itemsets = registry.GetCounter("fpm.mine.itemsets");
  static Gauge* peak_bytes =
      registry.GetGauge("fpm.mine.peak_structure_bytes");
  static Histogram* itemsets_hist = registry.GetHistogram(
      "fpm.mine.itemsets_per_call",
      {1, 10, 100, 1000, 10000, 100000, 1000000});
  calls->Increment();
  itemsets->Add(stats.num_frequent);
  peak_bytes->UpdateMax(stats.peak_structure_bytes);
  itemsets_hist->Observe(stats.num_frequent);
}

}  // namespace

std::string_view PhaseName(PhaseId phase) {
  switch (phase) {
    case PhaseId::kPrepare: return "prepare";
    case PhaseId::kBuild: return "build";
    case PhaseId::kMine: return "mine";
  }
  return "unknown";
}

Result<MineStats> Miner::Mine(const Database& db, Support min_support,
                              ItemsetSink* sink) {
  return MineNested(db, min_support, sink, nullptr);
}

Result<MineStats> Miner::MineNested(const Database& db, Support min_support,
                                    ItemsetSink* sink,
                                    SubtreeSpawner* spawner) {
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (sink == nullptr) return Status::InvalidArgument("sink is null");

  // Wrap the whole call in a span named after the configured miner. The
  // optional keeps the disabled path free of the name() string build.
  std::optional<ScopedSpan> span;
  if (Tracer::Default().enabled()) {
    span.emplace(name());
  }

  Result<MineStats> result = MineNestedImpl(db, min_support, sink, spawner);
  if (result.ok()) {
    if (span.has_value()) {
      span->AddArg("itemsets", result->num_frequent);
      span->AddArg("peak_structure_bytes", result->peak_structure_bytes);
    }
    RecordMineMetrics(*result);
  }
  return result;
}

}  // namespace fpm
