// FP-tree stores (§4.3, Figure 7).
//
// Two interchangeable implementations of the augmented prefix tree:
//
//   PointerFpTree — the baseline: individually shaped 40-byte nodes with
//   parent / first-child / next-sibling / node-link pointers, allocated
//   from an arena in insertion order. Traversal is a dependent-load
//   chain: the memory-bound behaviour Figure 2 profiles.
//
//   CompactFpTree — pattern P2 (+P3/P4): structure-of-arrays nodes where
//   the item id is differentially encoded against the parent's item in a
//   single byte (escape map for the rare large deltas), cutting the
//   per-node footprint from 40 to ~13 bytes; an optional DFS re-layout
//   renumbers nodes so parent chains and node-link chains become
//   index-contiguous (the re-organization the paper's "Reorg" bars
//   measure); optional node-link jump pointers (P5) drive software
//   prefetch (P7) during the header-link walks.
//
// Both expose the same mining interface: AddPath / Finalize /
// ItemSupport / ForEachPath / SinglePath, so the FP-Growth recursion is
// written once (fpgrowth_miner.cc) and templated over the store.
//
// Items inside one tree are dense ranks (0 = most frequent); paths are
// inserted with items ascending, so item values strictly increase from
// root to leaf — the property differential encoding relies on.

#ifndef FPM_ALGO_FPGROWTH_FPTREE_H_
#define FPM_ALGO_FPGROWTH_FPTREE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fpm/common/arena.h"
#include "fpm/common/prefetch.h"
#include "fpm/dataset/types.h"

namespace fpm {

/// Shared tuning knobs for the tree stores.
struct FpTreeConfig {
  bool software_prefetch = false;  ///< P7 during link/path walks
  bool dfs_relayout = false;       ///< P3/P4 (CompactFpTree only)
  uint32_t jump_distance = 4;      ///< P5 link-chain jump pointers
};

/// Baseline pointer-based FP-tree.
class PointerFpTree {
 public:
  struct Node {
    Node* parent;
    Node* first_child;
    Node* next_sibling;
    Node* node_link;
    Item item;
    Support count;
  };

  PointerFpTree(uint32_t item_bound, const FpTreeConfig& config);

  /// Inserts one path (items strictly ascending), adding `count` to every
  /// node on it.
  void AddPath(std::span<const Item> items, Support count);

  /// Must be called once after the last AddPath and before mining.
  void Finalize();

  /// Items present in the tree, ascending.
  const std::vector<Item>& items() const { return present_items_; }

  /// Total count over `item`'s node-link chain (its support here).
  Support ItemSupport(Item item) const;

  /// Invokes fn(path_items_ascending, count) for every node on `item`'s
  /// link chain; the span holds the node's proper ancestors (root
  /// excluded) and is valid only during the call.
  template <typename Fn>
  void ForEachPath(Item item, Fn&& fn) const {
    for (const Node* n = link_head_[item]; n != nullptr; n = n->node_link) {
      if (config_.software_prefetch) Prefetch(n->node_link);
      path_scratch_.clear();
      for (const Node* a = n->parent; a->parent != nullptr; a = a->parent) {
        path_scratch_.push_back(a->item);
      }
      // Ancestors were collected leaf->root (descending); present them
      // ascending.
      std::reverse(path_scratch_.begin(), path_scratch_.end());
      fn(std::span<const Item>(path_scratch_), n->count);
    }
  }

  /// True when the whole tree is a single chain; fills (item, count)
  /// pairs root->leaf.
  bool SinglePath(std::vector<std::pair<Item, Support>>* path) const;

  size_t num_nodes() const { return num_nodes_; }
  size_t memory_bytes() const {
    return arena_.bytes_reserved() + link_head_.size() * sizeof(Node*);
  }

 private:
  Node* NewNode(Node* parent, Item item);

  FpTreeConfig config_;
  Arena arena_;
  Node* root_;
  std::vector<Node*> link_head_;
  std::vector<Node*> link_tail_;
  std::vector<Node*> root_child_;  // direct child index under the root
  std::vector<Item> present_items_;
  size_t num_nodes_ = 0;
  mutable std::vector<Item> path_scratch_;
};

/// Compact diff-encoded SoA FP-tree (P2, optionally P3/P4 + P5).
class CompactFpTree {
 public:
  CompactFpTree(uint32_t item_bound, const FpTreeConfig& config);

  void AddPath(std::span<const Item> items, Support count);
  void Finalize();

  const std::vector<Item>& items() const { return present_items_; }
  Support ItemSupport(Item item) const;

  template <typename Fn>
  void ForEachPath(Item item, Fn&& fn) const {
    const uint32_t* parent = parent_.data();
    const uint8_t* diff = diff_.data();
    for (uint32_t n = link_head_[item]; n != kNone; n = link_next_[n]) {
      if (config_.software_prefetch) {
        // P5: jump pointer reaches `jump_distance` chain hops ahead;
        // prefetch its hot SoA entries.
        const uint32_t j = jump_.empty() ? link_next_[n] : jump_[n];
        if (j != kNone) {
          Prefetch(&parent_[j]);
          Prefetch(&count_[j]);
        }
      }
      // Collect ancestor node ids leaf->root, then decode items
      // root->leaf (differential decoding needs the parent's item
      // first).
      node_scratch_.clear();
      for (uint32_t a = parent[n]; a != 0; a = parent[a]) {
        node_scratch_.push_back(a);
      }
      path_scratch_.clear();
      int64_t prev_item = -1;
      for (size_t i = node_scratch_.size(); i-- > 0;) {
        const uint32_t node = node_scratch_[i];
        const int64_t item_value =
            diff[node] == kEscape
                ? static_cast<int64_t>(escape_.at(node))
                : prev_item + diff[node];
        path_scratch_.push_back(static_cast<Item>(item_value));
        prev_item = item_value;
      }
      fn(std::span<const Item>(path_scratch_), count_[n]);
    }
  }

  bool SinglePath(std::vector<std::pair<Item, Support>>* path) const;

  size_t num_nodes() const { return parent_.size(); }
  size_t memory_bytes() const;

  /// Decoded item of a node (test hook; mining decodes along paths).
  Item NodeItem(uint32_t node) const;

 private:
  static constexpr uint32_t kNone = ~static_cast<uint32_t>(0);
  static constexpr uint8_t kEscape = 0xff;

  uint32_t NewNode(uint32_t parent, Item item, int64_t parent_item);
  void RelayoutDfs();

  FpTreeConfig config_;
  // SoA node arrays; node 0 is the root.
  std::vector<uint32_t> parent_;
  std::vector<Support> count_;
  std::vector<uint8_t> diff_;
  std::vector<uint32_t> first_child_;
  std::vector<uint32_t> next_sibling_;
  std::vector<uint32_t> link_next_;
  std::vector<uint32_t> jump_;  // P5, built in Finalize when enabled
  std::unordered_map<uint32_t, Item> escape_;

  std::vector<uint32_t> link_head_;
  std::vector<uint32_t> root_child_;
  std::vector<Item> present_items_;
  mutable std::vector<Item> path_scratch_;
  mutable std::vector<uint32_t> node_scratch_;
};

}  // namespace fpm

#endif  // FPM_ALGO_FPGROWTH_FPTREE_H_
