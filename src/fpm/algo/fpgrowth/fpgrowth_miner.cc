#include "fpm/algo/fpgrowth/fpgrowth_miner.h"

#include <algorithm>
#include <vector>

#include "fpm/algo/fpgrowth/fptree.h"
#include "fpm/layout/item_order.h"
#include "fpm/layout/lexicographic.h"
#include "fpm/obs/trace.h"

namespace fpm {

std::string FpGrowthOptions::Suffix() const {
  std::string s;
  if (lexicographic_order) s += "+lex";
  if (node_compaction || dfs_relayout) s += "+cmp";
  if (dfs_relayout) s += "+dfs";
  if (software_prefetch) s += "+pref";
  return s;
}

namespace {

// The FP-Growth recursion, shared by both tree stores.
template <typename Tree>
class FpGrowthRun {
 public:
  FpGrowthRun(const FpTreeConfig& tree_config, Support min_support,
              const std::vector<Item>& item_map, ItemsetSink* sink,
              MineStats* stats)
      : tree_config_(tree_config),
        min_support_(min_support),
        item_map_(item_map),
        sink_(sink),
        stats_(stats) {}

  void MineTree(const Tree& tree, std::vector<Item>* prefix) {
    // Single-path shortcut: enumerate all subsets directly; the support
    // of a subset is the count of its deepest element.
    std::vector<std::pair<Item, Support>> path;
    if (tree.SinglePath(&path)) {
      if (!path.empty()) EnumeratePath(path, 0, prefix);
      return;
    }

    // Bottom-up: least frequent item (largest rank) first.
    const std::vector<Item>& items = tree.items();
    std::vector<Support> cond_counts;
    std::vector<Item> filtered;
    for (size_t pos = items.size(); pos-- > 0;) {
      const Item item = items[pos];
      const Support support = tree.ItemSupport(item);
      prefix->push_back(item_map_[item]);
      sink_->Emit(*prefix, support);
      ++stats_->num_frequent;

      if (item > 0) {
        // Conditional pattern base: count items over the upward paths.
        cond_counts.assign(item, 0);
        tree.ForEachPath(item, [&](std::span<const Item> base,
                                   Support count) {
          for (Item it : base) cond_counts[it] += count;
        });
        bool any = false;
        for (Item i = 0; i < item; ++i) {
          if (cond_counts[i] >= min_support_) {
            any = true;
            break;
          }
        }
        if (any) {
          // Build the conditional tree from the filtered paths.
          Tree cond(item, tree_config_);
          tree.ForEachPath(item, [&](std::span<const Item> base,
                                     Support count) {
            filtered.clear();
            for (Item it : base) {
              if (cond_counts[it] >= min_support_) filtered.push_back(it);
            }
            if (!filtered.empty()) cond.AddPath(filtered, count);
          });
          cond.Finalize();
          MineTree(cond, prefix);
        }
      }
      prefix->pop_back();
    }
  }

 private:
  // Emits every non-empty subset of path[pos..]; the last chosen element
  // is the deepest, so its count is the subset's support.
  void EnumeratePath(const std::vector<std::pair<Item, Support>>& path,
                     size_t pos, std::vector<Item>* prefix) {
    for (size_t j = pos; j < path.size(); ++j) {
      prefix->push_back(item_map_[path[j].first]);
      sink_->Emit(*prefix, path[j].second);
      ++stats_->num_frequent;
      EnumeratePath(path, j + 1, prefix);
      prefix->pop_back();
    }
  }

  const FpTreeConfig& tree_config_;
  const Support min_support_;
  const std::vector<Item>& item_map_;
  ItemsetSink* sink_;
  MineStats* stats_;
};

template <typename Tree>
void RunFpGrowth(const Database& db, const FpGrowthOptions& options,
                 Support min_support, ItemsetSink* sink, MineStats* stats) {
  // Preparation: frequency ranking + optional P1 lexicographic sort.
  PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
  Database ranked;
  std::vector<Item> item_map;
  if (options.lexicographic_order) {
    LexicographicResult lex = LexicographicOrder(db);
    ranked = std::move(lex.database);
    item_map = lex.item_order.to_item();
  } else {
    ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
    ranked = RemapItems(db, order);
    item_map = order.to_item();
  }
  // Frequent ranks form a prefix of the rank space.
  const auto& freq = ranked.item_frequencies();
  uint32_t num_frequent = 0;
  while (num_frequent < freq.size() && freq[num_frequent] >= min_support) {
    ++num_frequent;
  }
  stats->FinishPhase(PhaseId::kPrepare, prep_span);

  // Tree construction (the "insert" phase of Figure 2's profile).
  PhaseSpan build_span(PhaseName(PhaseId::kBuild));
  FpTreeConfig tree_config;
  tree_config.software_prefetch = options.software_prefetch;
  tree_config.dfs_relayout = options.dfs_relayout;
  tree_config.jump_distance = options.jump_distance;

  Tree tree(num_frequent, tree_config);
  std::vector<Item> filtered;
  for (Tid t = 0; t < ranked.num_transactions(); ++t) {
    filtered.clear();
    for (Item it : ranked.transaction(t)) {
      // Ranked transactions are ascending, so the first infrequent rank
      // ends the frequent prefix.
      if (it >= num_frequent) break;
      filtered.push_back(it);
    }
    if (!filtered.empty()) tree.AddPath(filtered, ranked.weight(t));
  }
  tree.Finalize();
  stats->FinishPhase(PhaseId::kBuild, build_span);
  stats->peak_structure_bytes = tree.memory_bytes();

  PhaseSpan mine_span(PhaseName(PhaseId::kMine));
  FpGrowthRun<Tree> run(tree_config, min_support, item_map, sink, stats);
  std::vector<Item> prefix;
  run.MineTree(tree, &prefix);
  stats->FinishPhase(PhaseId::kMine, mine_span);
}

}  // namespace

FpGrowthMiner::FpGrowthMiner(FpGrowthOptions options) : options_(options) {
  if (options_.dfs_relayout) options_.node_compaction = true;
}

Result<MineStats> FpGrowthMiner::MineImpl(const Database& db,
                                          Support min_support,
                                          ItemsetSink* sink) {
  MineStats stats;
  if (options_.node_compaction) {
    RunFpGrowth<CompactFpTree>(db, options_, min_support, sink, &stats);
  } else {
    RunFpGrowth<PointerFpTree>(db, options_, min_support, sink, &stats);
  }
  return stats;
}

}  // namespace fpm
