#include "fpm/algo/fpgrowth/fpgrowth_miner.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "fpm/algo/fpgrowth/fptree.h"
#include "fpm/algo/fpgrowth/incremental_fptree.h"
#include "fpm/algo/subtree.h"
#include "fpm/common/cancel.h"
#include "fpm/layout/item_order.h"
#include "fpm/layout/lexicographic.h"
#include "fpm/obs/trace.h"

namespace fpm {

std::string FpGrowthOptions::Suffix() const {
  std::string s;
  if (lexicographic_order) s += "+lex";
  if (node_compaction || dfs_relayout) s += "+cmp";
  if (dfs_relayout) s += "+dfs";
  if (software_prefetch) s += "+pref";
  return s;
}

namespace {

// A detached subtree: the conditional FP-tree is *moved* into the frame
// (both tree stores are self-contained and movable — PointerFpTree's
// nodes live in its embedded arena, whose heap blocks survive the
// move), so no per-node copy is needed. Held by shared_ptr: SubtreeFn
// is a std::function and must stay copyable.
template <typename Tree>
struct FpFrame {
  FpTreeConfig config;
  Support min_support;
  std::shared_ptr<const std::vector<Item>> item_map;
  Tree tree;
  std::vector<Item> prefix;  // includes the conditional item
  const CancelToken* cancel;
};

// The FP-Growth recursion, shared by both tree stores. Also the body of
// detached subtree tasks, which construct their own run over the
// frame's config/item_map (kept alive by the frame's shared_ptr).
template <typename Tree>
class FpGrowthRun {
 public:
  FpGrowthRun(const FpTreeConfig& tree_config, Support min_support,
              const std::vector<Item>& item_map, ItemsetSink* sink,
              MineStats* stats, SubtreeSpawner* spawner,
              std::shared_ptr<const std::vector<Item>> item_map_shared,
              const CancelToken* cancel)
      : tree_config_(tree_config),
        min_support_(min_support),
        item_map_(item_map),
        sink_(sink),
        stats_(stats),
        spawner_(spawner),
        item_map_shared_(std::move(item_map_shared)),
        cancel_(cancel) {}

  void MineTree(const Tree& tree, std::vector<Item>* prefix,
                uint32_t depth) {
    if (Cancelled()) return;
    // Single-path shortcut: enumerate all subsets directly; the support
    // of a subset is the count of its deepest element.
    std::vector<std::pair<Item, Support>> path;
    if (tree.SinglePath(&path)) {
      if (!path.empty()) EnumeratePath(path, 0, prefix);
      return;
    }

    // Bottom-up: least frequent item (largest rank) first.
    const std::vector<Item>& items = tree.items();
    std::vector<Support> cond_counts;
    std::vector<Item> filtered;
    for (size_t pos = items.size(); pos-- > 0;) {
      if (Cancelled()) return;
      const Item item = items[pos];
      const Support support = tree.ItemSupport(item);
      prefix->push_back(item_map_[item]);
      sink_->Emit(*prefix, support);
      if (stats_ != nullptr) ++stats_->num_frequent;

      if (item > 0) {
        // Conditional pattern base: count items over the upward paths.
        cond_counts.assign(item, 0);
        tree.ForEachPath(item, [&](std::span<const Item> base,
                                   Support count) {
          for (Item it : base) cond_counts[it] += count;
        });
        bool any = false;
        for (Item i = 0; i < item; ++i) {
          if (cond_counts[i] >= min_support_) {
            any = true;
            break;
          }
        }
        if (any) {
          // Build the conditional tree from the filtered paths.
          Tree cond(item, tree_config_);
          tree.ForEachPath(item, [&](std::span<const Item> base,
                                     Support count) {
            filtered.clear();
            for (Item it : base) {
              if (cond_counts[it] >= min_support_) filtered.push_back(it);
            }
            if (!filtered.empty()) cond.AddPath(filtered, count);
          });
          cond.Finalize();
          if (spawner_ == nullptr ||
              !spawner_->Offer(depth + 1, cond.num_nodes(),
                               DetachTree(&cond, *prefix, depth + 1))) {
            MineTree(cond, prefix, depth + 1);
          }
        }
      }
      prefix->pop_back();
    }
  }

 private:
  // Moves the finalized conditional tree into a self-contained frame.
  // Invoked synchronously by the spawner iff the offer is taken — after
  // a true Offer(), *cond is moved-from and must not be mined inline.
  SubtreeSpawner::DetachFn DetachTree(Tree* cond,
                                      const std::vector<Item>& prefix,
                                      uint32_t depth) {
    return [this, cond, &prefix, depth](Arena*) {
      auto frame = std::make_shared<FpFrame<Tree>>(FpFrame<Tree>{
          tree_config_, min_support_, item_map_shared_, std::move(*cond),
          prefix, cancel_});
      return SubtreeSpawner::SubtreeFn(
          [frame, depth](ItemsetSink* sink, SubtreeSpawner* spawner,
                         MineStats* stats) {
            FpGrowthRun<Tree> run(frame->config, frame->min_support,
                                  *frame->item_map, sink, stats, spawner,
                                  frame->item_map, frame->cancel);
            std::vector<Item> pfx = frame->prefix;
            run.MineTree(frame->tree, &pfx, depth);
          });
    };
  }

  // Emits every non-empty subset of path[pos..]; the last chosen element
  // is the deepest, so its count is the subset's support.
  void EnumeratePath(const std::vector<std::pair<Item, Support>>& path,
                     size_t pos, std::vector<Item>* prefix) {
    for (size_t j = pos; j < path.size(); ++j) {
      prefix->push_back(item_map_[path[j].first]);
      sink_->Emit(*prefix, path[j].second);
      if (stats_ != nullptr) ++stats_->num_frequent;
      EnumeratePath(path, j + 1, prefix);
      prefix->pop_back();
    }
  }

  bool Cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }

  const FpTreeConfig& tree_config_;
  const Support min_support_;
  const std::vector<Item>& item_map_;
  ItemsetSink* sink_;
  MineStats* stats_;
  SubtreeSpawner* spawner_;
  // Non-null iff a spawner is present: detached frames co-own the map
  // so it outlives the kernel run that created it.
  std::shared_ptr<const std::vector<Item>> item_map_shared_;
  const CancelToken* cancel_;
};

template <typename Tree>
void RunFpGrowth(const Database& db, const FpGrowthOptions& options,
                 Support min_support, ItemsetSink* sink, MineStats* stats,
                 SubtreeSpawner* spawner) {
  // Preparation: frequency ranking + optional P1 lexicographic sort.
  PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
  Database ranked;
  std::vector<Item> item_map;
  if (options.lexicographic_order) {
    LexicographicResult lex = LexicographicOrder(db);
    ranked = std::move(lex.database);
    item_map = lex.item_order.to_item();
  } else {
    ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
    ranked = RemapItems(db, order);
    item_map = order.to_item();
  }
  // Frequent ranks form a prefix of the rank space.
  const auto& freq = ranked.item_frequencies();
  uint32_t num_frequent = 0;
  while (num_frequent < freq.size() && freq[num_frequent] >= min_support) {
    ++num_frequent;
  }
  stats->FinishPhase(PhaseId::kPrepare, prep_span);

  // Tree construction (the "insert" phase of Figure 2's profile).
  PhaseSpan build_span(PhaseName(PhaseId::kBuild));
  FpTreeConfig tree_config;
  tree_config.software_prefetch = options.software_prefetch;
  tree_config.dfs_relayout = options.dfs_relayout;
  tree_config.jump_distance = options.jump_distance;

  Tree tree(num_frequent, tree_config);
  std::vector<Item> filtered;
  for (Tid t = 0; t < ranked.num_transactions(); ++t) {
    // Build-phase cancellation: check once per 1024 inserted paths so a
    // deadline can interrupt even a run that never reaches the mine phase.
    if ((t & 1023u) == 0 && options.cancel != nullptr &&
        options.cancel->cancelled()) {
      return;
    }
    filtered.clear();
    for (Item it : ranked.transaction(t)) {
      // Ranked transactions are ascending, so the first infrequent rank
      // ends the frequent prefix.
      if (it >= num_frequent) break;
      filtered.push_back(it);
    }
    if (!filtered.empty()) tree.AddPath(filtered, ranked.weight(t));
  }
  tree.Finalize();
  stats->FinishPhase(PhaseId::kBuild, build_span);
  stats->peak_structure_bytes = tree.memory_bytes();

  PhaseSpan mine_span(PhaseName(PhaseId::kMine));
  std::shared_ptr<const std::vector<Item>> item_map_shared;
  if (spawner != nullptr) {
    item_map_shared =
        std::make_shared<const std::vector<Item>>(std::move(item_map));
  }
  const std::vector<Item>& map_ref =
      item_map_shared != nullptr ? *item_map_shared : item_map;
  FpGrowthRun<Tree> run(tree_config, min_support, map_ref, sink, stats,
                        spawner, item_map_shared, options.cancel);
  std::vector<Item> prefix;
  run.MineTree(tree, &prefix, /*depth=*/0);
  stats->FinishPhase(PhaseId::kMine, mine_span);
}

}  // namespace

MineStats MineIncrementalFpTree(const IncrementalFpTree& inc,
                                ItemsetSink* sink, const CancelToken* cancel) {
  // The maintained tree plays the role of RunFpGrowth's top-level tree;
  // ranking and construction already happened in the maintainer, so the
  // run starts directly at the mine phase. Conditional trees instantiate
  // StreamFpTree too — fresh ones, so their dead-node machinery is idle.
  MineStats stats;
  PhaseSpan mine_span(PhaseName(PhaseId::kMine));
  FpGrowthRun<StreamFpTree> run(
      inc.tree_config(), inc.min_support(), inc.item_map(), sink, &stats,
      /*spawner=*/nullptr, /*item_map_shared=*/nullptr, cancel);
  std::vector<Item> prefix;
  run.MineTree(inc.tree(), &prefix, /*depth=*/0);
  stats.FinishPhase(PhaseId::kMine, mine_span);
  stats.peak_structure_bytes = inc.tree().memory_bytes();
  return stats;
}

FpGrowthMiner::FpGrowthMiner(FpGrowthOptions options) : options_(options) {
  if (options_.dfs_relayout) options_.node_compaction = true;
}

Result<MineStats> FpGrowthMiner::MineImpl(const Database& db,
                                          Support min_support,
                                          ItemsetSink* sink) {
  return MineNestedImpl(db, min_support, sink, nullptr);
}

Result<MineStats> FpGrowthMiner::MineNestedImpl(const Database& db,
                                                Support min_support,
                                                ItemsetSink* sink,
                                                SubtreeSpawner* spawner) {
  MineStats stats;
  if (options_.node_compaction) {
    RunFpGrowth<CompactFpTree>(db, options_, min_support, sink, &stats,
                               spawner);
  } else {
    RunFpGrowth<PointerFpTree>(db, options_, min_support, sink, &stats,
                               spawner);
  }
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    return options_.cancel->ToStatus();
  }
  return stats;
}

}  // namespace fpm
