// Delta-maintained FP-tree (streaming ingestion, DESIGN.md §16).
//
// StreamFpTree is a third FP-tree store alongside PointerFpTree and
// CompactFpTree: same mining interface (AddPath / Finalize / items /
// ItemSupport / ForEachPath / SinglePath), plus RemovePath. Nodes live
// in a std::deque so addresses stay stable across growth and the tree
// stays movable; counts are decremented in place on removal and nodes
// whose count reaches zero are skipped by every read path. Because
// counts are non-increasing from root to leaf (a node's count is the
// summed weight of the window transactions whose frequent prefix passes
// through it), a zero-count node can never shadow a live descendant —
// dead subtrees are always fringes.
//
// IncrementalFpTree wraps a StreamFpTree with the frequency ranking it
// was built under and decides, per version delta, between cheap per-path
// maintenance and a full rebuild:
//
//   - rebuild is MANDATORY whenever the frequent-prefix rank sequence
//     changes (different item set, count, or order): byte-identical
//     mining requires the maintained tree to use exactly the ranking a
//     from-scratch build would choose;
//   - rebuild is taken EAGERLY when the frequency-weighted rank drift of
//     the frequent items crosses `rebuild_drift_threshold`, even though
//     the prefix still matches: large drift means the tree's path shapes
//     no longer match the data and per-path maintenance is losing the
//     prefix-sharing that makes FP-trees compact.
//
// Mining a maintained tree (MineIncrementalFpTree) emits byte-for-byte
// what a fresh FpGrowthMiner run over the same window database emits:
// FP-Growth's output depends only on the ranking and the aggregated
// (path -> count) multiset, never on node insertion order.

#ifndef FPM_ALGO_FPGROWTH_INCREMENTAL_FPTREE_H_
#define FPM_ALGO_FPGROWTH_INCREMENTAL_FPTREE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "fpm/algo/fpgrowth/fptree.h"
#include "fpm/algo/miner.h"
#include "fpm/dataset/versioned.h"

namespace fpm {

class CancelToken;

/// Mutable FP-tree store: PointerFpTree's interface + RemovePath.
class StreamFpTree {
 public:
  struct Node {
    Node* parent;
    Node* first_child;
    Node* next_sibling;
    Node* node_link;
    Item item;
    Support count;
  };

  StreamFpTree(uint32_t item_bound, const FpTreeConfig& config);

  /// Inserts one path (items strictly ascending), adding `count` to
  /// every node on it. Callable after Finalize(); re-Finalize before
  /// mining again.
  void AddPath(std::span<const Item> items, Support count);

  /// Subtracts `count` along an existing path. The path must have been
  /// added before with at least this much aggregate count (checked in
  /// debug builds); zeroed nodes stay allocated and are skipped.
  void RemovePath(std::span<const Item> items, Support count);

  /// Recomputes the present-item list. Callable repeatedly; call after
  /// the last AddPath/RemovePath of a maintenance round.
  void Finalize();

  /// Items with nonzero support, ascending.
  const std::vector<Item>& items() const { return present_items_; }

  /// Summed count over `item`'s nodes, maintained O(1).
  Support ItemSupport(Item item) const { return item_support_[item]; }

  /// Invokes fn(path_items_ascending, count) for every live node on
  /// `item`'s link chain; span valid only during the call.
  template <typename Fn>
  void ForEachPath(Item item, Fn&& fn) const {
    for (const Node* n = link_head_[item]; n != nullptr; n = n->node_link) {
      if (n->count == 0) continue;
      path_scratch_.clear();
      for (const Node* a = n->parent; a->parent != nullptr; a = a->parent) {
        path_scratch_.push_back(a->item);
      }
      std::reverse(path_scratch_.begin(), path_scratch_.end());
      fn(std::span<const Item>(path_scratch_), n->count);
    }
  }

  /// True when the live nodes form a single chain; fills (item, count)
  /// root->leaf.
  bool SinglePath(std::vector<std::pair<Item, Support>>* path) const;

  /// Allocated nodes, including zeroed ones.
  size_t num_nodes() const { return nodes_.size() - 1; }

  /// Nodes whose count has been maintained down to zero (rebuild would
  /// reclaim them).
  size_t num_dead_nodes() const { return num_dead_; }

  size_t memory_bytes() const {
    return nodes_.size() * sizeof(Node) +
           link_head_.size() * 2 * sizeof(Node*) +
           item_support_.size() * sizeof(Support);
  }

 private:
  Node* NewNode(Node* parent, Item item);
  /// First child of `n` with nonzero count starting at `c`.
  static const Node* NextLiveChild(const Node* c);

  FpTreeConfig config_;
  std::deque<Node> nodes_;  // element 0 is the root
  std::vector<Node*> link_head_;
  std::vector<Node*> link_tail_;
  std::vector<Node*> root_child_;
  std::vector<Support> item_support_;
  std::vector<Item> present_items_;
  size_t num_dead_ = 0;
  mutable std::vector<Item> path_scratch_;
};

/// Maintains a StreamFpTree across dataset versions.
class IncrementalFpTree {
 public:
  struct Options {
    FpTreeConfig tree;
    /// Frequency-weighted rank drift (in [0,1]) at which a still-valid
    /// ranking triggers an eager rebuild.
    double rebuild_drift_threshold = 0.25;
  };

  /// Builds the initial tree over `db` (version 1 of a chain).
  IncrementalFpTree(const Database& db, Support min_support,
                    const Options& options);
  IncrementalFpTree(const Database& db, Support min_support);

  /// Advances to the next version: `db` is the new window database and
  /// `delta` the transactions that changed. Either maintains the tree
  /// per path or rebuilds it from `db`, per the rules above.
  void Advance(const Database& db, const VersionDelta& delta);

  const StreamFpTree& tree() const { return tree_; }
  const FpTreeConfig& tree_config() const { return options_.tree; }
  Support min_support() const { return min_support_; }
  /// Rank -> raw item map of the current ranking.
  const std::vector<Item>& item_map() const { return item_map_; }
  uint32_t num_frequent() const { return num_frequent_; }

  /// Drift statistic of the last Advance() (0 when it rebuilt).
  double drift() const { return drift_; }
  /// Full rebuilds performed by Advance() so far.
  uint64_t rebuilds() const { return rebuilds_; }
  /// Paths maintained in place (added + removed) so far.
  uint64_t maintained_paths() const { return maintained_paths_; }

 private:
  void Rebuild(const Database& db);
  /// Maps a raw transaction to its ascending frequent-rank path under
  /// the current ranking; empty when no item is frequent.
  void RankPath(const Itemset& raw, std::vector<Item>* path) const;

  Options options_;
  Support min_support_;
  StreamFpTree tree_;
  std::vector<Item> item_map_;   // rank -> raw item
  std::vector<Item> to_rank_;    // raw item -> rank
  uint32_t num_frequent_ = 0;
  double drift_ = 0.0;
  uint64_t rebuilds_ = 0;
  uint64_t maintained_paths_ = 0;
};

/// Mines the maintained tree; emits byte-for-byte what a fresh
/// FpGrowthMiner (default options) over the same window database emits.
MineStats MineIncrementalFpTree(const IncrementalFpTree& inc,
                                ItemsetSink* sink,
                                const CancelToken* cancel = nullptr);

}  // namespace fpm

#endif  // FPM_ALGO_FPGROWTH_INCREMENTAL_FPTREE_H_
