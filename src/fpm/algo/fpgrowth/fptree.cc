#include "fpm/algo/fpgrowth/fptree.h"

#include <algorithm>

#include "fpm/common/logging.h"
#include "fpm/mem/prefetch_pointers.h"

namespace fpm {

// --------------------------- PointerFpTree ---------------------------

PointerFpTree::PointerFpTree(uint32_t item_bound, const FpTreeConfig& config)
    : config_(config),
      link_head_(item_bound, nullptr),
      link_tail_(item_bound, nullptr),
      root_child_(item_bound, nullptr) {
  root_ = NewNode(nullptr, kInvalidItem);
  --num_nodes_;  // the root is not a payload node
}

PointerFpTree::Node* PointerFpTree::NewNode(Node* parent, Item item) {
  Node* n = arena_.New<Node>();
  n->parent = parent;
  n->first_child = nullptr;
  n->next_sibling = nullptr;
  n->node_link = nullptr;
  n->item = item;
  n->count = 0;
  ++num_nodes_;
  return n;
}

void PointerFpTree::AddPath(std::span<const Item> items, Support count) {
  Node* cur = root_;
  for (size_t i = 0; i < items.size(); ++i) {
    const Item item = items[i];
    FPM_DCHECK(item < link_head_.size());
    Node* child = nullptr;
    if (cur == root_) {
      child = root_child_[item];
    } else {
      for (Node* c = cur->first_child; c != nullptr; c = c->next_sibling) {
        if (c->item == item) {
          child = c;
          break;
        }
      }
    }
    if (child == nullptr) {
      child = NewNode(cur, item);
      child->next_sibling = cur->first_child;
      cur->first_child = child;
      if (cur == root_) root_child_[item] = child;
      // Append to the item's node-link chain.
      if (link_tail_[item] == nullptr) {
        link_head_[item] = link_tail_[item] = child;
      } else {
        link_tail_[item]->node_link = child;
        link_tail_[item] = child;
      }
    }
    child->count += count;
    cur = child;
  }
}

void PointerFpTree::Finalize() {
  present_items_.clear();
  for (Item i = 0; i < link_head_.size(); ++i) {
    if (link_head_[i] != nullptr) present_items_.push_back(i);
  }
}

Support PointerFpTree::ItemSupport(Item item) const {
  Support total = 0;
  for (const Node* n = link_head_[item]; n != nullptr; n = n->node_link) {
    total += n->count;
  }
  return total;
}

bool PointerFpTree::SinglePath(
    std::vector<std::pair<Item, Support>>* path) const {
  path->clear();
  for (const Node* n = root_->first_child; n != nullptr;
       n = n->first_child) {
    if (n->next_sibling != nullptr) return false;
    path->emplace_back(n->item, n->count);
  }
  return true;
}

// --------------------------- CompactFpTree ---------------------------

CompactFpTree::CompactFpTree(uint32_t item_bound, const FpTreeConfig& config)
    : config_(config),
      link_head_(item_bound, kNone),
      root_child_(item_bound, kNone) {
  // Node 0: the root. Its stored fields are never interpreted.
  parent_.push_back(kNone);
  count_.push_back(0);
  diff_.push_back(0);
  first_child_.push_back(kNone);
  next_sibling_.push_back(kNone);
  link_next_.push_back(kNone);
}

uint32_t CompactFpTree::NewNode(uint32_t parent, Item item,
                                int64_t parent_item) {
  const uint32_t n = static_cast<uint32_t>(parent_.size());
  parent_.push_back(parent);
  count_.push_back(0);
  const int64_t delta = static_cast<int64_t>(item) - parent_item;
  FPM_DCHECK(delta >= 1);
  if (delta < kEscape) {
    diff_.push_back(static_cast<uint8_t>(delta));
  } else {
    diff_.push_back(kEscape);
    escape_.emplace(n, item);
  }
  first_child_.push_back(kNone);
  next_sibling_.push_back(kNone);
  link_next_.push_back(kNone);
  return n;
}

void CompactFpTree::AddPath(std::span<const Item> items, Support count) {
  uint32_t cur = 0;
  int64_t cur_item = -1;
  for (size_t i = 0; i < items.size(); ++i) {
    const Item item = items[i];
    FPM_DCHECK(item < link_head_.size());
    uint32_t child = kNone;
    if (cur == 0) {
      child = root_child_[item];
    } else {
      for (uint32_t c = first_child_[cur]; c != kNone;
           c = next_sibling_[c]) {
        const int64_t sibling_item =
            diff_[c] == kEscape ? static_cast<int64_t>(escape_.at(c))
                                : cur_item + diff_[c];
        if (sibling_item == static_cast<int64_t>(item)) {
          child = c;
          break;
        }
      }
    }
    if (child == kNone) {
      child = NewNode(cur, item, cur_item);
      next_sibling_[child] = first_child_[cur];
      first_child_[cur] = child;
      if (cur == 0) root_child_[item] = child;
      // Prepend to the link chain; Finalize rebuilds chains in node
      // order anyway.
      link_next_[child] = link_head_[item];
      link_head_[item] = child;
    }
    count_[child] += count;
    cur = child;
    cur_item = item;
  }
}

void CompactFpTree::RelayoutDfs() {
  const size_t n = parent_.size();
  // DFS preorder, children visited in first-child order so that a
  // node's leftmost spine becomes index-contiguous: upward walks then
  // touch neighbouring memory (the supernode effect of §3.3 in index
  // form).
  std::vector<uint32_t> order;  // new index -> old index
  order.reserve(n);
  std::vector<uint32_t> stack{0};
  while (!stack.empty()) {
    const uint32_t old = stack.back();
    stack.pop_back();
    order.push_back(old);
    // Push siblings reversed so the first child is processed first.
    std::vector<uint32_t> kids;
    for (uint32_t c = first_child_[old]; c != kNone; c = next_sibling_[c]) {
      kids.push_back(c);
    }
    for (size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
  }
  FPM_CHECK(order.size() == n) << "relayout visited " << order.size()
                               << " of " << n << " nodes";

  std::vector<uint32_t> old_to_new(n);
  for (uint32_t idx = 0; idx < n; ++idx) old_to_new[order[idx]] = idx;

  auto permute_u32 = [&](std::vector<uint32_t>* v, bool remap_values) {
    std::vector<uint32_t> out(n);
    for (uint32_t idx = 0; idx < n; ++idx) {
      uint32_t value = (*v)[order[idx]];
      if (remap_values && value != kNone) value = old_to_new[value];
      out[idx] = value;
    }
    *v = std::move(out);
  };
  permute_u32(&parent_, true);
  permute_u32(&first_child_, true);
  permute_u32(&next_sibling_, true);

  std::vector<Support> new_count(n);
  std::vector<uint8_t> new_diff(n);
  for (uint32_t idx = 0; idx < n; ++idx) {
    new_count[idx] = count_[order[idx]];
    new_diff[idx] = diff_[order[idx]];
  }
  count_ = std::move(new_count);
  diff_ = std::move(new_diff);

  std::unordered_map<uint32_t, Item> new_escape;
  new_escape.reserve(escape_.size());
  for (const auto& [old, item] : escape_) {
    new_escape.emplace(old_to_new[old], item);
  }
  escape_ = std::move(new_escape);

  for (auto& head : root_child_) {
    if (head != kNone) head = old_to_new[head];
  }
  // Link chains are rebuilt from scratch in Finalize.
}

void CompactFpTree::Finalize() {
  if (config_.dfs_relayout) RelayoutDfs();

  // Rebuild node-link chains in ascending node order (= DFS order after
  // relayout, insertion order otherwise). Requires decoding each node's
  // item; do it with one top-down pass (parents precede children in both
  // orders... not guaranteed without relayout, so decode via parent
  // items memoized in a scratch array).
  const size_t n = parent_.size();
  std::vector<Item> node_item(n, kInvalidItem);
  std::fill(link_head_.begin(), link_head_.end(), kNone);
  std::vector<uint32_t> link_tail(link_head_.size(), kNone);

  // Decode items: iterative resolution following parent chains.
  for (uint32_t v = 1; v < n; ++v) {
    if (node_item[v] != kInvalidItem) continue;
    // Walk up until a decoded ancestor (or root), then unwind.
    node_scratch_.clear();
    uint32_t u = v;
    while (u != 0 && node_item[u] == kInvalidItem) {
      node_scratch_.push_back(u);
      u = parent_[u];
    }
    int64_t prev =
        (u == 0) ? -1 : static_cast<int64_t>(node_item[u]);
    for (size_t i = node_scratch_.size(); i-- > 0;) {
      const uint32_t w = node_scratch_[i];
      const int64_t item = diff_[w] == kEscape
                               ? static_cast<int64_t>(escape_.at(w))
                               : prev + diff_[w];
      node_item[w] = static_cast<Item>(item);
      prev = item;
    }
  }

  for (uint32_t v = 1; v < n; ++v) {
    const Item item = node_item[v];
    link_next_[v] = kNone;
    if (link_tail[item] == kNone) {
      link_head_[item] = link_tail[item] = v;
    } else {
      link_next_[link_tail[item]] = v;
      link_tail[item] = v;
    }
  }

  present_items_.clear();
  for (Item i = 0; i < link_head_.size(); ++i) {
    if (link_head_[i] != kNone) present_items_.push_back(i);
  }

  // P5: jump pointers over the link chains.
  jump_.clear();
  if (config_.software_prefetch && config_.jump_distance > 1 && n > 1) {
    std::vector<uint32_t> heads;
    heads.reserve(present_items_.size());
    for (Item i : present_items_) heads.push_back(link_head_[i]);
    jump_ = BuildJumpPointers(heads, link_next_, config_.jump_distance);
  }
}

Support CompactFpTree::ItemSupport(Item item) const {
  Support total = 0;
  for (uint32_t n = link_head_[item]; n != kNone; n = link_next_[n]) {
    total += count_[n];
  }
  return total;
}

Item CompactFpTree::NodeItem(uint32_t node) const {
  FPM_CHECK(node > 0 && node < parent_.size());
  node_scratch_.clear();
  uint32_t u = node;
  while (u != 0) {
    node_scratch_.push_back(u);
    u = parent_[u];
  }
  int64_t item = -1;
  for (size_t i = node_scratch_.size(); i-- > 0;) {
    const uint32_t w = node_scratch_[i];
    item = diff_[w] == kEscape ? static_cast<int64_t>(escape_.at(w))
                               : item + diff_[w];
  }
  return static_cast<Item>(item);
}

bool CompactFpTree::SinglePath(
    std::vector<std::pair<Item, Support>>* path) const {
  path->clear();
  int64_t prev_item = -1;
  for (uint32_t n = first_child_[0]; n != kNone; n = first_child_[n]) {
    if (next_sibling_[n] != kNone) return false;
    const int64_t item = diff_[n] == kEscape
                             ? static_cast<int64_t>(escape_.at(n))
                             : prev_item + diff_[n];
    path->emplace_back(static_cast<Item>(item), count_[n]);
    prev_item = item;
  }
  return true;
}

size_t CompactFpTree::memory_bytes() const {
  return parent_.size() * (sizeof(uint32_t) * 4 + sizeof(Support) +
                           sizeof(uint8_t)) +
         jump_.size() * sizeof(uint32_t) +
         escape_.size() * (sizeof(uint32_t) + sizeof(Item)) * 2 +
         link_head_.size() * sizeof(uint32_t) * 2;
}

}  // namespace fpm
