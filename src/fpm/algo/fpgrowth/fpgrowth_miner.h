// FP-Growth frequent itemset miner (Han, Pei & Yin, SIGMOD'00) — §4.3.
//
// Builds an FP-tree over the frequency-ranked database, then mines it
// bottom-up: for each item (least frequent first) it walks the item's
// node-link chain, collects the conditional pattern base from the
// upward paths, builds a conditional FP-tree and recurses. Single-path
// (sub)trees short-circuit into direct subset enumeration.
//
// Tuning patterns:
//   P1 lexicographic_order — sort transactions lexicographically before
//      insertion; consecutive transactions then share long prefixes, so
//      insertion walks cached nodes and related nodes are allocated
//      adjacently.
//   P2 node_compaction       — CompactFpTree (diff-encoded SoA nodes).
//   P3/P4 dfs_relayout     — DFS re-layout of the compact tree (path
//      locality; implies node_compaction).
//   P5+P7 software_prefetch — node-link jump pointers + prefetch during
//      chain walks (plain next-link prefetch on the pointer tree).

#ifndef FPM_ALGO_FPGROWTH_FPGROWTH_MINER_H_
#define FPM_ALGO_FPGROWTH_FPGROWTH_MINER_H_

#include <string>

#include "fpm/algo/miner.h"

namespace fpm {

class CancelToken;

/// Pattern toggles and knobs for the FP-Growth kernel.
///
/// Toggle names follow the shared noun-phrase convention (see
/// LcmOptions / DESIGN.md "Option naming").
struct FpGrowthOptions {
  bool lexicographic_order = false;  ///< P1
  bool node_compaction = false;      ///< P2
  bool dfs_relayout = false;         ///< P3/P4 (implies node_compaction)
  bool software_prefetch = false;    ///< P5 + P7
  uint32_t jump_distance = 4;        ///< P5 chain distance

  /// Cooperative cancellation, polled at tree-build batches and at every
  /// conditional-tree frame. See LcmOptions::cancel for the contract.
  /// Null = never cancelled.
  const CancelToken* cancel = nullptr;

  static FpGrowthOptions All() {
    FpGrowthOptions o;
    o.lexicographic_order = true;
    o.node_compaction = true;
    o.dfs_relayout = true;
    o.software_prefetch = true;
    return o;
  }

  /// "+lex+cmp+dfs+pref" style suffix (empty when all off).
  std::string Suffix() const;
};

/// FP-tree miner. Not thread-safe.
class FpGrowthMiner : public Miner {
 public:
  explicit FpGrowthMiner(FpGrowthOptions options = FpGrowthOptions());

  std::string name() const override {
    return "fpgrowth" + options_.Suffix();
  }

  const FpGrowthOptions& options() const { return options_; }

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;
  Result<MineStats> MineNestedImpl(const Database& db, Support min_support,
                                   ItemsetSink* sink,
                                   SubtreeSpawner* spawner) override;

 private:
  FpGrowthOptions options_;
};

}  // namespace fpm

#endif  // FPM_ALGO_FPGROWTH_FPGROWTH_MINER_H_
