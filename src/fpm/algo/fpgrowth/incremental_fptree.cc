#include "fpm/algo/fpgrowth/incremental_fptree.h"

#include <cmath>
#include <utility>

#include "fpm/common/logging.h"
#include "fpm/layout/item_order.h"

namespace fpm {

// ---------------------------- StreamFpTree ---------------------------

StreamFpTree::StreamFpTree(uint32_t item_bound, const FpTreeConfig& config)
    : config_(config),
      link_head_(item_bound, nullptr),
      link_tail_(item_bound, nullptr),
      root_child_(item_bound, nullptr),
      item_support_(item_bound, 0) {
  nodes_.push_back(Node{nullptr, nullptr, nullptr, nullptr, kInvalidItem, 0});
}

StreamFpTree::Node* StreamFpTree::NewNode(Node* parent, Item item) {
  nodes_.push_back(Node{parent, nullptr, nullptr, nullptr, item, 0});
  return &nodes_.back();
}

void StreamFpTree::AddPath(std::span<const Item> items, Support count) {
  Node* root = &nodes_.front();
  Node* cur = root;
  for (size_t i = 0; i < items.size(); ++i) {
    const Item item = items[i];
    FPM_DCHECK(item < link_head_.size());
    Node* child = nullptr;
    if (cur == root) {
      child = root_child_[item];
    } else {
      for (Node* c = cur->first_child; c != nullptr; c = c->next_sibling) {
        if (c->item == item) {
          child = c;
          break;
        }
      }
    }
    bool created = false;
    if (child == nullptr) {
      child = NewNode(cur, item);
      created = true;
      child->next_sibling = cur->first_child;
      cur->first_child = child;
      if (cur == root) root_child_[item] = child;
      if (link_tail_[item] == nullptr) {
        link_head_[item] = link_tail_[item] = child;
      } else {
        link_tail_[item]->node_link = child;
        link_tail_[item] = child;
      }
    }
    if (!created && child->count == 0) --num_dead_;  // revived
    child->count += count;
    item_support_[item] += count;
    cur = child;
  }
}

void StreamFpTree::RemovePath(std::span<const Item> items, Support count) {
  Node* root = &nodes_.front();
  Node* cur = root;
  for (size_t i = 0; i < items.size(); ++i) {
    const Item item = items[i];
    Node* child = nullptr;
    if (cur == root) {
      child = root_child_[item];
    } else {
      for (Node* c = cur->first_child; c != nullptr; c = c->next_sibling) {
        if (c->item == item) {
          child = c;
          break;
        }
      }
    }
    FPM_DCHECK(child != nullptr && child->count >= count)
        << "RemovePath of a path never added";
    if (child == nullptr || child->count < count) return;  // defensive
    child->count -= count;
    if (child->count == 0) ++num_dead_;
    item_support_[item] -= count;
    cur = child;
  }
}

void StreamFpTree::Finalize() {
  present_items_.clear();
  for (Item i = 0; i < item_support_.size(); ++i) {
    if (item_support_[i] > 0) present_items_.push_back(i);
  }
}

const StreamFpTree::Node* StreamFpTree::NextLiveChild(const Node* c) {
  while (c != nullptr && c->count == 0) c = c->next_sibling;
  return c;
}

bool StreamFpTree::SinglePath(
    std::vector<std::pair<Item, Support>>* path) const {
  path->clear();
  const Node* n = NextLiveChild(nodes_.front().first_child);
  while (n != nullptr) {
    if (NextLiveChild(n->next_sibling) != nullptr) return false;
    path->emplace_back(n->item, n->count);
    n = NextLiveChild(n->first_child);
  }
  return true;
}

// -------------------------- IncrementalFpTree ------------------------

IncrementalFpTree::IncrementalFpTree(const Database& db, Support min_support,
                                     const Options& options)
    : options_(options),
      min_support_(min_support),
      tree_(0, options.tree) {
  Rebuild(db);
  // The initial build is not counted as a maintenance rebuild.
  rebuilds_ = 0;
}

IncrementalFpTree::IncrementalFpTree(const Database& db, Support min_support)
    : IncrementalFpTree(db, min_support, Options()) {}

void IncrementalFpTree::Rebuild(const Database& db) {
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  item_map_ = order.to_item();
  to_rank_ = order.to_rank();
  const auto& freq = db.item_frequencies();
  num_frequent_ = 0;
  // Ranked frequencies are non-increasing over ranks.
  while (num_frequent_ < item_map_.size() &&
         freq[item_map_[num_frequent_]] >= min_support_) {
    ++num_frequent_;
  }
  tree_ = StreamFpTree(num_frequent_, options_.tree);
  std::vector<Item> path;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    auto txn = db.transaction(t);
    path.clear();
    for (Item it : txn) {
      const Item rank = to_rank_[it];
      if (rank < num_frequent_) path.push_back(rank);
    }
    std::sort(path.begin(), path.end());
    if (!path.empty()) tree_.AddPath(path, db.weight(t));
  }
  tree_.Finalize();
  ++rebuilds_;
  drift_ = 0.0;
}

void IncrementalFpTree::RankPath(const Itemset& raw,
                                 std::vector<Item>* path) const {
  path->clear();
  for (Item it : raw) {
    if (static_cast<size_t>(it) >= to_rank_.size()) continue;
    const Item rank = to_rank_[it];
    if (rank < num_frequent_) path->push_back(rank);
  }
  std::sort(path->begin(), path->end());
}

void IncrementalFpTree::Advance(const Database& db,
                                const VersionDelta& delta) {
  // Decide: does the ranking a from-scratch build would pick still match
  // the one the tree was built under?
  ItemOrder fresh = ItemOrder::ByDecreasingFrequency(db);
  const auto& freq = db.item_frequencies();
  uint32_t fresh_frequent = 0;
  while (fresh_frequent < fresh.size() &&
         freq[fresh.ItemAt(fresh_frequent)] >= min_support_) {
    ++fresh_frequent;
  }
  bool prefix_changed = fresh_frequent != num_frequent_;
  if (!prefix_changed) {
    for (uint32_t r = 0; r < num_frequent_; ++r) {
      if (fresh.ItemAt(r) != item_map_[r]) {
        prefix_changed = true;
        break;
      }
    }
  }

  // Drift: frequency-weighted rank displacement of the (fresh) frequent
  // items relative to the tree's ranking, normalized by the worst case
  // (every unit of weight displaced across the whole prefix).
  double displaced = 0.0;
  double weight = 0.0;
  for (uint32_t r = 0; r < fresh_frequent; ++r) {
    const Item raw = fresh.ItemAt(r);
    const double f = static_cast<double>(freq[raw]);
    const double old_rank =
        static_cast<size_t>(raw) < to_rank_.size()
            ? static_cast<double>(to_rank_[raw])
            : static_cast<double>(item_map_.size());
    displaced += f * std::abs(old_rank - static_cast<double>(r));
    weight += f;
  }
  const double span = fresh_frequent > 1
                          ? static_cast<double>(fresh_frequent - 1)
                          : 1.0;
  drift_ = weight > 0.0 ? displaced / (weight * span) : 0.0;

  if (prefix_changed || drift_ >= options_.rebuild_drift_threshold) {
    Rebuild(db);
    return;
  }

  std::vector<Item> path;
  for (size_t t = 0; t < delta.appended.size(); ++t) {
    RankPath(delta.appended[t], &path);
    if (!path.empty()) {
      tree_.AddPath(path, delta.appended_weights[t]);
      ++maintained_paths_;
    }
  }
  for (size_t t = 0; t < delta.expired.size(); ++t) {
    RankPath(delta.expired[t], &path);
    if (!path.empty()) {
      tree_.RemovePath(path, delta.expired_weights[t]);
      ++maintained_paths_;
    }
  }
  tree_.Finalize();
}

}  // namespace fpm
