// H-mine: hyper-structure frequent itemset mining (Pei, Han, Lu,
// Nishio, Tang & Yang, ICDM'01 — the paper's reference [25]).
//
// The distinctive design point: projections are never copied. The
// database is stored once as flat per-transaction cell arrays; a
// conditional database is a *queue of cell indices* (the positions of
// the extension item inside its transactions), and frequency counting
// scans each queued cell's in-place transaction suffix. Memory stays
// O(database) plus the queue stack — the behaviour the H-mine paper
// argues wins on sparse data, and a third data-structure design point
// next to LCM's copied arrays and FP-Growth's prefix tree.

#ifndef FPM_ALGO_HMINE_H_
#define FPM_ALGO_HMINE_H_

#include <string>

#include "fpm/algo/miner.h"

namespace fpm {

/// Scan-based hyper-structure miner. Not thread-safe.
class HMineMiner : public Miner {
 public:
  HMineMiner() = default;

  std::string name() const override { return "hmine"; }

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;
};

}  // namespace fpm

#endif  // FPM_ALGO_HMINE_H_
