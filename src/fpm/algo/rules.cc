#include "fpm/algo/rules.h"

#include <algorithm>
#include <unordered_map>

namespace fpm {
namespace {

uint64_t HashItemset(const Itemset& set) {
  uint64_t h = 1469598103934665603ull;
  for (Item it : set) {
    h ^= it;
    h *= 1099511628211ull;
  }
  return h;
}

struct ItemsetHash {
  size_t operator()(const Itemset& set) const {
    return static_cast<size_t>(HashItemset(set));
  }
};

using SupportIndex = std::unordered_map<Itemset, Support, ItemsetHash>;

// Enumerates consequents: all non-empty subsets of `set` of size up to
// `max_size` (never the whole set). `chosen` marks the consequent.
class ConsequentEnumerator {
 public:
  ConsequentEnumerator(const Itemset& set, size_t max_size)
      : set_(set), max_size_(std::min(max_size, set.size() - 1)) {}

  template <typename Fn>
  Status ForEach(Fn&& fn) {
    consequent_.clear();
    return Recurse(0, std::forward<Fn>(fn));
  }

 private:
  template <typename Fn>
  Status Recurse(size_t pos, Fn&& fn) {
    if (!consequent_.empty()) {
      FPM_RETURN_IF_ERROR(fn(consequent_));
    }
    if (consequent_.size() == max_size_) return Status::OK();
    for (size_t i = pos; i < set_.size(); ++i) {
      consequent_.push_back(set_[i]);
      FPM_RETURN_IF_ERROR(Recurse(i + 1, fn));
      consequent_.pop_back();
    }
    return Status::OK();
  }

  const Itemset& set_;
  size_t max_size_;
  Itemset consequent_;
};

}  // namespace

Result<std::vector<AssociationRule>> GenerateRules(
    const std::vector<CollectingSink::Entry>& frequent, Support total_weight,
    const RuleOptions& options) {
  if (options.min_confidence < 0.0 || options.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0, 1]");
  }
  if (options.max_consequent < 1) {
    return Status::InvalidArgument("max_consequent must be >= 1");
  }
  if (total_weight == 0 && !frequent.empty()) {
    return Status::InvalidArgument("total_weight must be positive");
  }

  SupportIndex index;
  index.reserve(frequent.size() * 2);
  for (const auto& [set, support] : frequent) index.emplace(set, support);

  std::vector<AssociationRule> rules;
  Itemset antecedent;
  for (const auto& [set, support] : frequent) {
    if (set.size() < 2) continue;
    ConsequentEnumerator consequents(set, options.max_consequent);
    const Support set_support = support;
    const Status status = consequents.ForEach(
        [&](const Itemset& consequent) -> Status {
          antecedent.clear();
          std::set_difference(set.begin(), set.end(), consequent.begin(),
                              consequent.end(),
                              std::back_inserter(antecedent));
          const auto ante = index.find(antecedent);
          const auto cons = index.find(consequent);
          if (ante == index.end() || cons == index.end()) {
            return Status::InvalidArgument(
                "frequent listing is incomplete: missing a subset "
                "required for rule generation");
          }
          const double confidence =
              static_cast<double>(set_support) / ante->second;
          if (confidence < options.min_confidence) return Status::OK();
          AssociationRule rule;
          rule.antecedent = antecedent;
          rule.consequent = consequent;
          rule.itemset_support = set_support;
          rule.support =
              static_cast<double>(set_support) / total_weight;
          rule.confidence = confidence;
          rule.lift = confidence * static_cast<double>(total_weight) /
                      static_cast<double>(cons->second);
          rules.push_back(std::move(rule));
          return Status::OK();
        });
    FPM_RETURN_IF_ERROR(status);
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

}  // namespace fpm
