#include "fpm/algo/rules.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace fpm {
namespace {

uint64_t HashItemset(const Itemset& set) {
  uint64_t h = 1469598103934665603ull;
  for (Item it : set) {
    h ^= it;
    h *= 1099511628211ull;
  }
  return h;
}

struct ItemsetHash {
  size_t operator()(const Itemset& set) const {
    return static_cast<size_t>(HashItemset(set));
  }
};

using SupportIndex = std::unordered_map<Itemset, Support, ItemsetHash>;

// Enumerates consequents: all non-empty subsets of `set` of size up to
// `max_size` (never the whole set). `chosen` marks the consequent.
class ConsequentEnumerator {
 public:
  ConsequentEnumerator(const Itemset& set, size_t max_size)
      : set_(set), max_size_(std::min(max_size, set.size() - 1)) {}

  template <typename Fn>
  Status ForEach(Fn&& fn) {
    consequent_.clear();
    return Recurse(0, std::forward<Fn>(fn));
  }

 private:
  template <typename Fn>
  Status Recurse(size_t pos, Fn&& fn) {
    if (!consequent_.empty()) {
      FPM_RETURN_IF_ERROR(fn(consequent_));
    }
    if (consequent_.size() == max_size_) return Status::OK();
    for (size_t i = pos; i < set_.size(); ++i) {
      consequent_.push_back(set_[i]);
      FPM_RETURN_IF_ERROR(Recurse(i + 1, fn));
      consequent_.pop_back();
    }
    return Status::OK();
  }

  const Itemset& set_;
  size_t max_size_;
  Itemset consequent_;
};

Status ValidateOptions(const RuleOptions& options, Support total_weight,
                       bool empty_listing) {
  if (options.min_confidence < 0.0 || options.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0, 1]");
  }
  if (options.min_lift < 0.0) {
    return Status::InvalidArgument("min_lift must be >= 0");
  }
  if (options.max_consequent < 1) {
    return Status::InvalidArgument("max_consequent must be >= 1");
  }
  if (total_weight == 0 && !empty_listing) {
    return Status::InvalidArgument("total_weight must be positive");
  }
  return Status::OK();
}

// The shared generation loop: walk every listing entry of size >= 2,
// enumerate consequents, and resolve the antecedent/consequent supports
// through `support_of` (exact-index lookup for the full listing,
// closure-based recovery for a closed listing).
Result<std::vector<AssociationRule>> Generate(
    const std::vector<CollectingSink::Entry>& listing, Support total_weight,
    const RuleOptions& options,
    const std::function<Result<Support>(const Itemset&)>& support_of) {
  std::vector<AssociationRule> rules;
  Itemset antecedent;
  for (const auto& [set, support] : listing) {
    if (set.size() < 2) continue;
    ConsequentEnumerator consequents(set, options.max_consequent);
    const Support set_support = support;
    const Status status = consequents.ForEach(
        [&](const Itemset& consequent) -> Status {
          antecedent.clear();
          std::set_difference(set.begin(), set.end(), consequent.begin(),
                              consequent.end(),
                              std::back_inserter(antecedent));
          FPM_ASSIGN_OR_RETURN(const Support ante_support,
                               support_of(antecedent));
          FPM_ASSIGN_OR_RETURN(const Support cons_support,
                               support_of(consequent));
          const double confidence =
              static_cast<double>(set_support) / ante_support;
          if (confidence < options.min_confidence) return Status::OK();
          const double lift = confidence *
                              static_cast<double>(total_weight) /
                              static_cast<double>(cons_support);
          if (lift < options.min_lift) return Status::OK();
          AssociationRule rule;
          rule.antecedent = antecedent;
          rule.consequent = consequent;
          rule.itemset_support = set_support;
          rule.support =
              static_cast<double>(set_support) / total_weight;
          rule.confidence = confidence;
          rule.lift = lift;
          rules.push_back(std::move(rule));
          return Status::OK();
        });
    FPM_RETURN_IF_ERROR(status);
  }
  std::sort(rules.begin(), rules.end(), RuleOutranks);
  return rules;
}

}  // namespace

bool RuleOutranks(const AssociationRule& a, const AssociationRule& b) {
  if (a.lift != b.lift) return a.lift > b.lift;
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
  return a.consequent < b.consequent;
}

Result<std::vector<AssociationRule>> GenerateRules(
    const std::vector<CollectingSink::Entry>& frequent, Support total_weight,
    const RuleOptions& options) {
  FPM_RETURN_IF_ERROR(
      ValidateOptions(options, total_weight, frequent.empty()));

  SupportIndex index;
  index.reserve(frequent.size() * 2);
  for (const auto& [set, support] : frequent) index.emplace(set, support);

  return Generate(frequent, total_weight, options,
                  [&index](const Itemset& set) -> Result<Support> {
                    const auto it = index.find(set);
                    if (it == index.end()) {
                      return Status::InvalidArgument(
                          "frequent listing is incomplete: missing a subset "
                          "required for rule generation");
                    }
                    return it->second;
                  });
}

Result<std::vector<AssociationRule>> GenerateRulesFromClosed(
    const std::vector<CollectingSink::Entry>& closed, Support total_weight,
    const RuleOptions& options) {
  FPM_RETURN_IF_ERROR(ValidateOptions(options, total_weight, closed.empty()));

  // Inverted index item -> closed sets containing it; a subset's support
  // is the max over the closed supersets found on its rarest item's
  // posting list (supp(X) = supp(clo(X)), and clo(X) is listed).
  std::unordered_map<Item, std::vector<uint32_t>> postings;
  for (uint32_t i = 0; i < closed.size(); ++i) {
    for (Item it : closed[i].first) postings[it].push_back(i);
  }
  auto support_of = [&](const Itemset& set) -> Result<Support> {
    const std::vector<uint32_t>* shortest = nullptr;
    for (Item it : set) {
      const auto found = postings.find(it);
      if (found == postings.end()) {
        return Status::InvalidArgument(
            "closed listing is incomplete: no closed superset of a "
            "required subset");
      }
      if (shortest == nullptr || found->second.size() < shortest->size()) {
        shortest = &found->second;
      }
    }
    Support best = 0;
    bool any = false;
    for (uint32_t i : *shortest) {
      const Itemset& candidate = closed[i].first;
      if (std::includes(candidate.begin(), candidate.end(), set.begin(),
                        set.end())) {
        best = std::max(best, closed[i].second);
        any = true;
      }
    }
    if (!any) {
      return Status::InvalidArgument(
          "closed listing is incomplete: no closed superset of a "
          "required subset");
    }
    return best;
  };

  return Generate(closed, total_weight, options, support_of);
}

}  // namespace fpm
