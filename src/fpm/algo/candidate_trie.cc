#include "fpm/algo/candidate_trie.h"

#include <algorithm>

#include "fpm/common/logging.h"

namespace fpm {

void CandidateTrie::Insert(std::span<const Item> candidate, uint32_t index) {
  FPM_CHECK(!candidate.empty()) << "empty candidate";
  uint32_t cur = 0;
  for (Item it : candidate) {
    Node& node = nodes_[cur];
    auto pos = std::lower_bound(node.labels.begin(), node.labels.end(), it);
    const size_t idx = static_cast<size_t>(pos - node.labels.begin());
    if (pos == node.labels.end() || *pos != it) {
      const uint32_t child = static_cast<uint32_t>(nodes_.size());
      // Insert into the node's arrays before push_back may invalidate
      // the `node` reference.
      nodes_[cur].labels.insert(nodes_[cur].labels.begin() + idx, it);
      nodes_[cur].children.insert(nodes_[cur].children.begin() + idx, child);
      nodes_.push_back(Node{});
      cur = child;
    } else {
      cur = node.children[idx];
    }
  }
  FPM_CHECK(nodes_[cur].candidate == kNoCandidate)
      << "duplicate candidate insertion";
  nodes_[cur].candidate = index;
}

void CandidateTrie::CountTransaction(std::span<const Item> tx,
                                     Support weight,
                                     std::vector<Support>* counts) const {
  Walk(0, tx, weight, counts);
}

void CandidateTrie::Walk(uint32_t node_id, std::span<const Item> tx,
                         Support weight,
                         std::vector<Support>* counts) const {
  const Node& node = nodes_[node_id];
  if (node.candidate != kNoCandidate) {
    (*counts)[node.candidate] += weight;
  }
  if (node.labels.empty()) return;
  // Advance through the transaction, descending on matching labels.
  size_t li = 0;
  for (size_t ti = 0; ti < tx.size() && li < node.labels.size(); ++ti) {
    while (li < node.labels.size() && node.labels[li] < tx[ti]) ++li;
    if (li < node.labels.size() && node.labels[li] == tx[ti]) {
      Walk(node.children[li], tx.subspan(ti + 1), weight, counts);
      ++li;
    }
  }
}

}  // namespace fpm
