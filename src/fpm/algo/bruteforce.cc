#include "fpm/algo/bruteforce.h"

#include <vector>

#include "fpm/obs/trace.h"

namespace fpm {
namespace {

// Weighted support of `candidate` (sorted ascending) by scanning every
// transaction.
Support CountSupport(const Database& db, const std::vector<Item>& candidate) {
  Support support = 0;
  std::vector<Item> sorted_tx;
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    const auto tx = db.transaction(t);
    if (tx.size() < candidate.size()) continue;
    sorted_tx.assign(tx.begin(), tx.end());
    std::sort(sorted_tx.begin(), sorted_tx.end());
    if (std::includes(sorted_tx.begin(), sorted_tx.end(), candidate.begin(),
                      candidate.end())) {
      support += db.weight(t);
    }
  }
  return support;
}

// Extends `prefix` (sorted) with items > prefix.back(), pruning by
// anti-monotonicity.
void Extend(const Database& db, Support min_support, ItemsetSink* sink,
            std::vector<Item>* prefix, uint64_t* emitted) {
  const Item start = prefix->empty() ? 0 : prefix->back() + 1;
  for (Item i = start; i < db.num_items(); ++i) {
    prefix->push_back(i);
    const Support support = CountSupport(db, *prefix);
    if (support >= min_support) {
      sink->Emit(*prefix, support);
      ++*emitted;
      Extend(db, min_support, sink, prefix, emitted);
    }
    prefix->pop_back();
  }
}

}  // namespace

Result<MineStats> BruteForceMiner::MineImpl(const Database& db,
                                            Support min_support,
                                            ItemsetSink* sink) {
  MineStats stats;
  PhaseSpan mine_span(PhaseName(PhaseId::kMine));
  std::vector<Item> prefix;
  uint64_t emitted = 0;
  Extend(db, min_support, sink, &prefix, &emitted);
  stats.num_frequent = emitted;
  stats.FinishPhase(PhaseId::kMine, mine_span);
  return stats;
}

}  // namespace fpm
