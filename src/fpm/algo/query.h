// The unified mining query model: one value type naming the task —
// frequent, closed, maximal, top-k or association rules — plus its
// per-task parameters. A MiningQuery flows unchanged through every
// layer: the Miner front-end dispatches it onto an execution path
// (fpm/algo/miner.h), the service keys its result cache with it
// (fpm/service/result_cache.h), and protocol v2 carries it on the wire
// (fpm/service/protocol.h).
//
// The paper frames its optimization patterns around the whole problem
// family ("frequent/closed/maximal itemsets", §1); this header makes
// the family first-class instead of leaving closed/maximal as example
// post-processing.

#ifndef FPM_ALGO_QUERY_H_
#define FPM_ALGO_QUERY_H_

#include <cstdint>
#include <string>

#include "fpm/common/status.h"
#include "fpm/dataset/types.h"

namespace fpm {

/// The mining tasks the query surface speaks. Values are stable (they
/// participate in cache keys); append only.
enum class MiningTask : uint8_t {
  kFrequent = 0,  ///< every itemset with support >= min_support
  kClosed = 1,    ///< closed frequent itemsets (no superset, same support)
  kMaximal = 2,   ///< maximal frequent itemsets (no frequent superset)
  kTopK = 3,      ///< the k most frequent itemsets (floor = min_support)
  kRules = 4,     ///< association rules from a closed-set run
};

inline constexpr int kNumMiningTasks = 5;

/// Stable lowercase wire name ("frequent", "closed", "maximal",
/// "top_k", "rules").
const char* TaskName(MiningTask task);

/// Parses a task name (case-insensitive; accepts "top_k" and "top-k").
Result<MiningTask> ParseTask(const std::string& name);

/// One mining query: the task plus every parameter that defines its
/// answer. Parameters irrelevant to the task are ignored by execution
/// and zeroed in cache keys.
///
/// Result-order contract per task (what "byte-identical" means):
///   kFrequent  kernel emission order (deterministic per kernel)
///   kClosed    canonical order (items sorted in sets, sets
///              lexicographic) — identical across kernels
///   kMaximal   canonical order
///   kTopK      support descending, canonical itemset ascending within
///              equal support; ties at the k boundary resolved the same
///              way
///   kRules     lift desc, confidence desc, antecedent, consequent
struct MiningQuery {
  MiningTask task = MiningTask::kFrequent;

  /// Support threshold. For kTopK this is the *floor*: itemsets below
  /// it never qualify even when fewer than k results exist (default 1
  /// = unrestricted).
  Support min_support = 1;

  /// kTopK: number of itemsets wanted. Must be >= 1 for kTopK.
  uint64_t k = 0;

  /// kRules: minimum confidence in [0, 1].
  double min_confidence = 0.5;

  /// kRules: minimum lift (>= 0; 0 filters nothing).
  double min_lift = 0.0;

  /// kRules: maximum consequent size (>= 1).
  uint32_t max_consequent = 1;

  /// kTopK performance hint, NOT part of the query's meaning (excluded
  /// from cache keys): a seed threshold for the iterative driver,
  /// typically the Geerts–Goethals–Van den Bussche bound inversion
  /// (fpm/service/cost_model.h, TopKSeedThreshold). 0 = the driver
  /// seeds itself from the item-frequency table.
  Support topk_seed_support = 0;

  static MiningQuery Frequent(Support min_support) {
    MiningQuery q;
    q.min_support = min_support;
    return q;
  }
  static MiningQuery Closed(Support min_support) {
    MiningQuery q;
    q.task = MiningTask::kClosed;
    q.min_support = min_support;
    return q;
  }
  static MiningQuery Maximal(Support min_support) {
    MiningQuery q;
    q.task = MiningTask::kMaximal;
    q.min_support = min_support;
    return q;
  }
  static MiningQuery TopK(uint64_t k, Support floor = 1) {
    MiningQuery q;
    q.task = MiningTask::kTopK;
    q.k = k;
    q.min_support = floor;
    return q;
  }
  static MiningQuery Rules(Support min_support, double min_confidence = 0.5,
                           double min_lift = 0.0) {
    MiningQuery q;
    q.task = MiningTask::kRules;
    q.min_support = min_support;
    q.min_confidence = min_confidence;
    q.min_lift = min_lift;
    return q;
  }

  /// InvalidArgument when a parameter is out of range for the task.
  Status Validate() const;
};

}  // namespace fpm

#endif  // FPM_ALGO_QUERY_H_
