// Eclat: vertical bit-matrix frequent itemset miner (§4.2).
//
// Each item(set) owns a dense bit vector over transactions; extending an
// itemset ANDs two vectors and popcounts the result — 98% of Eclat's
// runtime in the paper's profile. The kernel is computation bound, so
// the applicable patterns accelerate arithmetic rather than memory:
//
//   P1 lexicographic_order — clusters the 1s of frequent items at the
//      front of the vectors, which is what makes 0-escaping effective.
//   zero_escaping — per-vector conservative 1-ranges; intersection and
//      counting skip the all-zero prefix/suffix (§4.2's 0-escaping).
//   P8 popcount strategy — the baseline counts via a 16-bit lookup table
//      (indirect loads, not SIMDizable); the tuned variants count with
//      computation (SWAR / hardware popcount / AVX2).

#ifndef FPM_ALGO_ECLAT_ECLAT_MINER_H_
#define FPM_ALGO_ECLAT_ECLAT_MINER_H_

#include <string>

#include "fpm/algo/miner.h"
#include "fpm/bitvec/popcount.h"

namespace fpm {

class CancelToken;

/// Vertical representation choice — the data structure adaptation (P2)
/// the paper notes has been "proposed in the literature" for Eclat:
/// dense bit vectors win on dense data, sparse tid lists on sparse data.
enum class EclatRepresentation {
  kBitVector,  ///< dense bit matrix (the paper's studied variant)
  kTidList,    ///< sorted transaction-id lists (sparse)
  kDiffset,    ///< dEclat: tid lists at level 1, diffsets below
               ///< (Zaki & Gouda, the paper's reference [33])
  kAuto,       ///< pick by measured density of the frequent columns
};

/// Stable display name ("bitvector", "tidlist", "auto").
const char* EclatRepresentationName(EclatRepresentation r);

/// Pattern toggles and knobs for the Eclat kernel.
///
/// Toggle names follow the shared noun-phrase convention (see
/// LcmOptions / DESIGN.md "Option naming").
struct EclatOptions {
  bool lexicographic_order = false;  ///< P1
  bool zero_escaping = false;        ///< 0-escaping via 1-ranges
  /// Baseline is the original's table lookup; kAuto engages SIMD (P8).
  PopcountStrategy popcount = PopcountStrategy::kLut16;
  /// P2: vertical representation. The paper's evaluation fixes the bit
  /// vector; kAuto/kTidList are the literature-proposed adaptation.
  /// 0-escaping and the popcount strategy only apply to bit vectors.
  EclatRepresentation representation = EclatRepresentation::kBitVector;

  /// Cooperative cancellation, polled at every class-step frame. See
  /// LcmOptions::cancel for the contract. Null = never cancelled.
  const CancelToken* cancel = nullptr;

  /// Enables every pattern.
  static EclatOptions All() {
    EclatOptions o;
    o.lexicographic_order = true;
    o.zero_escaping = true;
    o.popcount = PopcountStrategy::kAuto;
    return o;
  }

  /// "+lex+esc+simd:<strategy>" style suffix (empty when all off).
  std::string Suffix() const;
};

/// Vertical bit-vector depth-first miner. Not thread-safe.
///
/// The recursion is a re-entrant step over explicit frames, so a
/// fork-join driver can detach subtrees as tasks via MineNested()
/// (fpm/algo/subtree.h); sequential mining is the spawner-less case.
class EclatMiner : public Miner {
 public:
  explicit EclatMiner(EclatOptions options = EclatOptions());

  std::string name() const override { return "eclat" + options_.Suffix(); }

  const EclatOptions& options() const { return options_; }

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;
  Result<MineStats> MineNestedImpl(const Database& db, Support min_support,
                                   ItemsetSink* sink,
                                   SubtreeSpawner* spawner) override;

 private:
  EclatOptions options_;
};

class IncrementalVertical;

/// Mines a delta-maintained vertical matrix (bitvec/incremental_vertical.h)
/// against the current window database `db` (used for ranking and
/// supports only — transaction bits come from `inc`). Emits byte-for-byte
/// what EclatMiner with `options` emits over `db`. Bit-vector
/// representation only: `options.representation` is ignored, and the
/// popcount strategy must be available (checked like EclatMiner).
Result<MineStats> MineIncrementalVertical(const IncrementalVertical& inc,
                                          const Database& db,
                                          const EclatOptions& options,
                                          Support min_support,
                                          ItemsetSink* sink);

}  // namespace fpm

#endif  // FPM_ALGO_ECLAT_ECLAT_MINER_H_
