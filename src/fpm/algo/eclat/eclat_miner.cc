#include "fpm/algo/eclat/eclat_miner.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "fpm/algo/subtree.h"
#include "fpm/bitvec/incremental_vertical.h"
#include "fpm/bitvec/tidlist.h"
#include "fpm/bitvec/vertical.h"
#include "fpm/common/arena.h"
#include "fpm/common/cancel.h"
#include "fpm/layout/lexicographic.h"
#include "fpm/obs/trace.h"
#include "fpm/layout/item_order.h"

namespace fpm {

const char* EclatRepresentationName(EclatRepresentation r) {
  switch (r) {
    case EclatRepresentation::kBitVector:
      return "bitvector";
    case EclatRepresentation::kTidList:
      return "tidlist";
    case EclatRepresentation::kDiffset:
      return "diffset";
    case EclatRepresentation::kAuto:
      return "auto";
  }
  return "?";
}

std::string EclatOptions::Suffix() const {
  std::string s;
  if (lexicographic_order) s += "+lex";
  if (zero_escaping) s += "+esc";
  if (popcount != PopcountStrategy::kLut16) {
    s += "+simd:";
    s += PopcountStrategyName(ResolvePopcountStrategy(popcount));
  }
  if (representation != EclatRepresentation::kBitVector) {
    s += "+repr:";
    s += EclatRepresentationName(representation);
  }
  return s;
}

namespace {

// One itemset's occurrence vector during the DFS. Top-level columns
// borrow the VerticalDatabase's storage; derived columns own a slice
// covering only their 1-range window (`offset` = global word index of
// data[0]), so 0-escaping also shrinks the working set. Columns of a
// detached subtree frame point into the task's arena instead of `owned`.
struct Column {
  Item raw_item = 0;        // original item id of the extending item
  Support support = 0;
  WordRange range;          // global word coordinates
  uint32_t offset = 0;      // global index of data[0]
  const uint64_t* data = nullptr;
  std::vector<uint64_t> owned;
};

// One itemset's tid list during the sparse DFS (P2 representation).
struct TidColumn {
  Item raw_item = 0;
  Support support = 0;
  std::span<const Tid> tids;   // view: borrowed, into `owned`, or arena
  std::vector<Tid> owned;
};

// Everything a recursion step needs besides its frame. Copied by value
// into detached subtree tasks, so it must not reference the EclatRun or
// the Miner instance (both die with the class task that spawned the
// subtree, possibly before the subtree runs).
struct EclatCtx {
  EclatOptions options;
  PopcountStrategy strategy = PopcountStrategy::kLut16;
  Support min_support = 1;
  // Tid/diffset paths: per-transaction weights. Points into the
  // TidListDatabase when mining sequentially; when a spawner is present
  // it points into `weights_keepalive`, which detached frames co-own so
  // the array outlives the kernel run.
  const Support* weights = nullptr;
  std::shared_ptr<const std::vector<Support>> weights_keepalive;

  bool Cancelled() const {
    return options.cancel != nullptr && options.cancel->cancelled();
  }
};

// Self-contained frame of a detached bit-vector subtree: column data
// lives in the task's arena, so the parent's scratch may be reused the
// moment detach returns. Held by shared_ptr (SubtreeFn is a
// std::function and must stay copyable).
struct EclatFrame {
  EclatCtx ctx;
  std::vector<Column> cols;
  std::vector<Item> prefix;
};

struct EclatTidFrame {
  EclatCtx ctx;
  std::vector<TidColumn> cols;
  std::vector<Item> prefix;
  bool diffsets = false;        // frame columns are diffsets
};

// child = a & b, counted with the configured strategy, windowed to the
// operands' 1-ranges when 0-escaping is on. The AND lands in a shared
// scratch buffer; only frequent children are materialized (trimmed to
// their 1-range), so the common infrequent-candidate case allocates
// nothing.
Column Intersect(const EclatCtx& ctx, const Column& a, const Column& b,
                 std::vector<uint64_t>* scratch) {
  Column child;
  child.raw_item = b.raw_item;
  const WordRange window = IntersectRanges(a.range, b.range);
  if (window.empty()) {
    child.range = WordRange{window.begin, window.begin};
    child.offset = window.begin;
    return child;
  }
  if (scratch->size() < window.size()) scratch->resize(window.size());
  child.support = static_cast<Support>(
      AndCount(a.data + (window.begin - a.offset),
               b.data + (window.begin - b.offset), scratch->data(),
               window.size(), ctx.strategy));
  if (child.support < ctx.min_support) {
    child.range = window;  // never used: the caller discards the child
    return child;
  }
  uint32_t begin = 0;
  uint32_t end = window.size();
  if (ctx.options.zero_escaping) {
    // Tighten the conservative window (§4.2: ranges are conservative,
    // not necessarily optimal — tightening keeps them short downpath).
    const uint64_t* words = scratch->data();
    while (begin < end && words[begin] == 0) ++begin;
    while (end > begin && words[end - 1] == 0) --end;
  }
  child.offset = window.begin + begin;
  child.range = WordRange{window.begin + begin, window.begin + end};
  child.owned.assign(scratch->begin() + begin, scratch->begin() + end);
  child.data = child.owned.data();
  return child;
}

void MineClassStep(const EclatCtx& ctx, const std::vector<Column>& cols,
                   std::vector<Item>* prefix,
                   std::vector<uint64_t>* scratch, uint32_t depth,
                   ItemsetSink* sink, MineStats* stats,
                   SubtreeSpawner* spawner);

// Detaches `next` (an equivalence class about to be recursed into) as a
// self-contained subtree task: column windows are copied into the
// task's arena, the prefix (which already includes the class item) by
// value. Invoked synchronously by the spawner iff the offer is taken.
SubtreeSpawner::DetachFn DetachClass(const EclatCtx& ctx,
                                     const std::vector<Column>& next,
                                     const std::vector<Item>& prefix,
                                     uint32_t depth) {
  return [&ctx, &next, &prefix, depth](Arena* arena) {
    auto frame = std::make_shared<EclatFrame>();
    frame->ctx = ctx;
    frame->prefix = prefix;
    frame->cols.resize(next.size());
    for (size_t i = 0; i < next.size(); ++i) {
      Column& dst = frame->cols[i];
      const Column& src = next[i];
      dst.raw_item = src.raw_item;
      dst.support = src.support;
      dst.range = src.range;
      dst.offset = src.range.begin;
      const size_t words = src.range.size();
      uint64_t* copy = static_cast<uint64_t*>(
          arena->Allocate(words * sizeof(uint64_t), alignof(uint64_t)));
      std::memcpy(copy, src.data + (src.range.begin - src.offset),
                  words * sizeof(uint64_t));
      dst.data = copy;
    }
    return SubtreeSpawner::SubtreeFn(
        [frame, depth](ItemsetSink* sink, SubtreeSpawner* spawner,
                       MineStats* stats) {
          std::vector<Item> pfx = frame->prefix;
          std::vector<uint64_t> scratch;
          MineClassStep(frame->ctx, frame->cols, &pfx, &scratch, depth,
                        sink, stats, spawner);
        });
  };
}

// Mines one equivalence class: emits every column as an extension of
// `prefix` and recurses on its own extensions — re-entrant step, no
// miner state. Child classes clearing the spawner's cutoff run as tasks.
void MineClassStep(const EclatCtx& ctx, const std::vector<Column>& cols,
                   std::vector<Item>* prefix,
                   std::vector<uint64_t>* scratch, uint32_t depth,
                   ItemsetSink* sink, MineStats* stats,
                   SubtreeSpawner* spawner) {
  std::vector<Column> next;
  for (size_t k = 0; k < cols.size(); ++k) {
    if (ctx.Cancelled()) return;
    const Column& a = cols[k];
    prefix->push_back(a.raw_item);
    sink->Emit(*prefix, a.support);
    if (stats != nullptr) ++stats->num_frequent;

    next.clear();
    uint64_t work = 0;
    for (size_t l = k + 1; l < cols.size(); ++l) {
      Column child = Intersect(ctx, a, cols[l], scratch);
      if (child.support >= ctx.min_support) {
        work += child.support;
        next.push_back(std::move(child));
      }
    }
    if (!next.empty()) {
      if (spawner == nullptr ||
          !spawner->Offer(depth + 1, work,
                          DetachClass(ctx, next, *prefix, depth + 1))) {
        MineClassStep(ctx, next, prefix, scratch, depth + 1, sink, stats,
                      spawner);
      }
    }
    prefix->pop_back();
  }
}

void MineClassTidStep(const EclatCtx& ctx,
                      const std::vector<TidColumn>& cols,
                      std::vector<Item>* prefix,
                      std::vector<Tid>* scratch, uint32_t depth,
                      bool diffsets, bool cols_are_tidsets,
                      ItemsetSink* sink, MineStats* stats,
                      SubtreeSpawner* spawner);

SubtreeSpawner::DetachFn DetachTidClass(const EclatCtx& ctx,
                                        const std::vector<TidColumn>& next,
                                        const std::vector<Item>& prefix,
                                        uint32_t depth, bool diffsets) {
  return [&ctx, &next, &prefix, depth, diffsets](Arena* arena) {
    auto frame = std::make_shared<EclatTidFrame>();
    frame->ctx = ctx;
    frame->prefix = prefix;
    frame->diffsets = diffsets;
    frame->cols.resize(next.size());
    for (size_t i = 0; i < next.size(); ++i) {
      TidColumn& dst = frame->cols[i];
      const TidColumn& src = next[i];
      dst.raw_item = src.raw_item;
      dst.support = src.support;
      Tid* copy = static_cast<Tid*>(
          arena->Allocate(src.tids.size() * sizeof(Tid), alignof(Tid)));
      std::memcpy(copy, src.tids.data(), src.tids.size() * sizeof(Tid));
      dst.tids = std::span<const Tid>(copy, src.tids.size());
    }
    return SubtreeSpawner::SubtreeFn(
        [frame, depth](ItemsetSink* sink, SubtreeSpawner* spawner,
                       MineStats* stats) {
          std::vector<Item> pfx = frame->prefix;
          std::vector<Tid> scratch;
          // Below the first diffset level, columns are always diffsets.
          MineClassTidStep(frame->ctx, frame->cols, &pfx, &scratch, depth,
                           frame->diffsets, /*cols_are_tidsets=*/false,
                           sink, stats, spawner);
        });
  };
}

// Sparse-representation step. With `diffsets`, columns below level 1
// carry d(P∪{x}) relative to the prefix (dEclat): combining member X
// (the new prefix element) with a later member Y produces
//   tidsets:  d(XY) = t(X) \ t(Y)
//   diffsets: d(PXY) = d(PY) \ d(PX)
// and support(·XY) = support(·X) - weight(diffset).
void MineClassTidStep(const EclatCtx& ctx,
                      const std::vector<TidColumn>& cols,
                      std::vector<Item>* prefix,
                      std::vector<Tid>* scratch, uint32_t depth,
                      bool diffsets, bool cols_are_tidsets,
                      ItemsetSink* sink, MineStats* stats,
                      SubtreeSpawner* spawner) {
  std::vector<TidColumn> next;
  for (size_t k = 0; k < cols.size(); ++k) {
    if (ctx.Cancelled()) return;
    const TidColumn& a = cols[k];
    prefix->push_back(a.raw_item);
    sink->Emit(*prefix, a.support);
    if (stats != nullptr) ++stats->num_frequent;

    next.clear();
    uint64_t work = 0;
    for (size_t l = k + 1; l < cols.size(); ++l) {
      const TidColumn& b = cols[l];
      TidColumn child;
      if (!diffsets) {
        const size_t cap = std::min(a.tids.size(), b.tids.size());
        if (scratch->size() < cap) scratch->resize(cap);
        Support support = 0;
        const size_t n = IntersectTidLists(a.tids, b.tids, ctx.weights,
                                           scratch->data(), &support);
        if (support < ctx.min_support) continue;
        child.support = support;
        child.owned.assign(scratch->begin(), scratch->begin() + n);
      } else {
        const std::span<const Tid> minuend =
            cols_are_tidsets ? a.tids : b.tids;
        const std::span<const Tid> subtrahend =
            cols_are_tidsets ? b.tids : a.tids;
        if (scratch->size() < minuend.size()) {
          scratch->resize(minuend.size());
        }
        Support diff_weight = 0;
        const size_t n =
            DifferenceTidLists(minuend, subtrahend, ctx.weights,
                               scratch->data(), &diff_weight);
        if (static_cast<uint64_t>(a.support) <
            static_cast<uint64_t>(ctx.min_support) + diff_weight) {
          continue;
        }
        child.support = a.support - diff_weight;
        child.owned.assign(scratch->begin(), scratch->begin() + n);
      }
      child.raw_item = b.raw_item;
      child.tids = std::span<const Tid>(child.owned);
      work += child.support;
      next.push_back(std::move(child));
    }
    if (!next.empty()) {
      if (spawner == nullptr ||
          !spawner->Offer(depth + 1, work,
                          DetachTidClass(ctx, next, *prefix, depth + 1,
                                         diffsets))) {
        MineClassTidStep(ctx, next, prefix, scratch, depth + 1, diffsets,
                         /*cols_are_tidsets=*/false, sink, stats, spawner);
      }
    }
    prefix->pop_back();
  }
}

class EclatRun {
 public:
  EclatRun(const EclatOptions& options, Support min_support,
           ItemsetSink* sink, MineStats* stats, SubtreeSpawner* spawner)
      : min_support_(min_support),
        sink_(sink),
        stats_(stats),
        spawner_(spawner) {
    ctx_.options = options;
    ctx_.strategy = ResolvePopcountStrategy(options.popcount);
    ctx_.min_support = min_support;
  }

  void Run(const Database& db) {
    // Preparation: frequency ranking (intrinsic) + optional P1 sort.
    PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
    Database ranked;
    if (ctx_.options.lexicographic_order) {
      LexicographicResult lex = LexicographicOrder(db);
      ranked = std::move(lex.database);
      item_map_ = lex.item_order.to_item();
    } else {
      ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
      ranked = RemapItems(db, order);
      item_map_ = order.to_item();
    }
    stats_->FinishPhase(PhaseId::kPrepare, prep_span);

    // Frequency ranks are descending, so the frequent items form a
    // prefix of the rank space; only those columns are materialized.
    const auto& freq = ranked.item_frequencies();
    size_t num_frequent = 0;
    while (num_frequent < freq.size() &&
           freq[num_frequent] >= min_support_) {
      ++num_frequent;
    }

    // P2: resolve the vertical representation. The tid list wins when
    // the frequent columns are sparse: 4 bytes per entry beats 1 bit per
    // row below a fill of ~1/32.
    EclatRepresentation repr = ctx_.options.representation;
    if (repr == EclatRepresentation::kAuto) {
      uint64_t entries = 0;
      for (size_t i = 0; i < num_frequent; ++i) entries += freq[i];
      const uint64_t cells =
          static_cast<uint64_t>(num_frequent) * ranked.total_weight();
      repr = (cells > 0 && entries * 32 < cells)
                 ? EclatRepresentation::kTidList
                 : EclatRepresentation::kBitVector;
    }
    if (repr == EclatRepresentation::kTidList ||
        repr == EclatRepresentation::kDiffset) {
      RunTidList(ranked, num_frequent,
                 /*diffsets=*/repr == EclatRepresentation::kDiffset);
      return;
    }

    // Build the vertical bit matrix (frequent columns only).
    PhaseSpan build_span(PhaseName(PhaseId::kBuild));
    VerticalDatabase vdb = VerticalDatabase::FromDatabase(ranked,
                                                          num_frequent);
    stats_->FinishPhase(PhaseId::kBuild, build_span);
    stats_->peak_structure_bytes = vdb.memory_bytes();

    PhaseSpan mine_span(PhaseName(PhaseId::kMine));
    // Top-level columns: frequent items only, ascending support (the
    // classic Eclat extension order — small intermediates first).
    std::vector<Item> items;
    for (Item i = 0; i < num_frequent; ++i) items.push_back(i);
    // Support ties break by rank so the extension order — and with it
    // the deterministic emission order — is independent of min_support:
    // the run at a higher threshold emits exactly the support-filtered
    // subsequence of the run at a lower one (the service's result-cache
    // dominance reuse depends on this).
    std::sort(items.begin(), items.end(), [&freq](Item a, Item b) {
      return freq[a] != freq[b] ? freq[a] < freq[b] : a < b;
    });

    std::vector<Column> cols(items.size());
    for (size_t k = 0; k < items.size(); ++k) {
      const Item i = items[k];
      cols[k].raw_item = item_map_[i];
      cols[k].support = freq[i];
      cols[k].data = vdb.column(i).words();
      cols[k].offset = 0;
      cols[k].range =
          ctx_.options.zero_escaping ? vdb.one_range(i) : vdb.full_range();
    }
    std::vector<Item> prefix;
    std::vector<uint64_t> scratch;
    MineClassStep(ctx_, cols, &prefix, &scratch, 0, sink_, stats_,
                  spawner_);
    stats_->FinishPhase(PhaseId::kMine, mine_span);
  }

 private:
  // Sparse-representation mining path. With `diffsets`, level-1 columns
  // are tid lists and every deeper class switches to diffsets relative
  // to its prefix (dEclat).
  void RunTidList(const Database& ranked, size_t num_frequent,
                  bool diffsets) {
    PhaseSpan build_span(PhaseName(PhaseId::kBuild));
    TidListDatabase tdb =
        TidListDatabase::FromDatabase(ranked, num_frequent);
    stats_->FinishPhase(PhaseId::kBuild, build_span);
    stats_->peak_structure_bytes = tdb.memory_bytes();

    PhaseSpan mine_span(PhaseName(PhaseId::kMine));
    if (spawner_ != nullptr) {
      // Detached subtrees may outlive this run (and `tdb` with it):
      // give them shared ownership of the weight array.
      ctx_.weights_keepalive =
          std::make_shared<const std::vector<Support>>(tdb.weights());
      ctx_.weights = ctx_.weights_keepalive->data();
    } else {
      ctx_.weights = tdb.weights().data();
    }
    const auto& freq = ranked.item_frequencies();
    std::vector<Item> items(num_frequent);
    for (size_t i = 0; i < num_frequent; ++i) items[i] = static_cast<Item>(i);
    // Rank tie-break as in the bit-vector path: keeps the emission order
    // independent of min_support.
    std::sort(items.begin(), items.end(), [&freq](Item a, Item b) {
      return freq[a] != freq[b] ? freq[a] < freq[b] : a < b;
    });

    std::vector<TidColumn> cols(items.size());
    for (size_t k = 0; k < items.size(); ++k) {
      cols[k].raw_item = item_map_[items[k]];
      cols[k].support = freq[items[k]];
      cols[k].tids = tdb.list(items[k]);
    }
    std::vector<Item> prefix;
    std::vector<Tid> scratch;
    MineClassTidStep(ctx_, cols, &prefix, &scratch, 0, diffsets,
                     /*cols_are_tidsets=*/true, sink_, stats_, spawner_);
    stats_->FinishPhase(PhaseId::kMine, mine_span);
  }

  EclatCtx ctx_;
  const Support min_support_;
  ItemsetSink* sink_;
  MineStats* stats_;
  SubtreeSpawner* spawner_;
  std::vector<Item> item_map_;  // rank -> raw item id
};

}  // namespace

Result<MineStats> MineIncrementalVertical(const IncrementalVertical& inc,
                                          const Database& db,
                                          const EclatOptions& options,
                                          Support min_support,
                                          ItemsetSink* sink) {
  if (!PopcountStrategyAvailable(options.popcount)) {
    return Status::InvalidArgument(
        std::string("popcount strategy unavailable on this machine: ") +
        PopcountStrategyName(options.popcount));
  }
  MineStats stats;
  EclatCtx ctx;
  ctx.options = options;
  ctx.options.representation = EclatRepresentation::kBitVector;
  ctx.strategy = ResolvePopcountStrategy(options.popcount);
  ctx.min_support = min_support;

  // Rank against the *window* database — exactly the ranking a fresh
  // EclatRun would compute — but keep columns raw-item-indexed: the
  // maintained matrix stores raw columns, and the Column struct carries
  // the raw id anyway.
  PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
  ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
  const std::vector<Item>& item_map = order.to_item();
  const auto& raw_freq = db.item_frequencies();
  size_t num_frequent = 0;
  while (num_frequent < item_map.size() &&
         raw_freq[item_map[num_frequent]] >= min_support) {
    ++num_frequent;
  }
  stats.FinishPhase(PhaseId::kPrepare, prep_span);
  stats.peak_structure_bytes = inc.memory_bytes();

  PhaseSpan mine_span(PhaseName(PhaseId::kMine));
  std::vector<Item> items(num_frequent);
  for (size_t i = 0; i < num_frequent; ++i) items[i] = static_cast<Item>(i);
  // (freq asc, rank asc), as in EclatRun: emission order must match a
  // fresh run byte-for-byte.
  std::sort(items.begin(), items.end(),
            [&raw_freq, &item_map](Item a, Item b) {
              const Support fa = raw_freq[item_map[a]];
              const Support fb = raw_freq[item_map[b]];
              return fa != fb ? fa < fb : a < b;
            });

  std::vector<Column> cols(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    const Item raw = item_map[items[k]];
    cols[k].raw_item = raw;
    cols[k].support = raw_freq[raw];
    cols[k].data = inc.column_words(raw);
    cols[k].offset = 0;
    cols[k].range =
        options.zero_escaping ? inc.one_range(raw) : inc.full_range();
  }
  std::vector<Item> prefix;
  std::vector<uint64_t> scratch;
  MineClassStep(ctx, cols, &prefix, &scratch, 0, sink, &stats,
                /*spawner=*/nullptr);
  stats.FinishPhase(PhaseId::kMine, mine_span);
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return options.cancel->ToStatus();
  }
  return stats;
}

EclatMiner::EclatMiner(EclatOptions options) : options_(options) {}

Result<MineStats> EclatMiner::MineImpl(const Database& db,
                                       Support min_support,
                                       ItemsetSink* sink) {
  return MineNestedImpl(db, min_support, sink, nullptr);
}

Result<MineStats> EclatMiner::MineNestedImpl(const Database& db,
                                             Support min_support,
                                             ItemsetSink* sink,
                                             SubtreeSpawner* spawner) {
  if (!PopcountStrategyAvailable(options_.popcount)) {
    return Status::InvalidArgument(
        std::string("popcount strategy unavailable on this machine: ") +
        PopcountStrategyName(options_.popcount));
  }
  MineStats stats;
  EclatRun run(options_, min_support, sink, &stats, spawner);
  run.Run(db);
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    return options_.cancel->ToStatus();
  }
  return stats;
}

}  // namespace fpm
