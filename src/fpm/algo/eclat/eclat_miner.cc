#include "fpm/algo/eclat/eclat_miner.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "fpm/bitvec/tidlist.h"
#include "fpm/bitvec/vertical.h"
#include "fpm/layout/lexicographic.h"
#include "fpm/obs/trace.h"
#include "fpm/layout/item_order.h"

namespace fpm {

const char* EclatRepresentationName(EclatRepresentation r) {
  switch (r) {
    case EclatRepresentation::kBitVector:
      return "bitvector";
    case EclatRepresentation::kTidList:
      return "tidlist";
    case EclatRepresentation::kDiffset:
      return "diffset";
    case EclatRepresentation::kAuto:
      return "auto";
  }
  return "?";
}

std::string EclatOptions::Suffix() const {
  std::string s;
  if (lexicographic_order) s += "+lex";
  if (zero_escaping) s += "+esc";
  if (popcount != PopcountStrategy::kLut16) {
    s += "+simd:";
    s += PopcountStrategyName(ResolvePopcountStrategy(popcount));
  }
  if (representation != EclatRepresentation::kBitVector) {
    s += "+repr:";
    s += EclatRepresentationName(representation);
  }
  return s;
}

namespace {

// One itemset's occurrence vector during the DFS. Top-level columns
// borrow the VerticalDatabase's storage; derived columns own a slice
// covering only their 1-range window (`offset` = global word index of
// data[0]), so 0-escaping also shrinks the working set.
struct Column {
  Item raw_item = 0;        // original item id of the extending item
  Support support = 0;
  WordRange range;          // global word coordinates
  uint32_t offset = 0;      // global index of data[0]
  const uint64_t* data = nullptr;
  std::vector<uint64_t> owned;
};

class EclatRun {
 public:
  EclatRun(const EclatOptions& options, Support min_support,
           ItemsetSink* sink, MineStats* stats)
      : options_(options),
        strategy_(ResolvePopcountStrategy(options.popcount)),
        min_support_(min_support),
        sink_(sink),
        stats_(stats) {}

  void Run(const Database& db) {
    // Preparation: frequency ranking (intrinsic) + optional P1 sort.
    PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
    Database ranked;
    if (options_.lexicographic_order) {
      LexicographicResult lex = LexicographicOrder(db);
      ranked = std::move(lex.database);
      item_map_ = lex.item_order.to_item();
    } else {
      ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
      ranked = RemapItems(db, order);
      item_map_ = order.to_item();
    }
    stats_->FinishPhase(PhaseId::kPrepare, prep_span);

    // Frequency ranks are descending, so the frequent items form a
    // prefix of the rank space; only those columns are materialized.
    const auto& freq = ranked.item_frequencies();
    size_t num_frequent = 0;
    while (num_frequent < freq.size() &&
           freq[num_frequent] >= min_support_) {
      ++num_frequent;
    }

    // P2: resolve the vertical representation. The tid list wins when
    // the frequent columns are sparse: 4 bytes per entry beats 1 bit per
    // row below a fill of ~1/32.
    EclatRepresentation repr = options_.representation;
    if (repr == EclatRepresentation::kAuto) {
      uint64_t entries = 0;
      for (size_t i = 0; i < num_frequent; ++i) entries += freq[i];
      const uint64_t cells =
          static_cast<uint64_t>(num_frequent) * ranked.total_weight();
      repr = (cells > 0 && entries * 32 < cells)
                 ? EclatRepresentation::kTidList
                 : EclatRepresentation::kBitVector;
    }
    if (repr == EclatRepresentation::kTidList ||
        repr == EclatRepresentation::kDiffset) {
      RunTidList(ranked, num_frequent,
                 /*diffsets=*/repr == EclatRepresentation::kDiffset);
      return;
    }

    // Build the vertical bit matrix (frequent columns only).
    PhaseSpan build_span(PhaseName(PhaseId::kBuild));
    VerticalDatabase vdb = VerticalDatabase::FromDatabase(ranked,
                                                          num_frequent);
    stats_->FinishPhase(PhaseId::kBuild, build_span);
    stats_->peak_structure_bytes = vdb.memory_bytes();

    PhaseSpan mine_span(PhaseName(PhaseId::kMine));
    // Top-level columns: frequent items only, ascending support (the
    // classic Eclat extension order — small intermediates first).
    std::vector<Item> items;
    for (Item i = 0; i < num_frequent; ++i) items.push_back(i);
    std::sort(items.begin(), items.end(),
              [&freq](Item a, Item b) { return freq[a] < freq[b]; });

    std::vector<Column> cols(items.size());
    for (size_t k = 0; k < items.size(); ++k) {
      const Item i = items[k];
      cols[k].raw_item = item_map_[i];
      cols[k].support = freq[i];
      cols[k].data = vdb.column(i).words();
      cols[k].offset = 0;
      cols[k].range =
          options_.zero_escaping ? vdb.one_range(i) : vdb.full_range();
    }
    std::vector<Item> prefix;
    MineClass(cols, &prefix);
    stats_->FinishPhase(PhaseId::kMine, mine_span);
  }

 private:
  // One itemset's tid list during the sparse DFS (P2 representation).
  struct TidColumn {
    Item raw_item = 0;
    Support support = 0;
    std::span<const Tid> tids;   // view: either borrowed or into `owned`
    std::vector<Tid> owned;
  };

  // Sparse-representation mining path. With `diffsets`, level-1 columns
  // are tid lists and every deeper class switches to diffsets relative
  // to its prefix (dEclat).
  void RunTidList(const Database& ranked, size_t num_frequent,
                  bool diffsets) {
    PhaseSpan build_span(PhaseName(PhaseId::kBuild));
    TidListDatabase tdb =
        TidListDatabase::FromDatabase(ranked, num_frequent);
    stats_->FinishPhase(PhaseId::kBuild, build_span);
    stats_->peak_structure_bytes = tdb.memory_bytes();

    PhaseSpan mine_span(PhaseName(PhaseId::kMine));
    const auto& freq = ranked.item_frequencies();
    std::vector<Item> items(num_frequent);
    for (size_t i = 0; i < num_frequent; ++i) items[i] = static_cast<Item>(i);
    std::sort(items.begin(), items.end(),
              [&freq](Item a, Item b) { return freq[a] < freq[b]; });

    std::vector<TidColumn> cols(items.size());
    for (size_t k = 0; k < items.size(); ++k) {
      cols[k].raw_item = item_map_[items[k]];
      cols[k].support = freq[items[k]];
      cols[k].tids = tdb.list(items[k]);
    }
    std::vector<Item> prefix;
    if (diffsets) {
      MineClassDiff(cols, tdb.weights().data(), &prefix,
                    /*cols_are_tidsets=*/true);
    } else {
      MineClassTid(cols, tdb.weights().data(), &prefix);
    }
    stats_->FinishPhase(PhaseId::kMine, mine_span);
  }

  void MineClassTid(const std::vector<TidColumn>& cols,
                    const Support* weights, std::vector<Item>* prefix) {
    std::vector<TidColumn> next;
    for (size_t k = 0; k < cols.size(); ++k) {
      const TidColumn& a = cols[k];
      prefix->push_back(a.raw_item);
      sink_->Emit(*prefix, a.support);
      ++stats_->num_frequent;

      next.clear();
      for (size_t l = k + 1; l < cols.size(); ++l) {
        const TidColumn& b = cols[l];
        const size_t cap = std::min(a.tids.size(), b.tids.size());
        if (tid_scratch_.size() < cap) tid_scratch_.resize(cap);
        Support support = 0;
        const size_t n = IntersectTidLists(a.tids, b.tids, weights,
                                           tid_scratch_.data(), &support);
        if (support < min_support_) continue;
        TidColumn child;
        child.raw_item = b.raw_item;
        child.support = support;
        child.owned.assign(tid_scratch_.begin(), tid_scratch_.begin() + n);
        child.tids = std::span<const Tid>(child.owned);
        next.push_back(std::move(child));
      }
      if (!next.empty()) MineClassTid(next, weights, prefix);
      prefix->pop_back();
    }
  }

  // dEclat recursion. When `cols_are_tidsets`, members carry t(P∪{x});
  // otherwise they carry d(P∪{x}) relative to the current prefix P.
  // Either way, combining member X (the new prefix element) with a
  // later member Y produces the child's diffset
  //   tidsets:  d(XY) = t(X) \ t(Y)
  //   diffsets: d(PXY) = d(PY) \ d(PX)
  // and support(·XY) = support(·X) - weight(diffset).
  void MineClassDiff(const std::vector<TidColumn>& cols,
                     const Support* weights, std::vector<Item>* prefix,
                     bool cols_are_tidsets) {
    std::vector<TidColumn> next;
    for (size_t k = 0; k < cols.size(); ++k) {
      const TidColumn& a = cols[k];
      prefix->push_back(a.raw_item);
      sink_->Emit(*prefix, a.support);
      ++stats_->num_frequent;

      next.clear();
      for (size_t l = k + 1; l < cols.size(); ++l) {
        const TidColumn& b = cols[l];
        const std::span<const Tid> minuend =
            cols_are_tidsets ? a.tids : b.tids;
        const std::span<const Tid> subtrahend =
            cols_are_tidsets ? b.tids : a.tids;
        if (tid_scratch_.size() < minuend.size()) {
          tid_scratch_.resize(minuend.size());
        }
        Support diff_weight = 0;
        const size_t n =
            DifferenceTidLists(minuend, subtrahend, weights,
                               tid_scratch_.data(), &diff_weight);
        if (static_cast<uint64_t>(a.support) <
            static_cast<uint64_t>(min_support_) + diff_weight) {
          continue;
        }
        TidColumn child;
        child.raw_item = b.raw_item;
        child.support = a.support - diff_weight;
        child.owned.assign(tid_scratch_.begin(), tid_scratch_.begin() + n);
        child.tids = std::span<const Tid>(child.owned);
        next.push_back(std::move(child));
      }
      if (!next.empty()) {
        MineClassDiff(next, weights, prefix, /*cols_are_tidsets=*/false);
      }
      prefix->pop_back();
    }
  }

  // Mines one equivalence class: emits every column as an extension of
  // `prefix` and recurses on its own extensions.
  void MineClass(const std::vector<Column>& cols, std::vector<Item>* prefix) {
    std::vector<Column> next;
    for (size_t k = 0; k < cols.size(); ++k) {
      const Column& a = cols[k];
      prefix->push_back(a.raw_item);
      sink_->Emit(*prefix, a.support);
      ++stats_->num_frequent;

      next.clear();
      for (size_t l = k + 1; l < cols.size(); ++l) {
        Column child = Intersect(a, cols[l]);
        if (child.support >= min_support_) next.push_back(std::move(child));
      }
      if (!next.empty()) MineClass(next, prefix);
      prefix->pop_back();
    }
  }

  // child = a & b, counted with the configured strategy, windowed to the
  // operands' 1-ranges when 0-escaping is on. The AND lands in a shared
  // scratch buffer; only frequent children are materialized (trimmed to
  // their 1-range), so the common infrequent-candidate case allocates
  // nothing.
  Column Intersect(const Column& a, const Column& b) {
    Column child;
    child.raw_item = b.raw_item;
    const WordRange window = IntersectRanges(a.range, b.range);
    if (window.empty()) {
      child.range = WordRange{window.begin, window.begin};
      child.offset = window.begin;
      return child;
    }
    if (scratch_.size() < window.size()) scratch_.resize(window.size());
    child.support = static_cast<Support>(
        AndCount(a.data + (window.begin - a.offset),
                 b.data + (window.begin - b.offset), scratch_.data(),
                 window.size(), strategy_));
    if (child.support < min_support_) {
      child.range = window;  // never used: the caller discards the child
      return child;
    }
    uint32_t begin = 0;
    uint32_t end = window.size();
    if (options_.zero_escaping) {
      // Tighten the conservative window (§4.2: ranges are conservative,
      // not necessarily optimal — tightening keeps them short downpath).
      while (begin < end && scratch_[begin] == 0) ++begin;
      while (end > begin && scratch_[end - 1] == 0) --end;
    }
    child.offset = window.begin + begin;
    child.range = WordRange{window.begin + begin, window.begin + end};
    child.owned.assign(scratch_.begin() + begin, scratch_.begin() + end);
    child.data = child.owned.data();
    return child;
  }

  const EclatOptions& options_;
  const PopcountStrategy strategy_;
  const Support min_support_;
  ItemsetSink* sink_;
  MineStats* stats_;
  std::vector<Item> item_map_;  // rank -> raw item id
  std::vector<uint64_t> scratch_;  // shared AND destination
  std::vector<Tid> tid_scratch_;   // shared merge destination
};

}  // namespace

EclatMiner::EclatMiner(EclatOptions options) : options_(options) {}

Result<MineStats> EclatMiner::MineImpl(const Database& db,
                                       Support min_support,
                                       ItemsetSink* sink) {
  if (!PopcountStrategyAvailable(options_.popcount)) {
    return Status::InvalidArgument(
        std::string("popcount strategy unavailable on this machine: ") +
        PopcountStrategyName(options_.popcount));
  }
  MineStats stats;
  EclatRun run(options_, min_support, sink, &stats);
  run.Run(db);
  return stats;
}

}  // namespace fpm
