// Output sinks for miners. Miners emit every frequent itemset exactly
// once (in the *original* item-id space, regardless of any internal
// re-ranking); sinks decide what to do with them.
//
// Concurrency contract: Emit() calls on a given sink are always
// serialized — a sink never needs to be internally thread-safe. The
// sequential kernels emit from the calling thread; the parallel engine
// (fpm/parallel/) gives each mining task a private shard (see
// ShardedSink) or serializes direct emission under a lock, and only
// merges into the caller's sink from one thread. Sinks that aggregate
// (CountingSink) expose an associative merge so per-shard partials
// combine to exactly the sequential result.

#ifndef FPM_ALGO_ITEMSET_SINK_H_
#define FPM_ALGO_ITEMSET_SINK_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "fpm/dataset/types.h"

namespace fpm {

/// Receives frequent itemsets as they are discovered. `itemset` is only
/// valid for the duration of the call; implementations must copy if they
/// retain it. Item order within `itemset` is unspecified.
///
/// Implementations need not be thread-safe: callers guarantee Emit()
/// invocations are serialized (see the header comment).
class ItemsetSink {
 public:
  virtual ~ItemsetSink() = default;
  virtual void Emit(std::span<const Item> itemset, Support support) = 0;
};

/// Counts itemsets and accumulates an order-insensitive checksum — the
/// bench sink: O(1) memory and defeats dead-code elimination.
class CountingSink : public ItemsetSink {
 public:
  void Emit(std::span<const Item> itemset, Support support) override {
    ++count_;
    support_sum_ += support;
    if (itemset.size() > max_size_) max_size_ = itemset.size();
    // Order-insensitive mix: commutative over both emission order and
    // item order within the set.
    uint64_t h = 1469598103934665603ull;
    for (Item it : itemset) {
      h += (static_cast<uint64_t>(it) + 0x9e3779b97f4a7c15ull) *
           0xff51afd7ed558ccdull;
    }
    checksum_ ^= h * (support + 1);
  }

  /// Folds another CountingSink's aggregates into this one. All fields
  /// merge associatively and commutatively (sums, max, XOR of per-set
  /// hashes), so any partition of the itemsets across sinks — e.g. the
  /// parallel engine's shards — merges to exactly the counters and
  /// checksum of one sink that saw every emission.
  void MergeFrom(const CountingSink& other) {
    count_ += other.count_;
    support_sum_ += other.support_sum_;
    checksum_ ^= other.checksum_;
    max_size_ = std::max(max_size_, other.max_size_);
  }

  uint64_t count() const { return count_; }
  uint64_t support_sum() const { return support_sum_; }
  uint64_t checksum() const { return checksum_; }
  size_t max_size() const { return max_size_; }

 private:
  uint64_t count_ = 0;
  uint64_t support_sum_ = 0;
  uint64_t checksum_ = 0;
  size_t max_size_ = 0;
};

/// Materializes every itemset — the test sink. Canonicalize() sorts
/// items within sets and sets lexicographically so results from
/// different miners compare equal.
class CollectingSink : public ItemsetSink {
 public:
  using Entry = std::pair<Itemset, Support>;

  void Emit(std::span<const Item> itemset, Support support) override {
    Itemset set(itemset.begin(), itemset.end());
    std::sort(set.begin(), set.end());
    results_.emplace_back(std::move(set), support);
  }

  /// Sorts results into canonical order (itemset lexicographic).
  void Canonicalize() {
    std::sort(results_.begin(), results_.end());
  }

  const std::vector<Entry>& results() const { return results_; }
  std::vector<Entry>& mutable_results() { return results_; }
  size_t size() const { return results_.size(); }

 private:
  std::vector<Entry> results_;
};

/// Retains only itemsets of size >= min_size (association-rule front
/// ends typically want pairs and larger).
class SizeFilterSink : public ItemsetSink {
 public:
  SizeFilterSink(ItemsetSink* inner, size_t min_size)
      : inner_(inner), min_size_(min_size) {}

  void Emit(std::span<const Item> itemset, Support support) override {
    if (itemset.size() >= min_size_) inner_->Emit(itemset, support);
  }

 private:
  ItemsetSink* inner_;
  size_t min_size_;
};

/// A fixed array of CollectingSink shards plus an ordered merge — the
/// buffer behind deterministic parallel mining. Each worker/task owns
/// one shard exclusively while mining (no locking: disjoint shards), and
/// a single thread calls MergeInto() afterwards, replaying shard 0's
/// itemsets, then shard 1's, ... into the target. The replay order
/// depends only on the shard assignment, not on thread scheduling.
class ShardedSink {
 public:
  explicit ShardedSink(size_t num_shards) : shards_(num_shards) {}

  size_t num_shards() const { return shards_.size(); }

  /// Shard `i`, exclusively owned by one task at a time.
  CollectingSink* shard(size_t i) { return &shards_[i]; }
  const CollectingSink& shard(size_t i) const { return shards_[i]; }

  /// Total itemsets buffered across all shards.
  uint64_t total_count() const {
    uint64_t n = 0;
    for (const CollectingSink& s : shards_) n += s.size();
    return n;
  }

  /// Replays every buffered itemset into `target`, in shard order (and
  /// emission order within each shard). Single-threaded; shards must no
  /// longer be written to.
  void MergeInto(ItemsetSink* target) const {
    for (const CollectingSink& s : shards_) {
      for (const CollectingSink::Entry& e : s.results()) {
        target->Emit(e.first, e.second);
      }
    }
  }

 private:
  std::vector<CollectingSink> shards_;
};

}  // namespace fpm

#endif  // FPM_ALGO_ITEMSET_SINK_H_
