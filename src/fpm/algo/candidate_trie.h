// Prefix trie over a fixed candidate set, for batch support counting:
// CountTransaction adds a transaction's weight to every candidate that
// is a subset of it. Used by the Apriori level loop and by the
// partitioned miner's global counting phase.

#ifndef FPM_ALGO_CANDIDATE_TRIE_H_
#define FPM_ALGO_CANDIDATE_TRIE_H_

#include <span>
#include <vector>

#include "fpm/dataset/types.h"

namespace fpm {

/// Immutable after construction; candidates may have mixed sizes.
class CandidateTrie {
 public:
  CandidateTrie() = default;

  /// Inserts a candidate (items sorted ascending, non-empty, no
  /// duplicates within the set) under the given index. Indices must be
  /// unique; counting accumulates into counts[index].
  void Insert(std::span<const Item> candidate, uint32_t index);

  /// Adds `weight` to counts[i] for every candidate i ⊆ tx.
  /// `tx` must be sorted ascending without duplicates.
  void CountTransaction(std::span<const Item> tx, Support weight,
                        std::vector<Support>* counts) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Sorted parallel arrays of edge labels and child node ids.
    std::vector<Item> labels;
    std::vector<uint32_t> children;
    uint32_t candidate = kNoCandidate;
  };
  static constexpr uint32_t kNoCandidate = ~0u;

  void Walk(uint32_t node_id, std::span<const Item> tx, Support weight,
            std::vector<Support>* counts) const;

  std::vector<Node> nodes_{1};  // node 0 = root
};

}  // namespace fpm

#endif  // FPM_ALGO_CANDIDATE_TRIE_H_
