#include "fpm/algo/hmine.h"

#include <algorithm>
#include <vector>

#include "fpm/layout/item_order.h"
#include "fpm/obs/trace.h"

namespace fpm {
namespace {

// The hyper structure: one flat cell per (transaction, item) incidence.
// Cells of one transaction are contiguous with items ascending by rank;
// cell c's transaction suffix is [c+1, tx_end[c]).
struct HyperStructure {
  std::vector<Item> item;       // per cell
  std::vector<uint32_t> tx_end; // per cell: end cell of its transaction
  std::vector<Support> weight;  // per cell: its transaction's weight
};

class HMineRun {
 public:
  HMineRun(Support min_support, ItemsetSink* sink, MineStats* stats)
      : min_support_(min_support), sink_(sink), stats_(stats) {}

  void Run(const Database& db) {
    PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
    ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
    item_map_ = order.to_item();
    const auto& freq = db.item_frequencies();
    num_ranks_ = 0;
    while (num_ranks_ < item_map_.size() &&
           freq[item_map_[num_ranks_]] >= min_support_) {
      ++num_ranks_;
    }

    // Build the hyper structure over frequent ranks.
    std::vector<Item> scratch;
    for (Tid t = 0; t < db.num_transactions(); ++t) {
      scratch.clear();
      for (Item raw : db.transaction(t)) {
        const Item rank = order.RankOf(raw);
        if (rank < num_ranks_) scratch.push_back(rank);
      }
      if (scratch.empty()) continue;
      std::sort(scratch.begin(), scratch.end());
      const uint32_t begin = static_cast<uint32_t>(hs_.item.size());
      const uint32_t end = begin + static_cast<uint32_t>(scratch.size());
      for (Item i : scratch) {
        hs_.item.push_back(i);
        hs_.tx_end.push_back(end);
        hs_.weight.push_back(db.weight(t));
      }
    }
    stats_->FinishPhase(PhaseId::kPrepare, prep_span);
    stats_->peak_structure_bytes =
        hs_.item.size() *
        (sizeof(Item) + sizeof(uint32_t) + sizeof(Support));
    if (num_ranks_ == 0) return;

    PhaseSpan mine_span(PhaseName(PhaseId::kMine));
    counts_.assign(num_ranks_, 0);

    // Top-level queues: every cell, bucketed by item.
    std::vector<std::vector<uint32_t>> queues(num_ranks_);
    for (uint32_t c = 0; c < hs_.item.size(); ++c) {
      queues[hs_.item[c]].push_back(c);
    }
    std::vector<Item> prefix;
    for (Item i = 0; i < num_ranks_; ++i) {
      // Top-level supports are the (already filtered) global
      // frequencies; recompute from the queue to stay weight-exact.
      Support support = 0;
      for (uint32_t c : queues[i]) support += hs_.weight[c];
      if (support < min_support_) continue;  // defensive; never at top
      prefix.push_back(item_map_[i]);
      sink_->Emit(prefix, support);
      ++stats_->num_frequent;
      MineQueue(queues[i], &prefix);
      prefix.pop_back();
      queues[i].clear();
      queues[i].shrink_to_fit();
    }
    stats_->FinishPhase(PhaseId::kMine, mine_span);
  }

 private:
  // Mines the extensions of the prefix whose supporting cells are
  // `queue` (one cell per supporting transaction; suffixes start after
  // the cell). Emits and recurses for every frequent extension.
  void MineQueue(const std::vector<uint32_t>& queue,
                 std::vector<Item>* prefix) {
    // Suffix scan: count every item occurring after a queued cell.
    touched_.clear();
    for (uint32_t c : queue) {
      const Support w = hs_.weight[c];
      for (uint32_t s = c + 1; s < hs_.tx_end[c]; ++s) {
        const Item j = hs_.item[s];
        if (counts_[j] == 0) touched_.push_back(j);
        counts_[j] += w;
      }
    }
    std::sort(touched_.begin(), touched_.end());

    // Frequent extensions, then reset the shared counters before
    // recursing (the recursion reuses them).
    frequent_scratch_.clear();
    for (Item j : touched_) {
      if (counts_[j] >= min_support_) {
        frequent_scratch_.push_back(j);
      }
      counts_[j] = 0;
    }
    if (frequent_scratch_.empty()) return;
    const std::vector<Item> frequent = frequent_scratch_;

    // Collect each frequent extension's queue with one more scan.
    std::vector<std::vector<uint32_t>> sub(frequent.size());
    std::vector<int32_t> slot(num_ranks_, -1);
    for (size_t k = 0; k < frequent.size(); ++k) {
      slot[frequent[k]] = static_cast<int32_t>(k);
    }
    for (uint32_t c : queue) {
      for (uint32_t s = c + 1; s < hs_.tx_end[c]; ++s) {
        const int32_t k = slot[hs_.item[s]];
        if (k >= 0) sub[static_cast<size_t>(k)].push_back(s);
      }
    }

    for (size_t k = 0; k < frequent.size(); ++k) {
      Support support = 0;
      for (uint32_t c : sub[k]) support += hs_.weight[c];
      prefix->push_back(item_map_[frequent[k]]);
      sink_->Emit(*prefix, support);
      ++stats_->num_frequent;
      MineQueue(sub[k], prefix);
      prefix->pop_back();
      sub[k].clear();
      sub[k].shrink_to_fit();
    }
  }

  const Support min_support_;
  ItemsetSink* sink_;
  MineStats* stats_;
  HyperStructure hs_;
  std::vector<Item> item_map_;
  size_t num_ranks_ = 0;
  std::vector<Support> counts_;        // shared, reset via touched_
  std::vector<Item> touched_;
  std::vector<Item> frequent_scratch_;
};

}  // namespace

Result<MineStats> HMineMiner::MineImpl(const Database& db,
                                       Support min_support,
                                       ItemsetSink* sink) {
  MineStats stats;
  HMineRun run(min_support, sink, &stats);
  run.Run(db);
  return stats;
}

}  // namespace fpm
