// Association-rule generation — the application that motivated frequent
// pattern mining (§1, after Agrawal et al. SIGMOD'93). Derives rules
// `antecedent => consequent` with support, confidence and lift from a
// complete frequent-itemset listing.

#ifndef FPM_ALGO_RULES_H_
#define FPM_ALGO_RULES_H_

#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/common/status.h"
#include "fpm/dataset/types.h"

namespace fpm {

/// One association rule: antecedent => consequent.
struct AssociationRule {
  Itemset antecedent;       ///< sorted ascending
  Itemset consequent;       ///< sorted ascending, disjoint from antecedent
  Support itemset_support;  ///< weighted support of antecedent ∪ consequent
  double support = 0.0;     ///< itemset_support / total transactions
  double confidence = 0.0;  ///< P(consequent | antecedent)
  double lift = 0.0;        ///< confidence / P(consequent)

  bool operator==(const AssociationRule&) const = default;
};

/// Generation thresholds and limits.
struct RuleOptions {
  double min_confidence = 0.5;
  /// Maximum consequent size; 1 reproduces the classic single-item
  /// consequent setting and keeps generation linear in itemset size.
  size_t max_consequent = 1;
};

/// Generates rules from a *complete, canonical* frequent listing (a
/// Canonicalize()d CollectingSink result: every frequent itemset
/// present with exact support, sets sorted). `total_weight` is the
/// database's total transaction weight (Database::total_weight()).
///
/// Returns InvalidArgument when thresholds are out of range or when a
/// required subset is missing from the listing (incomplete input).
/// Rules are ordered by descending lift, ties by descending confidence.
Result<std::vector<AssociationRule>> GenerateRules(
    const std::vector<CollectingSink::Entry>& frequent, Support total_weight,
    const RuleOptions& options = RuleOptions());

}  // namespace fpm

#endif  // FPM_ALGO_RULES_H_
