// Association-rule generation — the application that motivated frequent
// pattern mining (§1, after Agrawal et al. SIGMOD'93). Derives rules
// `antecedent => consequent` with support, confidence and lift from a
// complete frequent-itemset listing.

#ifndef FPM_ALGO_RULES_H_
#define FPM_ALGO_RULES_H_

#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/common/status.h"
#include "fpm/dataset/types.h"

namespace fpm {

/// One association rule: antecedent => consequent.
struct AssociationRule {
  Itemset antecedent;       ///< sorted ascending
  Itemset consequent;       ///< sorted ascending, disjoint from antecedent
  Support itemset_support;  ///< weighted support of antecedent ∪ consequent
  double support = 0.0;     ///< itemset_support / total transactions
  double confidence = 0.0;  ///< P(consequent | antecedent)
  double lift = 0.0;        ///< confidence / P(consequent)

  bool operator==(const AssociationRule&) const = default;
};

/// Generation thresholds and limits.
struct RuleOptions {
  double min_confidence = 0.5;
  /// Minimum lift; 0 (the default) filters nothing.
  double min_lift = 0.0;
  /// Maximum consequent size; 1 reproduces the classic single-item
  /// consequent setting and keeps generation linear in itemset size.
  size_t max_consequent = 1;
};

/// The deterministic output ordering both generators sort by: lift
/// descending, confidence descending, then antecedent and consequent
/// lexicographic.
bool RuleOutranks(const AssociationRule& a, const AssociationRule& b);

/// Generates rules from a *complete, canonical* frequent listing (a
/// Canonicalize()d CollectingSink result: every frequent itemset
/// present with exact support, sets sorted). `total_weight` is the
/// database's total transaction weight (Database::total_weight()).
///
/// Returns InvalidArgument when thresholds are out of range or when a
/// required subset is missing from the listing (incomplete input).
/// Rules are ordered by descending lift, ties by descending confidence.
Result<std::vector<AssociationRule>> GenerateRules(
    const std::vector<CollectingSink::Entry>& frequent, Support total_weight,
    const RuleOptions& options = RuleOptions());

/// Generates rules from a *complete closed-set* listing (e.g. an
/// LcmClosedMiner run, or FilterClosed over a full frequent listing) —
/// the execution path behind MiningTask::kRules. Every rule's combined
/// itemset (antecedent ∪ consequent) is a closed set; subset supports
/// are recovered through the closure (supp(X) = max support over
/// closed supersets of X), so the full — possibly exponentially larger
/// — frequent listing is never materialized. The result is the
/// standard non-redundant rule basis over closed itemsets: rules whose
/// combined itemset is non-closed are omitted, as each is implied by
/// the rule of its closure with identical support and confidence.
///
/// Same ordering and thresholds as GenerateRules; InvalidArgument when
/// the listing is not closed under the subset supports it needs.
Result<std::vector<AssociationRule>> GenerateRulesFromClosed(
    const std::vector<CollectingSink::Entry>& closed, Support total_weight,
    const RuleOptions& options = RuleOptions());

}  // namespace fpm

#endif  // FPM_ALGO_RULES_H_
