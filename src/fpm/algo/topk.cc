#include "fpm/algo/topk.h"

#include <algorithm>
#include <utility>

#include "fpm/algo/miner.h"

namespace fpm {
namespace {

// Strict "a outranks b" ordering of the final answer: support
// descending, canonical itemset ascending on ties. Doubles as the heap
// comparator ("a < b" = a outranks b), putting the weakest retained
// entry at the heap top.
bool Outranks(const CollectingSink::Entry& a, const CollectingSink::Entry& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

}  // namespace

void TopKSink::Emit(std::span<const Item> itemset, Support support) {
  ++total_emitted_;
  if (k_ == 0) return;
  Itemset set(itemset.begin(), itemset.end());
  std::sort(set.begin(), set.end());
  CollectingSink::Entry entry(std::move(set), support);
  if (heap_.size() < k_) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), Outranks);
    return;
  }
  if (Outranks(entry, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Outranks);
    heap_.back() = std::move(entry);
    std::push_heap(heap_.begin(), heap_.end(), Outranks);
  }
}

std::vector<CollectingSink::Entry> TopKSink::TakeSorted() {
  std::sort(heap_.begin(), heap_.end(), Outranks);
  return std::move(heap_);
}

Result<MineStats> MineTopK(Miner& miner, const Database& db,
                           const MiningQuery& query,
                           std::vector<CollectingSink::Entry>* out) {
  if (query.task != MiningTask::kTopK) {
    return Status::InvalidArgument("MineTopK requires a top_k query");
  }
  FPM_RETURN_IF_ERROR(query.Validate());
  const Support floor = query.min_support;

  // Seed threshold (see the header comment): k-th largest item
  // frequency when the item table alone guarantees >= k answers,
  // otherwise the planted cost-model hint, otherwise the floor.
  Support seed = floor;
  std::vector<Support> frequent_items;
  for (Support f : db.item_frequencies()) {
    if (f >= floor) frequent_items.push_back(f);
  }
  if (frequent_items.size() >= query.k) {
    auto kth = frequent_items.begin() + static_cast<size_t>(query.k) - 1;
    std::nth_element(frequent_items.begin(), kth, frequent_items.end(),
                     [](Support a, Support b) { return a > b; });
    seed = *kth;
  } else if (query.topk_seed_support > floor) {
    seed = query.topk_seed_support;
  }

  MineStats total;
  Support threshold = std::max(floor, seed);
  while (true) {
    TopKSink sink(query.k);
    FPM_ASSIGN_OR_RETURN(MineStats pass, miner.Mine(db, threshold, &sink));
    for (int p = 0; p < kNumPhases; ++p) {
      const PhaseId phase = static_cast<PhaseId>(p);
      total.add_phase_seconds(phase, pass.phase_seconds(phase));
      total.MergePhaseCounters(phase, pass.phase_counters(phase));
    }
    total.peak_structure_bytes =
        std::max(total.peak_structure_bytes, pass.peak_structure_bytes);
    if (sink.total_emitted() >= query.k || threshold == floor) {
      *out = sink.TakeSorted();
      total.num_frequent = out->size();
      return total;
    }
    threshold = std::max(floor, threshold / 2);
  }
}

}  // namespace fpm
