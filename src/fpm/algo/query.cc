#include "fpm/algo/query.h"

#include <algorithm>
#include <cctype>

namespace fpm {

const char* TaskName(MiningTask task) {
  switch (task) {
    case MiningTask::kFrequent: return "frequent";
    case MiningTask::kClosed: return "closed";
    case MiningTask::kMaximal: return "maximal";
    case MiningTask::kTopK: return "top_k";
    case MiningTask::kRules: return "rules";
  }
  return "unknown";
}

Result<MiningTask> ParseTask(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return c == '-' ? '_' : static_cast<char>(std::tolower(c));
  });
  if (lower == "frequent") return MiningTask::kFrequent;
  if (lower == "closed") return MiningTask::kClosed;
  if (lower == "maximal") return MiningTask::kMaximal;
  if (lower == "top_k" || lower == "topk") return MiningTask::kTopK;
  if (lower == "rules") return MiningTask::kRules;
  return Status::InvalidArgument(
      "unknown task '" + name +
      "' (want frequent|closed|maximal|top_k|rules)");
}

Status MiningQuery::Validate() const {
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  switch (task) {
    case MiningTask::kFrequent:
    case MiningTask::kClosed:
    case MiningTask::kMaximal:
      return Status::OK();
    case MiningTask::kTopK:
      if (k < 1) return Status::InvalidArgument("top_k query needs k >= 1");
      return Status::OK();
    case MiningTask::kRules:
      if (min_confidence < 0.0 || min_confidence > 1.0) {
        return Status::InvalidArgument("min_confidence must be in [0, 1]");
      }
      if (min_lift < 0.0) {
        return Status::InvalidArgument("min_lift must be >= 0");
      }
      if (max_consequent < 1) {
        return Status::InvalidArgument("max_consequent must be >= 1");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown mining task");
}

}  // namespace fpm
