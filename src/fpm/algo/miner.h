// Common miner interface. Each algorithm (LCM-style array miner, Eclat,
// FP-Growth, Apriori, brute force) implements MineImpl(); pattern
// toggles live in per-algorithm option structs, and the core front-end
// (fpm/core/mine.h) maps a PatternSet onto them.

#ifndef FPM_ALGO_MINER_H_
#define FPM_ALGO_MINER_H_

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"
#include "fpm/algo/itemset_sink.h"
#include "fpm/algo/query.h"
#include "fpm/algo/rules.h"
#include "fpm/obs/trace.h"

namespace fpm {

class SubtreeSpawner;

/// The three wall-clock phases every kernel reports. Matches the span
/// names ("prepare"/"build"/"mine") the kernels emit to the tracer.
enum class PhaseId {
  kPrepare = 0,  ///< layout transforms (e.g. P1 sort)
  kBuild = 1,    ///< data structure construction
  kMine = 2,     ///< the recursive mining phase
};

inline constexpr int kNumPhases = 3;

/// Span/metric name of a phase ("prepare", "build", "mine").
std::string_view PhaseName(PhaseId phase);

/// Named counter deltas attributed to one phase — hardware-counter
/// readings ("cycles", "cache_misses", ...) latched by the installed
/// PhaseSampler (fpm/obs/phase_sampler.h, fpm/perf/perf_sampler.h).
/// Empty when no sampler is installed.
using PhaseCounterDeltas = std::vector<std::pair<std::string, uint64_t>>;

/// Instrumentation returned by Mine(). Phase timings feed the Figure 2
/// CPI bench; memory feeds the aggregation-cost discussion of §4.3;
/// phase counter tables feed the per-pattern architecture claims
/// ("prefetch cuts L2 misses") when hardware counters are sampled.
struct MineStats {
  uint64_t num_frequent = 0;       ///< itemsets emitted
  size_t peak_structure_bytes = 0; ///< main data structure footprint

  /// Wall seconds spent in `phase` during the Mine() call.
  double phase_seconds(PhaseId phase) const {
    return phase_seconds_[static_cast<int>(phase)];
  }

  void set_phase_seconds(PhaseId phase, double seconds) {
    phase_seconds_[static_cast<int>(phase)] = seconds;
  }

  void add_phase_seconds(PhaseId phase, double seconds) {
    phase_seconds_[static_cast<int>(phase)] += seconds;
  }

  double total_seconds() const {
    double total = 0.0;
    for (double s : phase_seconds_) total += s;
    return total;
  }

  /// Sampler counter deltas of `phase`; empty unless a PhaseSampler was
  /// installed while the phase ran.
  const PhaseCounterDeltas& phase_counters(PhaseId phase) const {
    return phase_counters_[static_cast<int>(phase)];
  }

  /// True when any phase carries counter deltas.
  bool has_phase_counters() const {
    for (const PhaseCounterDeltas& d : phase_counters_) {
      if (!d.empty()) return true;
    }
    return false;
  }

  /// Accumulates `deltas` into the phase's table (summing by name, so a
  /// kernel re-entering a phase aggregates instead of overwriting).
  void MergePhaseCounters(PhaseId phase, const PhaseCounterDeltas& deltas) {
    PhaseCounterDeltas& table = phase_counters_[static_cast<int>(phase)];
    for (const auto& [name, value] : deltas) {
      bool found = false;
      for (auto& [have, sum] : table) {
        if (have == name) {
          sum += value;
          found = true;
          break;
        }
      }
      if (!found) table.emplace_back(name, value);
    }
  }

  /// Ends `span`, adds its wall seconds to `phase`, and merges the
  /// counter deltas it latched. The one call every kernel makes when a
  /// phase closes.
  void FinishPhase(PhaseId phase, PhaseSpan& span) {
    add_phase_seconds(phase, span.End());
    MergePhaseCounters(phase, span.counter_deltas());
  }

 private:
  std::array<double, kNumPhases> phase_seconds_{};
  std::array<PhaseCounterDeltas, kNumPhases> phase_counters_{};
};

/// How a Mine() call executes.
///
/// `num_threads == 1` runs the sequential kernel unchanged. Larger
/// values decompose the search space into independent first-item
/// equivalence classes and mine them on a work-stealing pool
/// (fpm/parallel/). `num_threads == 0` is rejected as InvalidArgument.
struct ExecutionPolicy {
  uint32_t num_threads = 1;
  /// When true (the default), parallel runs buffer per-class results and
  /// merge them in class order, so the emission order into the sink is
  /// reproducible run-to-run and the canonicalized output is identical
  /// to the sequential run's. When false, itemsets are forwarded to the
  /// sink as classes finish (serialized, but in nondeterministic order)
  /// — lower memory, same set of itemsets.
  bool deterministic = true;
  /// When true (the default), parallel runs use the nested fork-join
  /// driver (NestedParallelMiner): kernels spawn subtree tasks from
  /// inside their recursion when estimated work clears an adaptive
  /// cutoff, so one skewed equivalence class no longer serializes the
  /// tail. When false, the top-level-classes-only driver
  /// (ParallelMiner) is used.
  bool nested = true;
};

/// Abstract pattern miner. The base enumeration contract is frequent
/// itemsets; the MiningQuery front-end dispatches the whole task family
/// (closed/maximal/top-k/rules) onto execution paths built from it.
///
/// Contract (kFrequent): emits every itemset (size >= 1) whose weighted
/// support is >= min_support, exactly once, with its exact support, in
/// original item ids. min_support must be >= 1.
class Miner {
 public:
  virtual ~Miner() = default;

  /// Executes `query` against `db`, emitting the task's answer into
  /// `sink`. Per-task execution path and emission order:
  ///
  ///   kFrequent  the kernel itself; deterministic kernel emission order
  ///   kClosed    NativeClosedMiner() when the algorithm has one (LCM's
  ///              ppc-extension kernel), else the full frequent listing
  ///              filtered by FilterClosed; canonical order either way
  ///   kMaximal   the closed listing filtered by
  ///              FilterMaximalFromClosed; canonical order
  ///   kTopK      iterative threshold-tightening driver over the
  ///              frequent kernel (fpm/algo/topk.h); support descending,
  ///              canonical itemset ascending on ties
  ///   kRules     rejected — rules are not itemsets; call MineRules()
  ///
  /// MineStats::num_frequent is the number of entries emitted for the
  /// task (e.g. the closed-set count for kClosed).
  Result<MineStats> Mine(const Database& db, const MiningQuery& query,
                         ItemsetSink* sink);

  /// Pre-MiningQuery surface: mines all frequent itemsets at threshold
  /// `min_support`. Thin shim over the query overload; prefer
  /// Mine(db, MiningQuery::Frequent(s), sink) in new code.
  ///
  /// Observability: when the default tracer is enabled the call is
  /// wrapped in a span named name(); kernels nest "prepare"/"build"/
  /// "mine" phase spans inside it. When the default metrics registry is
  /// enabled, per-call counters/gauges (fpm.mine.calls,
  /// fpm.mine.itemsets, fpm.mine.peak_structure_bytes, ...) are
  /// recorded. Both default to off and cost ~one branch each when off.
  Result<MineStats> Mine(const Database& db, Support min_support,
                         ItemsetSink* sink) {
    return Mine(db, MiningQuery::Frequent(min_support), sink);
  }

  /// Executes a kRules query: a closed-set run at query.min_support,
  /// then GenerateRulesFromClosed with the query's confidence/lift
  /// thresholds. `*rules` receives the rules in the deterministic
  /// RuleOutranks order; MineStats::num_frequent is the rule count.
  Result<MineStats> MineRules(const Database& db, const MiningQuery& query,
                              std::vector<AssociationRule>* rules);

  /// Like Mine(), but offers subtrees of the recursion to `spawner`
  /// (see fpm/algo/subtree.h) so a fork-join driver can mine them as
  /// tasks. `spawner == nullptr` is exactly Mine(). Kernels that do not
  /// implement re-entrant recursion ignore the spawner and mine
  /// sequentially — still correct, never parallel below the top level.
  Result<MineStats> MineNested(const Database& db, Support min_support,
                               ItemsetSink* sink, SubtreeSpawner* spawner);

  /// Display name including the active pattern configuration.
  virtual std::string name() const = 0;

  /// A dedicated closed-itemset kernel for this algorithm, or null when
  /// there is none and kClosed/kMaximal/kRules queries fall back to
  /// filtering the full frequent listing. LCM overrides this with the
  /// ppc-extension closed miner, which never materializes the frequent
  /// listing.
  virtual std::unique_ptr<Miner> NativeClosedMiner() const {
    return nullptr;
  }

 protected:
  /// Algorithm body. `min_support >= 1` and `sink != nullptr` are
  /// already validated. Returns the stats of the run.
  virtual Result<MineStats> MineImpl(const Database& db, Support min_support,
                                     ItemsetSink* sink) = 0;

  /// Re-entrant algorithm body; default ignores `spawner` and runs
  /// MineImpl(). Kernels with re-entrant recursion override this and
  /// implement MineImpl() as MineNestedImpl(..., nullptr).
  virtual Result<MineStats> MineNestedImpl(const Database& db,
                                           Support min_support,
                                           ItemsetSink* sink,
                                           SubtreeSpawner* spawner) {
    (void)spawner;
    return MineImpl(db, min_support, sink);
  }
};

}  // namespace fpm

#endif  // FPM_ALGO_MINER_H_
