// Common miner interface. Each algorithm (LCM-style array miner, Eclat,
// FP-Growth, Apriori, brute force) implements MineImpl(); pattern
// toggles live in per-algorithm option structs, and the core front-end
// (fpm/core/mine.h) maps a PatternSet onto them.

#ifndef FPM_ALGO_MINER_H_
#define FPM_ALGO_MINER_H_

#include <string>
#include <string_view>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"
#include "fpm/algo/itemset_sink.h"

namespace fpm {

/// Instrumentation returned by Mine(). Phase timings feed the Figure 2
/// CPI bench; memory feeds the aggregation-cost discussion of §4.3.
struct MineStats {
  uint64_t num_frequent = 0;       ///< itemsets emitted
  double prepare_seconds = 0.0;    ///< layout transforms (e.g. P1 sort)
  double build_seconds = 0.0;      ///< data structure construction
  double mine_seconds = 0.0;       ///< the recursive mining phase
  size_t peak_structure_bytes = 0; ///< main data structure footprint

  double total_seconds() const {
    return prepare_seconds + build_seconds + mine_seconds;
  }
};

/// How a Mine() call executes.
///
/// `num_threads == 1` runs the sequential kernel unchanged. Larger
/// values decompose the search space into independent first-item
/// equivalence classes and mine them on a work-stealing pool
/// (fpm/parallel/). `num_threads == 0` is rejected as InvalidArgument.
struct ExecutionPolicy {
  uint32_t num_threads = 1;
  /// When true (the default), parallel runs buffer per-class results and
  /// merge them in class order, so the emission order into the sink is
  /// reproducible run-to-run and the canonicalized output is identical
  /// to the sequential run's. When false, itemsets are forwarded to the
  /// sink as classes finish (serialized, but in nondeterministic order)
  /// — lower memory, same set of itemsets.
  bool deterministic = true;
};

/// Abstract frequent-itemset miner.
///
/// Contract: emits every itemset (size >= 1) whose weighted support is
/// >= min_support, exactly once, with its exact support, in original
/// item ids. min_support must be >= 1.
class Miner {
 public:
  virtual ~Miner() = default;

  /// Mines `db` at threshold `min_support` into `sink`. On success
  /// returns the statistics of this call; a Miner instance holds no
  /// result state of its own (but is still single-caller: one Mine() at
  /// a time per instance).
  Result<MineStats> Mine(const Database& db, Support min_support,
                         ItemsetSink* sink) {
    if (min_support < 1) {
      return Status::InvalidArgument("min_support must be >= 1");
    }
    if (sink == nullptr) return Status::InvalidArgument("sink is null");
    Result<MineStats> result = MineImpl(db, min_support, sink);
    if (result.ok()) stats_ = *result;
    return result;
  }

  /// Display name including the active pattern configuration.
  virtual std::string name() const = 0;

  /// Statistics of the most recent successful Mine() call.
  ///
  /// Deprecated migration shim (to be removed next PR): use the
  /// MineStats returned by Mine() instead — per-call stats have no
  /// instance state and are safe when miners are shared across calls.
  [[deprecated("use the MineStats returned by Mine()")]]
  const MineStats& stats() const { return stats_; }

 protected:
  /// Algorithm body. `min_support >= 1` and `sink != nullptr` are
  /// already validated. Returns the stats of the run.
  virtual Result<MineStats> MineImpl(const Database& db, Support min_support,
                                     ItemsetSink* sink) = 0;

 private:
  MineStats stats_;  // backs the deprecated stats() shim only
};

}  // namespace fpm

#endif  // FPM_ALGO_MINER_H_
