// Common miner interface. Each algorithm (LCM-style array miner, Eclat,
// FP-Growth, Apriori, brute force) implements Mine(); pattern toggles
// live in per-algorithm option structs, and the core front-end
// (fpm/core/mine.h) maps a PatternSet onto them.

#ifndef FPM_ALGO_MINER_H_
#define FPM_ALGO_MINER_H_

#include <string>
#include <string_view>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"
#include "fpm/algo/itemset_sink.h"

namespace fpm {

/// Instrumentation filled in by Mine(). Phase timings feed the Figure 2
/// CPI bench; memory feeds the aggregation-cost discussion of §4.3.
struct MineStats {
  uint64_t num_frequent = 0;       ///< itemsets emitted
  double prepare_seconds = 0.0;    ///< layout transforms (e.g. P1 sort)
  double build_seconds = 0.0;      ///< data structure construction
  double mine_seconds = 0.0;       ///< the recursive mining phase
  size_t peak_structure_bytes = 0; ///< main data structure footprint

  double total_seconds() const {
    return prepare_seconds + build_seconds + mine_seconds;
  }
};

/// Abstract frequent-itemset miner.
///
/// Contract: emits every itemset (size >= 1) whose weighted support is
/// >= min_support, exactly once, with its exact support, in original
/// item ids. min_support must be >= 1.
class Miner {
 public:
  virtual ~Miner() = default;

  /// Mines `db` at threshold `min_support` into `sink`.
  virtual Status Mine(const Database& db, Support min_support,
                      ItemsetSink* sink) = 0;

  /// Display name including the active pattern configuration.
  virtual std::string name() const = 0;

  /// Statistics of the most recent Mine() call.
  const MineStats& stats() const { return stats_; }

 protected:
  MineStats stats_;
};

}  // namespace fpm

#endif  // FPM_ALGO_MINER_H_
