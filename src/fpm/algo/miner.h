// Common miner interface. Each algorithm (LCM-style array miner, Eclat,
// FP-Growth, Apriori, brute force) implements MineImpl(); pattern
// toggles live in per-algorithm option structs, and the core front-end
// (fpm/core/mine.h) maps a PatternSet onto them.

#ifndef FPM_ALGO_MINER_H_
#define FPM_ALGO_MINER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "fpm/common/status.h"
#include "fpm/dataset/database.h"
#include "fpm/algo/itemset_sink.h"

namespace fpm {

/// The three wall-clock phases every kernel reports. Matches the span
/// names ("prepare"/"build"/"mine") the kernels emit to the tracer.
enum class PhaseId {
  kPrepare = 0,  ///< layout transforms (e.g. P1 sort)
  kBuild = 1,    ///< data structure construction
  kMine = 2,     ///< the recursive mining phase
};

inline constexpr int kNumPhases = 3;

/// Span/metric name of a phase ("prepare", "build", "mine").
std::string_view PhaseName(PhaseId phase);

/// Instrumentation returned by Mine(). Phase timings feed the Figure 2
/// CPI bench; memory feeds the aggregation-cost discussion of §4.3.
///
/// Migration note: the three `*_seconds` fields are deprecated in favor
/// of `phase_seconds(PhaseId)` / `set_phase_seconds()` and will be
/// removed next release (see README "MineStats phase accessors").
// The pragma region spans the whole struct so the implicitly-generated
// copy/move members (which touch the deprecated fields) stay quiet;
// direct field accesses in user code still warn.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
struct MineStats {
  uint64_t num_frequent = 0;       ///< itemsets emitted
  [[deprecated("use phase_seconds(PhaseId::kPrepare)")]]
  double prepare_seconds = 0.0;
  [[deprecated("use phase_seconds(PhaseId::kBuild)")]]
  double build_seconds = 0.0;
  [[deprecated("use phase_seconds(PhaseId::kMine)")]]
  double mine_seconds = 0.0;
  size_t peak_structure_bytes = 0; ///< main data structure footprint

  // The accessors below are the stable API; they read/write the
  // deprecated fields (still the storage during the one-release
  // migration window, so code on either side of the rename agrees).
  /// Wall seconds spent in `phase` during the Mine() call.
  double phase_seconds(PhaseId phase) const {
    switch (phase) {
      case PhaseId::kPrepare: return prepare_seconds;
      case PhaseId::kBuild: return build_seconds;
      case PhaseId::kMine: return mine_seconds;
    }
    return 0.0;
  }

  void set_phase_seconds(PhaseId phase, double seconds) {
    switch (phase) {
      case PhaseId::kPrepare: prepare_seconds = seconds; return;
      case PhaseId::kBuild: build_seconds = seconds; return;
      case PhaseId::kMine: mine_seconds = seconds; return;
    }
  }

  void add_phase_seconds(PhaseId phase, double seconds) {
    set_phase_seconds(phase, phase_seconds(phase) + seconds);
  }

  double total_seconds() const {
    return prepare_seconds + build_seconds + mine_seconds;
  }
};
#pragma GCC diagnostic pop

/// How a Mine() call executes.
///
/// `num_threads == 1` runs the sequential kernel unchanged. Larger
/// values decompose the search space into independent first-item
/// equivalence classes and mine them on a work-stealing pool
/// (fpm/parallel/). `num_threads == 0` is rejected as InvalidArgument.
struct ExecutionPolicy {
  uint32_t num_threads = 1;
  /// When true (the default), parallel runs buffer per-class results and
  /// merge them in class order, so the emission order into the sink is
  /// reproducible run-to-run and the canonicalized output is identical
  /// to the sequential run's. When false, itemsets are forwarded to the
  /// sink as classes finish (serialized, but in nondeterministic order)
  /// — lower memory, same set of itemsets.
  bool deterministic = true;
};

/// Abstract frequent-itemset miner.
///
/// Contract: emits every itemset (size >= 1) whose weighted support is
/// >= min_support, exactly once, with its exact support, in original
/// item ids. min_support must be >= 1.
class Miner {
 public:
  virtual ~Miner() = default;

  /// Mines `db` at threshold `min_support` into `sink`. On success
  /// returns the statistics of this call; a Miner instance holds no
  /// result state (but is still single-caller: one Mine() at a time per
  /// instance).
  ///
  /// Observability: when the default tracer is enabled the call is
  /// wrapped in a span named name(); kernels nest "prepare"/"build"/
  /// "mine" phase spans inside it. When the default metrics registry is
  /// enabled, per-call counters/gauges (fpm.mine.calls,
  /// fpm.mine.itemsets, fpm.mine.peak_structure_bytes, ...) are
  /// recorded. Both default to off and cost ~one branch each when off.
  Result<MineStats> Mine(const Database& db, Support min_support,
                         ItemsetSink* sink);

  /// Display name including the active pattern configuration.
  virtual std::string name() const = 0;

 protected:
  /// Algorithm body. `min_support >= 1` and `sink != nullptr` are
  /// already validated. Returns the stats of the run.
  virtual Result<MineStats> MineImpl(const Database& db, Support min_support,
                                     ItemsetSink* sink) = 0;
};

}  // namespace fpm

#endif  // FPM_ALGO_MINER_H_
