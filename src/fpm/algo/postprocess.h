// Closed and maximal itemset extraction (the problem family of the
// paper's LCM kernel: "LCM ver.2: efficient mining algorithms for
// frequent/closed/maximal itemsets").
//
// Definitions over the frequent-set output F:
//   closed:  no proper superset has the same support;
//   maximal: no proper superset is frequent.
//
// By support anti-monotonicity it suffices to examine supersets with
// exactly one extra item, so both filters run in O(|F| * avg_size) hash
// operations: every (size k+1)-set marks its k-subsets.

#ifndef FPM_ALGO_POSTPROCESS_H_
#define FPM_ALGO_POSTPROCESS_H_

#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/algo/miner.h"
#include "fpm/common/status.h"

namespace fpm {

/// Filters a complete frequent-set listing down to the closed sets.
/// `all_frequent` entries must be canonical (items sorted ascending) and
/// complete (every frequent itemset present, exact supports) — i.e. a
/// Canonicalize()d CollectingSink result.
std::vector<CollectingSink::Entry> FilterClosed(
    const std::vector<CollectingSink::Entry>& all_frequent);

/// Filters a complete frequent-set listing down to the maximal sets.
std::vector<CollectingSink::Entry> FilterMaximal(
    const std::vector<CollectingSink::Entry>& all_frequent);

/// Extracts the maximal sets from a *closed*-set listing (e.g. the
/// output of LcmClosedMiner): every maximal frequent itemset is closed,
/// and a closed set is maximal iff no other closed set strictly
/// contains it. Unlike FilterMaximal this must consider supersets of
/// any size, so it uses an inverted index on each set's rarest item.
std::vector<CollectingSink::Entry> FilterMaximalFromClosed(
    const std::vector<CollectingSink::Entry>& closed);

/// Convenience: mines all frequent itemsets with `miner` and returns the
/// closed subset (canonical order).
Result<std::vector<CollectingSink::Entry>> MineClosed(Miner& miner,
                                                      const Database& db,
                                                      Support min_support);

/// Convenience: mines all frequent itemsets with `miner` and returns the
/// maximal subset (canonical order).
Result<std::vector<CollectingSink::Entry>> MineMaximal(Miner& miner,
                                                       const Database& db,
                                                       Support min_support);

}  // namespace fpm

#endif  // FPM_ALGO_POSTPROCESS_H_
