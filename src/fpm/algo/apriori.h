// Apriori (Agrawal & Srikant, VLDB'94): the classical breadth-first
// miner. The paper excludes it from its evaluation (depth-first miners
// are generally faster, §4) but discusses it as the canonical
// alternative; we include it for completeness, as a second reference
// implementation for the property tests, and for the quickstart's
// algorithm comparison.
//
// Implementation: level-wise candidate generation (join + subset prune)
// with a candidate prefix-trie; support counting walks each transaction
// against the trie.

#ifndef FPM_ALGO_APRIORI_H_
#define FPM_ALGO_APRIORI_H_

#include "fpm/algo/miner.h"

namespace fpm {

/// Breadth-first miner. Exact but typically slower than the depth-first
/// kernels; intended for small/medium inputs.
class AprioriMiner : public Miner {
 public:
  std::string name() const override { return "apriori"; }

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;
};

}  // namespace fpm

#endif  // FPM_ALGO_APRIORI_H_
