// LCM-style array-based frequent itemset miner (§4.1).
//
// The kernel mirrors LCM ver.2's structure for frequent-itemset mining:
// a horizontal sparse array database; per-level occurrence deliver
// (CalcFreq) that counts item frequencies and builds the item-major
// occurrence array; duplicate-transaction merging (RmDupTrans) via
// bucket hashing with per-bucket chains; and depth-first projection onto
// conditional databases.
//
// Tuning patterns (each an independent toggle, all output-neutral):
//   P1  lexicographic_order — sort the initial transactions
//       lexicographically over the frequency-ranked alphabet.
//   P3  bucket_aggregation   — RmDupTrans bucket chains become supernode
//       (cache-line) lists instead of one-node-per-link chains.
//   P4  counter_compaction    — frequency counters live in one contiguous
//       array instead of inside the 32-byte occurrence column headers.
//   P6.1 tiling             — top-level projections process the
//       occurrence array in L1-sized transaction tiles, batched over
//       items (see lcm_miner.cc for the batching memory bound).
//   P7.1 wavefront_prefetch — occurrence walks prefetch transaction
//       headers/payloads of entries several positions ahead.

#ifndef FPM_ALGO_LCM_LCM_MINER_H_
#define FPM_ALGO_LCM_LCM_MINER_H_

#include <string>
#include <vector>

#include "fpm/algo/miner.h"

namespace fpm {

class CancelToken;

/// Pattern toggles and knobs for the LCM kernel.
///
/// Naming convention (shared by EclatOptions/FpGrowthOptions): each
/// boolean toggle is a noun phrase naming the optimization it enables
/// (bucket_aggregation, counter_compaction, tiling, ...), never an
/// imperative verb form. See DESIGN.md "Option naming".
struct LcmOptions {
  bool lexicographic_order = false;  ///< P1
  bool bucket_aggregation = false;   ///< P3
  bool counter_compaction = false;   ///< P4
  bool tiling = false;               ///< P6.1
  bool wavefront_prefetch = false;   ///< P7.1

  /// Tile capacity in database *entries* (items). 0 = auto: sized so one
  /// tile's transaction data fits in half the L1 data cache.
  uint32_t tile_entries = 0;

  /// Wave-front distances (occurrence entries ahead).
  uint32_t prefetch_near = 4;
  uint32_t prefetch_far = 8;

  /// Accumulate per-phase wall time into LcmPhaseStats (adds timer
  /// overhead; off by default).
  bool collect_phase_stats = false;

  /// Cooperative cancellation: polled at every frame boundary (level
  /// entry, per-item projection). A cancelled run stops descending and
  /// Mine() returns the token's status. The token must outlive the run,
  /// including any detached subtree tasks. Null = never cancelled.
  const CancelToken* cancel = nullptr;

  /// Enables every pattern (tile/prefetch knobs keep their defaults).
  static LcmOptions All() {
    LcmOptions o;
    o.lexicographic_order = true;
    o.bucket_aggregation = true;
    o.counter_compaction = true;
    o.tiling = true;
    o.wavefront_prefetch = true;
    return o;
  }

  /// "+lex+agg+cmp+tile+wave" style suffix (empty when all off).
  std::string Suffix() const;
};

/// Per-phase wall time of the latest Mine() call, filled only when
/// LcmOptions::collect_phase_stats is set. The names match the paper's
/// hot functions for Figure 2.
struct LcmPhaseStats {
  double calcfreq_seconds = 0.0;    ///< counting + occurrence deliver
  double rmduptrans_seconds = 0.0;  ///< duplicate merging
  double project_seconds = 0.0;     ///< conditional database construction
};

/// Array-based depth-first miner. Not thread-safe; use one instance per
/// thread.
class LcmMiner : public Miner {
 public:
  explicit LcmMiner(LcmOptions options = LcmOptions());

  std::string name() const override { return "lcm" + options_.Suffix(); }

  /// LCM's closed execution path is the ppc-extension kernel
  /// (fpm/algo/lcm/closed_miner.h), not frequent-listing filtering.
  std::unique_ptr<Miner> NativeClosedMiner() const override;

  const LcmOptions& options() const { return options_; }
  const LcmPhaseStats& phase_stats() const { return phase_stats_; }

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;
  Result<MineStats> MineNestedImpl(const Database& db, Support min_support,
                                   ItemsetSink* sink,
                                   SubtreeSpawner* spawner) override;

 private:
  struct Impl;
  LcmOptions options_;
  LcmPhaseStats phase_stats_;
};

}  // namespace fpm

#endif  // FPM_ALGO_LCM_LCM_MINER_H_
