// Native closed-itemset miner in the style of LCM ver.2 (Uno et al.,
// FIMI'04 — the paper's [32]): depth-first enumeration of closed sets
// via prefix-preserving closure (ppc) extensions, never materializing
// the (possibly exponentially larger) full frequent listing the
// post-filter in algo/postprocess.h requires.
//
// Sketch: the closure clo(P) is the set of items present in every
// transaction containing P. Starting from clo(∅), each closed set P
// with core item c is extended by candidate items i > c (frequency-rank
// order): Q = clo(P ∪ {i}) is accepted iff its members below i match
// P's (the ppc test), which guarantees every closed set is generated
// exactly once, from exactly one parent.

#ifndef FPM_ALGO_LCM_CLOSED_MINER_H_
#define FPM_ALGO_LCM_CLOSED_MINER_H_

#include <string>

#include "fpm/algo/miner.h"

namespace fpm {

/// Emits every *closed* frequent itemset exactly once (via the common
/// Miner interface; supports are exact weighted supports).
///
/// Contract difference from the other miners: the output is the closed
/// subset of the frequent sets, i.e. exactly
/// FilterClosed(all frequent itemsets).
class LcmClosedMiner : public Miner {
 public:
  LcmClosedMiner() = default;

  std::string name() const override { return "lcm-closed"; }

 protected:
  Result<MineStats> MineImpl(const Database& db, Support min_support,
                             ItemsetSink* sink) override;
};

}  // namespace fpm

#endif  // FPM_ALGO_LCM_CLOSED_MINER_H_
