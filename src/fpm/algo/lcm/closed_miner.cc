#include "fpm/algo/lcm/closed_miner.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "fpm/obs/trace.h"
#include "fpm/layout/item_order.h"

namespace fpm {
namespace {

// Conditional database: transactions as flat rank arrays (ascending
// within each transaction), with weights. Items are global frequency
// ranks throughout — the closed miner never remaps per level because
// the ppc test needs the global order.
struct Cdb {
  std::vector<Item> items;
  std::vector<uint32_t> offsets{0};
  std::vector<Support> weights;

  size_t num_tx() const { return weights.size(); }
  std::span<const Item> tx(uint32_t t) const {
    return {items.data() + offsets[t], offsets[t + 1] - offsets[t]};
  }
  void Add(std::span<const Item> tx_items, Support w) {
    items.insert(items.end(), tx_items.begin(), tx_items.end());
    offsets.push_back(static_cast<uint32_t>(items.size()));
    weights.push_back(w);
  }
};

uint64_t HashSpan(std::span<const Item> items) {
  uint64_t h = 1469598103934665603ull;
  for (Item it : items) {
    h ^= it;
    h *= 1099511628211ull;
  }
  return h;
}

// Merges identical transactions (summing weights) — the RmDupTrans step,
// which for closure mining also collapses the databases quickly because
// closure items have been removed.
Cdb MergeDuplicates(Cdb&& db) {
  Cdb merged;
  const size_t ntx = db.num_tx();
  size_t nbuckets = 16;
  while (nbuckets < ntx) nbuckets <<= 1;
  // bucket -> chain of merged indices (flat arrays, -1 terminated).
  std::vector<int32_t> heads(nbuckets, -1);
  std::vector<int32_t> next;
  for (uint32_t t = 0; t < ntx; ++t) {
    const auto tx = db.tx(t);
    const size_t bucket = HashSpan(tx) & (nbuckets - 1);
    int32_t found = -1;
    for (int32_t m = heads[bucket]; m != -1; m = next[m]) {
      const auto candidate = merged.tx(static_cast<uint32_t>(m));
      if (candidate.size() == tx.size() &&
          std::memcmp(candidate.data(), tx.data(),
                      tx.size() * sizeof(Item)) == 0) {
        found = m;
        break;
      }
    }
    if (found != -1) {
      merged.weights[found] += db.weights[t];
    } else {
      const int32_t idx = static_cast<int32_t>(merged.num_tx());
      merged.Add(tx, db.weights[t]);
      next.push_back(heads[bucket]);
      heads[bucket] = idx;
    }
  }
  return merged;
}

class ClosedRun {
 public:
  ClosedRun(Support min_support, ItemsetSink* sink, MineStats* stats)
      : min_support_(min_support), sink_(sink), stats_(stats) {}

  void Run(const Database& db) {
    PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
    ItemOrder order = ItemOrder::ByDecreasingFrequency(db);
    item_map_ = order.to_item();
    const auto& freq = db.item_frequencies();

    // Frequent ranks form a prefix of the rank space.
    num_ranks_ = 0;
    while (num_ranks_ < item_map_.size() &&
           freq[item_map_[num_ranks_]] >= min_support_) {
      ++num_ranks_;
    }

    Cdb root;
    Support total_weight = 0;
    {
      std::vector<Item> scratch;
      for (Tid t = 0; t < db.num_transactions(); ++t) {
        scratch.clear();
        for (Item raw : db.transaction(t)) {
          const Item rank = order.RankOf(raw);
          if (rank < num_ranks_) scratch.push_back(rank);
        }
        if (scratch.empty()) continue;
        std::sort(scratch.begin(), scratch.end());
        root.Add(scratch, db.weight(t));
        total_weight += db.weight(t);
      }
    }
    stats_->FinishPhase(PhaseId::kPrepare, prep_span);
    if (num_ranks_ == 0) return;

    PhaseSpan mine_span(PhaseName(PhaseId::kMine));
    // clo(∅): ranks present in every transaction (weighted).
    std::vector<Support> counts(num_ranks_, 0);
    for (uint32_t t = 0; t < root.num_tx(); ++t) {
      for (Item i : root.tx(t)) counts[i] += root.weights[t];
    }
    std::vector<Item> closed;
    for (Item i = 0; i < num_ranks_; ++i) {
      if (counts[i] == total_weight) closed.push_back(i);
    }
    if (!closed.empty() && total_weight >= min_support_) {
      Emit(closed, total_weight);
    }
    // Strip clo(∅) from the database and recurse with core = none.
    Cdb stripped = Strip(root, closed);
    Recurse(MergeDuplicates(std::move(stripped)), &closed,
            /*core=*/kInvalidItem);
    stats_->FinishPhase(PhaseId::kMine, mine_span);
  }

 private:
  // Removes the (sorted) `drop` items from every transaction; drops
  // transactions that become empty.
  static Cdb Strip(const Cdb& db, const std::vector<Item>& drop) {
    if (drop.empty()) {
      Cdb copy = db;  // cheap relative to mining; keeps call sites simple
      return copy;
    }
    Cdb out;
    std::vector<Item> scratch;
    for (uint32_t t = 0; t < db.num_tx(); ++t) {
      scratch.clear();
      const auto tx = db.tx(t);
      std::set_difference(tx.begin(), tx.end(), drop.begin(), drop.end(),
                          std::back_inserter(scratch));
      if (!scratch.empty()) out.Add(scratch, db.weights[t]);
    }
    return out;
  }

  void Emit(const std::vector<Item>& closed_ranks, Support support) {
    emit_scratch_.clear();
    for (Item rank : closed_ranks) {
      emit_scratch_.push_back(item_map_[rank]);
    }
    sink_->Emit(emit_scratch_, support);
    ++stats_->num_frequent;
  }

  // `db`: supporting transactions of `closed` with closed's items
  // removed. Extends with candidates of rank > core via ppc extensions.
  void Recurse(const Cdb& db, std::vector<Item>* closed, Item core) {
    if (db.num_tx() == 0) return;

    // Count every item; remember the touched set.
    std::vector<Support> counts(num_ranks_, 0);
    std::vector<Item> present;
    for (uint32_t t = 0; t < db.num_tx(); ++t) {
      const Support w = db.weights[t];
      for (Item i : db.tx(t)) {
        if (counts[i] == 0) present.push_back(i);
        counts[i] += w;
      }
    }
    std::sort(present.begin(), present.end());

    // Occurrence lists for candidate walks.
    std::vector<uint32_t> occ_len(num_ranks_, 0);
    for (uint32_t t = 0; t < db.num_tx(); ++t) {
      for (Item i : db.tx(t)) ++occ_len[i];
    }
    std::vector<uint32_t> occ_begin(num_ranks_ + 1, 0);
    for (Item i : present) {
      occ_begin[i + 1] = occ_len[i];
    }
    for (size_t i = 1; i <= num_ranks_; ++i) {
      occ_begin[i] += occ_begin[i - 1];
    }
    std::vector<uint32_t> occ(db.items.size());
    {
      std::vector<uint32_t> cursor(occ_begin.begin(), occ_begin.end() - 1);
      for (uint32_t t = 0; t < db.num_tx(); ++t) {
        for (Item i : db.tx(t)) occ[cursor[i]++] = t;
      }
    }

    std::vector<Support> cond_counts(num_ranks_, 0);
    std::vector<Item> cond_touched;
    std::vector<Item> extra;     // closure items > i
    std::vector<Item> removed;   // i + extra, sorted
    for (Item i : present) {
      if (core != kInvalidItem && i <= core) continue;
      const Support support_q = counts[i];
      if (support_q < min_support_) continue;

      // Conditional counts over the transactions containing i.
      cond_touched.clear();
      for (uint32_t k = occ_begin[i]; k < occ_begin[i] + occ_len[i]; ++k) {
        const uint32_t t = occ[k];
        const Support w = db.weights[t];
        for (Item j : db.tx(t)) {
          if (j == i) continue;
          if (cond_counts[j] == 0) cond_touched.push_back(j);
          cond_counts[j] += w;
        }
      }

      // ppc test + closure items above i.
      bool ppc_ok = true;
      extra.clear();
      for (Item j : cond_touched) {
        if (cond_counts[j] == support_q) {
          if (j < i) {
            ppc_ok = false;
            break;
          }
          extra.push_back(j);
        }
      }
      if (ppc_ok) {
        std::sort(extra.begin(), extra.end());
        // Q = closed ∪ {i} ∪ extra (all ranks distinct by construction).
        const size_t base_size = closed->size();
        closed->push_back(i);
        closed->insert(closed->end(), extra.begin(), extra.end());
        Emit(*closed, support_q);

        // Child database: transactions containing i, minus {i} ∪ extra.
        removed.clear();
        removed.push_back(i);
        removed.insert(removed.end(), extra.begin(), extra.end());
        Cdb child;
        std::vector<Item> scratch;
        for (uint32_t k = occ_begin[i]; k < occ_begin[i] + occ_len[i];
             ++k) {
          const uint32_t t = occ[k];
          const auto tx = db.tx(t);
          scratch.clear();
          std::set_difference(tx.begin(), tx.end(), removed.begin(),
                              removed.end(), std::back_inserter(scratch));
          if (!scratch.empty()) child.Add(scratch, db.weights[t]);
        }
        Recurse(MergeDuplicates(std::move(child)), closed, i);
        closed->resize(base_size);
      }

      for (Item j : cond_touched) cond_counts[j] = 0;
    }
  }

  const Support min_support_;
  ItemsetSink* sink_;
  MineStats* stats_;
  std::vector<Item> item_map_;  // rank -> raw id
  size_t num_ranks_ = 0;
  std::vector<Item> emit_scratch_;
};

}  // namespace

Result<MineStats> LcmClosedMiner::MineImpl(const Database& db,
                                           Support min_support,
                                           ItemsetSink* sink) {
  MineStats stats;
  ClosedRun run(min_support, sink, &stats);
  run.Run(db);
  return stats;
}

}  // namespace fpm
