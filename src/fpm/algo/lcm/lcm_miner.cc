#include "fpm/algo/lcm/lcm_miner.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>

#include "fpm/algo/lcm/closed_miner.h"
#include "fpm/algo/subtree.h"
#include "fpm/common/arena.h"
#include "fpm/common/cancel.h"
#include "fpm/common/bits.h"
#include "fpm/common/prefetch.h"
#include "fpm/common/timer.h"
#include "fpm/layout/item_order.h"
#include "fpm/mem/aggregation.h"
#include "fpm/obs/trace.h"

namespace fpm {

std::string LcmOptions::Suffix() const {
  std::string s;
  if (lexicographic_order) s += "+lex";
  if (bucket_aggregation) s += "+agg";
  if (counter_compaction) s += "+cmp";
  if (tiling) s += "+tile";
  if (wavefront_prefetch) s += "+wave";
  return s;
}

namespace {

// Read-only view of a level-local working database. MineLevel consumes
// views, so a level can come from a WorkDb on the parent's stack or
// from arena-backed copies inside a detached subtree frame alike.
struct WorkView {
  std::span<const Item> items;
  std::span<const uint32_t> offsets;  // num_tx()+1 boundaries
  std::span<const Support> weights;
  uint32_t num_items = 0;

  size_t num_tx() const { return weights.size(); }
  std::span<const Item> tx(uint32_t t) const {
    return {items.data() + offsets[t], offsets[t + 1] - offsets[t]};
  }
};

// Level-local working database: items are dense level-local ids, sorted
// ascending (= decreasing global frequency) within each transaction.
struct WorkDb {
  std::vector<Item> items;
  std::vector<uint32_t> offsets{0};
  std::vector<Support> weights;
  uint32_t num_items = 0;

  size_t num_tx() const { return weights.size(); }
  std::span<const Item> tx(uint32_t t) const {
    return {items.data() + offsets[t], offsets[t + 1] - offsets[t]};
  }
  WorkView View() const {
    return WorkView{std::span<const Item>(items),
                    std::span<const uint32_t>(offsets),
                    std::span<const Support>(weights), num_items};
  }
  void Clear() {
    items.clear();
    offsets.assign(1, 0);
    weights.clear();
    num_items = 0;
  }
  size_t memory_bytes() const {
    return items.size() * sizeof(Item) + offsets.size() * sizeof(uint32_t) +
           weights.size() * sizeof(Support);
  }
};

// 32-byte occurrence column header, modeled on the original layout where
// the frequency counter is "structured with the OccArray" (§4.1): the
// baseline counting loop strides over these headers, touching one line
// per two items. Pattern P4 moves the counters into a dense array.
struct OccHeader {
  uint32_t count;         // weighted support at this level
  uint32_t occ_begin;     // slice of the flat occurrence array
  uint32_t occ_len;       // number of merged transactions containing item
  uint32_t cond_entries;  // total projected (conditional) entries
  uint32_t reserved[4];   // padding representative of the original's
                          // per-column bookkeeping fields
};
static_assert(sizeof(OccHeader) == 32, "baseline header must be 32 bytes");

uint64_t HashSpan(std::span<const Item> items) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (Item it : items) {
    h ^= it;
    h *= 1099511628211ull;
  }
  return h;
}

bool SpanEquals(std::span<const Item> a, std::span<const Item> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Item)) == 0;
}

constexpr uint32_t kL1TileEntriesDefault = 4096;  // 16 KiB of items
constexpr uint64_t kTileBatchEntryBudget = 16u << 20;  // 64 MiB of items

// A detached subtree: one conditional level copied into the task's
// arena (the spans point there; the lease's arena outlives the task),
// plus the by-value context the re-entered recursion needs. Held by
// shared_ptr — SubtreeFn is a std::function and must stay copyable.
struct LcmFrame {
  LcmOptions options;
  Support min_support = 1;
  std::span<const Item> items;
  std::span<const uint32_t> offsets;
  std::span<const Support> weights;
  uint32_t num_items = 0;
  std::vector<Item> item_map;  // local -> raw item id
  std::vector<Item> prefix;    // includes the projected item
  int depth = 0;

  WorkView View() const {
    return WorkView{items, offsets, weights, num_items};
  }
};

// All mutable state of one Mine() call — or of one detached subtree
// task, which constructs its own LcmRun from its frame (phases_ is null
// there: per-function phase stats stay a sequential-run feature).
class LcmRun {
 public:
  LcmRun(const LcmOptions& options, Support min_support, ItemsetSink* sink,
         LcmPhaseStats* phases, MineStats* stats, SubtreeSpawner* spawner)
      : options_(options),
        min_support_(min_support),
        sink_(sink),
        phases_(phases),
        stats_(stats),
        spawner_(spawner) {}

  // Builds the level-0 working database and mines it.
  void Run(const Database& db) {
    PhaseSpan prep_span(PhaseName(PhaseId::kPrepare));
    ItemOrder order = ItemOrder::ByDecreasingFrequency(db);

    // Global frequent ranks.
    const auto& freq = db.item_frequencies();
    std::vector<Item> rank_to_local(freq.size(), kInvalidItem);
    std::vector<Item> item_map;  // local -> raw item id
    for (Item r = 0; r < order.size(); ++r) {
      const Item raw = order.ItemAt(r);
      if (freq[raw] >= min_support_) {
        rank_to_local[r] = static_cast<Item>(item_map.size());
        item_map.push_back(raw);
      } else {
        break;  // ranks are sorted by frequency; the rest are infrequent
      }
    }

    WorkDb work;
    work.num_items = static_cast<uint32_t>(item_map.size());
    std::vector<Item> scratch;
    for (Tid t = 0; t < db.num_transactions(); ++t) {
      scratch.clear();
      for (Item it : db.transaction(t)) {
        const Item local = rank_to_local[order.RankOf(it)];
        if (local != kInvalidItem) scratch.push_back(local);
      }
      if (scratch.empty()) continue;
      std::sort(scratch.begin(), scratch.end());
      work.items.insert(work.items.end(), scratch.begin(), scratch.end());
      work.offsets.push_back(static_cast<uint32_t>(work.items.size()));
      work.weights.push_back(db.weight(t));
    }

    if (options_.lexicographic_order) SortLexicographically(&work);
    stats_->FinishPhase(PhaseId::kPrepare, prep_span);

    PhaseSpan mine_span(PhaseName(PhaseId::kMine));
    std::vector<Item> prefix;
    MineLevel(work.View(), item_map, &prefix, /*depth=*/0);
    stats_->FinishPhase(PhaseId::kMine, mine_span);
  }

  // One recursion level: count (CalcFreq), emit, filter+merge
  // (RmDupTrans), occurrence-deliver, and project each item's
  // conditional database. Re-entrant: all state is in the arguments,
  // so detached subtree tasks enter here from their frames.
  void MineLevel(const WorkView& db, const std::vector<Item>& item_map,
                 std::vector<Item>* prefix, int depth) {
    if (db.num_items == 0 || db.num_tx() == 0) return;
    if (Cancelled()) return;

    // --- CalcFreq: weighted frequency counting. -------------------------
    WallTimer count_timer;
    std::vector<OccHeader> headers(db.num_items);
    std::vector<uint32_t> compact_counts;
    if (options_.counter_compaction) {
      // P4: counters compacted into one dense array; the counting loop
      // strides over 4-byte slots instead of 32-byte headers.
      compact_counts.assign(db.num_items, 0);
      uint32_t* counts = compact_counts.data();
      const size_t ntx = db.num_tx();
      for (uint32_t t = 0; t < ntx; ++t) {
        const Support w = db.weights[t];
        for (Item it : db.tx(t)) counts[it] += w;
      }
      for (uint32_t i = 0; i < db.num_items; ++i) headers[i].count = counts[i];
    } else {
      const size_t ntx = db.num_tx();
      for (uint32_t t = 0; t < ntx; ++t) {
        const Support w = db.weights[t];
        for (Item it : db.tx(t)) headers[it].count += w;
      }
    }
    if (options_.collect_phase_stats && phases_ != nullptr) {
      phases_->calcfreq_seconds += count_timer.ElapsedSeconds();
    }

    // --- Emit frequent items; build the level's frequent list. ----------
    std::vector<Item> frequent;
    for (Item i = 0; i < db.num_items; ++i) {
      if (headers[i].count >= min_support_) {
        frequent.push_back(i);
        prefix->push_back(item_map[i]);
        sink_->Emit(*prefix, headers[i].count);
        if (stats_ != nullptr) ++stats_->num_frequent;
        prefix->pop_back();
      }
    }
    if (frequent.size() < 2) return;  // no extension possible

    // --- RmDupTrans: filter to frequent items, merge duplicates. --------
    WallTimer merge_timer;
    std::vector<Item> new_local(db.num_items, kInvalidItem);
    std::vector<Item> new_map(frequent.size());
    for (size_t k = 0; k < frequent.size(); ++k) {
      new_local[frequent[k]] = static_cast<Item>(k);
      new_map[k] = item_map[frequent[k]];
    }
    WorkDb merged;
    merged.num_items = static_cast<uint32_t>(frequent.size());
    if (options_.bucket_aggregation) {
      MergeDuplicates<AggregatedList<uint32_t>>(db, new_local, &merged);
    } else {
      MergeDuplicates<LinkedList<uint32_t>>(db, new_local, &merged);
    }
    if (options_.collect_phase_stats && phases_ != nullptr) {
      phases_->rmduptrans_seconds += merge_timer.ElapsedSeconds();
    }
    if (depth == 0 && stats_ != nullptr) {
      stats_->peak_structure_bytes =
          std::max(stats_->peak_structure_bytes,
                   merged.memory_bytes() + headers.size() * sizeof(OccHeader));
    }

    // --- Occurrence deliver: build the item-major OccArray. -------------
    WallTimer occ_timer;
    std::vector<uint32_t> occ;
    BuildOccArray(merged, headers.data(), &occ);
    if (options_.collect_phase_stats && phases_ != nullptr) {
      phases_->calcfreq_seconds += occ_timer.ElapsedSeconds();
    }

    // --- Project and recurse. --------------------------------------------
    if (options_.tiling && depth == 0) {
      ProjectTiled(merged, headers.data(), occ, new_map, prefix, depth);
    } else {
      WorkDb cond;
      for (uint32_t k = 1; k < merged.num_items; ++k) {
        if (Cancelled()) return;
        cond.Clear();
        ProjectItem(merged, headers[k], occ, k, &cond);
        if (cond.num_tx() == 0) continue;
        prefix->push_back(new_map[k]);
        Recurse(cond, headers[k].cond_entries, new_map, prefix, depth);
        prefix->pop_back();
      }
    }
  }

 private:
  bool Cancelled() const {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  }

  // Recurses into `cond` sequentially, unless the spawner accepts the
  // subtree (estimated cost: its conditional-entry count) as a task.
  void Recurse(const WorkDb& cond, uint64_t work,
               const std::vector<Item>& new_map, std::vector<Item>* prefix,
               int depth) {
    if (spawner_ != nullptr &&
        spawner_->Offer(static_cast<uint32_t>(depth) + 1, work,
                        DetachLevel(cond, new_map, *prefix, depth + 1))) {
      return;
    }
    MineLevel(cond.View(), new_map, prefix, depth + 1);
  }

  // Copies `cond` (and the maps the level needs) into a self-contained
  // frame whose array storage lives in the task's arena.
  SubtreeSpawner::DetachFn DetachLevel(const WorkDb& cond,
                                       const std::vector<Item>& new_map,
                                       const std::vector<Item>& prefix,
                                       int depth) {
    return [this, &cond, &new_map, &prefix, depth](Arena* arena) {
      auto frame = std::make_shared<LcmFrame>();
      frame->options = options_;
      frame->min_support = min_support_;
      frame->num_items = cond.num_items;
      frame->item_map = new_map;
      frame->prefix = prefix;
      frame->depth = depth;

      Item* items = static_cast<Item*>(
          arena->Allocate(cond.items.size() * sizeof(Item), alignof(Item)));
      std::memcpy(items, cond.items.data(), cond.items.size() * sizeof(Item));
      frame->items = std::span<const Item>(items, cond.items.size());

      uint32_t* offsets = static_cast<uint32_t*>(arena->Allocate(
          cond.offsets.size() * sizeof(uint32_t), alignof(uint32_t)));
      std::memcpy(offsets, cond.offsets.data(),
                  cond.offsets.size() * sizeof(uint32_t));
      frame->offsets =
          std::span<const uint32_t>(offsets, cond.offsets.size());

      Support* weights = static_cast<Support*>(arena->Allocate(
          cond.weights.size() * sizeof(Support), alignof(Support)));
      std::memcpy(weights, cond.weights.data(),
                  cond.weights.size() * sizeof(Support));
      frame->weights =
          std::span<const Support>(weights, cond.weights.size());

      return SubtreeSpawner::SubtreeFn(
          [frame](ItemsetSink* sink, SubtreeSpawner* spawner,
                  MineStats* stats) {
            LcmRun run(frame->options, frame->min_support, sink,
                       /*phases=*/nullptr, stats, spawner);
            std::vector<Item> pfx = frame->prefix;
            run.MineLevel(frame->View(), frame->item_map, &pfx,
                          frame->depth);
          });
    };
  }

  // P1: sorts the level-0 transactions lexicographically in place.
  void SortLexicographically(WorkDb* work) {
    const size_t n = work->num_tx();
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [work](uint32_t a, uint32_t b) {
      const auto ta = work->tx(a);
      const auto tb = work->tx(b);
      return std::lexicographical_compare(ta.begin(), ta.end(), tb.begin(),
                                          tb.end());
    });
    WorkDb sorted;
    sorted.num_items = work->num_items;
    sorted.items.reserve(work->items.size());
    sorted.weights.reserve(n);
    for (uint32_t t : perm) {
      const auto tx = work->tx(t);
      sorted.items.insert(sorted.items.end(), tx.begin(), tx.end());
      sorted.offsets.push_back(static_cast<uint32_t>(sorted.items.size()));
      sorted.weights.push_back(work->weights[t]);
    }
    *work = std::move(sorted);
  }

  // Filters each transaction to the level's frequent items (remapped to
  // dense ids) and merges identical results, summing weights. Duplicate
  // detection uses bucket hashing with per-bucket chains: the linked
  // structure pattern P3 aggregates.
  template <typename Chain>
  void MergeDuplicates(const WorkView& db, const std::vector<Item>& new_local,
                       WorkDb* merged) {
    const size_t ntx = db.num_tx();
    size_t nbuckets = 16;
    while (nbuckets < ntx) nbuckets <<= 1;
    const uint64_t mask = nbuckets - 1;

    Arena arena;
    std::vector<Chain> buckets(nbuckets, Chain(&arena));
    std::vector<Item> scratch;
    for (uint32_t t = 0; t < ntx; ++t) {
      scratch.clear();
      for (Item it : db.tx(t)) {
        const Item local = new_local[it];
        if (local != kInvalidItem) scratch.push_back(local);
      }
      if (scratch.empty()) continue;
      const Support w = db.weights[t];
      Chain& chain = buckets[HashSpan(scratch) & mask];
      uint32_t found = kInvalidItem;
      chain.ForEach([&](uint32_t candidate) {
        if (found == kInvalidItem &&
            SpanEquals(merged->tx(candidate), scratch)) {
          found = candidate;
        }
      });
      if (found != kInvalidItem) {
        merged->weights[found] += w;
      } else {
        const uint32_t idx = static_cast<uint32_t>(merged->num_tx());
        merged->items.insert(merged->items.end(), scratch.begin(),
                             scratch.end());
        merged->offsets.push_back(static_cast<uint32_t>(merged->items.size()));
        merged->weights.push_back(w);
        chain.PushBack(idx);
      }
    }
  }

  // Builds the flat, item-major occurrence array: headers[i] gets the
  // slice [occ_begin, occ_begin+occ_len) of `occ` listing the merged
  // transactions containing i (ascending tid), plus the total number of
  // conditional entries item i's projection will produce.
  void BuildOccArray(const WorkDb& merged, OccHeader* headers,
                     std::vector<uint32_t>* occ) {
    const uint32_t m = merged.num_items;
    for (uint32_t i = 0; i < m; ++i) {
      headers[i].occ_len = 0;
      headers[i].cond_entries = 0;
    }
    const size_t ntx = merged.num_tx();
    for (uint32_t t = 0; t < ntx; ++t) {
      for (Item it : merged.tx(t)) ++headers[it].occ_len;
    }
    uint32_t total = 0;
    for (uint32_t i = 0; i < m; ++i) {
      headers[i].occ_begin = total;
      total += headers[i].occ_len;
    }
    occ->resize(total);
    std::vector<uint32_t> cursor(m);
    for (uint32_t i = 0; i < m; ++i) cursor[i] = headers[i].occ_begin;
    for (uint32_t t = 0; t < ntx; ++t) {
      const auto tx = merged.tx(t);
      for (size_t pos = 0; pos < tx.size(); ++pos) {
        const Item it = tx[pos];
        (*occ)[cursor[it]++] = t;
        headers[it].cond_entries += static_cast<uint32_t>(pos);
      }
    }
  }

  // Projects item k's conditional database: for every merged transaction
  // containing k, the (ascending) items before k. Optionally applies the
  // P7.1 wave-front prefetch schedule over the occurrence slice.
  void ProjectItem(const WorkDb& merged, const OccHeader& header,
                   const std::vector<uint32_t>& occ, uint32_t k,
                   WorkDb* cond) {
    WallTimer timer;
    cond->num_items = k;
    const uint32_t begin = header.occ_begin;
    const uint32_t end = begin + header.occ_len;
    const uint32_t* offsets = merged.offsets.data();
    const Item* items = merged.items.data();
    const bool wave = options_.wavefront_prefetch;
    const uint32_t near = options_.prefetch_near;
    const uint32_t far = options_.prefetch_far;
    for (uint32_t idx = begin; idx < end; ++idx) {
      if (wave) {
        // Far wave: pull in the transaction-header (offset) slot.
        if (idx + far < end) Prefetch(&offsets[occ[idx + far]]);
        // Near wave: pull in the transaction payload; its offset was
        // fetched by the far wave several iterations ago.
        if (idx + near < end) Prefetch(&items[offsets[occ[idx + near]]]);
      }
      const uint32_t tid = occ[idx];
      const Item* p = items + offsets[tid];
      const size_t before = cond->items.size();
      while (*p != k) cond->items.push_back(*p++);
      if (cond->items.size() != before) {
        cond->offsets.push_back(static_cast<uint32_t>(cond->items.size()));
        cond->weights.push_back(merged.weights[tid]);
      }
    }
    if (options_.collect_phase_stats && phases_ != nullptr) {
      phases_->project_seconds += timer.ElapsedSeconds();
    }
  }

  // P6.1 — tiled projection of the top level. Items are processed in
  // batches whose conditional databases fit a memory budget; within a
  // batch, an outer loop walks L1-sized transaction tiles and an inner
  // loop advances every batch item's occurrence cursor through the tile,
  // so each transaction is served to all batch items while cached.
  void ProjectTiled(const WorkDb& merged, const OccHeader* headers,
                    const std::vector<uint32_t>& occ,
                    const std::vector<Item>& new_map,
                    std::vector<Item>* prefix, int depth) {
    const uint32_t m = merged.num_items;
    const uint32_t tile_entries = options_.tile_entries != 0
                                      ? options_.tile_entries
                                      : kL1TileEntriesDefault;

    // Tile boundaries (by merged transaction index) sized so one tile's
    // item payload is about `tile_entries` entries.
    std::vector<uint32_t> tile_ends;
    {
      uint32_t acc = 0;
      const size_t ntx = merged.num_tx();
      for (uint32_t t = 0; t < ntx; ++t) {
        acc += static_cast<uint32_t>(merged.tx(t).size());
        if (acc >= tile_entries) {
          tile_ends.push_back(t + 1);
          acc = 0;
        }
      }
      if (tile_ends.empty() || tile_ends.back() != ntx) {
        tile_ends.push_back(static_cast<uint32_t>(ntx));
      }
    }

    uint32_t k = 1;
    std::vector<WorkDb> conds;
    std::vector<uint32_t> cursors;
    while (k < m) {
      // Grow the batch until its conditional databases would exceed the
      // entry budget (always at least one item).
      uint32_t k_end = k;
      uint64_t batch_entries = 0;
      while (k_end < m &&
             (k_end == k ||
              batch_entries + headers[k_end].cond_entries <=
                  kTileBatchEntryBudget)) {
        batch_entries += headers[k_end].cond_entries;
        ++k_end;
      }

      const uint32_t batch = k_end - k;
      conds.assign(batch, WorkDb());
      cursors.resize(batch);
      for (uint32_t b = 0; b < batch; ++b) {
        conds[b].num_items = k + b;
        conds[b].items.reserve(headers[k + b].cond_entries);
        cursors[b] = headers[k + b].occ_begin;
      }

      for (uint32_t tile_end : tile_ends) {
        for (uint32_t b = 0; b < batch; ++b) {
          const uint32_t item = k + b;
          const uint32_t occ_end =
              headers[item].occ_begin + headers[item].occ_len;
          uint32_t& cur = cursors[b];
          WorkDb& cond = conds[b];
          while (cur < occ_end && occ[cur] < tile_end) {
            const uint32_t tid = occ[cur++];
            const Item* p = merged.items.data() + merged.offsets[tid];
            const size_t before = cond.items.size();
            while (*p != item) cond.items.push_back(*p++);
            if (cond.items.size() != before) {
              cond.offsets.push_back(
                  static_cast<uint32_t>(cond.items.size()));
              cond.weights.push_back(merged.weights[tid]);
            }
          }
        }
      }

      for (uint32_t b = 0; b < batch; ++b) {
        if (Cancelled()) return;
        if (conds[b].num_tx() == 0) continue;
        prefix->push_back(new_map[k + b]);
        Recurse(conds[b], headers[k + b].cond_entries, new_map, prefix,
                depth);
        prefix->pop_back();
        conds[b].Clear();
      }
      k = k_end;
    }
  }

  const LcmOptions& options_;
  const Support min_support_;
  ItemsetSink* sink_;
  LcmPhaseStats* phases_;
  MineStats* stats_;
  SubtreeSpawner* spawner_;
};

}  // namespace

LcmMiner::LcmMiner(LcmOptions options) : options_(options) {}

std::unique_ptr<Miner> LcmMiner::NativeClosedMiner() const {
  return std::make_unique<LcmClosedMiner>();
}

Result<MineStats> LcmMiner::MineImpl(const Database& db,
                                     Support min_support,
                                     ItemsetSink* sink) {
  return MineNestedImpl(db, min_support, sink, nullptr);
}

Result<MineStats> LcmMiner::MineNestedImpl(const Database& db,
                                           Support min_support,
                                           ItemsetSink* sink,
                                           SubtreeSpawner* spawner) {
  MineStats stats;
  phase_stats_ = LcmPhaseStats{};
  LcmRun run(options_, min_support, sink, &phase_stats_, &stats, spawner);
  run.Run(db);
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    return options_.cancel->ToStatus();
  }
  return stats;
}

}  // namespace fpm
