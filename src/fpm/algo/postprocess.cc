#include "fpm/algo/postprocess.h"

#include <unordered_map>

namespace fpm {
namespace {

// Order-sensitive hash of a sorted itemset.
uint64_t HashItemset(const Itemset& set) {
  uint64_t h = 1469598103934665603ull;
  for (Item it : set) {
    h ^= it;
    h *= 1099511628211ull;
  }
  return h;
}

struct ItemsetHash {
  size_t operator()(const Itemset& set) const {
    return static_cast<size_t>(HashItemset(set));
  }
};

// Marks, for every entry, whether some one-larger superset exists
// (keep_if(parent_support, child_support) decides whether the superset
// disqualifies the subset).
template <typename Disqualifies>
std::vector<CollectingSink::Entry> FilterBySupersets(
    const std::vector<CollectingSink::Entry>& all, Disqualifies disqualifies) {
  std::unordered_map<Itemset, size_t, ItemsetHash> index;
  index.reserve(all.size() * 2);
  for (size_t i = 0; i < all.size(); ++i) index.emplace(all[i].first, i);

  std::vector<bool> dead(all.size(), false);
  Itemset subset;
  for (const auto& [set, support] : all) {
    if (set.size() < 2) continue;
    subset.resize(set.size() - 1);
    for (size_t drop = 0; drop < set.size(); ++drop) {
      size_t out = 0;
      for (size_t i = 0; i < set.size(); ++i) {
        if (i != drop) subset[out++] = set[i];
      }
      const auto it = index.find(subset);
      // A complete frequent listing must contain every subset; tolerate
      // absence (caller gave a partial list) by skipping.
      if (it == index.end()) continue;
      if (disqualifies(all[it->second].second, support)) {
        dead[it->second] = true;
      }
    }
  }

  std::vector<CollectingSink::Entry> kept;
  for (size_t i = 0; i < all.size(); ++i) {
    if (!dead[i]) kept.push_back(all[i]);
  }
  return kept;
}

}  // namespace

std::vector<CollectingSink::Entry> FilterClosed(
    const std::vector<CollectingSink::Entry>& all_frequent) {
  return FilterBySupersets(
      all_frequent, [](Support subset_support, Support superset_support) {
        return subset_support == superset_support;
      });
}

std::vector<CollectingSink::Entry> FilterMaximal(
    const std::vector<CollectingSink::Entry>& all_frequent) {
  return FilterBySupersets(all_frequent,
                           [](Support, Support) { return true; });
}

std::vector<CollectingSink::Entry> FilterMaximalFromClosed(
    const std::vector<CollectingSink::Entry>& closed) {
  // Inverted index: item -> indices of closed sets containing it.
  std::unordered_map<Item, std::vector<size_t>> postings;
  for (size_t i = 0; i < closed.size(); ++i) {
    for (Item it : closed[i].first) postings[it].push_back(i);
  }

  std::vector<CollectingSink::Entry> kept;
  for (size_t i = 0; i < closed.size(); ++i) {
    const Itemset& set = closed[i].first;
    if (set.empty()) continue;
    // Scan the shortest posting list among the set's items.
    const std::vector<size_t>* shortest = nullptr;
    for (Item it : set) {
      const auto& list = postings[it];
      if (shortest == nullptr || list.size() < shortest->size()) {
        shortest = &list;
      }
    }
    bool maximal = true;
    for (size_t j : *shortest) {
      if (j == i) continue;
      const Itemset& other = closed[j].first;
      if (other.size() > set.size() &&
          std::includes(other.begin(), other.end(), set.begin(),
                        set.end())) {
        maximal = false;
        break;
      }
    }
    if (maximal) kept.push_back(closed[i]);
  }
  return kept;
}

namespace {

Result<std::vector<CollectingSink::Entry>> MineAll(Miner& miner,
                                                   const Database& db,
                                                   Support min_support) {
  CollectingSink sink;
  FPM_RETURN_IF_ERROR(miner.Mine(db, min_support, &sink).status());
  sink.Canonicalize();
  return sink.results();
}

}  // namespace

Result<std::vector<CollectingSink::Entry>> MineClosed(Miner& miner,
                                                      const Database& db,
                                                      Support min_support) {
  FPM_ASSIGN_OR_RETURN(auto all, MineAll(miner, db, min_support));
  return FilterClosed(all);
}

Result<std::vector<CollectingSink::Entry>> MineMaximal(Miner& miner,
                                                       const Database& db,
                                                       Support min_support) {
  FPM_ASSIGN_OR_RETURN(auto all, MineAll(miner, db, min_support));
  return FilterMaximal(all);
}

}  // namespace fpm
