// Kernel-side interface for nested fork-join mining.
//
// The three kernels (LCM, Eclat, FP-Growth) express their recursion as a
// re-entrant step over an explicit per-call frame. At each recursion
// point the kernel *offers* the subtree to a SubtreeSpawner; the driver
// (NestedParallelMiner) accepts it as an asynchronous task when the
// estimated work clears an adaptive cutoff, and declines it otherwise —
// in which case the kernel simply recurses sequentially, reusing its
// scratch buffers as before. Sequential mining is the spawner == nullptr
// degenerate case; the kernels pay nothing for the capability then.

#ifndef FPM_ALGO_SUBTREE_H_
#define FPM_ALGO_SUBTREE_H_

#include <cstdint>
#include <functional>

namespace fpm {

class Arena;
class ItemsetSink;
struct MineStats;

/// Accepts or declines subtree-mining tasks offered by a kernel.
///
/// Implementations must be safe to call concurrently from multiple
/// tasks of the same mining run.
class SubtreeSpawner {
 public:
  /// A detached, self-contained subtree step: mines one subtree into
  /// `sink`, offering its own sub-subtrees to `spawner` (never null;
  /// drivers pass themselves). `stats` is the per-task stats block the
  /// driver aggregates after the join; it may be null.
  using SubtreeFn =
      std::function<void(ItemsetSink* sink, SubtreeSpawner* spawner,
                         MineStats* stats)>;

  /// Builds a SubtreeFn whose frame (conditional DB / tidset columns /
  /// conditional FP-tree + prefix) is copied out of the kernel's scratch
  /// buffers into `arena`-backed (or frame-owned) storage, so the kernel
  /// may reuse those buffers the moment the call returns.
  using DetachFn = std::function<SubtreeFn(Arena* arena)>;

  virtual ~SubtreeSpawner() = default;

  /// Offers the subtree rooted at the current recursion point.
  ///
  ///  - `depth` is the recursion depth of the subtree root (top-level
  ///    equivalence classes are depth 0).
  ///  - `work` is the kernel's estimate of the subtree's cost in
  ///    conditional-database entries (LCM: occurrence-array entries,
  ///    Eclat: sum of child supports, FP-Growth: conditional tree
  ///    nodes). Only its magnitude matters; it is compared against the
  ///    driver's cutoff.
  ///  - `detach` is invoked at most once, synchronously, iff the offer
  ///    is accepted.
  ///
  /// Returns true when the subtree was detached and will be mined as a
  /// task (the kernel must NOT recurse into it), false when the kernel
  /// should recurse sequentially.
  virtual bool Offer(uint32_t depth, uint64_t work,
                     const DetachFn& detach) = 0;
};

}  // namespace fpm

#endif  // FPM_ALGO_SUBTREE_H_
