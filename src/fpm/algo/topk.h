// Top-k frequent itemset mining: the k highest-support itemsets (floor
// at MiningQuery::min_support), found without the caller guessing a
// threshold.
//
// The driver runs the underlying frequent kernel at a *seed* threshold
// and keeps the k best in a bounded support min-heap; when fewer than k
// itemsets survive the seed, the threshold halves (down to the floor)
// and the mine repeats. The seed comes from, in order of preference:
//
//   1. the single-item frequency table — when >= k items are frequent
//      at the floor, the k-th largest item frequency guarantees >= k
//      answers in one pass (every frequent item is itself an itemset);
//   2. MiningQuery::topk_seed_support — the service plants the inverted
//      Geerts–Goethals–Van den Bussche candidate bound here
//      (fpm/service/cost_model.h, TopKSeedThreshold);
//   3. the floor itself.
//
// Correctness does not depend on the seed: whenever the mine at
// threshold t yields >= k itemsets, those are a superset of the global
// top k (every itemset it missed has support < t <= the k-th best), so
// the heap holds the exact answer.

#ifndef FPM_ALGO_TOPK_H_
#define FPM_ALGO_TOPK_H_

#include <cstdint>
#include <vector>

#include "fpm/algo/itemset_sink.h"
#include "fpm/algo/query.h"
#include "fpm/common/status.h"
#include "fpm/dataset/database.h"

namespace fpm {

class Miner;
struct MineStats;

/// Bounded sink keeping the k best (support desc, canonical itemset asc
/// within equal support) of everything emitted — a support priority
/// queue with a deterministic tie-break, O(k) memory however many
/// itemsets the kernel enumerates.
class TopKSink : public ItemsetSink {
 public:
  explicit TopKSink(uint64_t k) : k_(k) {}

  void Emit(std::span<const Item> itemset, Support support) override;

  /// Itemsets emitted into the sink (before the k bound).
  uint64_t total_emitted() const { return total_emitted_; }

  /// The retained entries in final order: support descending, canonical
  /// itemset ascending within equal support. Destroys the heap.
  std::vector<CollectingSink::Entry> TakeSorted();

 private:
  uint64_t k_;
  uint64_t total_emitted_ = 0;
  // Min-heap on (support asc, itemset desc): top() is the weakest
  // retained entry, evicted when a stronger one arrives.
  std::vector<CollectingSink::Entry> heap_;
};

/// Mines the top-k answer for `query` (task must be kTopK and
/// validated) with `miner`'s frequent enumeration, writing the sorted
/// entries to `*out`. MineStats::num_frequent is the answer size
/// (min(k, itemsets frequent at the floor)); phase timings accumulate
/// over every refinement pass.
Result<MineStats> MineTopK(Miner& miner, const Database& db,
                           const MiningQuery& query,
                           std::vector<CollectingSink::Entry>* out);

}  // namespace fpm

#endif  // FPM_ALGO_TOPK_H_
