#include "fpm/service/dataset_registry.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "fpm/dataset/fimi_io.h"
#include "fpm/obs/metrics.h"

namespace fpm {

std::string ContentDigest(const std::string& bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for '" + path + "'");
  return std::move(buf).str();
}

}  // namespace

DatasetRegistry::DatasetRegistry(size_t budget_bytes)
    : budget_bytes_(budget_bytes) {
  MetricsRegistry& m = MetricsRegistry::Default();
  loads_counter_ = m.GetCounter("fpm.service.registry.loads");
  hits_counter_ = m.GetCounter("fpm.service.registry.hits");
  evictions_counter_ = m.GetCounter("fpm.service.registry.evictions");
  bytes_gauge_ = m.GetGauge("fpm.service.registry.bytes");
}

Result<DatasetHandle> DatasetRegistry::Get(const std::string& path) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = entries_.find(path);
    if (it == entries_.end()) break;  // we load it
    if (!it->second.loading) {
      it->second.lru_seq = next_seq_++;
      ++hits_;
      hits_counter_->Increment();
      DatasetHandle handle;
      handle.database = it->second.database;
      handle.digest = it->second.digest;
      handle.bytes = it->second.bytes;
      return handle;
    }
    // Another thread is loading this path; wait for it to publish or
    // fail (failure erases the entry, which re-enters the load branch).
    load_cv_.wait(lock);
  }

  entries_[path];  // inserts Entry{loading = true}
  lock.unlock();

  Result<std::string> bytes = ReadFileBytes(path);
  Result<Database> parsed =
      bytes.ok() ? ParseFimi(bytes.value())
                 : Result<Database>(bytes.status());

  lock.lock();
  if (!parsed.ok()) {
    entries_.erase(path);
    load_cv_.notify_all();
    return parsed.status();
  }
  Entry& entry = entries_[path];
  entry.loading = false;
  entry.database =
      std::make_shared<const Database>(std::move(parsed).value());
  entry.digest = ContentDigest(bytes.value());
  entry.bytes = entry.database->memory_bytes();
  entry.lru_seq = next_seq_++;
  resident_bytes_ += entry.bytes;
  ++loads_;
  loads_counter_->Increment();

  DatasetHandle handle;
  handle.database = entry.database;
  handle.digest = entry.digest;
  handle.bytes = entry.bytes;

  EvictLocked();
  bytes_gauge_->Set(resident_bytes_);
  load_cv_.notify_all();
  return handle;
}

void DatasetRegistry::EvictLocked() {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_) {
    // Least-recently-used entry that is loaded and unpinned. use_count
    // is exact here: every other owner holds the pointer via a handle,
    // and new handles are only minted under mu_.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.loading || it->second.database.use_count() > 1) {
        continue;
      }
      if (victim == entries_.end() ||
          it->second.lru_seq < victim->second.lru_seq) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned
    resident_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
    evictions_counter_->Increment();
  }
}

DatasetRegistryStats DatasetRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DatasetRegistryStats s;
  s.loads = loads_;
  s.hits = hits_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  size_t n = 0;
  for (const auto& [path, entry] : entries_) {
    if (!entry.loading) ++n;
  }
  s.resident_entries = n;
  return s;
}

}  // namespace fpm
