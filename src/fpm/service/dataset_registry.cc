#include "fpm/service/dataset_registry.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "fpm/dataset/fimi_io.h"
#include "fpm/dataset/packed.h"
#include "fpm/obs/metrics.h"

namespace fpm {

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for '" + path + "'");
  return std::move(buf).str();
}

}  // namespace

DatasetRegistry::DatasetRegistry(size_t budget_bytes)
    : budget_bytes_(budget_bytes) {
  MetricsRegistry& m = MetricsRegistry::Default();
  loads_counter_ = m.GetCounter("fpm.service.registry.loads");
  hits_counter_ = m.GetCounter("fpm.service.registry.hits");
  appends_counter_ = m.GetCounter("fpm.service.registry.appends");
  evictions_counter_ = m.GetCounter("fpm.service.registry.evictions");
  bytes_gauge_ = m.GetGauge("fpm.service.registry.bytes");
}

DatasetHandle DatasetRegistry::MakeHandleLocked(
    const Entry& entry, const DatasetVersion& version) const {
  DatasetHandle handle;
  handle.id = entry.id;
  handle.version = version.number;
  handle.latest_version = entry.dataset->latest().number;
  handle.database = version.database;
  handle.digest = version.digest;
  handle.parent_digest = version.parent_digest;
  handle.delta = version.delta;
  handle.bytes = version.database->memory_bytes();
  return handle;
}

void DatasetRegistry::UpdateBytesLocked(Entry& entry) {
  const size_t now = entry.dataset->resident_bytes();
  resident_bytes_ += now - entry.bytes;
  entry.bytes = now;
  const size_t mapped_now = entry.dataset->mapped_bytes();
  mapped_bytes_ += mapped_now - entry.mapped;
  entry.mapped = mapped_now;
  bytes_gauge_->Set(resident_bytes_);
}

DatasetRegistry::Entry* DatasetRegistry::FindByIdLocked(
    const std::string& id) {
  auto it = id_to_path_.find(id);
  if (it == id_to_path_.end()) return nullptr;
  auto entry = entries_.find(it->second);
  if (entry == entries_.end() || entry->second.loading) return nullptr;
  return &entry->second;
}

const DatasetRegistry::Entry* DatasetRegistry::FindByIdLocked(
    const std::string& id) const {
  return const_cast<DatasetRegistry*>(this)->FindByIdLocked(id);
}

Result<DatasetHandle> DatasetRegistry::Open(const std::string& path) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = entries_.find(path);
    if (it == entries_.end()) break;  // we load it
    if (!it->second.loading) {
      it->second.lru_seq = next_seq_++;
      ++hits_;
      hits_counter_->Increment();
      return MakeHandleLocked(it->second, it->second.dataset->latest());
    }
    // Another thread is loading this path; wait for it to publish or
    // fail (failure erases the entry, which re-enters the load branch).
    load_cv_.wait(lock);
  }

  entries_[path];  // inserts Entry{loading = true}
  lock.unlock();

  // Packed files are mapped, everything else is parsed as FIMI. Either
  // way the digest is the content digest of the original FIMI bytes
  // (the packed header records it), so caches key storage-agnostically.
  std::string digest;
  Result<Database> loaded = [&]() -> Result<Database> {
    if (IsPackedFile(path)) return OpenMapped(path, &digest);
    Result<std::string> bytes = ReadFileBytes(path);
    if (!bytes.ok()) return bytes.status();
    digest = ContentDigest(bytes.value());
    return ParseFimi(bytes.value());
  }();

  lock.lock();
  if (!loaded.ok()) {
    entries_.erase(path);
    load_cv_.notify_all();
    return loaded.status();
  }
  Entry& entry = entries_[path];
  entry.loading = false;
  entry.id = "ds-" + std::to_string(next_id_++);
  entry.dataset = std::make_unique<VersionedDataset>(std::move(loaded).value(),
                                                     std::move(digest));
  entry.bytes = entry.dataset->resident_bytes();
  entry.mapped = entry.dataset->mapped_bytes();
  entry.lru_seq = next_seq_++;
  id_to_path_[entry.id] = path;
  resident_bytes_ += entry.bytes;
  mapped_bytes_ += entry.mapped;
  ++loads_;
  loads_counter_->Increment();

  DatasetHandle handle = MakeHandleLocked(entry, entry.dataset->latest());

  EvictLocked();
  bytes_gauge_->Set(resident_bytes_);
  load_cv_.notify_all();
  return handle;
}

Result<DatasetHandle> DatasetRegistry::Resolve(const std::string& id,
                                               uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindByIdLocked(id);
  if (entry == nullptr) {
    return Status::NotFound("unknown dataset id '" + id + "'");
  }
  const DatasetVersion* v = version == 0
                                ? &entry->dataset->latest()
                                : entry->dataset->version(version);
  if (v == nullptr) {
    return Status::NotFound(
        "dataset '" + id + "' has no version " + std::to_string(version) +
        " (latest is " +
        std::to_string(entry->dataset->latest().number) + ")");
  }
  entry->lru_seq = next_seq_++;
  ++hits_;
  hits_counter_->Increment();
  return MakeHandleLocked(*entry, *v);
}

Result<DatasetHandle> DatasetRegistry::Append(
    const std::string& id, const std::vector<Itemset>& transactions,
    const std::vector<double>& timestamps) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindByIdLocked(id);
  if (entry == nullptr) {
    return Status::NotFound("unknown dataset id '" + id + "'");
  }
  FPM_ASSIGN_OR_RETURN(const DatasetVersion* v,
                       entry->dataset->Append(transactions, timestamps));
  entry->mutated = true;
  entry->lru_seq = next_seq_++;
  ++appends_;
  appends_counter_->Increment();
  UpdateBytesLocked(*entry);
  return MakeHandleLocked(*entry, *v);
}

Result<DatasetHandle> DatasetRegistry::Expire(const std::string& id,
                                              uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindByIdLocked(id);
  if (entry == nullptr) {
    return Status::NotFound("unknown dataset id '" + id + "'");
  }
  FPM_ASSIGN_OR_RETURN(const DatasetVersion* v,
                       entry->dataset->Expire(count));
  entry->mutated = true;
  entry->lru_seq = next_seq_++;
  ++appends_;
  appends_counter_->Increment();
  UpdateBytesLocked(*entry);
  return MakeHandleLocked(*entry, *v);
}

Result<DatasetHandle> DatasetRegistry::SetWindow(const std::string& id,
                                                 const WindowPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindByIdLocked(id);
  if (entry == nullptr) {
    return Status::NotFound("unknown dataset id '" + id + "'");
  }
  const uint64_t before = entry->dataset->latest().number;
  const DatasetVersion* v = entry->dataset->SetPolicy(policy);
  entry->mutated = true;
  entry->lru_seq = next_seq_++;
  if (v->number != before) {
    ++appends_;
    appends_counter_->Increment();
  }
  UpdateBytesLocked(*entry);
  return MakeHandleLocked(*entry, *v);
}

Result<DatasetInfo> DatasetRegistry::Info(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindByIdLocked(id);
  if (entry == nullptr) {
    return Status::NotFound("unknown dataset id '" + id + "'");
  }
  DatasetInfo info;
  info.id = entry->id;
  info.path = id_to_path_.at(entry->id);
  info.storage = StorageKindName(entry->dataset->storage_kind());
  info.window = entry->dataset->policy();
  info.live_transactions = entry->dataset->live_transactions();
  for (const DatasetVersion& v : entry->dataset->versions()) {
    DatasetInfo::Version out;
    out.number = v.number;
    out.digest = v.digest;
    out.num_transactions = v.num_transactions;
    out.appended_weight = v.appended_weight;
    out.expired_weight = v.expired_weight;
    info.versions.push_back(std::move(out));
  }
  return info;
}

void DatasetRegistry::EvictLocked() {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_) {
    // Least-recently-used entry that is loaded, unpinned and pristine.
    // use_count is exact here: every other owner holds version
    // databases via handles, and new handles are only minted under mu_.
    // Mutated entries are never victims — their chain state exists
    // nowhere on disk.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& e = it->second;
      if (e.loading || e.mutated) continue;
      bool pinned = false;
      for (const DatasetVersion& v : e.dataset->versions()) {
        if (v.database.use_count() > 1) {
          pinned = true;
          break;
        }
      }
      if (pinned) continue;
      if (victim == entries_.end() ||
          e.lru_seq < victim->second.lru_seq) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned
    resident_bytes_ -= victim->second.bytes;
    mapped_bytes_ -= victim->second.mapped;
    id_to_path_.erase(victim->second.id);
    entries_.erase(victim);
    ++evictions_;
    evictions_counter_->Increment();
  }
}

DatasetRegistryStats DatasetRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DatasetRegistryStats s;
  s.loads = loads_;
  s.hits = hits_;
  s.appends = appends_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  s.mapped_bytes = mapped_bytes_;
  for (const auto& [path, entry] : entries_) {
    if (entry.loading) continue;
    DatasetRegistryStats::Dataset d;
    d.id = entry.id;
    d.path = path;
    d.storage = StorageKindName(entry.dataset->storage_kind());
    d.versions = entry.dataset->versions().size();
    d.live_transactions = entry.dataset->live_transactions();
    d.bytes = entry.bytes;
    d.mapped_bytes = entry.mapped;
    if (!entry.dataset->versions().empty()) {
      d.digest = entry.dataset->versions().front().digest;
    }
    for (const DatasetVersion& v : entry.dataset->versions()) {
      if (v.database.use_count() > 1) ++d.pinned_versions;
    }
    s.datasets.push_back(std::move(d));
  }
  s.resident_entries = s.datasets.size();
  return s;
}

}  // namespace fpm
