#include "fpm/service/protocol.h"

#include <utility>

namespace fpm {

namespace {

Status FieldError(const std::string& field, const std::string& what) {
  return Status::InvalidArgument("request field '" + field + "': " + what);
}

}  // namespace

Result<ServiceRequest> DecodeRequest(const std::string& line) {
  FPM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue& op = doc["op"];
  if (!op.is_string()) return FieldError("op", "missing or not a string");

  ServiceRequest request;
  const std::string& name = op.string_value();
  if (name == "ping") {
    request.op = ServiceRequest::Op::kPing;
    return request;
  }
  if (name == "metrics") {
    request.op = ServiceRequest::Op::kMetrics;
    return request;
  }
  if (name == "shutdown") {
    request.op = ServiceRequest::Op::kShutdown;
    return request;
  }
  if (name != "mine") {
    return FieldError("op", "unknown op '" + name + "'");
  }

  request.op = ServiceRequest::Op::kMine;
  MineRequest& mine = request.mine;

  const JsonValue& dataset = doc["dataset"];
  if (!dataset.is_string() || dataset.string_value().empty()) {
    return FieldError("dataset", "missing or not a string");
  }
  mine.dataset_path = dataset.string_value();

  const JsonValue& minsup = doc["min_support"];
  if (!minsup.is_number() || minsup.number_value() < 1.0) {
    return FieldError("min_support", "missing or not a number >= 1");
  }
  mine.min_support = static_cast<Support>(minsup.number_value());

  const JsonValue& algorithm = doc["algorithm"];
  if (!algorithm.is_null()) {
    if (!algorithm.is_string()) {
      return FieldError("algorithm", "not a string");
    }
    FPM_ASSIGN_OR_RETURN(mine.algorithm,
                         ParseAlgorithm(algorithm.string_value()));
  }

  const JsonValue& patterns = doc["patterns"];
  mine.patterns = PatternSet::All();
  if (!patterns.is_null()) {
    if (!patterns.is_string()) return FieldError("patterns", "not a string");
    const std::string& p = patterns.string_value();
    if (p == "all") {
      mine.patterns = PatternSet::All();
    } else if (p == "none") {
      mine.patterns = PatternSet::None();
    } else {
      return FieldError("patterns", "expected 'all' or 'none'");
    }
  }

  const JsonValue& priority = doc["priority"];
  if (!priority.is_null()) {
    if (!priority.is_number()) return FieldError("priority", "not a number");
    mine.priority = static_cast<int>(priority.number_value());
  }

  const JsonValue& timeout = doc["timeout_s"];
  if (!timeout.is_null()) {
    if (!timeout.is_number() || timeout.number_value() < 0.0) {
      return FieldError("timeout_s", "not a non-negative number");
    }
    mine.timeout_seconds = timeout.number_value();
  }

  const JsonValue& count_only = doc["count_only"];
  if (!count_only.is_null()) {
    if (!count_only.is_bool()) return FieldError("count_only", "not a bool");
    mine.count_only = count_only.bool_value();
  }

  return request;
}

std::string EncodeMineResponse(const MineResponse& response) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("num_frequent",
          JsonValue::Int(static_cast<int64_t>(response.num_frequent)));
  doc.Set("cache", JsonValue::Str(CacheOutcomeName(response.cache)));
  doc.Set("digest", JsonValue::Str(response.dataset_digest));
  doc.Set("queue_ms", JsonValue::Number(response.queue_seconds * 1000.0));
  doc.Set("mine_ms", JsonValue::Number(response.mine_seconds * 1000.0));
  if (!response.itemsets.empty()) {
    JsonValue itemsets = JsonValue::Array();
    for (const CollectingSink::Entry& e : response.itemsets) {
      JsonValue items = JsonValue::Array();
      for (Item it : e.first) items.Append(JsonValue::Int(it));
      JsonValue entry = JsonValue::Object();
      entry.Set("items", std::move(items));
      entry.Set("support", JsonValue::Int(e.second));
      itemsets.Append(std::move(entry));
    }
    doc.Set("itemsets", std::move(itemsets));
  }
  return doc.Dump();
}

std::string EncodeError(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::Str(StatusCodeToString(status.code())));
  error.Set("message", JsonValue::Str(status.message()));
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(false));
  doc.Set("error", std::move(error));
  return doc.Dump();
}

std::string EncodeOk() {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  return doc.Dump();
}

}  // namespace fpm
