#include "fpm/service/protocol.h"

#include <utility>

namespace fpm {

namespace {

Status FieldError(const std::string& where, const std::string& field,
                  const std::string& what) {
  return Status::InvalidArgument(where + ": field '" + field + "': " + what);
}

// Decodes the shared mine/query request body from `doc`. `where` labels
// errors ("op 'query'", "op 'batch': queries[3]", ...); `with_tasks`
// enables the v2 task-family fields, which the frozen v1 "mine" op does
// not know. `with_dataset` is false only for "cache_probe", whose query
// is addressed by content digest rather than a dataset.
Status DecodeMineBody(const JsonValue& doc, const std::string& where,
                      bool with_tasks, bool with_dataset, MineRequest* out) {
  if (with_dataset) {
    const JsonValue& dataset = doc["dataset"];
    const JsonValue& id = doc["id"];
    if (with_tasks && !id.is_null()) {
      // v2 handle addressing: "id" (+ optional "version") instead of a
      // path. Mutually exclusive with "dataset".
      if (!id.is_string() || id.string_value().empty()) {
        return FieldError(where, "id", "not a non-empty string");
      }
      if (!dataset.is_null()) {
        return FieldError(where, "dataset",
                          "mutually exclusive with 'id'");
      }
      out->dataset_id = id.string_value();
      const JsonValue& version = doc["version"];
      if (!version.is_null()) {
        if (version.is_string() && version.string_value() == "latest") {
          out->dataset_version = 0;
        } else if (version.is_number() && version.number_value() >= 1.0) {
          out->dataset_version =
              static_cast<uint64_t>(version.number_value());
        } else {
          return FieldError(where, "version",
                            "not a number >= 1 or 'latest'");
        }
      }
    } else {
      if (!dataset.is_string() || dataset.string_value().empty()) {
        return FieldError(where, "dataset", "missing or not a string");
      }
      out->dataset_path = dataset.string_value();
    }
  }

  const JsonValue& minsup = doc["min_support"];
  if (!minsup.is_number() || minsup.number_value() < 1.0) {
    return FieldError(where, "min_support",
                      "missing or not a number >= 1");
  }
  out->query.min_support = static_cast<Support>(minsup.number_value());

  if (with_tasks) {
    const JsonValue& task = doc["task"];
    if (!task.is_null()) {
      if (!task.is_string()) {
        return FieldError(where, "task", "not a string");
      }
      Result<MiningTask> parsed = ParseTask(task.string_value());
      if (!parsed.ok()) {
        return FieldError(where, "task", parsed.status().message());
      }
      out->query.task = parsed.value();
    }

    const JsonValue& k = doc["k"];
    if (!k.is_null()) {
      if (!k.is_number() || k.number_value() < 1.0) {
        return FieldError(where, "k", "not a number >= 1");
      }
      out->query.k = static_cast<uint64_t>(k.number_value());
    }

    const JsonValue& confidence = doc["min_confidence"];
    if (!confidence.is_null()) {
      if (!confidence.is_number() || confidence.number_value() < 0.0 ||
          confidence.number_value() > 1.0) {
        return FieldError(where, "min_confidence",
                          "not a number in [0, 1]");
      }
      out->query.min_confidence = confidence.number_value();
    }

    const JsonValue& lift = doc["min_lift"];
    if (!lift.is_null()) {
      if (!lift.is_number() || lift.number_value() < 0.0) {
        return FieldError(where, "min_lift",
                          "not a non-negative number");
      }
      out->query.min_lift = lift.number_value();
    }

    const JsonValue& max_consequent = doc["max_consequent"];
    if (!max_consequent.is_null()) {
      if (!max_consequent.is_number() ||
          max_consequent.number_value() < 1.0) {
        return FieldError(where, "max_consequent", "not a number >= 1");
      }
      out->query.max_consequent =
          static_cast<uint32_t>(max_consequent.number_value());
    }

    const Status valid = out->query.Validate();
    if (!valid.ok()) {
      return Status::InvalidArgument(where + ": " + valid.message());
    }
  }

  const JsonValue& algorithm = doc["algorithm"];
  if (!algorithm.is_null()) {
    if (!algorithm.is_string()) {
      return FieldError(where, "algorithm", "not a string");
    }
    Result<Algorithm> parsed = ParseAlgorithm(algorithm.string_value());
    if (!parsed.ok()) {
      return FieldError(where, "algorithm", parsed.status().message());
    }
    out->algorithm = parsed.value();
  }

  const JsonValue& patterns = doc["patterns"];
  out->patterns = PatternSet::All();
  if (!patterns.is_null()) {
    if (!patterns.is_string()) {
      return FieldError(where, "patterns", "not a string");
    }
    const std::string& p = patterns.string_value();
    if (p == "all") {
      out->patterns = PatternSet::All();
    } else if (p == "none") {
      out->patterns = PatternSet::None();
    } else {
      return FieldError(where, "patterns", "expected 'all' or 'none'");
    }
  }

  const JsonValue& priority = doc["priority"];
  if (!priority.is_null()) {
    if (!priority.is_number()) {
      return FieldError(where, "priority", "not a number");
    }
    out->priority = static_cast<int>(priority.number_value());
  }

  const JsonValue& timeout = doc["timeout_s"];
  if (!timeout.is_null()) {
    if (!timeout.is_number() || timeout.number_value() < 0.0) {
      return FieldError(where, "timeout_s", "not a non-negative number");
    }
    out->timeout_seconds = timeout.number_value();
  }

  const JsonValue& count_only = doc["count_only"];
  if (!count_only.is_null()) {
    if (!count_only.is_bool()) {
      return FieldError(where, "count_only", "not a bool");
    }
    out->count_only = count_only.bool_value();
  }

  if (with_tasks) {
    const JsonValue& trace_id = doc["trace_id"];
    if (!trace_id.is_null()) {
      if (!trace_id.is_string()) {
        return FieldError(where, "trace_id", "not a string");
      }
      out->trace_id = trace_id.string_value();
    }

    const JsonValue& scatter = doc["scatter"];
    if (!scatter.is_null()) {
      if (!scatter.is_bool()) {
        return FieldError(where, "scatter", "not a bool");
      }
      out->scatter = scatter.bool_value();
    }
  }

  return Status::OK();
}

// Decodes a "candidates" array ([[items...],...]) for shard_query count.
Status DecodeCandidates(const JsonValue& doc, const std::string& where,
                        std::vector<Itemset>* out) {
  const JsonValue& candidates = doc["candidates"];
  if (!candidates.is_array()) {
    return FieldError(where, "candidates", "missing or not an array");
  }
  const std::vector<JsonValue>& rows = candidates.array_items();
  out->reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const std::string label = "candidates[" + std::to_string(i) + "]";
    if (!rows[i].is_array() || rows[i].array_items().empty()) {
      return FieldError(where, label, "not a non-empty array");
    }
    Itemset set;
    set.reserve(rows[i].array_items().size());
    for (const JsonValue& item : rows[i].array_items()) {
      if (!item.is_number() || item.number_value() < 0.0) {
        return FieldError(where, label, "items must be numbers >= 0");
      }
      set.push_back(static_cast<Item>(item.number_value()));
    }
    out->push_back(std::move(set));
  }
  return Status::OK();
}

// Decodes the required "id" field of a dataset op.
Status DecodeDatasetId(const JsonValue& doc, const std::string& where,
                       DatasetOpRequest* out) {
  const JsonValue& id = doc["id"];
  if (!id.is_string() || id.string_value().empty()) {
    return FieldError(where, "id", "missing or not a string");
  }
  out->id = id.string_value();
  return Status::OK();
}

Status DecodeAppendBody(const JsonValue& doc, const std::string& where,
                        DatasetOpRequest* out) {
  FPM_RETURN_IF_ERROR(DecodeDatasetId(doc, where, out));
  const JsonValue& txns = doc["transactions"];
  if (!txns.is_array() || txns.array_items().empty()) {
    return FieldError(where, "transactions",
                      "missing or not a non-empty array");
  }
  const std::vector<JsonValue>& rows = txns.array_items();
  out->transactions.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const std::string label = "transactions[" + std::to_string(i) + "]";
    if (!rows[i].is_array() || rows[i].array_items().empty()) {
      return FieldError(where, label, "not a non-empty array");
    }
    Itemset txn;
    txn.reserve(rows[i].array_items().size());
    for (const JsonValue& item : rows[i].array_items()) {
      if (!item.is_number() || item.number_value() < 0.0) {
        return FieldError(where, label, "items must be numbers >= 0");
      }
      txn.push_back(static_cast<Item>(item.number_value()));
    }
    out->transactions.push_back(std::move(txn));
  }
  const JsonValue& timestamps = doc["timestamps"];
  if (!timestamps.is_null()) {
    if (!timestamps.is_array()) {
      return FieldError(where, "timestamps", "not an array");
    }
    const std::vector<JsonValue>& ts = timestamps.array_items();
    if (ts.size() != rows.size()) {
      return FieldError(where, "timestamps",
                        "length must match 'transactions'");
    }
    out->timestamps.reserve(ts.size());
    for (const JsonValue& t : ts) {
      if (!t.is_number()) {
        return FieldError(where, "timestamps", "entries must be numbers");
      }
      out->timestamps.push_back(t.number_value());
    }
  }
  return Status::OK();
}

Status DecodeExpireBody(const JsonValue& doc, const std::string& where,
                        DatasetOpRequest* out) {
  FPM_RETURN_IF_ERROR(DecodeDatasetId(doc, where, out));
  const JsonValue& count = doc["count"];
  if (!count.is_number() || count.number_value() < 1.0) {
    return FieldError(where, "count", "missing or not a number >= 1");
  }
  out->count = static_cast<uint64_t>(count.number_value());
  return Status::OK();
}

Status DecodeWindowBody(const JsonValue& doc, const std::string& where,
                        DatasetOpRequest* out) {
  FPM_RETURN_IF_ERROR(DecodeDatasetId(doc, where, out));
  const JsonValue& last_n = doc["last_n"];
  if (!last_n.is_null()) {
    if (!last_n.is_number() || last_n.number_value() < 0.0) {
      return FieldError(where, "last_n", "not a number >= 0");
    }
    out->window.last_n = static_cast<uint64_t>(last_n.number_value());
  }
  const JsonValue& last_seconds = doc["last_seconds"];
  if (!last_seconds.is_null()) {
    if (!last_seconds.is_number() || last_seconds.number_value() < 0.0) {
      return FieldError(where, "last_seconds", "not a number >= 0");
    }
    out->window.last_seconds = last_seconds.number_value();
  }
  return Status::OK();
}

JsonValue EncodeItemsets(const std::vector<CollectingSink::Entry>& itemsets) {
  JsonValue array = JsonValue::Array();
  for (const CollectingSink::Entry& e : itemsets) {
    JsonValue items = JsonValue::Array();
    for (Item it : e.first) items.Append(JsonValue::Int(it));
    JsonValue entry = JsonValue::Object();
    entry.Set("items", std::move(items));
    entry.Set("support", JsonValue::Int(e.second));
    array.Append(std::move(entry));
  }
  return array;
}

JsonValue EncodeItemArray(const Itemset& set) {
  JsonValue array = JsonValue::Array();
  for (Item it : set) array.Append(JsonValue::Int(it));
  return array;
}

JsonValue BuildQueryResponse(const MineResponse& response) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("task", JsonValue::Str(TaskName(response.task)));
  doc.Set("num_results",
          JsonValue::Int(static_cast<int64_t>(response.num_frequent)));
  doc.Set("cache", JsonValue::Str(CacheOutcomeName(response.cache)));
  doc.Set("digest", JsonValue::Str(response.dataset_digest));
  doc.Set("queue_ms", JsonValue::Number(response.queue_seconds * 1000.0));
  doc.Set("mine_ms", JsonValue::Number(response.mine_seconds * 1000.0));
  doc.Set("query_id",
          JsonValue::Int(static_cast<int64_t>(response.query_id)));
  if (!response.trace_id.empty()) {
    doc.Set("trace_id", JsonValue::Str(response.trace_id));
  }
  if (!response.served_by.empty()) {
    doc.Set("peer", JsonValue::Str(response.served_by));
  }
  if (response.shard_count > 0) {
    doc.Set("shards",
            JsonValue::Int(static_cast<int64_t>(response.shard_count)));
  }
  if (!response.itemsets.empty()) {
    doc.Set("itemsets", EncodeItemsets(response.itemsets));
  }
  if (!response.rules.empty()) {
    JsonValue rules = JsonValue::Array();
    for (const AssociationRule& r : response.rules) {
      JsonValue rule = JsonValue::Object();
      rule.Set("antecedent", EncodeItemArray(r.antecedent));
      rule.Set("consequent", EncodeItemArray(r.consequent));
      rule.Set("support", JsonValue::Int(r.itemset_support));
      rule.Set("confidence", JsonValue::Number(r.confidence));
      rule.Set("lift", JsonValue::Number(r.lift));
      rules.Append(std::move(rule));
    }
    doc.Set("rules", std::move(rules));
  }
  return doc;
}

JsonValue BuildError(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::Str(StatusCodeToString(status.code())));
  error.Set("message", JsonValue::Str(status.message()));
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(false));
  doc.Set("error", std::move(error));
  return doc;
}

}  // namespace

Result<ServiceRequest> DecodeRequest(const std::string& line) {
  FPM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue& op = doc["op"];
  if (!op.is_string()) {
    return FieldError("request", "op", "missing or not a string");
  }

  ServiceRequest request;
  const std::string& name = op.string_value();
  const std::string where = "op '" + name + "'";
  if (name == "ping") {
    request.op = ServiceRequest::Op::kPing;
    return request;
  }
  if (name == "metrics") {
    request.op = ServiceRequest::Op::kMetrics;
    return request;
  }
  if (name == "metrics_text") {
    request.op = ServiceRequest::Op::kMetricsText;
    request.version = 2;
    return request;
  }
  if (name == "stats") {
    request.op = ServiceRequest::Op::kStats;
    request.version = 2;
    return request;
  }
  if (name == "shutdown") {
    request.op = ServiceRequest::Op::kShutdown;
    return request;
  }
  if (name == "mine") {
    // v1 compat shim: the frozen field set, always task "frequent".
    request.op = ServiceRequest::Op::kMine;
    request.version = 1;
    FPM_RETURN_IF_ERROR(DecodeMineBody(doc, where, /*with_tasks=*/false,
                                       /*with_dataset=*/true,
                                       &request.mine));
    return request;
  }
  if (name == "query") {
    request.op = ServiceRequest::Op::kQuery;
    request.version = 2;
    FPM_RETURN_IF_ERROR(DecodeMineBody(doc, where, /*with_tasks=*/true,
                                       /*with_dataset=*/true,
                                       &request.mine));
    return request;
  }
  if (name == "open") {
    request.op = ServiceRequest::Op::kOpen;
    request.version = 2;
    const JsonValue& dataset = doc["dataset"];
    if (!dataset.is_string() || dataset.string_value().empty()) {
      return FieldError(where, "dataset", "missing or not a string");
    }
    request.dataset_op.path = dataset.string_value();
    return request;
  }
  if (name == "append") {
    request.op = ServiceRequest::Op::kAppend;
    request.version = 2;
    FPM_RETURN_IF_ERROR(DecodeAppendBody(doc, where, &request.dataset_op));
    return request;
  }
  if (name == "expire") {
    request.op = ServiceRequest::Op::kExpire;
    request.version = 2;
    FPM_RETURN_IF_ERROR(DecodeExpireBody(doc, where, &request.dataset_op));
    return request;
  }
  if (name == "window") {
    request.op = ServiceRequest::Op::kWindow;
    request.version = 2;
    FPM_RETURN_IF_ERROR(DecodeWindowBody(doc, where, &request.dataset_op));
    return request;
  }
  if (name == "dataset_info") {
    request.op = ServiceRequest::Op::kDatasetInfo;
    request.version = 2;
    FPM_RETURN_IF_ERROR(DecodeDatasetId(doc, where, &request.dataset_op));
    return request;
  }
  if (name == "batch") {
    request.op = ServiceRequest::Op::kBatch;
    request.version = 2;
    const JsonValue& queries = doc["queries"];
    if (!queries.is_array()) {
      return FieldError(where, "queries", "missing or not an array");
    }
    const std::vector<JsonValue>& items = queries.array_items();
    if (items.empty()) {
      return FieldError(where, "queries", "must not be empty");
    }
    for (size_t i = 0; i < items.size(); ++i) {
      ServiceRequest::BatchEntry entry;
      const JsonValue& q = items[i];
      const std::string entry_where =
          where + ": queries[" + std::to_string(i) + "]";
      if (!q.is_object()) {
        entry.status =
            Status::InvalidArgument(entry_where + ": not an object");
      } else {
        entry.status = DecodeMineBody(q, entry_where, /*with_tasks=*/true,
                                      /*with_dataset=*/true, &entry.request);
      }
      request.batch.push_back(std::move(entry));
    }
    return request;
  }
  if (name == "cluster_info") {
    request.op = ServiceRequest::Op::kClusterInfo;
    request.version = 2;
    const JsonValue& dataset = doc["dataset"];
    if (!dataset.is_null()) {
      if (!dataset.is_string() || dataset.string_value().empty()) {
        return FieldError(where, "dataset", "not a non-empty string");
      }
      request.cluster.path = dataset.string_value();
    }
    return request;
  }
  if (name == "cache_probe") {
    request.op = ServiceRequest::Op::kCacheProbe;
    request.version = 2;
    const JsonValue& digest = doc["digest"];
    if (!digest.is_string() || digest.string_value().empty()) {
      return FieldError(where, "digest", "missing or not a string");
    }
    request.cluster.digest = digest.string_value();
    FPM_RETURN_IF_ERROR(DecodeMineBody(doc, where, /*with_tasks=*/true,
                                       /*with_dataset=*/false,
                                       &request.mine));
    return request;
  }
  if (name == "shard_query") {
    request.op = ServiceRequest::Op::kShardQuery;
    request.version = 2;
    const JsonValue& mode = doc["mode"];
    if (!mode.is_string()) {
      return FieldError(where, "mode", "missing or not a string");
    }
    const std::string& mode_name = mode.string_value();
    if (mode_name == "execute") {
      request.cluster.shard_mode = ClusterOpRequest::ShardMode::kExecute;
    } else if (mode_name == "mine") {
      request.cluster.shard_mode = ClusterOpRequest::ShardMode::kMine;
    } else if (mode_name == "count") {
      request.cluster.shard_mode = ClusterOpRequest::ShardMode::kCount;
    } else {
      return FieldError(where, "mode",
                        "expected 'execute', 'mine' or 'count'");
    }
    FPM_RETURN_IF_ERROR(DecodeMineBody(doc, where, /*with_tasks=*/true,
                                       /*with_dataset=*/true,
                                       &request.mine));
    if (request.cluster.shard_mode != ClusterOpRequest::ShardMode::kExecute) {
      const JsonValue& partition = doc["partition"];
      if (!partition.is_object()) {
        return FieldError(where, "partition", "missing or not an object");
      }
      const JsonValue& index = partition["index"];
      const JsonValue& count = partition["count"];
      if (!index.is_number() || index.number_value() < 0.0) {
        return FieldError(where, "partition.index",
                          "missing or not a number >= 0");
      }
      if (!count.is_number() || count.number_value() < 1.0) {
        return FieldError(where, "partition.count",
                          "missing or not a number >= 1");
      }
      request.cluster.partition_index =
          static_cast<uint32_t>(index.number_value());
      request.cluster.partition_count =
          static_cast<uint32_t>(count.number_value());
      if (request.cluster.partition_index >=
          request.cluster.partition_count) {
        return FieldError(where, "partition.index",
                          "must be < partition.count");
      }
    }
    if (request.cluster.shard_mode == ClusterOpRequest::ShardMode::kCount) {
      FPM_RETURN_IF_ERROR(
          DecodeCandidates(doc, where, &request.cluster.candidates));
    }
    return request;
  }
  return FieldError("request", "op", "unknown op '" + name + "'");
}

std::string EncodeMineResponse(const MineResponse& response) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("num_frequent",
          JsonValue::Int(static_cast<int64_t>(response.num_frequent)));
  doc.Set("cache", JsonValue::Str(CacheOutcomeName(response.cache)));
  doc.Set("digest", JsonValue::Str(response.dataset_digest));
  doc.Set("queue_ms", JsonValue::Number(response.queue_seconds * 1000.0));
  doc.Set("mine_ms", JsonValue::Number(response.mine_seconds * 1000.0));
  if (!response.itemsets.empty()) {
    doc.Set("itemsets", EncodeItemsets(response.itemsets));
  }
  return doc.Dump();
}

std::string EncodeQueryResponse(const MineResponse& response) {
  return BuildQueryResponse(response).Dump();
}

std::string EncodeQueryResponseWithId(uint64_t id,
                                      const MineResponse& response) {
  JsonValue doc = BuildQueryResponse(response);
  doc.Set("id", JsonValue::Int(static_cast<int64_t>(id)));
  return doc.Dump();
}

std::string EncodeHandleResponse(const DatasetHandle& handle) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("id", JsonValue::Str(handle.id));
  doc.Set("version", JsonValue::Int(static_cast<int64_t>(handle.version)));
  doc.Set("latest_version",
          JsonValue::Int(static_cast<int64_t>(handle.latest_version)));
  doc.Set("digest", JsonValue::Str(handle.digest));
  if (!handle.parent_digest.empty()) {
    doc.Set("parent_digest", JsonValue::Str(handle.parent_digest));
  }
  doc.Set("num_transactions",
          JsonValue::Int(static_cast<int64_t>(
              handle.database->num_transactions())));
  doc.Set("total_weight",
          JsonValue::Int(static_cast<int64_t>(
              handle.database->total_weight())));
  return doc.Dump();
}

std::string EncodeDatasetInfoResponse(const DatasetInfo& info) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("id", JsonValue::Str(info.id));
  doc.Set("path", JsonValue::Str(info.path));
  doc.Set("storage", JsonValue::Str(info.storage));
  doc.Set("live_transactions",
          JsonValue::Int(static_cast<int64_t>(info.live_transactions)));
  JsonValue window = JsonValue::Object();
  window.Set("last_n",
             JsonValue::Int(static_cast<int64_t>(info.window.last_n)));
  window.Set("last_seconds", JsonValue::Number(info.window.last_seconds));
  doc.Set("window", std::move(window));
  JsonValue versions = JsonValue::Array();
  for (const DatasetInfo::Version& v : info.versions) {
    JsonValue out = JsonValue::Object();
    out.Set("version", JsonValue::Int(static_cast<int64_t>(v.number)));
    out.Set("digest", JsonValue::Str(v.digest));
    out.Set("num_transactions",
            JsonValue::Int(static_cast<int64_t>(v.num_transactions)));
    out.Set("appended_weight",
            JsonValue::Int(static_cast<int64_t>(v.appended_weight)));
    out.Set("expired_weight",
            JsonValue::Int(static_cast<int64_t>(v.expired_weight)));
    versions.Append(std::move(out));
  }
  doc.Set("versions", std::move(versions));
  return doc.Dump();
}

std::string EncodeStatsResponse(const ServiceStats& stats) {
  return EncodeStatsResponse(stats, nullptr);
}

std::string EncodeStatsResponse(const ServiceStats& stats,
                                const JsonValue* cluster) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("uptime_seconds", JsonValue::Number(stats.uptime_seconds));

  JsonValue registry = JsonValue::Object();
  registry.Set("loads",
               JsonValue::Int(static_cast<int64_t>(stats.registry.loads)));
  registry.Set("hits",
               JsonValue::Int(static_cast<int64_t>(stats.registry.hits)));
  registry.Set("appends",
               JsonValue::Int(static_cast<int64_t>(stats.registry.appends)));
  registry.Set("evictions",
               JsonValue::Int(static_cast<int64_t>(stats.registry.evictions)));
  registry.Set("resident_bytes",
               JsonValue::Int(
                   static_cast<int64_t>(stats.registry.resident_bytes)));
  registry.Set("mapped_bytes",
               JsonValue::Int(
                   static_cast<int64_t>(stats.registry.mapped_bytes)));
  JsonValue datasets = JsonValue::Array();
  for (const DatasetRegistryStats::Dataset& d : stats.registry.datasets) {
    JsonValue row = JsonValue::Object();
    row.Set("id", JsonValue::Str(d.id));
    row.Set("path", JsonValue::Str(d.path));
    row.Set("storage", JsonValue::Str(d.storage));
    row.Set("versions", JsonValue::Int(static_cast<int64_t>(d.versions)));
    row.Set("live_transactions",
            JsonValue::Int(static_cast<int64_t>(d.live_transactions)));
    row.Set("bytes", JsonValue::Int(static_cast<int64_t>(d.bytes)));
    row.Set("mapped_bytes",
            JsonValue::Int(static_cast<int64_t>(d.mapped_bytes)));
    row.Set("pinned_versions",
            JsonValue::Int(static_cast<int64_t>(d.pinned_versions)));
    if (!d.digest.empty()) {
      row.Set("digest", JsonValue::Str(d.digest));
    }
    datasets.Append(std::move(row));
  }
  registry.Set("datasets", std::move(datasets));
  doc.Set("registry", std::move(registry));

  JsonValue cache = JsonValue::Object();
  cache.Set("hits", JsonValue::Int(static_cast<int64_t>(stats.cache.hits)));
  cache.Set("dominated_hits",
            JsonValue::Int(static_cast<int64_t>(stats.cache.dominated_hits)));
  cache.Set("cross_task_hits",
            JsonValue::Int(
                static_cast<int64_t>(stats.cache.cross_task_hits)));
  cache.Set("misses",
            JsonValue::Int(static_cast<int64_t>(stats.cache.misses)));
  cache.Set("insertions",
            JsonValue::Int(static_cast<int64_t>(stats.cache.insertions)));
  cache.Set("evictions",
            JsonValue::Int(static_cast<int64_t>(stats.cache.evictions)));
  cache.Set("resident_bytes",
            JsonValue::Int(static_cast<int64_t>(stats.cache.resident_bytes)));
  cache.Set("resident_entries",
            JsonValue::Int(
                static_cast<int64_t>(stats.cache.resident_entries)));
  doc.Set("cache", std::move(cache));

  JsonValue scheduler = JsonValue::Object();
  scheduler.Set("submitted",
                JsonValue::Int(
                    static_cast<int64_t>(stats.scheduler.submitted)));
  scheduler.Set("rejected",
                JsonValue::Int(static_cast<int64_t>(stats.scheduler.rejected)));
  scheduler.Set("completed",
                JsonValue::Int(
                    static_cast<int64_t>(stats.scheduler.completed)));
  scheduler.Set("queue_depth",
                JsonValue::Int(
                    static_cast<int64_t>(stats.scheduler.queue_depth)));
  scheduler.Set("running",
                JsonValue::Int(static_cast<int64_t>(stats.scheduler.running)));
  JsonValue in_flight = JsonValue::Array();
  for (const InFlightJob& job : stats.scheduler.in_flight) {
    JsonValue row = JsonValue::Object();
    row.Set("query_id", JsonValue::Int(static_cast<int64_t>(job.query_id)));
    row.Set("age_seconds", JsonValue::Number(job.age_seconds));
    in_flight.Append(std::move(row));
  }
  scheduler.Set("in_flight", std::move(in_flight));
  doc.Set("scheduler", std::move(scheduler));

  JsonValue windows = JsonValue::Array();
  for (const ServiceWindowStats& w : stats.windows) {
    JsonValue row = JsonValue::Object();
    row.Set("window_s", JsonValue::Int(static_cast<int64_t>(w.window_seconds)));
    row.Set("count", JsonValue::Int(static_cast<int64_t>(w.count)));
    row.Set("qps", JsonValue::Number(w.qps));
    row.Set("p50_ms", JsonValue::Number(w.p50_ms));
    row.Set("p99_ms", JsonValue::Number(w.p99_ms));
    row.Set("max_ms", JsonValue::Number(w.max_ms));
    windows.Append(std::move(row));
  }
  doc.Set("windows", std::move(windows));

  JsonValue watchdog = JsonValue::Object();
  watchdog.Set("sweeps",
               JsonValue::Int(static_cast<int64_t>(stats.watchdog.sweeps)));
  watchdog.Set("flagged",
               JsonValue::Int(static_cast<int64_t>(stats.watchdog.flagged)));
  watchdog.Set("stuck_now",
               JsonValue::Int(static_cast<int64_t>(stats.watchdog.stuck_now)));
  doc.Set("watchdog", std::move(watchdog));
  if (cluster != nullptr) {
    doc.Set("cluster", *cluster);
  }
  return doc.Dump();
}

std::string EncodeMetricsTextResponse(const std::string& text) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("text", JsonValue::Str(text));
  return doc.Dump();
}

std::string EncodeError(const Status& status) {
  return BuildError(status).Dump();
}

std::string EncodeErrorWithId(uint64_t id, const Status& status) {
  JsonValue doc = BuildError(status);
  doc.Set("id", JsonValue::Int(static_cast<int64_t>(id)));
  return doc.Dump();
}

std::string EncodeOk() {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  return doc.Dump();
}

namespace {

// Reverse of StatusCodeToString, for rehydrating a peer's error
// envelope. Unknown names map to kInternal.
StatusCode ParseStatusCode(const std::string& name) {
  static const std::pair<const char*, StatusCode> kCodes[] = {
      {"OK", StatusCode::kOk},
      {"INVALID_ARGUMENT", StatusCode::kInvalidArgument},
      {"NOT_FOUND", StatusCode::kNotFound},
      {"ALREADY_EXISTS", StatusCode::kAlreadyExists},
      {"OUT_OF_RANGE", StatusCode::kOutOfRange},
      {"UNIMPLEMENTED", StatusCode::kUnimplemented},
      {"INTERNAL", StatusCode::kInternal},
      {"IO_ERROR", StatusCode::kIOError},
      {"RESOURCE_EXHAUSTED", StatusCode::kResourceExhausted},
      {"CANCELLED", StatusCode::kCancelled},
      {"DEADLINE_EXCEEDED", StatusCode::kDeadlineExceeded},
      {"UNAVAILABLE", StatusCode::kUnavailable},
      {"FAILED_PRECONDITION", StatusCode::kFailedPrecondition},
  };
  for (const auto& entry : kCodes) {
    if (name == entry.first) return entry.second;
  }
  return StatusCode::kInternal;
}

// The shared query-body fields of an outbound cache_probe/shard_query
// request, mirroring what DecodeMineBody accepts.
void EncodeMineBodyFields(const MineRequest& request, bool with_dataset,
                          JsonValue* doc) {
  if (with_dataset) {
    if (!request.dataset_id.empty()) {
      doc->Set("id", JsonValue::Str(request.dataset_id));
      if (request.dataset_version != 0) {
        doc->Set("version",
                 JsonValue::Int(
                     static_cast<int64_t>(request.dataset_version)));
      }
    } else {
      doc->Set("dataset", JsonValue::Str(request.dataset_path));
    }
  }
  doc->Set("min_support",
           JsonValue::Int(static_cast<int64_t>(request.query.min_support)));
  doc->Set("task", JsonValue::Str(TaskName(request.query.task)));
  if (request.query.task == MiningTask::kTopK) {
    doc->Set("k", JsonValue::Int(static_cast<int64_t>(request.query.k)));
  }
  if (request.query.task == MiningTask::kRules) {
    doc->Set("min_confidence",
             JsonValue::Number(request.query.min_confidence));
    doc->Set("min_lift", JsonValue::Number(request.query.min_lift));
    doc->Set("max_consequent",
             JsonValue::Int(
                 static_cast<int64_t>(request.query.max_consequent)));
  }
  doc->Set("algorithm", JsonValue::Str(AlgorithmName(request.algorithm)));
  doc->Set("patterns",
           JsonValue::Str(request.patterns.bits() == PatternSet::All().bits()
                              ? "all"
                              : "none"));
  if (request.priority != 0) {
    doc->Set("priority", JsonValue::Int(request.priority));
  }
  if (request.timeout_seconds > 0.0) {
    doc->Set("timeout_s", JsonValue::Number(request.timeout_seconds));
  }
  if (request.count_only) {
    doc->Set("count_only", JsonValue::Bool(true));
  }
  if (!request.trace_id.empty()) {
    doc->Set("trace_id", JsonValue::Str(request.trace_id));
  }
}

// Parses an "itemsets"/"candidates" array of {"items":[...],
// "support":N} objects.
Status DecodeItemsetEntries(const JsonValue& array, const std::string& what,
                            std::vector<CollectingSink::Entry>* out) {
  if (!array.is_array()) {
    return Status::InvalidArgument("peer response: '" + what +
                                   "' is not an array");
  }
  out->reserve(array.array_items().size());
  for (const JsonValue& row : array.array_items()) {
    const JsonValue& items = row["items"];
    const JsonValue& support = row["support"];
    if (!row.is_object() || !items.is_array() || !support.is_number()) {
      return Status::InvalidArgument("peer response: malformed '" + what +
                                     "' entry");
    }
    Itemset set;
    set.reserve(items.array_items().size());
    for (const JsonValue& item : items.array_items()) {
      if (!item.is_number()) {
        return Status::InvalidArgument("peer response: non-numeric item in '" +
                                       what + "'");
      }
      set.push_back(static_cast<Item>(item.number_value()));
    }
    out->emplace_back(std::move(set),
                      static_cast<Support>(support.number_value()));
  }
  return Status::OK();
}

// Checks the "ok" envelope of a peer response; {"ok":false,...} becomes
// the carried status.
Status CheckOkEnvelope(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("peer response is not a JSON object");
  }
  const JsonValue& ok = doc["ok"];
  if (!ok.is_bool()) {
    return Status::InvalidArgument("peer response: missing 'ok'");
  }
  if (ok.bool_value()) return Status::OK();
  const JsonValue& error = doc["error"];
  std::string code = "INTERNAL";
  std::string message = "peer reported an error without detail";
  if (error.is_object()) {
    if (error["code"].is_string()) code = error["code"].string_value();
    if (error["message"].is_string()) {
      message = error["message"].string_value();
    }
  }
  return Status(ParseStatusCode(code), message);
}

// Fills a MineResponse from a v2 query response document (the envelope
// must already be ok).
Status ParseQueryResponseDoc(const JsonValue& doc, MineResponse* out) {
  const JsonValue& task = doc["task"];
  if (task.is_string()) {
    FPM_ASSIGN_OR_RETURN(out->task, ParseTask(task.string_value()));
  }
  const JsonValue& num = doc["num_results"];
  const JsonValue& num_v1 = doc["num_frequent"];
  if (num.is_number()) {
    out->num_frequent = static_cast<uint64_t>(num.number_value());
  } else if (num_v1.is_number()) {
    out->num_frequent = static_cast<uint64_t>(num_v1.number_value());
  }
  const JsonValue& cache = doc["cache"];
  if (cache.is_string()) {
    FPM_ASSIGN_OR_RETURN(out->cache, ParseCacheOutcome(cache.string_value()));
  }
  if (doc["digest"].is_string()) {
    out->dataset_digest = doc["digest"].string_value();
  }
  if (doc["queue_ms"].is_number()) {
    out->queue_seconds = doc["queue_ms"].number_value() / 1000.0;
  }
  if (doc["mine_ms"].is_number()) {
    out->mine_seconds = doc["mine_ms"].number_value() / 1000.0;
  }
  if (doc["query_id"].is_number()) {
    out->query_id = static_cast<uint64_t>(doc["query_id"].number_value());
  }
  if (doc["trace_id"].is_string()) {
    out->trace_id = doc["trace_id"].string_value();
  }
  if (doc["peer"].is_string()) {
    out->served_by = doc["peer"].string_value();
  }
  if (doc["shards"].is_number()) {
    out->shard_count = static_cast<uint32_t>(doc["shards"].number_value());
  }
  const JsonValue& itemsets = doc["itemsets"];
  if (!itemsets.is_null()) {
    FPM_RETURN_IF_ERROR(
        DecodeItemsetEntries(itemsets, "itemsets", &out->itemsets));
  }
  const JsonValue& rules = doc["rules"];
  if (!rules.is_null()) {
    if (!rules.is_array()) {
      return Status::InvalidArgument("peer response: 'rules' is not an array");
    }
    out->rules.reserve(rules.array_items().size());
    for (const JsonValue& row : rules.array_items()) {
      const JsonValue& antecedent = row["antecedent"];
      const JsonValue& consequent = row["consequent"];
      const JsonValue& support = row["support"];
      const JsonValue& confidence = row["confidence"];
      const JsonValue& lift = row["lift"];
      if (!row.is_object() || !antecedent.is_array() ||
          !consequent.is_array() || !support.is_number() ||
          !confidence.is_number() || !lift.is_number()) {
        return Status::InvalidArgument(
            "peer response: malformed 'rules' entry");
      }
      AssociationRule rule;
      for (const JsonValue& item : antecedent.array_items()) {
        if (!item.is_number()) {
          return Status::InvalidArgument(
              "peer response: non-numeric item in 'rules'");
        }
        rule.antecedent.push_back(static_cast<Item>(item.number_value()));
      }
      for (const JsonValue& item : consequent.array_items()) {
        if (!item.is_number()) {
          return Status::InvalidArgument(
              "peer response: non-numeric item in 'rules'");
        }
        rule.consequent.push_back(static_cast<Item>(item.number_value()));
      }
      rule.itemset_support = static_cast<Support>(support.number_value());
      rule.confidence = confidence.number_value();
      rule.lift = lift.number_value();
      out->rules.push_back(std::move(rule));
    }
  }
  return Status::OK();
}

}  // namespace

std::string EncodeCacheProbeRequest(const std::string& digest,
                                    const MineRequest& request) {
  JsonValue doc = JsonValue::Object();
  doc.Set("op", JsonValue::Str("cache_probe"));
  doc.Set("digest", JsonValue::Str(digest));
  EncodeMineBodyFields(request, /*with_dataset=*/false, &doc);
  return doc.Dump();
}

std::string EncodeShardQueryRequest(const MineRequest& request,
                                    ClusterOpRequest::ShardMode mode,
                                    uint32_t partition_index,
                                    uint32_t partition_count,
                                    const std::vector<Itemset>& candidates) {
  JsonValue doc = JsonValue::Object();
  doc.Set("op", JsonValue::Str("shard_query"));
  switch (mode) {
    case ClusterOpRequest::ShardMode::kExecute:
      doc.Set("mode", JsonValue::Str("execute"));
      break;
    case ClusterOpRequest::ShardMode::kMine:
      doc.Set("mode", JsonValue::Str("mine"));
      break;
    case ClusterOpRequest::ShardMode::kCount:
      doc.Set("mode", JsonValue::Str("count"));
      break;
  }
  EncodeMineBodyFields(request, /*with_dataset=*/true, &doc);
  if (mode != ClusterOpRequest::ShardMode::kExecute) {
    JsonValue partition = JsonValue::Object();
    partition.Set("index",
                  JsonValue::Int(static_cast<int64_t>(partition_index)));
    partition.Set("count",
                  JsonValue::Int(static_cast<int64_t>(partition_count)));
    doc.Set("partition", std::move(partition));
  }
  if (mode == ClusterOpRequest::ShardMode::kCount) {
    JsonValue array = JsonValue::Array();
    for (const Itemset& set : candidates) {
      array.Append(EncodeItemArray(set));
    }
    doc.Set("candidates", std::move(array));
  }
  return doc.Dump();
}

std::string EncodeCacheProbeResponse(bool hit, const MineResponse& response) {
  if (!hit) {
    JsonValue doc = JsonValue::Object();
    doc.Set("ok", JsonValue::Bool(true));
    doc.Set("hit", JsonValue::Bool(false));
    return doc.Dump();
  }
  JsonValue doc = BuildQueryResponse(response);
  doc.Set("hit", JsonValue::Bool(true));
  return doc.Dump();
}

std::string EncodeShardMineResponse(
    const std::vector<CollectingSink::Entry>& entries) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("phase", JsonValue::Str("mine"));
  doc.Set("candidates", EncodeItemsets(entries));
  return doc.Dump();
}

std::string EncodeShardCountResponse(const std::vector<Support>& counts) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("phase", JsonValue::Str("count"));
  JsonValue array = JsonValue::Array();
  for (Support count : counts) {
    array.Append(JsonValue::Int(static_cast<int64_t>(count)));
  }
  doc.Set("counts", std::move(array));
  return doc.Dump();
}

Result<MineResponse> DecodeQueryResponse(const std::string& line) {
  FPM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  FPM_RETURN_IF_ERROR(CheckOkEnvelope(doc));
  MineResponse response;
  FPM_RETURN_IF_ERROR(ParseQueryResponseDoc(doc, &response));
  return response;
}

Result<CacheProbeReply> DecodeCacheProbeResponse(const std::string& line) {
  FPM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  FPM_RETURN_IF_ERROR(CheckOkEnvelope(doc));
  const JsonValue& hit = doc["hit"];
  if (!hit.is_bool()) {
    return Status::InvalidArgument("peer response: missing 'hit'");
  }
  CacheProbeReply reply;
  reply.hit = hit.bool_value();
  if (reply.hit) {
    FPM_RETURN_IF_ERROR(ParseQueryResponseDoc(doc, &reply.response));
  }
  return reply;
}

Result<std::vector<CollectingSink::Entry>> DecodeShardMineResponse(
    const std::string& line) {
  FPM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  FPM_RETURN_IF_ERROR(CheckOkEnvelope(doc));
  std::vector<CollectingSink::Entry> entries;
  FPM_RETURN_IF_ERROR(
      DecodeItemsetEntries(doc["candidates"], "candidates", &entries));
  return entries;
}

Result<std::vector<Support>> DecodeShardCountResponse(
    const std::string& line) {
  FPM_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  FPM_RETURN_IF_ERROR(CheckOkEnvelope(doc));
  const JsonValue& counts = doc["counts"];
  if (!counts.is_array()) {
    return Status::InvalidArgument("peer response: 'counts' is not an array");
  }
  std::vector<Support> out;
  out.reserve(counts.array_items().size());
  for (const JsonValue& count : counts.array_items()) {
    if (!count.is_number() || count.number_value() < 0.0) {
      return Status::InvalidArgument(
          "peer response: 'counts' entries must be numbers >= 0");
    }
    out.push_back(static_cast<Support>(count.number_value()));
  }
  return out;
}

}  // namespace fpm
